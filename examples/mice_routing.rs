//! Mice routing walkthrough: recurring small payments hit the routing
//! table instead of probing the network, reproducing the paper's core
//! overhead argument (§3.3).
//!
//! ```sh
//! cargo run --example mice_routing
//! ```

use flash_offchain::core::{FlashConfig, FlashRouter};
use flash_offchain::graph::generators;
use flash_offchain::sim::{Network, Router};
use flash_offchain::types::{Amount, Payment, PaymentClass, TxId};
use flash_offchain::workload::recurrence::{PairGenerator, RecurrenceConfig};

fn main() {
    let graph = generators::scale_free_with_channels(120, 480, 3);
    let mut net = Network::uniform(graph, Amount::from_units(500));

    // Recurrent pair structure straight from the workload model.
    let mut pairs = PairGenerator::new(120, RecurrenceConfig::default(), 5);

    let mut flash = FlashRouter::new(FlashConfig {
        elephant_threshold: Amount::MAX, // everything is mice here
        ..Default::default()
    });

    let mut probes_at = Vec::new();
    for i in 0..300u64 {
        let (s, r) = pairs.next_pair();
        if s == r {
            continue;
        }
        let p = Payment::new(TxId(i), s, r, Amount::from_units(5 + i % 20));
        let _ = flash.route(&mut net, &p, PaymentClass::Mice);
        probes_at.push(net.metrics().probe_messages);
    }

    let m = net.metrics();
    println!("payments routed:   {}", m.total().attempted);
    println!("success ratio:     {:.1}%", m.success_ratio() * 100.0);
    println!("probe messages:    {}", m.probe_messages);
    println!(
        "probes per payment: {:.3}  (mice mostly skip probing entirely)",
        m.probe_messages as f64 / m.total().attempted as f64
    );
    println!("receivers cached:  {}", flash.routing_table_len());

    // Show the probe counter rarely moving: most payments are pure
    // table lookups + a single full-amount attempt.
    let quiet = probes_at.windows(2).filter(|w| w[0] == w[1]).count();
    println!(
        "payments with zero probes: {} of {}",
        quiet + 1,
        probes_at.len()
    );
}
