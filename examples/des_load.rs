//! Virtual time and concurrent payments: sweep the offered load on the
//! discrete-event engine and print success ratio, p95 completion
//! latency, and delivered throughput per scheme.
//!
//! ```sh
//! cargo run --release --example des_load
//! ```
//!
//! Payments arrive from a seeded Poisson process; each hop costs 25ms
//! of virtual time, so at higher offered loads more payments are in
//! flight at once — contending for escrowed balance and working from
//! staler probes. Everything is virtual time: the run is deterministic
//! and takes a fraction of the makespan it simulates.

use flash_offchain::experiments::harness::{run_scheme_des, SimScheme, DEFAULT_MICE_FRACTION};
use flash_offchain::sim::des::LatencyModel;
use flash_offchain::workload::testbed_topology;
use flash_offchain::workload::trace::{generate_trace, TraceConfig};

fn main() {
    let seed = 7;
    let net = testbed_topology(80, 1000, 1500, seed);
    let trace = generate_trace(net.graph(), &TraceConfig::ripple(300, seed + 1));

    println!("offered load sweep: 300 payments, 80-node testbed topology, 25ms/hop\n");
    println!(
        "{:>14} {:>10} {:>9} {:>12} {:>11} {:>13}",
        "scheme", "load(pps)", "ratio", "p95(ms)", "tput(pps)", "peak in-flight"
    );
    for scheme in SimScheme::ALL {
        for load in [25.0, 100.0, 400.0] {
            let report = run_scheme_des(
                &net,
                scheme,
                &trace,
                DEFAULT_MICE_FRACTION,
                seed + 2,
                load,
                LatencyModel::constant_ms(25),
            );
            println!(
                "{:>14} {:>10.0} {:>8.1}% {:>12.1} {:>11.1} {:>13}",
                scheme.label(),
                load,
                report.metrics.success_ratio() * 100.0,
                report.latency_ms(0.95),
                report.throughput_pps,
                report.peak_in_flight,
            );
        }
    }
}
