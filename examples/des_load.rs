//! Virtual time and concurrent payments: sweep the offered load on the
//! discrete-event engine and print success ratio, p95 completion
//! latency, queueing delay, and delivered throughput per scheme.
//!
//! ```sh
//! cargo run --release --example des_load
//! ```
//!
//! Payments arrive from a seeded Poisson process; each hop costs 25ms
//! of propagation plus 10ms of service at the receiving node (a FIFO
//! M/D/1-style queue per node), so at higher offered loads more
//! payments are in flight at once — contending for escrowed balance,
//! working from staler probes, and queueing behind busy nodes.
//! Everything is virtual time: the run is deterministic and takes a
//! fraction of the makespan it simulates.

use flash_offchain::experiments::harness::{
    run_scheme_des, DesLoad, SimScheme, DEFAULT_MICE_FRACTION,
};
use flash_offchain::sim::des::{ChurnRate, LatencyModel, ServiceModel};
use flash_offchain::workload::testbed_topology;
use flash_offchain::workload::trace::{generate_trace, TraceConfig};

fn main() {
    let seed = 7;
    let net = testbed_topology(80, 1000, 1500, seed);
    let trace = generate_trace(net.graph(), &TraceConfig::ripple(300, seed + 1));

    println!("offered load sweep: 300 payments, 80-node testbed topology, 25ms/hop + 10ms/node\n");
    println!(
        "{:>14} {:>10} {:>9} {:>12} {:>12} {:>11} {:>9} {:>8}",
        "scheme", "load(pps)", "ratio", "p95(ms)", "queue95(ms)", "tput(pps)", "backlog", "util"
    );
    for scheme in SimScheme::ALL {
        for load in [25.0, 100.0, 400.0] {
            let report = run_scheme_des(
                &net,
                scheme,
                &trace,
                DEFAULT_MICE_FRACTION,
                seed + 2,
                DesLoad {
                    rate_per_sec: load,
                    latency: LatencyModel::constant_ms(25),
                    service: ServiceModel::constant_ms(10),
                    churn: ChurnRate::zero(),
                },
            );
            println!(
                "{:>14} {:>10.0} {:>8.1}% {:>12.1} {:>12.1} {:>11.1} {:>9} {:>7.0}%",
                scheme.label(),
                load,
                report.metrics.success_ratio() * 100.0,
                report.latency_ms(0.95),
                report.queue_delay_ms(0.95),
                report.throughput_pps,
                report.peak_backlog,
                report.max_node_utilization * 100.0,
            );
        }
    }
}
