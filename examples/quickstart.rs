//! Quickstart: build a small payment channel network, route payments
//! with Flash, and inspect the outcome.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use flash_offchain::core::{classify, FlashConfig, FlashRouter};
use flash_offchain::graph::generators;
use flash_offchain::sim::{Network, Router};
use flash_offchain::types::{Amount, NodeId, Payment, TxId};

fn main() {
    // A 40-node small-world topology with bidirectional channels of
    // $200 per direction.
    let graph = generators::watts_strogatz(40, 4, 0.3, 7);
    let mut net = Network::uniform(graph, Amount::from_units(200));

    // A toy workload: payments of varying sizes between fixed pairs.
    let payments: Vec<Payment> = (0..20)
        .map(|i| {
            Payment::new(
                TxId(i),
                NodeId((i % 7) as u32),
                NodeId((13 + i % 11) as u32),
                Amount::from_units(if i % 5 == 0 { 450 } else { 12 }),
            )
        })
        .collect();

    // Threshold so that 90% of payments are mice (the paper's setting).
    let amounts: Vec<Amount> = payments.iter().map(|p| p.amount).collect();
    let threshold = classify::threshold_for_mice_fraction(&amounts, 0.9);
    println!("elephant threshold: ${threshold}");

    let mut flash = FlashRouter::new(FlashConfig {
        elephant_threshold: threshold,
        ..Default::default()
    });

    for p in &payments {
        let class = p.classify(threshold);
        let outcome = flash.route(&mut net, p, class);
        println!(
            "{} {}→{} ${:<8} [{class:?}] {outcome:?}",
            p.id, p.sender, p.receiver, p.amount
        );
    }

    let m = net.metrics();
    println!("\nsuccess ratio:  {:.1}%", m.success_ratio() * 100.0);
    println!("success volume: ${}", m.success_volume());
    println!("probe messages: {}", m.probe_messages);
    println!(
        "routing table:  {} receivers cached",
        flash.routing_table_len()
    );
}
