//! Testbed walkthrough: launches a real TCP cluster (one node per
//! participant on 127.0.0.1), routes payments with the two-phase commit
//! protocol of §5.1, and prints per-scheme processing delays and the
//! probe/commit message breakdown.
//!
//! All five schemes route through the very same `flash-core` routers the
//! simulator uses — the cluster is just another `PaymentNetwork` backend.
//!
//! ```sh
//! cargo run --example testbed_cluster
//! ```

use flash_offchain::proto::{Cluster, SchemeKind, TestbedRunner};
use flash_offchain::types::Amount;
use flash_offchain::workload::testbed_topology;
use flash_offchain::workload::trace::{generate_trace, TraceConfig};

fn main() {
    let nodes = 30;
    let (lo, hi) = (1000, 1500);
    println!("launching {nodes}-node Watts-Strogatz cluster, capacities U[${lo},${hi})...");

    let trace_topo = testbed_topology(nodes, lo, hi, 42);
    let trace = generate_trace(trace_topo.graph(), &TraceConfig::ripple(150, 7));
    let amounts: Vec<Amount> = trace.iter().map(|p| p.amount).collect();
    let threshold = flash_offchain::core::classify::threshold_for_mice_fraction(&amounts, 0.9);

    for scheme in SchemeKind::ALL {
        // Fresh cluster per scheme: identical initial balances.
        let topo = testbed_topology(nodes, lo, hi, 42);
        let graph = topo.graph().clone();
        let balances: Vec<Amount> = graph.edges().map(|(e, _, _)| topo.balance(e)).collect();
        let cluster = Cluster::launch(graph, &balances).expect("cluster launch");
        let mut runner = TestbedRunner::new(cluster, scheme, threshold, 13);
        let report = runner.run_trace(&trace);
        println!(
            "{:>14}: success {:>5.1}%  volume ${:<11} avg delay {:>9.1?}  probes {:>5}  commits {:>5}",
            scheme.name(),
            report.success_ratio() * 100.0,
            report.success_volume.as_units_f64(),
            report.avg_delay(),
            report.probe_messages,
            report.commit_messages,
        );
    }
    println!("done — all balance movement happened via PROBE/COMMIT/CONFIRM frames over TCP.");
}
