//! Workload synthesis walkthrough: generate a Ripple-calibrated trace
//! and verify the paper's §2.2 statistics hold on it (the Figure 3/4
//! measurement study, regenerated).
//!
//! ```sh
//! cargo run --example trace_generation
//! ```

use flash_offchain::workload::stats::{daily_recurrence, quantile, top_fraction_volume_share};
use flash_offchain::workload::trace::{generate_trace, to_jsonl, TraceConfig};
use flash_offchain::workload::{ripple_topology, SizeModel};

fn main() {
    println!("building Ripple-scale topology (1,870 nodes / 17,416 edges)...");
    let net = ripple_topology(1);
    println!("generating 20,000-payment trace...");
    let trace = generate_trace(net.graph(), &TraceConfig::ripple(20_000, 2));

    let sizes: Vec<f64> = trace.iter().map(|p| p.amount.as_units_f64()).collect();
    println!("\npayment sizes (paper §2.2 targets in parentheses):");
    println!("  median: ${:.2}   ($4.8)", quantile(&sizes, 0.5));
    println!("  p90:    ${:.0}   ($1,740)", quantile(&sizes, 0.9));
    println!(
        "  top-10% volume share: {:.1}%   (94.5%)",
        top_fraction_volume_share(&sizes, 0.1) * 100.0
    );

    let days = daily_recurrence(&trace, 2000);
    let mut rec: Vec<f64> = days.iter().map(|d| d.recurring_fraction).collect();
    rec.sort_by(|a, b| a.partial_cmp(b).unwrap());
    println!("\nrecurrence across {} synthetic days:", days.len());
    println!(
        "  median recurring fraction: {:.0}%   (86%)",
        rec[rec.len() / 2] * 100.0
    );
    let top5: Vec<f64> = days.iter().map(|d| d.top5_share).collect();
    println!(
        "  mean top-5 share: {:.0}%   (>70%)",
        top5.iter().sum::<f64>() / top5.len() as f64 * 100.0
    );

    // Bitcoin-style sizes for the Lightning experiments.
    let btc = SizeModel::BitcoinSatoshi.sample_many(20_000, 3);
    let btc_sizes: Vec<f64> = btc.iter().map(|a| a.as_units_f64()).collect();
    println!(
        "\nbitcoin sizes: median {:.3e} sat (1.293e6), p90 {:.3e} sat (8.9e7)",
        quantile(&btc_sizes, 0.5),
        quantile(&btc_sizes, 0.9)
    );

    // Traces serialize to JSON lines, like the paper's released dataset.
    let jsonl = to_jsonl(&trace[..3]);
    println!("\nfirst trace records:\n{jsonl}");
}
