//! Rebalancing extension walkthrough: drive a network into one-sided
//! channel depletion with a skewed workload, then recover routable
//! capacity with Revive-style circular self-payments (see
//! `flash_core::rebalance` and §6 of the paper).
//!
//! ```sh
//! cargo run --example rebalancing
//! ```

use flash_offchain::core::rebalance::{depleted_edges, rebalance_sweep, RebalanceConfig};
use flash_offchain::core::{FlashConfig, FlashRouter};
use flash_offchain::graph::generators;
use flash_offchain::sim::{Network, Router};
use flash_offchain::types::{Amount, NodeId, Payment, TxId};

fn main() {
    let graph = generators::watts_strogatz(40, 4, 0.2, 11);
    let mut net = Network::uniform(graph, Amount::from_units(100));

    // A deliberately skewed workload: everyone pays toward a few hot
    // receivers, draining channels in one direction ("channels are
    // easier to be saturated in one direction", §4.2).
    let mut flash = FlashRouter::new(FlashConfig {
        elephant_threshold: Amount::from_units(80),
        ..Default::default()
    });
    let mut failures_before = 0;
    for i in 0..400u64 {
        // Two-thirds of traffic flows toward three hot receivers; the
        // rest is background chatter that keeps some liquidity moving.
        let (s, r) = if i % 3 != 2 {
            ((i % 37) as u32 + 3, (i % 3) as u32)
        } else {
            ((i % 11) as u32 + 7, (i % 29) as u32 + 5)
        };
        let p = Payment::new(
            TxId(i),
            NodeId(s),
            NodeId(r),
            Amount::from_units(10 + i % 25),
        );
        if p.sender == p.receiver {
            continue;
        }
        let class = p.classify(Amount::from_units(80));
        if !flash.route(&mut net, &p, class).is_success() {
            failures_before += 1;
        }
    }
    let depleted = depleted_edges(&net, 10);
    println!(
        "after skewed load: {failures_before} failures, {} depleted channel directions",
        depleted.len()
    );

    // Sweep.
    let report = rebalance_sweep(&mut net, &RebalanceConfig::default());
    println!(
        "rebalance sweep: {} scanned, {} depleted, {} cycles executed, ${} shifted",
        report.scanned, report.depleted, report.rebalanced, report.volume_shifted
    );
    println!(
        "depleted directions remaining: {}",
        depleted_edges(&net, 10).len()
    );

    // Same workload again. Rebalancing is no panacea when the demand
    // itself is one-directional (the hot receivers keep draining the
    // same channels — only an onchain top-up truly fixes that), but the
    // recovered directions admit payments that were hard failures
    // before; compare the depleted-direction counts above.
    let mut failures_after = 0;
    for i in 400..800u64 {
        let (s, r) = if i % 3 != 2 {
            ((i % 37) as u32 + 3, (i % 3) as u32)
        } else {
            ((i % 11) as u32 + 7, (i % 29) as u32 + 5)
        };
        let p = Payment::new(
            TxId(i),
            NodeId(s),
            NodeId(r),
            Amount::from_units(10 + i % 25),
        );
        if p.sender == p.receiver {
            continue;
        }
        let class = p.classify(Amount::from_units(80));
        if !flash.route(&mut net, &p, class).is_success() {
            failures_after += 1;
        }
    }
    println!("second wave after rebalancing: {failures_after} failures");
}
