//! Elephant routing walkthrough: runs Algorithm 1 (modified
//! Edmonds–Karp with lazy probing) on the paper's Figure 5 topology and
//! shows how the fee-minimizing LP splits the payment across paths.
//!
//! ```sh
//! cargo run --example elephant_split
//! ```

use flash_offchain::core::flash::{elephant, fees};
use flash_offchain::graph::DiGraph;
use flash_offchain::sim::Network;
use flash_offchain::types::{Amount, FeePolicy, NodeId, Payment, PaymentClass, TxId};

fn n(i: u32) -> NodeId {
    NodeId(i)
}

fn main() {
    // Figure 5(a) of the paper (nodes renumbered 0-based): two shortest
    // paths 1→6 share the bottleneck 1→2; the third path 1-5-4-6 is
    // longer but independent.
    let mut graph = DiGraph::new(6);
    let mut balances = Vec::new();
    let mut fee_table = Vec::new();
    for (u, v, cap, fee_ppm) in [
        (1u32, 2u32, 30u64, 1_000u64), // cheap
        (1, 5, 30, 2_000),
        (2, 3, 20, 1_000),
        (2, 4, 20, 30_000), // expensive middle hop
        (3, 6, 30, 1_000),
        (4, 6, 30, 1_000),
        (5, 4, 30, 2_000),
    ] {
        graph.add_edge(n(u - 1), n(v - 1)).unwrap();
        balances.push(Amount::from_units(cap));
        fee_table.push(FeePolicy::proportional(fee_ppm));
    }
    let mut net = Network::new(graph, balances, fee_table).unwrap();

    let demand = Amount::from_units(45);
    println!("demand: ${demand} from n0 to n5\n");

    // Phase 1: Algorithm 1 discovers paths, probing lazily.
    let plan = elephant::find_paths(&mut net, n(0), n(5), demand, 4);
    println!(
        "discovered {} candidate paths (max flow ${}):",
        plan.paths.len(),
        plan.max_flow
    );
    for p in &plan.paths {
        println!("  {p}");
    }
    println!("probe messages so far: {}\n", net.metrics().probe_messages);

    // Phase 2: fee-minimizing LP split vs. sequential fill.
    for (optimize, label) in [(true, "LP-optimized"), (false, "sequential")] {
        let parts = fees::split_payment(net.graph(), &plan, demand, optimize)
            .expect("demand within max flow");
        let total_fee = fees::evaluate_fees(net.graph(), &plan, &parts);
        println!("{label} split (total fee ${total_fee}):");
        for (path, amount) in &parts {
            println!("  ${amount:<10} on {path}");
        }
        println!();
    }

    // Execute the optimized split atomically.
    let payment = Payment::new(TxId(1), n(0), n(5), demand);
    let parts = fees::split_payment(net.graph(), &plan, demand, true).unwrap();
    let mut session = net.begin_payment(&payment, PaymentClass::Elephant);
    for (path, amount) in &parts {
        session
            .try_send_part(path, *amount)
            .expect("probed capacity holds");
    }
    let outcome = session.commit();
    println!("executed: {outcome:?}");
}
