//! End-to-end simulation tests across crates: topology synthesis →
//! trace generation → all four routing schemes → metric sanity, on the
//! quick-scale configuration of the experiment harness.

use flash_offchain::experiments::harness::{
    run_scheme, Effort, SimScheme, Topo, DEFAULT_MICE_FRACTION,
};
use flash_offchain::types::Amount;

const SCHEMES: [SimScheme; 4] = [
    SimScheme::Flash,
    SimScheme::Spider,
    SimScheme::SpeedyMurmurs,
    SimScheme::ShortestPath,
];

#[test]
fn funds_are_conserved_by_every_scheme() {
    let net = Topo::Ripple.build_network(Effort::Quick, 3);
    let trace = Topo::Ripple.build_trace(&net, 150, 4);
    let before = net.total_funds();
    for scheme in SCHEMES {
        // run_scheme clones the network internally; conservation is
        // checked against a fresh clone driven the same way.
        let mut clone = net.clone();
        let amounts: Vec<Amount> = trace.iter().map(|p| p.amount).collect();
        let threshold = flash_offchain::core::classify::threshold_for_mice_fraction(
            &amounts,
            DEFAULT_MICE_FRACTION,
        );
        let mut router = scheme.router(threshold, 5);
        for p in &trace {
            router.route(&mut clone, p, p.classify(threshold));
        }
        assert_eq!(
            clone.total_funds(),
            before,
            "{} violated conservation",
            scheme.label()
        );
    }
}

#[test]
fn dynamic_schemes_beat_static_on_success_volume() {
    let mut best_static = Amount::ZERO;
    let mut flash_vol = Amount::ZERO;
    // Average over a few seeds to avoid single-draw flakiness.
    for seed in [11, 23, 37] {
        let mut net = Topo::Ripple.build_network(Effort::Quick, seed);
        net.scale_balances(10);
        let trace = Topo::Ripple.build_trace(&net, 250, seed + 1);
        let f = run_scheme(&net, SimScheme::Flash, &trace, DEFAULT_MICE_FRACTION, seed);
        let sp = run_scheme(
            &net,
            SimScheme::ShortestPath,
            &trace,
            DEFAULT_MICE_FRACTION,
            seed,
        );
        let sm = run_scheme(
            &net,
            SimScheme::SpeedyMurmurs,
            &trace,
            DEFAULT_MICE_FRACTION,
            seed,
        );
        flash_vol = flash_vol.saturating_add(f.success_volume());
        best_static = best_static.saturating_add(sp.success_volume().max(sm.success_volume()));
    }
    assert!(
        flash_vol > best_static,
        "Flash volume {flash_vol} should beat the best static scheme {best_static}"
    );
}

#[test]
fn flash_probes_fewer_messages_than_spider() {
    let mut net = Topo::Ripple.build_network(Effort::Quick, 7);
    net.scale_balances(10);
    let trace = Topo::Ripple.build_trace(&net, 300, 8);
    let flash = run_scheme(&net, SimScheme::Flash, &trace, DEFAULT_MICE_FRACTION, 9);
    let spider = run_scheme(&net, SimScheme::Spider, &trace, DEFAULT_MICE_FRACTION, 9);
    assert!(
        flash.probe_messages < spider.probe_messages,
        "Flash {} probes should be below Spider {}",
        flash.probe_messages,
        spider.probe_messages
    );
    // Static schemes never probe.
    let sp = run_scheme(
        &net,
        SimScheme::ShortestPath,
        &trace,
        DEFAULT_MICE_FRACTION,
        9,
    );
    assert_eq!(sp.probe_messages, 0);
    let sm = run_scheme(
        &net,
        SimScheme::SpeedyMurmurs,
        &trace,
        DEFAULT_MICE_FRACTION,
        9,
    );
    assert_eq!(sm.probe_messages, 0);
}

#[test]
fn success_ratio_dominated_by_mice() {
    let mut net = Topo::Ripple.build_network(Effort::Quick, 13);
    net.scale_balances(10);
    let trace = Topo::Ripple.build_trace(&net, 300, 14);
    let m = run_scheme(&net, SimScheme::Flash, &trace, DEFAULT_MICE_FRACTION, 15);
    // Mice are ≤ the 90th percentile size with 10x capacity: the bulk
    // must go through ("Flash and Spider are both able to fulfill most
    // mice payments").
    assert!(
        m.mice.success_ratio() > 0.8,
        "mice success ratio {} too low",
        m.mice.success_ratio()
    );
    assert!(m.mice.success_ratio() >= m.elephant.success_ratio());
}

#[test]
fn capacity_scaling_monotonically_helps() {
    let seeds = [21, 22];
    let mut low_total = 0.0;
    let mut high_total = 0.0;
    for seed in seeds {
        let base = Topo::Ripple.build_network(Effort::Quick, seed);
        let trace = Topo::Ripple.build_trace(&base, 200, seed + 1);
        let mut low = base.clone();
        low.scale_balances(1);
        let mut high = base.clone();
        high.scale_balances(40);
        low_total +=
            run_scheme(&low, SimScheme::Flash, &trace, DEFAULT_MICE_FRACTION, seed).success_ratio();
        high_total += run_scheme(&high, SimScheme::Flash, &trace, DEFAULT_MICE_FRACTION, seed)
            .success_ratio();
    }
    assert!(
        high_total >= low_total,
        "success ratio should not degrade with 40x capacity ({high_total} < {low_total})"
    );
}
