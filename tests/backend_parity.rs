//! Cross-backend differential test: the same router, the same trace, the
//! same initial balances — once on the in-memory simulator
//! (`pcn_sim::Network`) and once on the TCP testbed (`pcn_proto::Cluster`)
//! — must agree payment-by-payment on success/failure.
//!
//! This is the acceptance check of the `PaymentNetwork` redesign: both
//! backends implement the trait, every scheme routes through the
//! identical `flash-core` code, so with faults off any divergence is a
//! backend bug, not a scheme difference.
//!
//! Known, intentional asymmetry: the TCP `PROBE_ACK` carries no
//! reverse-direction balances, so Flash's elephant search sees slightly
//! less information on the cluster (reverse channels stay "assumed
//! usable" until probed directly). On these small topologies with the
//! default k = 20 budget, the discovered max-flow — and therefore every
//! accept/reject decision — still agrees, which this test pins down.

use flash_offchain::core::classify::threshold_for_mice_fraction;
use flash_offchain::core::{
    FlashConfig, FlashRouter, ShortestPathRouter, SilentWhispersRouter, SpeedyMurmursRouter,
    SpiderRouter,
};
use flash_offchain::proto::{Cluster, SchemeKind};
use flash_offchain::scenario::{Invariant, ScenarioBuilder, TopologySpec, WorkloadSpec};
use flash_offchain::sim::{Network, Router};
use flash_offchain::types::{Amount, Payment};
use flash_offchain::workload::testbed_topology;
use flash_offchain::workload::trace::{generate_trace, TraceConfig};

/// Two identically configured router instances — one per backend. The
/// routers are stateful (Flash's table and RNG), so each backend needs
/// its own copy, seeded the same.
fn router_pair(
    scheme: SchemeKind,
    threshold: Amount,
    seed: u64,
) -> (Box<dyn Router<Network>>, Box<dyn Router<Cluster>>) {
    match scheme {
        SchemeKind::Flash => {
            let config = FlashConfig {
                elephant_threshold: threshold,
                seed,
                ..Default::default()
            };
            (
                Box::new(FlashRouter::new(config.clone())),
                Box::new(FlashRouter::new(config)),
            )
        }
        SchemeKind::Spider => (Box::new(SpiderRouter::new()), Box::new(SpiderRouter::new())),
        SchemeKind::ShortestPath => (
            Box::new(ShortestPathRouter::new()),
            Box::new(ShortestPathRouter::new()),
        ),
        SchemeKind::SpeedyMurmurs => (
            Box::new(SpeedyMurmursRouter::new()),
            Box::new(SpeedyMurmursRouter::new()),
        ),
        SchemeKind::SilentWhispers => (
            Box::new(SilentWhispersRouter::new()),
            Box::new(SilentWhispersRouter::new()),
        ),
    }
}

/// Routes `txns` payments through `scheme` on both backends and asserts
/// per-payment success agreement plus conservation on each backend.
fn assert_parity(scheme: SchemeKind, nodes: usize, txns: usize, seed: u64) {
    // Identical deterministic topology and balances on both backends.
    let mut sim_net = testbed_topology(nodes, 1000, 1500, seed);
    let graph = sim_net.graph().clone();
    let balances: Vec<Amount> = graph.edges().map(|(e, _, _)| sim_net.balance(e)).collect();
    let mut cluster = Cluster::launch(graph, &balances).expect("cluster launch");

    let trace: Vec<Payment> = generate_trace(sim_net.graph(), &TraceConfig::ripple(txns, seed + 1));
    let amounts: Vec<Amount> = trace.iter().map(|p| p.amount).collect();
    let threshold = threshold_for_mice_fraction(&amounts, 0.9);

    let (mut sim_router, mut tcp_router) = router_pair(scheme, threshold, seed + 2);

    let sim_before = sim_net.total_funds();
    let tcp_before = cluster.total_funds();

    for (i, p) in trace.iter().enumerate() {
        let class = p.classify(threshold);
        let sim_out = sim_router.route(&mut sim_net, p, class);
        let tcp_out = tcp_router.route(&mut cluster, p, class);
        assert_eq!(
            sim_out.is_success(),
            tcp_out.is_success(),
            "{}: payment {i} ({:?}, {class:?}) diverged: sim {sim_out:?} vs tcp {tcp_out:?}",
            scheme.name(),
            p,
        );
        // On success both backends deliver the full demand.
        if sim_out.is_success() {
            assert_eq!(sim_out.volume(), p.amount);
            assert_eq!(tcp_out.volume(), p.amount);
        }
        assert_eq!(
            sim_net.total_funds(),
            sim_before,
            "{}: simulator leaked funds at payment {i}",
            scheme.name()
        );
        assert_eq!(
            cluster.total_funds(),
            tcp_before,
            "{}: cluster leaked funds at payment {i}",
            scheme.name()
        );
    }
    // The trace must exercise both outcomes to be a meaningful diff.
    let successes = sim_net.metrics().total().succeeded;
    assert!(successes > 0, "{}: nothing succeeded", scheme.name());
}

/// The declarative path must agree with the imperative one: a scenario
/// described through `ScenarioBuilder` — same topology seed, same trace
/// seed, same router seed — reproduces the simulator's per-payment
/// outcomes exactly, and its wire telemetry conserves (every frame sent
/// was received).
fn assert_scenario_parity(scheme: SchemeKind, nodes: usize, txns: usize, seed: u64) {
    let mut sim_net = testbed_topology(nodes, 1000, 1500, seed);
    let trace: Vec<Payment> = generate_trace(sim_net.graph(), &TraceConfig::ripple(txns, seed + 1));
    let amounts: Vec<Amount> = trace.iter().map(|p| p.amount).collect();
    let threshold = threshold_for_mice_fraction(&amounts, 0.9);
    let (mut sim_router, _) = router_pair(scheme, threshold, seed + 2);
    let sim_outcomes: Vec<bool> = trace
        .iter()
        .map(|p| {
            sim_router
                .route(&mut sim_net, p, p.classify(threshold))
                .is_success()
        })
        .collect();

    let report = ScenarioBuilder::new(
        format!("parity-{}", scheme.name()),
        TopologySpec::Testbed {
            n: nodes,
            lo: 1000,
            hi: 1500,
            seed,
        },
    )
    .workload(WorkloadSpec::Ripple {
        txns,
        seed: seed + 1,
    })
    .scheme(scheme)
    .seed(seed + 2)
    .expect(Invariant::FundsConserved)
    .expect(Invariant::MessagesConserved)
    .build()
    .run()
    .expect("scenario run");

    assert_eq!(
        report.outcomes,
        sim_outcomes,
        "{}: scenario outcomes diverged from the simulator",
        scheme.name()
    );
    assert!(
        report.all_invariants_hold(),
        "{}: {:?}",
        scheme.name(),
        report.failed_invariants()
    );
    assert!(report.succeeded > 0, "{}: nothing succeeded", scheme.name());
}

#[test]
fn scenario_agrees_with_simulator_for_all_schemes() {
    for scheme in SchemeKind::ALL {
        assert_scenario_parity(scheme, 14, 50, 401);
    }
}

#[test]
fn shortest_path_agrees_across_backends() {
    for seed in [101, 201, 301] {
        assert_parity(SchemeKind::ShortestPath, 14, 50, seed);
    }
}

#[test]
fn spider_agrees_across_backends() {
    for seed in [103, 203, 303] {
        assert_parity(SchemeKind::Spider, 14, 50, seed);
    }
}

#[test]
fn flash_agrees_across_backends() {
    for seed in [105, 205, 305] {
        assert_parity(SchemeKind::Flash, 14, 50, seed);
    }
}

#[test]
fn speedymurmurs_agrees_across_backends() {
    for seed in [107, 207, 307] {
        assert_parity(SchemeKind::SpeedyMurmurs, 14, 50, seed);
    }
}

#[test]
fn silentwhispers_agrees_across_backends() {
    for seed in [109, 209, 309] {
        assert_parity(SchemeKind::SilentWhispers, 14, 50, seed);
    }
}
