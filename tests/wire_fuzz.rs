//! Adversarial-input tests for the prototype wire codec: arbitrary
//! bytes must never panic, and every decoded message re-encodes to the
//! same bytes (canonical form).

use bytes::Bytes;
use flash_offchain::proto::Message;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Garbage in → clean error or valid message, never a panic.
    #[test]
    fn decode_never_panics(raw in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = Message::decode(Bytes::from(raw));
    }

    /// Decode ∘ encode is the identity on whatever decodes successfully.
    #[test]
    fn decode_encode_canonical(raw in proptest::collection::vec(any::<u8>(), 0..256)) {
        if let Ok(msg) = Message::decode(Bytes::from(raw.clone())) {
            let reencoded = msg.encode();
            // Strip the length prefix; the payload must match the input
            // exactly (the codec has no redundant encodings).
            prop_assert_eq!(&reencoded[4..], &raw[..]);
            // And a second decode yields the same message.
            let again = Message::decode(reencoded.slice(4..)).unwrap();
            prop_assert_eq!(again, msg);
        }
    }
}
