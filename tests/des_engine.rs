//! Integration tests of the discrete-event engine: all five schemes on
//! the DES backend, conservation and atomicity under concurrent
//! in-flight payments, determinism, and parity with the instantaneous
//! simulator at zero latency.

use flash_offchain::core::classify::threshold_for_mice_fraction;
use flash_offchain::experiments::harness::{
    run_scheme, run_scheme_des, DesLoad, SimScheme, DEFAULT_MICE_FRACTION,
};
use flash_offchain::sim::des::{
    ChurnRate, DesConfig, DesEngine, DesNetwork, LatencyModel, ServiceModel, SimTime,
};
use flash_offchain::sim::Network;
use flash_offchain::types::{Amount, Payment};
use flash_offchain::workload::trace::{generate_trace, TraceConfig};
use flash_offchain::workload::{arrivals, testbed_topology};
use proptest::prelude::*;

const SCHEMES: [SimScheme; 5] = SimScheme::ALL;

fn small_net(seed: u64) -> Network {
    testbed_topology(40, 1000, 1500, seed)
}

fn trace_for(net: &Network, n: usize, seed: u64) -> Vec<Payment> {
    generate_trace(net.graph(), &TraceConfig::ripple(n, seed))
}

/// Drives one scheme on the DES engine with per-event conservation
/// checks enabled (the engine asserts balances + escrow + settled-out
/// funds equal the initial total, and service-backlog conservation,
/// after *every* applied event).
fn run_checked(
    net: &Network,
    scheme: SimScheme,
    workload: &[(SimTime, Payment)],
    threshold: Amount,
    latency: LatencyModel,
    service: ServiceModel,
    seed: u64,
) -> (flash_offchain::sim::DesReport, DesNetwork) {
    let mut router = scheme.router_on::<DesNetwork>(threshold, seed);
    let mut engine = DesEngine::new(
        net.clone(),
        DesConfig {
            latency,
            service,
            check_conservation: true,
            ..DesConfig::default()
        },
    );
    let report = engine.run(router.as_mut(), workload, threshold);
    (report, engine.into_network())
}

#[test]
fn all_five_schemes_run_on_the_des_engine() {
    let net = small_net(1);
    let trace = trace_for(&net, 80, 2);
    for scheme in SCHEMES {
        let report = run_scheme_des(
            &net,
            scheme,
            &trace,
            DEFAULT_MICE_FRACTION,
            3,
            DesLoad {
                rate_per_sec: 100.0,
                latency: LatencyModel::constant_ms(20),
                service: ServiceModel::instant(),
                churn: ChurnRate::zero(),
            },
        );
        assert_eq!(
            report.metrics.total().attempted,
            80,
            "{} must attempt every payment",
            scheme.label()
        );
        assert!(
            report.metrics.total().succeeded > 0,
            "{} succeeded nothing",
            scheme.label()
        );
        // Completion latency is recorded for every success.
        assert_eq!(
            report.metrics.latency.count(),
            report.metrics.total().succeeded,
            "{}",
            scheme.label()
        );
        assert!(report.makespan > SimTime::ZERO);
    }
}

#[test]
fn overlapping_payments_show_nonzero_peak_in_flight_and_conserve_funds() {
    let net = small_net(5);
    let trace = trace_for(&net, 120, 6);
    let amounts: Vec<Amount> = trace.iter().map(|p| p.amount).collect();
    let threshold = threshold_for_mice_fraction(&amounts, DEFAULT_MICE_FRACTION);
    // 500 pps against ~hundreds-of-ms completion latency: heavy overlap.
    let workload = arrivals::poisson_workload(&trace, 500.0, 7);
    for scheme in SCHEMES {
        let (report, des) = run_checked(
            &net,
            scheme,
            &workload,
            threshold,
            LatencyModel::constant_ms(25),
            ServiceModel::constant_ms(2),
            8,
        );
        assert!(
            report.peak_in_flight > 1,
            "{}: expected overlapping payments, peak {}",
            scheme.label(),
            report.peak_in_flight
        );
        assert_eq!(
            des.conserved_total_micros(),
            des.initial_total_micros(),
            "{} leaked funds",
            scheme.label()
        );
        assert_eq!(des.in_flight(), 0, "{} left sessions open", scheme.label());
        assert_eq!(des.escrow_micros(), 0, "{} left escrow", scheme.label());
    }
}

#[test]
fn same_seed_produces_identical_reports() {
    let net = small_net(9);
    let trace = trace_for(&net, 100, 10);
    for scheme in [SimScheme::Flash, SimScheme::Spider, SimScheme::ShortestPath] {
        let run = || {
            run_scheme_des(
                &net,
                scheme,
                &trace,
                DEFAULT_MICE_FRACTION,
                11,
                DesLoad {
                    rate_per_sec: 300.0,
                    latency: LatencyModel::UniformJitter {
                        base: SimTime::from_millis(10),
                        jitter_us: 5_000,
                        seed: 13,
                    },
                    service: ServiceModel::constant_ms(3),
                    churn: ChurnRate::zero(),
                },
            )
        };
        let a = run();
        let b = run();
        // Identical metrics, event count, latency histogram — the full
        // report, bit for bit.
        assert_eq!(a, b, "{} is nondeterministic", scheme.label());
        assert!(a.events > 0);
    }
}

#[test]
fn different_seeds_change_the_arrival_pattern() {
    let net = small_net(14);
    let trace = trace_for(&net, 100, 15);
    let at = |seed| {
        run_scheme_des(
            &net,
            SimScheme::ShortestPath,
            &trace,
            DEFAULT_MICE_FRACTION,
            seed,
            DesLoad {
                rate_per_sec: 400.0,
                latency: LatencyModel::constant_ms(25),
                service: ServiceModel::instant(),
                churn: ChurnRate::zero(),
            },
        )
    };
    // The workload seed feeds the Poisson process; different seeds give
    // different interleavings (and usually different makespans).
    assert_ne!(at(1).makespan, at(2).makespan);
}

#[test]
fn zero_latency_des_matches_the_instantaneous_simulator() {
    let net = small_net(21);
    let trace = trace_for(&net, 120, 22);
    for scheme in SCHEMES {
        let instant = run_scheme(&net, scheme, &trace, DEFAULT_MICE_FRACTION, 23);
        // Arrival spacing is irrelevant at zero latency: every payment
        // fully settles before the next one is admitted.
        let des = run_scheme_des(
            &net,
            scheme,
            &trace,
            DEFAULT_MICE_FRACTION,
            23,
            DesLoad {
                rate_per_sec: 1000.0,
                latency: LatencyModel::instant(),
                service: ServiceModel::instant(),
                churn: ChurnRate::zero(),
            },
        );
        assert_eq!(
            instant.total(),
            des.metrics.total(),
            "{} diverged from the instantaneous backend",
            scheme.label()
        );
        assert_eq!(instant.probe_messages, des.metrics.probe_messages);
        assert_eq!(instant.commit_messages, des.metrics.commit_messages);
        assert_eq!(instant.fees_paid, des.metrics.fees_paid);
        assert_eq!(des.peak_in_flight, 1, "{}", scheme.label());
    }
}

#[test]
fn no_session_commits_partially() {
    // Atomicity across concurrency: for every scheme, success volume
    // counts only fully delivered payments, and after settlement the
    // net flow out of each sender equals the volume it delivered (no
    // partial escrow left anywhere — checked via total conservation and
    // zero residual escrow at every boundary by run_checked).
    let net = small_net(30);
    let trace = trace_for(&net, 100, 31);
    let amounts: Vec<Amount> = trace.iter().map(|p| p.amount).collect();
    let threshold = threshold_for_mice_fraction(&amounts, DEFAULT_MICE_FRACTION);
    let workload = arrivals::poisson_workload(&trace, 400.0, 32);
    for scheme in SCHEMES {
        let (report, des) = run_checked(
            &net,
            scheme,
            &workload,
            threshold,
            LatencyModel::constant_ms(25),
            ServiceModel::constant_ms(2),
            33,
        );
        let t = report.metrics.total();
        assert!(t.succeeded <= t.attempted);
        assert!(t.success_volume <= t.attempted_volume);
        assert_eq!(des.escrow_micros(), 0);
        assert_eq!(des.conserved_total_micros(), des.initial_total_micros());
    }
}

#[test]
fn zero_service_time_is_bit_identical_to_the_queue_free_engine() {
    // The differential that pins the refactor: `ServiceModel::Instant`
    // skips the queue machinery entirely (the engine exactly as it was
    // before service queues existed), while `Constant(ZERO)` runs the
    // machinery with zero-duration service. For every scheme the two
    // must produce the same `DesReport` bit for bit — clocks, event
    // counts, histograms, everything.
    let net = small_net(41);
    let trace = trace_for(&net, 90, 42);
    for scheme in SCHEMES {
        let amounts: Vec<Amount> = trace.iter().map(|p| p.amount).collect();
        let threshold = threshold_for_mice_fraction(&amounts, DEFAULT_MICE_FRACTION);
        let workload = arrivals::poisson_workload(&trace, 300.0, 43);
        let run = |service: ServiceModel| {
            run_checked(
                &net,
                scheme,
                &workload,
                threshold,
                LatencyModel::constant_ms(25),
                service,
                44,
            )
            .0
        };
        let skipped = run(ServiceModel::Instant);
        let zeroed = run(ServiceModel::Constant(SimTime::ZERO));
        assert_eq!(
            skipped,
            zeroed,
            "{}: zero-service queue machinery must be transparent",
            scheme.label()
        );
        assert_eq!(skipped.peak_backlog, 0, "{}", scheme.label());
        assert_eq!(skipped.metrics.queue_delay.count(), 0, "{}", scheme.label());
    }
}

#[test]
fn nonzero_service_queues_under_load_for_every_scheme() {
    // Under heavy offered load with a nonzero service time, every
    // scheme must actually exercise the queues: some message waits,
    // some node shows a backlog > 1, and utilization is nonzero —
    // all while per-event funds + backlog conservation (run_checked)
    // holds.
    let net = small_net(51);
    let trace = trace_for(&net, 100, 52);
    let amounts: Vec<Amount> = trace.iter().map(|p| p.amount).collect();
    let threshold = threshold_for_mice_fraction(&amounts, DEFAULT_MICE_FRACTION);
    let workload = arrivals::poisson_workload(&trace, 800.0, 53);
    for scheme in SCHEMES {
        let (report, des) = run_checked(
            &net,
            scheme,
            &workload,
            threshold,
            LatencyModel::constant_ms(10),
            ServiceModel::constant_ms(5),
            54,
        );
        assert!(
            report.peak_backlog > 1,
            "{}: no node ever queued (peak {})",
            scheme.label(),
            report.peak_backlog
        );
        assert!(
            report.metrics.queue_delay.max_us() > 0,
            "{}: no message ever waited",
            scheme.label()
        );
        assert!(
            report.max_node_utilization > 0.0,
            "{}: zero utilization",
            scheme.label()
        );
        assert_eq!(des.conserved_total_micros(), des.initial_total_micros());
    }
}

/// A 6-node line with ample balance: every 1-unit payment succeeds at
/// any offered load, so latency comparisons across loads compare the
/// same payment population.
fn line_network() -> Network {
    use flash_offchain::graph::DiGraph;
    use flash_offchain::types::NodeId;
    let mut g = DiGraph::new(6);
    for i in 0..5u32 {
        g.add_channel(NodeId(i), NodeId(i + 1)).unwrap();
    }
    Network::uniform(g, Amount::from_units(100_000))
}

fn line_trace(count: u64) -> Vec<Payment> {
    use flash_offchain::types::{NodeId, TxId};
    (0..count)
        .map(|i| Payment::new(TxId(i), NodeId(0), NodeId(5), Amount::from_units(1)))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// With N overlapping in-flight payments at a random offered load
    /// and a random (possibly zero) per-node service time, total funds
    /// (balances + escrow) and the service backlog are conserved at
    /// every event boundary (asserted inside the engine per event) and
    /// no escrow or open session survives the drain.
    #[test]
    fn funds_and_backlog_conserved_at_every_event_boundary_under_concurrency(
        seed in 0u64..200,
        rate_idx in 0usize..3,
        service_ms in 0u64..6,
        scheme_idx in 0usize..SCHEMES.len(),
    ) {
        let rate = [100.0f64, 400.0, 1600.0][rate_idx];
        let scheme = SCHEMES[scheme_idx];
        let net = small_net(seed);
        let trace = trace_for(&net, 60, seed + 1);
        let amounts: Vec<Amount> = trace.iter().map(|p| p.amount).collect();
        let threshold = threshold_for_mice_fraction(&amounts, DEFAULT_MICE_FRACTION);
        let workload = arrivals::poisson_workload(&trace, rate, seed + 2);
        let (report, des) = run_checked(
            &net,
            scheme,
            &workload,
            threshold,
            LatencyModel::UniformJitter {
                base: SimTime::from_millis(5),
                jitter_us: 20_000,
                seed: seed + 3,
            },
            ServiceModel::constant_ms(service_ms),
            seed + 4,
        );
        prop_assert_eq!(des.conserved_total_micros(), des.initial_total_micros());
        prop_assert_eq!(des.escrow_micros(), 0u128);
        prop_assert_eq!(des.in_flight(), 0);
        prop_assert_eq!(report.metrics.total().attempted, 60);
        des.service_queues().assert_backlog_conserved();
    }

    /// The queueing monotonicity law: on a fixed topology, trace, and
    /// seed, with a nonzero service time, mean completion latency is
    /// non-decreasing in offered load. (Same Poisson seed at a higher
    /// rate compresses the identical arrival sequence, so each payment
    /// can only find nodes busier, never idler.) This is the property
    /// whose violation — a flat latency curve — went unnoticed before
    /// service queues existed.
    ///
    /// One service time of slack on the mean: the calendar's first-fit
    /// placement can serve an out-of-processing-order arrival up to
    /// one service quantum differently than true arrival-order FIFO
    /// (a compressed schedule may close a gap an uncompressed one
    /// left open), so strict pointwise monotonicity is not a theorem
    /// — but any flat-curve regression is orders of magnitude larger
    /// than one quantum.
    #[test]
    fn mean_latency_is_monotone_in_offered_load(
        service_ms in 1u64..8,
        base_rate_centi in 500u64..5_000, // 5..50 pps
        factor_idx in 0usize..3,
        seed in 0u64..100,
    ) {
        let factor = [2.0f64, 4.0, 8.0][factor_idx];
        let base_rate = base_rate_centi as f64 / 100.0;
        let net = line_network();
        let trace = line_trace(40);
        let run = |rate: f64| {
            let workload = arrivals::poisson_workload(&trace, rate, seed);
            let (report, _) = run_checked(
                &net,
                SimScheme::ShortestPath,
                &workload,
                Amount::MAX,
                LatencyModel::constant_ms(10),
                ServiceModel::constant_ms(service_ms),
                seed + 1,
            );
            prop_assert_eq!(report.metrics.total().succeeded, 40);
            Ok(report.metrics.latency.mean_us())
        };
        let light = run(base_rate)?;
        let heavy = run(base_rate * factor)?;
        let slack = (service_ms * 1_000) as f64;
        prop_assert!(
            heavy + slack >= light,
            "mean latency decreased with load: {} pps -> {}us, {} pps -> {}us",
            base_rate, light, base_rate * factor, heavy
        );
    }

    /// The churn differential: a zero [`ChurnRate`] through the full
    /// harness (which generates and installs the — empty — schedule)
    /// must produce a bit-identical `DesReport` to an engine
    /// constructed with no churn at all, for every scheme. This pins
    /// the tentpole's exactness contract end to end: supporting churn
    /// costs nothing when there is none — no RNG draw, no event, no
    /// message tick, no counter.
    #[test]
    fn zero_churn_is_bit_identical_to_the_churn_free_engine(
        seed in 0u64..100,
        scheme_idx in 0usize..SCHEMES.len(),
    ) {
        let scheme = SCHEMES[scheme_idx];
        let net = small_net(seed);
        let trace = trace_for(&net, 60, seed + 1);
        let amounts: Vec<Amount> = trace.iter().map(|p| p.amount).collect();
        let threshold = threshold_for_mice_fraction(&amounts, DEFAULT_MICE_FRACTION);
        let with_churn_support = run_scheme_des(
            &net,
            scheme,
            &trace,
            DEFAULT_MICE_FRACTION,
            seed + 2,
            DesLoad {
                rate_per_sec: 300.0,
                latency: LatencyModel::constant_ms(20),
                service: ServiceModel::constant_ms(3),
                churn: ChurnRate::zero(),
            },
        );
        // The same run through a churn-free engine (the default config
        // installs no schedule), seeded identically to the harness.
        let workload = arrivals::poisson_workload(&trace, 300.0, seed + 2);
        let mut router = scheme.router_on::<DesNetwork>(threshold, seed + 2);
        let mut engine = DesEngine::new(
            net.clone(),
            DesConfig {
                latency: LatencyModel::constant_ms(20),
                service: ServiceModel::constant_ms(3),
                ..DesConfig::default()
            },
        );
        let plain = engine.run(router.as_mut(), &workload, threshold);
        prop_assert_eq!(
            &with_churn_support,
            &plain,
            "{}: zero churn must be invisible, bit for bit",
            scheme.label()
        );
        prop_assert_eq!(with_churn_support.closed_channels, 0);
        prop_assert_eq!(with_churn_support.stale_probe_failures, 0);
        prop_assert_eq!(with_churn_support.reprobes_triggered, 0);
    }

    /// Conservation under mid-run topology churn: with channels
    /// closing (and reopening), nodes crashing, and balances draining
    /// while payments are in flight, total funds (balances + escrow +
    /// drained-out) are conserved at every event boundary (asserted
    /// inside the engine per event via `check_conservation`), every
    /// escrow is released, and no session survives the drain.
    #[test]
    fn funds_conserved_under_mid_run_topology_churn(
        seed in 0u64..150,
        scheme_idx in 0usize..SCHEMES.len(),
        closes_per_sec in 8.0f64..256.0,
        downtime_ms in 0u64..2_000,
    ) {
        let scheme = SCHEMES[scheme_idx];
        let net = small_net(seed);
        let trace = trace_for(&net, 60, seed + 1);
        let amounts: Vec<Amount> = trace.iter().map(|p| p.amount).collect();
        let threshold = threshold_for_mice_fraction(&amounts, DEFAULT_MICE_FRACTION);
        let workload = arrivals::poisson_workload(&trace, 400.0, seed + 2);
        let horizon = workload.last().map(|&(t, _)| t).unwrap_or(SimTime::ZERO);
        let rate = flash_offchain::sim::des::ChurnRate {
            closes_per_sec,
            node_downs_per_sec: closes_per_sec / 8.0,
            drains_per_sec: closes_per_sec / 8.0,
            downtime: SimTime::from_millis(downtime_ms),
        };
        let schedule = flash_offchain::workload::churn_schedule(net.graph(), horizon, &rate, seed + 3);
        let mut router = scheme.router_on::<DesNetwork>(threshold, seed + 2);
        let mut engine = DesEngine::new(
            net.clone(),
            DesConfig {
                latency: LatencyModel::constant_ms(15),
                service: ServiceModel::constant_ms(2),
                churn: schedule,
                check_conservation: true,
                ..DesConfig::default()
            },
        );
        let report = engine.run(router.as_mut(), &workload, threshold);
        let des = engine.into_network();
        prop_assert_eq!(des.conserved_total_micros(), des.initial_total_micros());
        prop_assert_eq!(des.escrow_micros(), 0u128);
        prop_assert_eq!(des.in_flight(), 0);
        prop_assert_eq!(report.metrics.total().attempted, 60);
    }
}
