//! Cross-scheme property tests: every router, on arbitrary topologies
//! and workloads, must (a) conserve funds, (b) be all-or-nothing per
//! payment, (c) never read balances except through metered probes
//! (checked indirectly: static schemes must report zero probes), and
//! (d) deliver exactly the demanded amount on success.

use flash_offchain::core::{
    FlashConfig, FlashRouter, ShortestPathRouter, SilentWhispersRouter, SpeedyMurmursRouter,
    SpiderRouter,
};
use flash_offchain::graph::generators;
use flash_offchain::sim::{Network, RouteOutcome, Router};
use flash_offchain::types::{Amount, NodeId, Payment, PaymentClass, TxId};
use proptest::prelude::*;

fn all_routers(seed: u64) -> Vec<Box<dyn Router>> {
    vec![
        Box::new(FlashRouter::new(FlashConfig {
            elephant_threshold: Amount::from_units(25),
            seed,
            ..Default::default()
        })),
        Box::new(SpiderRouter::new()),
        Box::new(SpeedyMurmursRouter::new()),
        Box::new(SilentWhispersRouter::new()),
        Box::new(ShortestPathRouter::new()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn every_router_conserves_and_is_atomic(
        seed in 0u64..300,
        amounts in proptest::collection::vec(1u64..80, 4..16),
    ) {
        let g = generators::watts_strogatz(14, 4, 0.3, seed);
        for mut router in all_routers(seed) {
            let mut net = Network::uniform(g.clone(), Amount::from_units(30));
            let before = net.total_funds();
            for (i, amt) in amounts.iter().enumerate() {
                let s = NodeId((i as u32 * 3 + 1) % 14);
                let t = NodeId((i as u32 * 5 + 8) % 14);
                if s == t { continue; }
                let p = Payment::new(TxId(i as u64), s, t, Amount::from_units(*amt));
                let class = p.classify(Amount::from_units(25));
                let out = router.route(&mut net, &p, class);
                prop_assert_eq!(
                    net.total_funds(), before,
                    "{} violated conservation on payment {}", router.name(), i
                );
                if let RouteOutcome::Success { volume, .. } = out {
                    prop_assert_eq!(volume, p.amount, "{} partial delivery", router.name());
                }
            }
        }
    }

    #[test]
    fn static_schemes_never_probe(seed in 0u64..200) {
        let g = generators::watts_strogatz(12, 4, 0.3, seed);
        for mut router in [
            Box::new(SpeedyMurmursRouter::new()) as Box<dyn Router>,
            Box::new(SilentWhispersRouter::new()),
            Box::new(ShortestPathRouter::new()),
        ] {
            let mut net = Network::uniform(g.clone(), Amount::from_units(30));
            for i in 0..10u64 {
                let p = Payment::new(
                    TxId(i),
                    NodeId((i % 12) as u32),
                    NodeId(((i * 5 + 3) % 12) as u32),
                    Amount::from_units(1 + i),
                );
                if p.sender == p.receiver { continue; }
                router.route(&mut net, &p, PaymentClass::Mice);
            }
            prop_assert_eq!(
                net.metrics().probe_messages, 0,
                "{} is a static scheme and must not probe", router.name()
            );
        }
    }

    /// Metrics bookkeeping: attempts = successes + failures, and the
    /// success volume equals the sum of delivered amounts.
    #[test]
    fn metrics_are_consistent(
        seed in 0u64..200,
        amounts in proptest::collection::vec(1u64..60, 4..12),
    ) {
        let g = generators::watts_strogatz(12, 4, 0.3, seed);
        let mut net = Network::uniform(g, Amount::from_units(25));
        let mut router = FlashRouter::new(FlashConfig {
            elephant_threshold: Amount::from_units(20),
            seed,
            ..Default::default()
        });
        let mut successes = 0u64;
        let mut volume = Amount::ZERO;
        let mut attempts = 0u64;
        for (i, amt) in amounts.iter().enumerate() {
            let s = NodeId((i as u32 * 7 + 2) % 12);
            let t = NodeId((i as u32 * 11 + 5) % 12);
            if s == t { continue; }
            attempts += 1;
            let p = Payment::new(TxId(i as u64), s, t, Amount::from_units(*amt));
            let class = p.classify(Amount::from_units(20));
            if router.route(&mut net, &p, class).is_success() {
                successes += 1;
                volume = volume.saturating_add(p.amount);
            }
        }
        let m = net.metrics();
        prop_assert_eq!(m.total().attempted, attempts);
        prop_assert_eq!(m.total().succeeded, successes);
        prop_assert_eq!(m.success_volume(), volume);
    }
}
