//! Algorithm 1 vs. the classic Edmonds–Karp oracle: on random
//! topologies, Flash's k-bounded lazily-probing max-flow must (a) never
//! exceed the true max-flow of the probed capacities, (b) reach it
//! exactly when k is unbounded, and (c) be monotone in k.

use flash_offchain::core::flash::elephant::{find_paths, oracle_max_flow};
use flash_offchain::graph::generators;
use flash_offchain::sim::Network;
use flash_offchain::types::{Amount, NodeId};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn bounded_flow_never_exceeds_oracle(
        seed in 0u64..200,
        k in 1usize..6,
        s in 0u32..12,
        t in 0u32..12,
    ) {
        prop_assume!(s != t);
        let g = generators::watts_strogatz(12, 4, 0.4, seed);
        let mut net = Network::uniform(g, Amount::from_units(5 + seed % 20));
        let plan = find_paths(
            &mut net, NodeId(s), NodeId(t), Amount::from_units(1_000_000), k,
        );
        let oracle = oracle_max_flow(net.graph(), &plan, NodeId(s), NodeId(t));
        prop_assert!(plan.max_flow <= oracle,
            "k-bounded flow {} exceeds oracle {oracle}", plan.max_flow);
    }

    #[test]
    fn unbounded_k_matches_oracle(
        seed in 0u64..200,
        s in 0u32..12,
        t in 0u32..12,
    ) {
        prop_assume!(s != t);
        let g = generators::watts_strogatz(12, 4, 0.4, seed);
        let mut net = Network::uniform(g, Amount::from_units(5 + seed % 20));
        let plan = find_paths(
            &mut net, NodeId(s), NodeId(t), Amount::from_units(1_000_000), 10_000,
        );
        let oracle = oracle_max_flow(net.graph(), &plan, NodeId(s), NodeId(t));
        prop_assert_eq!(plan.max_flow, oracle);
    }

    #[test]
    fn flow_is_monotone_in_k(
        seed in 0u64..100,
        s in 0u32..12,
        t in 0u32..12,
    ) {
        prop_assume!(s != t);
        let g = generators::watts_strogatz(12, 4, 0.4, seed);
        let mut prev = Amount::ZERO;
        for k in [1usize, 2, 4, 8, 16] {
            let mut net = Network::uniform(g.clone(), Amount::from_units(9));
            let plan = find_paths(
                &mut net, NodeId(s), NodeId(t), Amount::from_units(1_000_000), k,
            );
            prop_assert!(plan.max_flow >= prev,
                "flow decreased from {prev} to {} at k={k}", plan.max_flow);
            prev = plan.max_flow;
        }
    }

    /// The demand-aware early exit stops probing once satisfied: the
    /// probe count with a small demand never exceeds the exhaustive
    /// probe count.
    #[test]
    fn early_exit_probes_no_more(
        seed in 0u64..100,
        s in 0u32..12,
        t in 0u32..12,
    ) {
        prop_assume!(s != t);
        let g = generators::watts_strogatz(12, 4, 0.4, seed);
        let mut net_small = Network::uniform(g.clone(), Amount::from_units(9));
        let small = find_paths(&mut net_small, NodeId(s), NodeId(t), Amount::from_units(1), 30);
        let mut net_big = Network::uniform(g, Amount::from_units(9));
        let big = find_paths(&mut net_big, NodeId(s), NodeId(t), Amount::from_units(1_000_000), 30);
        prop_assert!(small.probes <= big.probes);
        if !small.paths.is_empty() {
            prop_assert_eq!(small.paths.len(), 1, "demand 1 needs a single path");
        }
    }
}
