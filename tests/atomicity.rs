//! Cross-crate atomicity and fault-injection tests: no routing scheme,
//! under any injected probe faults, may corrupt channel balances or
//! partially apply a payment.

use flash_offchain::core::{FlashConfig, FlashRouter, SpiderRouter};
use flash_offchain::graph::generators;
use flash_offchain::sim::{FaultConfig, Network, Router};
use flash_offchain::types::{Amount, NodeId, Payment, PaymentClass, TxId};
use proptest::prelude::*;

fn build_net(seed: u64) -> Network {
    let g = generators::watts_strogatz(16, 4, 0.3, seed);
    Network::uniform(g, Amount::from_units(20))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Under arbitrary probe drop/noise faults, Flash conserves funds
    /// and every payment is all-or-nothing.
    #[test]
    fn flash_atomic_under_probe_faults(
        drop_prob in 0.0f64..0.9,
        noise_ppm in 0u64..300_000,
        seed in 0u64..500,
        amounts in proptest::collection::vec(1u64..120, 5..25),
    ) {
        let mut net = build_net(seed % 7);
        net.set_faults(FaultConfig {
            probe_drop_prob: drop_prob,
            probe_noise_ppm: noise_ppm,
            seed,
        });
        let before = net.total_funds();
        let mut router = FlashRouter::new(FlashConfig {
            elephant_threshold: Amount::from_units(30),
            seed,
            ..Default::default()
        });
        for (i, amt) in amounts.iter().enumerate() {
            let s = NodeId((i as u32 * 5 + 1) % 16);
            let t = NodeId((i as u32 * 11 + 7) % 16);
            if s == t { continue; }
            let p = Payment::new(TxId(i as u64), s, t, Amount::from_units(*amt));
            let class = p.classify(Amount::from_units(30));
            let outcome = router.route(&mut net, &p, class);
            // Conservation after every payment, success or failure.
            prop_assert_eq!(net.total_funds(), before);
            // Metrics consistent with outcomes.
            if outcome.is_success() {
                prop_assert_eq!(outcome.volume(), p.amount);
            }
        }
        let m = net.metrics();
        prop_assert_eq!(
            m.total().attempted as usize,
            amounts.iter().enumerate()
                .filter(|(i, _)| {
                    let s = (*i as u32 * 5 + 1) % 16;
                    let t = (*i as u32 * 11 + 7) % 16;
                    s != t
                })
                .count()
        );
    }

    /// Spider under faulted probes: stale capacity estimates may fail
    /// payments, but never corrupt state.
    #[test]
    fn spider_atomic_under_probe_noise(
        noise_ppm in 0u64..500_000,
        seed in 0u64..500,
    ) {
        let mut net = build_net(3);
        net.set_faults(FaultConfig {
            probe_drop_prob: 0.0,
            probe_noise_ppm: noise_ppm,
            seed,
        });
        let before = net.total_funds();
        let mut router = SpiderRouter::new();
        for i in 0..20u64 {
            let s = NodeId((i as u32 * 3 + 2) % 16);
            let t = NodeId((i as u32 * 7 + 9) % 16);
            if s == t { continue; }
            let p = Payment::new(TxId(i), s, t, Amount::from_units(15 + i % 30));
            router.route(&mut net, &p, PaymentClass::Mice);
            prop_assert_eq!(net.total_funds(), before);
        }
    }
}

/// Deterministic regression: noisy probes overstating capacity force a
/// failed send inside the mice loop, which must leave the escrow clean.
#[test]
fn overstated_probe_fails_cleanly() {
    let mut net = build_net(5);
    net.set_faults(FaultConfig {
        probe_drop_prob: 0.0,
        probe_noise_ppm: 900_000, // wildly wrong reports
        seed: 99,
    });
    let before = net.total_funds();
    let mut router = FlashRouter::new(FlashConfig {
        elephant_threshold: Amount::MAX,
        ..Default::default()
    });
    for i in 0..30u64 {
        let p = Payment::new(
            TxId(i),
            NodeId((i % 16) as u32),
            NodeId(((i + 5) % 16) as u32),
            Amount::from_units(60), // beyond single-path capacity 20
        );
        router.route(&mut net, &p, PaymentClass::Mice);
        assert_eq!(net.total_funds(), before, "payment {i} leaked funds");
    }
}
