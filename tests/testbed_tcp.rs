//! Integration tests of the TCP testbed prototype: conservation over
//! real sockets, cross-validation against the simulator, and the
//! two-phase commit protocol under concurrent sub-payments.

use flash_offchain::core::classify::threshold_for_mice_fraction;
use flash_offchain::proto::{Cluster, SchemeKind, TestbedRunner};
use flash_offchain::types::Amount;
use flash_offchain::workload::testbed_topology;
use flash_offchain::workload::trace::{generate_trace, TraceConfig};

fn launch(nodes: usize, seed: u64) -> (Cluster, Vec<flash_offchain::types::Payment>) {
    let topo = testbed_topology(nodes, 1000, 1500, seed);
    let graph = topo.graph().clone();
    let balances: Vec<Amount> = graph.edges().map(|(e, _, _)| topo.balance(e)).collect();
    let cluster = Cluster::launch(graph, &balances).expect("cluster launch");
    let trace = generate_trace(cluster.graph(), &TraceConfig::ripple(80, seed + 1));
    (cluster, trace)
}

#[test]
fn testbed_conserves_funds_across_full_trace() {
    for scheme in [
        SchemeKind::Flash,
        SchemeKind::Spider,
        SchemeKind::ShortestPath,
    ] {
        let (cluster, trace) = launch(16, 11);
        let before = cluster.total_funds();
        let amounts: Vec<Amount> = trace.iter().map(|p| p.amount).collect();
        let threshold = threshold_for_mice_fraction(&amounts, 0.9);
        let mut runner = TestbedRunner::new(cluster, scheme, threshold, 3);
        let report = runner.run_trace(&trace);
        assert!(report.attempted == trace.len() as u64);
        assert_eq!(
            runner.cluster().total_funds(),
            before,
            "{} leaked funds over TCP",
            scheme.name()
        );
    }
}

#[test]
fn testbed_and_simulator_agree_on_shortest_path() {
    // SP is deterministic and probe-free: the TCP prototype and the
    // in-memory simulator must agree payment-by-payment.
    let (cluster, trace) = launch(16, 17);
    let graph = cluster.graph().clone();
    let topo = testbed_topology(16, 1000, 1500, 17);
    let mut sim_net = topo; // identical initial balances (same seed)
    let mut sim_router = flash_offchain::core::ShortestPathRouter::new();

    let mut runner = TestbedRunner::new(cluster, SchemeKind::ShortestPath, Amount::MAX, 5);
    for p in &trace {
        let tcp_ok = runner.route_one(p, flash_offchain::types::PaymentClass::Mice);
        let sim_out = flash_offchain::sim::Router::route(
            &mut sim_router,
            &mut sim_net,
            p,
            flash_offchain::types::PaymentClass::Mice,
        );
        assert_eq!(
            tcp_ok,
            sim_out.is_success(),
            "divergence on payment {:?} over graph with {} nodes",
            p,
            graph.node_count()
        );
    }
}

#[test]
fn flash_tcp_beats_sp_on_volume() {
    let (cluster, trace) = launch(20, 23);
    let amounts: Vec<Amount> = trace.iter().map(|p| p.amount).collect();
    let threshold = threshold_for_mice_fraction(&amounts, 0.9);
    let mut flash = TestbedRunner::new(cluster, SchemeKind::Flash, threshold, 7);
    let flash_report = flash.run_trace(&trace);

    let (cluster2, _) = launch(20, 23);
    let mut sp = TestbedRunner::new(cluster2, SchemeKind::ShortestPath, threshold, 7);
    let sp_report = sp.run_trace(&trace);

    assert!(
        flash_report.success_volume >= sp_report.success_volume,
        "Flash volume {} below SP {}",
        flash_report.success_volume,
        sp_report.success_volume
    );
    assert!(
        flash_report.probe_messages > 0,
        "Flash should probe sometimes"
    );
    assert_eq!(sp_report.probe_messages, 0, "SP never probes");
}

#[test]
fn concurrent_subpayments_share_a_channel_safely() {
    // Two sub-payments of one payment race on overlapping paths; the
    // two-phase commit must keep balances exact regardless of order.
    use flash_offchain::graph::{DiGraph, Path};
    use flash_offchain::types::NodeId;
    let n = |i: u32| NodeId(i);
    let mut g = DiGraph::new(3);
    g.add_channel(n(0), n(1)).unwrap();
    g.add_channel(n(1), n(2)).unwrap();
    let balances = vec![Amount::from_units(10); g.edge_count()];
    let cluster = Cluster::launch(g, &balances).unwrap();
    let before = cluster.total_funds();
    let path = Path::new(vec![n(0), n(1), n(2)], Some(cluster.graph())).unwrap();

    // Commit 6 and 5 concurrently on a 10-capacity path: exactly one
    // must win.
    let results: Vec<bool> = std::thread::scope(|s| {
        let c = &cluster;
        let p1 = &path;
        let h1 = s.spawn(move || c.commit_part(1, p1, Amount::from_units(6)));
        let h2 = s.spawn(move || c.commit_part(2, p1, Amount::from_units(5)));
        vec![h1.join().unwrap(), h2.join().unwrap()]
    });
    let wins = results.iter().filter(|&&ok| ok).count();
    assert_eq!(wins, 1, "exactly one racing commit must fit: {results:?}");
    // Reverse the winner and verify full restoration.
    if results[0] {
        cluster.reverse_part(1, &path, Amount::from_units(6));
    } else {
        cluster.reverse_part(2, &path, Amount::from_units(5));
    }
    assert_eq!(cluster.total_funds(), before);
}

#[test]
fn lossy_transport_degrades_but_never_wedges() {
    use flash_offchain::proto::FaultPlan;
    use std::time::Duration;
    let topo = testbed_topology(12, 1000, 1500, 31);
    let graph = topo.graph().clone();
    let balances: Vec<Amount> = graph.edges().map(|(e, _, _)| topo.balance(e)).collect();
    let mut cluster =
        Cluster::launch_with_faults(graph, &balances, FaultPlan::with_drop_prob(0.2, 9))
            .expect("cluster launch");
    cluster.set_timeout(Duration::from_millis(200));
    let trace = generate_trace(cluster.graph(), &TraceConfig::ripple(30, 33));
    let amounts: Vec<Amount> = trace.iter().map(|p| p.amount).collect();
    let threshold = threshold_for_mice_fraction(&amounts, 0.9);
    let mut runner = TestbedRunner::new(cluster, SchemeKind::ShortestPath, threshold, 5);
    let report = runner.run_trace(&trace);
    // The run completes (no deadlock), records every attempt, and under
    // 20% loss some payments time out.
    assert_eq!(report.attempted, 30);
    assert!(
        report.succeeded < 30,
        "20% message loss must fail something"
    );
}
