//! Property tests over the graph substrate on random topologies —
//! invariants the routing layers silently rely on.

use flash_offchain::graph::{bfs, disjoint, generators, yen, DiGraph};
use flash_offchain::types::NodeId;
use proptest::prelude::*;
use std::collections::HashSet;

fn arb_ws() -> impl Strategy<Value = DiGraph> {
    (6usize..20, 0u64..500).prop_map(|(n, seed)| generators::watts_strogatz(n.max(6), 4, 0.3, seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Yen's paths are simple, sorted by hops, pairwise distinct, and
    /// the first equals the BFS shortest path length.
    #[test]
    fn yen_invariants(g in arb_ws(), k in 1usize..8, s in 0u32..20, t in 0u32..20) {
        let n = g.node_count() as u32;
        let (s, t) = (NodeId(s % n), NodeId(t % n));
        prop_assume!(s != t);
        let paths = yen::k_shortest_paths_hops(&g, s, t, k);
        let bfs_path = bfs::shortest_path(&g, s, t);
        prop_assert_eq!(paths.is_empty(), bfs_path.is_none());
        if let Some(bp) = bfs_path {
            prop_assert_eq!(paths[0].hops(), bp.hops());
        }
        let mut seen = HashSet::new();
        for w in paths.windows(2) {
            prop_assert!(w[0].hops() <= w[1].hops());
        }
        for p in &paths {
            prop_assert_eq!(p.source(), s);
            prop_assert_eq!(p.target(), t);
            let nodes: HashSet<_> = p.nodes().iter().collect();
            prop_assert_eq!(nodes.len(), p.nodes().len(), "loop in {:?}", p);
            prop_assert!(seen.insert(p.nodes().to_vec()), "duplicate {:?}", p);
        }
    }

    /// Edge-disjoint paths never share a directed edge and their count
    /// is bounded by the sender's out-degree and receiver's in-degree.
    #[test]
    fn disjoint_invariants(g in arb_ws(), s in 0u32..20, t in 0u32..20) {
        let n = g.node_count() as u32;
        let (s, t) = (NodeId(s % n), NodeId(t % n));
        prop_assume!(s != t);
        let paths = disjoint::edge_disjoint_paths(&g, s, t, 16);
        let mut used = HashSet::new();
        for p in &paths {
            for (u, v) in p.channels() {
                prop_assert!(used.insert((u, v)), "edge reused");
            }
        }
        prop_assert!(paths.len() <= g.out_degree(s));
        prop_assert!(paths.len() <= g.in_neighbors(t).len());
    }

    /// BFS distance is a metric lower bound: every Yen path length ≥
    /// the BFS distance; BFS distances obey the triangle inequality
    /// along any found path.
    #[test]
    fn bfs_distance_consistency(g in arb_ws(), s in 0u32..20) {
        let n = g.node_count() as u32;
        let s = NodeId(s % n);
        let dist = bfs::distances_from(&g, s);
        for t in g.nodes() {
            if t == s { continue; }
            match bfs::shortest_path(&g, s, t) {
                Some(p) => prop_assert_eq!(p.hops(), dist[t.index()]),
                None => prop_assert_eq!(dist[t.index()], usize::MAX),
            }
        }
        // Edge relaxation: d(v) ≤ d(u) + 1 for every edge u→v.
        for (_, u, v) in g.edges() {
            if dist[u.index()] != usize::MAX {
                prop_assert!(dist[v.index()] <= dist[u.index()] + 1);
            }
        }
    }

    /// Generated small-world graphs are almost entirely one component
    /// (β-rewiring can, rarely, isolate a node — that matches the
    /// standard Watts–Strogatz construction) and fully bidirectional.
    #[test]
    fn ws_generator_invariants(n in 6usize..40, seed in 0u64..300) {
        let g = generators::watts_strogatz(n, 4, 0.3, seed);
        prop_assert_eq!(g.node_count(), n);
        prop_assert!(g.largest_weak_component().len() >= n - 2,
            "component {} of {n}", g.largest_weak_component().len());
        for (e, _, _) in g.edges() {
            prop_assert!(g.reverse_edge(e).is_some());
        }
    }

    /// Scale-free generator hits its channel target exactly and keeps
    /// a giant component.
    #[test]
    fn scale_free_invariants(n in 20usize..80, mult in 2usize..5, seed in 0u64..200) {
        let target = n * mult;
        let g = generators::scale_free_with_channels(n, target, seed);
        prop_assert_eq!(g.edge_count(), target * 2);
        prop_assert!(g.largest_weak_component().len() >= n * 9 / 10);
    }
}
