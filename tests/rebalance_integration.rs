//! Integration tests of the rebalancing extension against full routing
//! workloads.

use flash_offchain::core::rebalance::{
    depleted_edges, rebalance_sweep, RebalanceConfig, RebalanceReport,
};
use flash_offchain::core::{FlashConfig, FlashRouter};
use flash_offchain::graph::generators;
use flash_offchain::sim::{Network, Router};
use flash_offchain::types::{Amount, NodeId, Payment, TxId};

fn skewed_load(net: &mut Network, router: &mut FlashRouter, ids: std::ops::Range<u64>) -> u64 {
    let mut failures = 0;
    let n = net.graph().node_count() as u32;
    for i in ids {
        let p = Payment::new(
            TxId(i),
            NodeId((i % (n as u64 - 3)) as u32 + 3),
            NodeId((i % 3) as u32),
            Amount::from_units(20 + i % 40),
        );
        if p.sender == p.receiver {
            continue;
        }
        let class = p.classify(Amount::from_units(80));
        if !router.route(net, &p, class).is_success() {
            failures += 1;
        }
    }
    failures
}

#[test]
fn sweep_conserves_funds_on_loaded_network() {
    let graph = generators::watts_strogatz(30, 4, 0.2, 3);
    let mut net = Network::uniform(graph, Amount::from_units(100));
    let mut router = FlashRouter::new(FlashConfig {
        elephant_threshold: Amount::from_units(80),
        ..Default::default()
    });
    skewed_load(&mut net, &mut router, 0..300);
    let before = net.total_funds();
    let report = rebalance_sweep(&mut net, &RebalanceConfig::default());
    assert_eq!(net.total_funds(), before, "sweep must conserve total funds");
    assert!(report.scanned > 0);
}

#[test]
fn sweep_reduces_depletion() {
    let graph = generators::watts_strogatz(30, 4, 0.2, 5);
    let mut net = Network::uniform(graph, Amount::from_units(100));
    let mut router = FlashRouter::new(FlashConfig {
        elephant_threshold: Amount::from_units(80),
        ..Default::default()
    });
    skewed_load(&mut net, &mut router, 0..400);
    let depleted_before = depleted_edges(&net, 10).len();
    if depleted_before == 0 {
        // Workload did not deplete anything at this seed; nothing to
        // assert beyond the no-op.
        let report = rebalance_sweep(&mut net, &RebalanceConfig::default());
        assert_eq!(report.depleted, 0);
        return;
    }
    rebalance_sweep(&mut net, &RebalanceConfig::default());
    let depleted_after = depleted_edges(&net, 10).len();
    assert!(
        depleted_after < depleted_before,
        "sweep should reduce depletion: {depleted_before} → {depleted_after}"
    );
}

#[test]
fn sweep_is_idempotent_when_healthy() {
    let graph = generators::watts_strogatz(20, 4, 0.2, 7);
    let mut net = Network::uniform(graph, Amount::from_units(100));
    // Fresh uniform network: nothing is depleted.
    let report = rebalance_sweep(&mut net, &RebalanceConfig::default());
    assert_eq!(
        report,
        RebalanceReport {
            scanned: net.graph().edge_count() as u64,
            depleted: 0,
            attempted_cycles: 0,
            rebalanced: 0,
            volume_shifted: Amount::ZERO,
        }
    );
}

#[test]
fn metrics_are_untouched_by_maintenance() {
    let graph = generators::watts_strogatz(30, 4, 0.2, 9);
    let mut net = Network::uniform(graph, Amount::from_units(100));
    let mut router = FlashRouter::new(FlashConfig {
        elephant_threshold: Amount::from_units(80),
        ..Default::default()
    });
    skewed_load(&mut net, &mut router, 0..200);
    let before = net.metrics().clone();
    rebalance_sweep(&mut net, &RebalanceConfig::default());
    let after = net.metrics();
    assert_eq!(after.total().attempted, before.total().attempted);
    assert_eq!(after.total().succeeded, before.total().succeeded);
    assert_eq!(after.fees_paid, before.fees_paid);
}
