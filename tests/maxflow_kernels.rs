//! Cross-kernel max-flow properties on the paper's generator
//! topologies: Dinic (plain and capacity-scaling) and highest-label
//! push-relabel must agree with the Edmonds–Karp oracle on value and
//! min cut, produce feasible conserving flows, and decompose into
//! executable paths that reassemble the full value — the guarantees
//! `flash-core`'s oracle and the Figure 11 `m = 0` bound silently
//! rely on.

use flash_offchain::graph::maxflow::{
    decompose_into_paths, dinic, dinic_scaling, edmonds_karp, min_cut_capacity, push_relabel,
    Dinic, EdmondsKarp, MaxFlow, MaxFlowSolver, PushRelabel,
};
use flash_offchain::graph::{generators, DiGraph};
use flash_offchain::types::NodeId;
use proptest::prelude::*;

/// Deterministic per-edge capacities spanning several magnitudes (the
/// satoshi-vs-dollar spread capacity scaling exists for).
fn caps_for(g: &DiGraph, seed: u64) -> Vec<u64> {
    (0..g.edge_count() as u64)
        .map(|i| 1 + (i * 7919 + seed) % 10_000)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Watts–Strogatz (the paper's testbed family): all kernels agree
    /// and match their own min cut.
    #[test]
    fn kernels_agree_on_watts_strogatz(
        seed in 0u64..200,
        s in 0u32..16,
        t in 0u32..16,
    ) {
        prop_assume!(s != t);
        let g = generators::watts_strogatz(16, 4, 0.3, seed);
        let caps = caps_for(&g, seed);
        let (s, t) = (NodeId(s), NodeId(t));
        let ek = edmonds_karp(&g, s, t, &caps);
        let di = dinic(&g, s, t, &caps);
        let ds = dinic_scaling(&g, s, t, &caps);
        let pr = push_relabel(&g, s, t, &caps);
        prop_assert_eq!(di.value, ek.value);
        prop_assert_eq!(ds.value, ek.value);
        prop_assert_eq!(pr.value, ek.value);
        for mf in [&ek, &di, &ds, &pr] {
            prop_assert_eq!(min_cut_capacity(&g, s, mf, &caps), mf.value);
        }
    }

    /// Scale-free (the Ripple/Lightning stand-in): agreement plus
    /// feasibility, conservation, and full decomposition of the Dinic
    /// flow.
    #[test]
    fn dinic_flow_is_executable_on_scale_free(
        seed in 0u64..120,
        s in 0u32..24,
        t in 0u32..24,
    ) {
        prop_assume!(s != t);
        let g = generators::scale_free_with_channels(24, 60, seed);
        let caps = caps_for(&g, seed);
        let (s, t) = (NodeId(s), NodeId(t));
        let mf = dinic(&g, s, t, &caps);
        prop_assert_eq!(mf.value, edmonds_karp(&g, s, t, &caps).value);
        for (e, _, _) in g.edges() {
            prop_assert!(mf.edge_flow[e.index()] <= caps[e.index()]);
        }
        for node in g.nodes() {
            if node == s || node == t { continue; }
            let inflow: u64 = g.in_neighbors(node).iter()
                .map(|&(_, e)| mf.edge_flow[e.index()]).sum();
            let outflow: u64 = g.out_neighbors(node).iter()
                .map(|&(_, e)| mf.edge_flow[e.index()]).sum();
            prop_assert_eq!(inflow, outflow);
        }
        let parts = decompose_into_paths(&g, s, t, &mf);
        let total: u64 = parts.iter().map(|(_, f)| f).sum();
        prop_assert_eq!(total, mf.value);
        for (p, f) in &parts {
            prop_assert!(*f > 0);
            prop_assert_eq!(p.source(), s);
            prop_assert_eq!(p.target(), t);
        }
    }
}

/// The solver trait is object-safe and every kernel answers through it —
/// how the harness and benches hold kernels.
#[test]
fn solver_trait_is_uniform() {
    let g = generators::watts_strogatz(20, 4, 0.3, 9);
    let caps = caps_for(&g, 9);
    let solvers: Vec<Box<dyn MaxFlowSolver>> = vec![
        Box::new(EdmondsKarp),
        Box::new(Dinic::new()),
        Box::new(Dinic::with_capacity_scaling()),
        Box::new(PushRelabel),
    ];
    let values: Vec<u64> = solvers
        .iter()
        .map(|sv| sv.max_flow(&g, NodeId(0), NodeId(10), &caps).value)
        .collect();
    assert!(values.windows(2).all(|w| w[0] == w[1]), "{values:?}");
    let names: Vec<&str> = solvers.iter().map(|sv| sv.name()).collect();
    assert_eq!(
        names,
        ["edmonds-karp", "dinic", "dinic-scaling", "push-relabel"]
    );
}

/// A decomposition case where the pre-rewrite walk order mattered: the
/// flow contains a cycle sitting *before* the productive edge in
/// adjacency order. The old `visited`-vec walk entered the cycle, found
/// every neighbor of the closing node visited, and aborted — silently
/// dropping the whole s→t value. The cursor walk cancels the cycle and
/// recovers it.
#[test]
fn decomposition_survives_adjacency_ordered_cycle() {
    let mut g = DiGraph::new(6);
    let mut flow = Vec::new();
    for (u, v, f) in [
        (0u32, 1u32, 3u64), // s→a
        (1, 2, 2),          // a→b (cycle, first in a's adjacency)
        (2, 3, 2),          // b→c
        (3, 1, 2),          // c→a (closes the cycle)
        (1, 4, 3),          // a→d
        (4, 5, 3),          // d→t
    ] {
        g.add_edge(NodeId(u), NodeId(v)).unwrap();
        flow.push(f);
    }
    let mf = MaxFlow {
        value: 3,
        edge_flow: flow,
    };
    let parts = decompose_into_paths(&g, NodeId(0), NodeId(5), &mf);
    let total: u64 = parts.iter().map(|(_, f)| f).sum();
    assert_eq!(total, 3);
    assert_eq!(parts.len(), 1);
    assert_eq!(
        parts[0].0.nodes(),
        &[NodeId(0), NodeId(1), NodeId(4), NodeId(5)]
    );
}
