//! # flash-offchain
//!
//! Umbrella crate of the Flash reproduction (CoNEXT 2019): re-exports
//! every workspace crate under one roof so examples, integration tests,
//! and downstream users need a single dependency.
//!
//! * [`types`] — money, ids, payments, fees ([`pcn_types`]).
//! * [`graph`] — graph algorithms and generators ([`pcn_graph`]).
//! * [`lp`] — the simplex solver ([`pcn_lp`]).
//! * [`sim`] — the backend-agnostic `PaymentNetwork` routing API and
//!   the PCN simulator backend ([`pcn_sim`]).
//! * [`core`] — Flash and the baseline routers, generic over the
//!   backend ([`flash_core`]).
//! * [`workload`] — calibrated workload synthesis ([`pcn_workload`]).
//! * [`proto`] — the TCP testbed prototype, the second `PaymentNetwork`
//!   backend ([`pcn_proto`]).
//! * [`scenario`] — declarative testbed orchestration: scenarios,
//!   invariants, telemetry ([`pcn_scenario`]).
//! * [`experiments`] — figure regeneration ([`pcn_experiments`]).
//!
//! ## Example
//!
//! ```
//! use flash_offchain::core::{FlashConfig, FlashRouter};
//! use flash_offchain::graph::generators;
//! use flash_offchain::sim::{Network, Router};
//! use flash_offchain::types::{Amount, NodeId, Payment, TxId};
//!
//! // A small-world network with $200 per channel direction.
//! let graph = generators::watts_strogatz(20, 4, 0.3, 7);
//! let mut net = Network::uniform(graph, Amount::from_units(200));
//!
//! let threshold = Amount::from_units(100);
//! let mut flash = FlashRouter::new(FlashConfig {
//!     elephant_threshold: threshold,
//!     ..Default::default()
//! });
//!
//! let payment = Payment::new(TxId(0), NodeId(0), NodeId(11), Amount::from_units(150));
//! let outcome = flash.route(&mut net, &payment, payment.classify(threshold));
//! assert!(outcome.is_success());
//! // Elephant payments probe paths before splitting:
//! assert!(net.metrics().probe_messages > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Library code reports through returned values and serialized artifacts,
// never ad-hoc stdout; the experiment/bench binaries print, libraries do not.
#![deny(clippy::dbg_macro, clippy::print_stdout)]

pub use flash_core as core;
pub use pcn_experiments as experiments;
pub use pcn_graph as graph;
pub use pcn_lp as lp;
pub use pcn_proto as proto;
pub use pcn_scenario as scenario;
pub use pcn_sim as sim;
pub use pcn_types as types;
pub use pcn_workload as workload;
