//! Tests of the bench-regression gate itself — including the check
//! that it would have caught the PR-4 flat latency curve.

use flash_bench::gate::{gate_churn, gate_e2e, gate_maxflow, gate_testbed, Severity};

/// The `BENCH_e2e.json` that PR 4 committed: the propagation-only
/// engine reported **bit-identical** p50/p95/p99 completion latency at
/// 50 and 400 pps offered load for every scheme. A plain diff against
/// itself is clean; only the physical-suspicion check can object.
const PR4_FLAT: &str = include_str!("fixtures/pr4_flat_e2e.json");

fn e2e_record(
    scheme: &str,
    pps: f64,
    tput: f64,
    p50: f64,
    p95: f64,
    p99: f64,
    ratio: f64,
) -> String {
    format!(
        r#"{{"scheme":"{scheme}","nodes":60,"payments":200,"offered_pps":{pps},"hop_latency_ms":25,"service_time_ms":10,"success_ratio":{ratio},"throughput_pps":{tput},"p50_latency_ms":{p50},"p95_latency_ms":{p95},"p99_latency_ms":{p99},"p50_queue_delay_ms":1.0,"p95_queue_delay_ms":20.0,"peak_in_flight":10,"peak_backlog":50,"max_node_utilization":0.5,"events":1000,"virtual_makespan_ms":9000.0,"wall_ns":1}}"#
    )
}

fn array(records: &[String]) -> String {
    format!("[\n  {}\n]\n", records.join(",\n  "))
}

/// A healthy two-load sweep: latency rises with load.
fn healthy() -> String {
    array(&[
        e2e_record("Flash", 50.0, 16.0, 550.0, 2200.0, 4000.0, 0.77),
        e2e_record("Flash", 400.0, 15.8, 1100.0, 4400.0, 8000.0, 0.79),
    ])
}

#[test]
fn gate_fails_the_pr4_flat_latency_fixture() {
    // Diffing the PR-4 artifact against itself: every delta is zero,
    // yet the gate must reject it — identical latency percentiles
    // across an 8× offered-load spread are physically suspicious.
    let report = gate_e2e(PR4_FLAT, PR4_FLAT).expect("fixture parses");
    assert!(!report.passed(), "the flat PR-4 curve must fail the gate");
    let flat_fails: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.severity == Severity::Fail)
        .filter(|f| f.message.contains("physically suspicious"))
        .collect();
    // Every one of the five schemes is flat in the fixture.
    assert_eq!(
        flat_fails.len(),
        5,
        "one flat-curve failure per scheme: {:#?}",
        report.findings
    );
}

#[test]
fn gate_passes_a_healthy_rising_curve_against_itself() {
    let h = healthy();
    let report = gate_e2e(&h, &h).expect("parses");
    assert!(report.passed(), "{:#?}", report.findings);
    assert!(report.table.contains("Flash"));
}

#[test]
fn gate_fails_a_throughput_regression_over_25_percent() {
    let base = healthy();
    let cand = array(&[
        e2e_record("Flash", 50.0, 11.0, 550.0, 2200.0, 4000.0, 0.77), // -31%
        e2e_record("Flash", 400.0, 15.8, 1100.0, 4400.0, 8000.0, 0.79),
    ]);
    let report = gate_e2e(&base, &cand).expect("parses");
    assert!(!report.passed());
    assert!(report
        .findings
        .iter()
        .any(|f| f.severity == Severity::Fail && f.message.contains("throughput")));
}

#[test]
fn gate_fails_a_latency_regression_over_25_percent() {
    let base = healthy();
    let cand = array(&[
        e2e_record("Flash", 50.0, 16.0, 550.0, 2900.0, 4000.0, 0.77), // p95 +32%
        e2e_record("Flash", 400.0, 15.8, 1100.0, 4400.0, 8000.0, 0.79),
    ]);
    let report = gate_e2e(&base, &cand).expect("parses");
    assert!(!report.passed());
    assert!(report
        .findings
        .iter()
        .any(|f| f.severity == Severity::Fail && f.message.contains("p95")));
}

#[test]
fn gate_tolerates_regressions_under_the_threshold() {
    let base = healthy();
    let cand = array(&[
        e2e_record("Flash", 50.0, 13.0, 550.0, 2600.0, 4500.0, 0.70), // all < 25%
        e2e_record("Flash", 400.0, 15.8, 1100.0, 4400.0, 8000.0, 0.79),
    ]);
    let report = gate_e2e(&base, &cand).expect("parses");
    assert!(report.passed(), "{:#?}", report.findings);
}

#[test]
fn gate_warns_but_never_fails_on_events_per_sec_drop() {
    // events/sec is wall-derived (the one metric `des_hot_loop` feeds
    // into BENCH_e2e.json): a >25% drop flags hot-loop churn, but CI
    // hardware varies, so it must stay warn-only.
    let with_eps = |eps: f64| {
        let mut r = e2e_record("Flash", 50.0, 16.0, 550.0, 2200.0, 4000.0, 0.77);
        r.truncate(r.len() - 1);
        format!("{r},\"events_per_sec\":{eps}}}")
    };
    let base = array(&[with_eps(1_400_000.0)]);
    let cand = array(&[with_eps(900_000.0)]); // -36%
    let report = gate_e2e(&base, &cand).expect("parses");
    assert!(
        report.passed(),
        "wall-derived metrics must not fail the gate: {:#?}",
        report.findings
    );
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.severity == Severity::Warn && f.message.contains("events/sec")),
        "{:#?}",
        report.findings
    );
    // A candidate without the field (pre-PR-7 artifact) stays silent:
    // 0.0-defaulted values are not comparable.
    let legacy = array(&[e2e_record("Flash", 50.0, 16.0, 550.0, 2200.0, 4000.0, 0.77)]);
    let report = gate_e2e(&base, &legacy).expect("parses");
    assert!(report
        .findings
        .iter()
        .all(|f| !f.message.contains("events/sec")));
}

#[test]
fn gate_warns_on_unmatched_records_and_fails_on_total_mismatch() {
    let base = healthy();
    // One record matches nothing (different service time ⇒ new key).
    let one_new = array(&[
        e2e_record("Flash", 50.0, 16.0, 550.0, 2200.0, 4000.0, 0.77),
        e2e_record("Flash", 400.0, 15.8, 1100.0, 4400.0, 8000.0, 0.79)
            .replace("\"service_time_ms\":10", "\"service_time_ms\":99"),
    ]);
    let report = gate_e2e(&base, &one_new).expect("parses");
    assert!(report.passed());
    assert!(report
        .findings
        .iter()
        .any(|f| f.severity == Severity::Warn && f.message.contains("new configuration")));
    assert!(report
        .findings
        .iter()
        .any(|f| f.severity == Severity::Warn && f.message.contains("lost coverage")));

    // Nothing matches at all: schema/config drift must fail loudly.
    let drifted = array(&[e2e_record("Flash", 75.0, 16.0, 550.0, 2200.0, 4000.0, 0.77)]);
    let report = gate_e2e(&base, &drifted).expect("parses");
    assert!(!report.passed());
    assert!(report
        .findings
        .iter()
        .any(|f| f.severity == Severity::Fail && f.message.contains("configuration drift")));
}

#[test]
fn gate_parses_pre_queue_artifacts_without_the_new_fields() {
    // The PR-4 fixture has no service_time_ms / queue-delay fields;
    // serde defaults must fill them so historical artifacts and the
    // committed smoke file stay comparable.
    let report = gate_e2e(PR4_FLAT, &healthy()).expect("old schema parses");
    // Keys differ (service 0 vs 10) so nothing matches — but parsing
    // succeeded, which is what this test pins.
    assert!(report
        .findings
        .iter()
        .any(|f| f.message.contains("new configuration")));
}

/// A churn sweep where success does **not** degrade with churn — flat
/// for Spider, *rising* for Flash. A plain diff against itself is
/// clean; only the shape check can object. This is the churn analogue
/// of the PR-4 flat-latency fixture: the exact artifact a broken churn
/// wiring (events generated but never applied) would commit.
const NONMONO_CHURN: &str = include_str!("fixtures/nonmono_churn.json");

fn churn_record(scheme: &str, closes: f64, ratio: f64, closed: u64) -> String {
    format!(
        r#"{{"scheme":"{scheme}","nodes":60,"payments":200,"offered_pps":100.0,"closes_per_sec":{closes},"hop_latency_ms":25,"service_time_ms":10,"success_ratio":{ratio},"p95_latency_ms":1000.0,"closed_channels":{closed},"stale_probe_failures":{closed},"reprobes_triggered":1,"wall_ns":1}}"#
    )
}

/// A healthy three-rate sweep: success strictly falls with churn.
fn healthy_churn() -> String {
    array(&[
        churn_record("Flash", 0.0, 0.77, 0),
        churn_record("Flash", 10.0, 0.70, 17),
        churn_record("Flash", 40.0, 0.25, 58),
    ])
}

#[test]
fn churn_gate_fails_the_non_monotone_fixture() {
    // Diffing the fixture against itself: every delta is zero, yet the
    // gate must reject it — success not degrading under rising churn
    // means churn events are not reaching the engine.
    let report = gate_churn(NONMONO_CHURN, NONMONO_CHURN).expect("fixture parses");
    assert!(
        !report.passed(),
        "the non-monotone curve must fail the gate"
    );
    let shape_fails: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.severity == Severity::Fail)
        .filter(|f| f.message.contains("physically suspicious"))
        .collect();
    // Flash is flat then rising (2 bad steps), Spider flat twice.
    assert_eq!(
        shape_fails.len(),
        4,
        "one failure per non-degrading step: {:#?}",
        report.findings
    );
}

#[test]
fn churn_gate_passes_a_healthy_degrading_sweep() {
    let h = healthy_churn();
    let report = gate_churn(&h, &h).expect("parses");
    assert!(report.passed(), "{:#?}", report.findings);
    assert!(report.table.contains("Flash"));
}

#[test]
fn churn_gate_fails_a_success_regression_over_25_percent() {
    let base = healthy_churn();
    let cand = array(&[
        churn_record("Flash", 0.0, 0.77, 0),
        churn_record("Flash", 10.0, 0.50, 17), // -29% vs baseline 0.70
        churn_record("Flash", 40.0, 0.25, 58),
    ]);
    let report = gate_churn(&base, &cand).expect("parses");
    assert!(!report.passed());
    assert!(report
        .findings
        .iter()
        .any(|f| f.severity == Severity::Fail && f.message.contains("success ratio regressed")));
}

#[test]
fn churn_gate_requires_at_least_three_rates() {
    let two = array(&[
        churn_record("Flash", 0.0, 0.77, 0),
        churn_record("Flash", 40.0, 0.25, 58),
    ]);
    let report = gate_churn(&two, &two).expect("parses");
    assert!(!report.passed());
    assert!(report
        .findings
        .iter()
        .any(|f| f.severity == Severity::Fail && f.message.contains("at least 3")));
}

#[test]
fn churn_gate_fails_churn_activity_at_zero_rate() {
    // A zero-churn record reporting closed channels breaks the empty-
    // schedule exactness contract (and would silently poison the
    // zero-churn/e2e bit-identity check).
    let cand = array(&[
        churn_record("Flash", 0.0, 0.77, 3), // closed_channels = 3 at rate 0
        churn_record("Flash", 10.0, 0.70, 17),
        churn_record("Flash", 40.0, 0.25, 58),
    ]);
    let report = gate_churn(&cand, &cand).expect("parses");
    assert!(!report.passed());
    assert!(report
        .findings
        .iter()
        .any(|f| f.severity == Severity::Fail && f.message.contains("empty schedule")));
}

#[test]
fn churn_gate_parses_artifacts_without_counter_fields() {
    // Counter fields are serde-defaulted: a pared-down record (no
    // closed_channels / stale_probe_failures / reprobes_triggered /
    // wall_ns) must still parse and pass the shape check.
    let bare = |closes: f64, ratio: f64| {
        format!(
            r#"{{"scheme":"Flash","nodes":60,"payments":200,"offered_pps":100.0,"closes_per_sec":{closes},"hop_latency_ms":25,"service_time_ms":10,"success_ratio":{ratio},"p95_latency_ms":1000.0}}"#
        )
    };
    let old = array(&[bare(0.0, 0.77), bare(10.0, 0.70), bare(40.0, 0.25)]);
    let report = gate_churn(&old, &old).expect("counterless artifact parses");
    assert!(report.passed(), "{:#?}", report.findings);
}

const MAXFLOW_BASE: &str = r#"[
  {"topology":"ws_100","nodes":100,"directed_edges":800,"kernel":"dinic","pairs":4,"iters_per_pair":1,"mean_ns_per_pair":1000,"total_flow":5000},
  {"topology":"ws_100","nodes":100,"directed_edges":800,"kernel":"edmonds-karp","pairs":4,"iters_per_pair":1,"mean_ns_per_pair":1500,"total_flow":5000}
]"#;

/// `oracle_fastest_maxflow.json`: every kernel loses to the
/// Edmonds–Karp oracle at lightning scale — the state this PR's
/// predecessor trajectory was actually in.
const ORACLE_FASTEST: &str = include_str!("fixtures/oracle_fastest_maxflow.json");

/// `warm_slower_maxflow.json`: kernels are healthy but the warm-start
/// record is slower than the cold restart it exists to beat.
const WARM_SLOWER: &str = include_str!("fixtures/warm_slower_maxflow.json");

#[test]
fn maxflow_gate_fails_on_flow_drift_but_only_warns_on_wall_time() {
    // Same flows, 40% slower (still beating the oracle): pass with a
    // warning (CI hardware noise).
    let slower = MAXFLOW_BASE.replace("\"mean_ns_per_pair\":1000", "\"mean_ns_per_pair\":1400");
    let report = gate_maxflow(MAXFLOW_BASE, &slower).expect("parses");
    assert!(report.passed(), "{:#?}", report.findings);
    assert!(report
        .findings
        .iter()
        .any(|f| f.severity == Severity::Warn && f.message.contains("wall time")));

    // A drifted flow value is a correctness failure.
    let drifted = MAXFLOW_BASE.replace("\"total_flow\":5000", "\"total_flow\":4999");
    let report = gate_maxflow(MAXFLOW_BASE, &drifted).expect("parses");
    assert!(!report.passed());
    assert!(report
        .findings
        .iter()
        .any(|f| f.severity == Severity::Fail && f.message.contains("total flow drifted")));
}

#[test]
fn maxflow_gate_rejects_oracle_beating_every_kernel() {
    // The shape check fails even against itself: a trajectory whose
    // fastest kernel loses to the oracle is rejected outright.
    let report = gate_maxflow(ORACLE_FASTEST, ORACLE_FASTEST).expect("parses");
    assert!(!report.passed());
    assert!(report
        .findings
        .iter()
        .any(|f| f.severity == Severity::Fail && f.message.contains("does not beat")));
}

#[test]
fn maxflow_gate_enforces_two_x_at_lightning_scale() {
    // Beating the oracle but by less than 2× on a ≥1000-node lightning
    // topology regresses the ROADMAP win condition.
    let barely = ORACLE_FASTEST.replace(
        "\"kernel\":\"push-relabel\",\"pairs\":6,\"iters_per_pair\":3,\"mean_ns_per_pair\":1900000",
        "\"kernel\":\"push-relabel\",\"pairs\":6,\"iters_per_pair\":3,\"mean_ns_per_pair\":1000000",
    );
    let report = gate_maxflow(&barely, &barely).expect("parses");
    assert!(!report.passed());
    assert!(report
        .findings
        .iter()
        .any(|f| f.severity == Severity::Fail && f.message.contains("less than 2×")));

    // At 2× and beyond the shape is healthy again.
    let won = ORACLE_FASTEST.replace(
        "\"kernel\":\"push-relabel\",\"pairs\":6,\"iters_per_pair\":3,\"mean_ns_per_pair\":1900000",
        "\"kernel\":\"push-relabel\",\"pairs\":6,\"iters_per_pair\":3,\"mean_ns_per_pair\":700000",
    );
    let report = gate_maxflow(&won, &won).expect("parses");
    assert!(report.passed(), "{:#?}", report.findings);
}

#[test]
fn maxflow_gate_rejects_warm_start_slower_than_cold() {
    let report = gate_maxflow(WARM_SLOWER, WARM_SLOWER).expect("parses");
    assert!(!report.passed());
    assert!(report
        .findings
        .iter()
        .any(|f| f.severity == Severity::Fail && f.message.contains("not faster than a cold")));

    // A warm-cold flow mismatch is a correctness failure on top.
    let drifted = WARM_SLOWER.replace(
        "\"kernel\":\"warm-start\",\"pairs\":48,\"iters_per_pair\":1,\"mean_ns_per_pair\":5000000,\"total_flow\":430000",
        "\"kernel\":\"warm-start\",\"pairs\":48,\"iters_per_pair\":1,\"mean_ns_per_pair\":3000000,\"total_flow\":430001",
    );
    let report = gate_maxflow(&drifted, &drifted).expect("parses");
    assert!(!report.passed());
    assert!(report
        .findings
        .iter()
        .any(|f| f.severity == Severity::Fail && f.message.contains("different flow")));
}

fn testbed_record(scheme: &str, nodes: usize, ratio: f64, wire_in: u64, wire_out: u64) -> String {
    format!(
        r#"{{"scheme":"{scheme}","nodes":{nodes},"payments":100,"success_ratio":{ratio},"success_volume_micros":1000,"fees_micros":0,"probe_messages":500,"commit_messages":300,"wire_in":{wire_in},"wire_out":{wire_out},"escrow_end":0,"queue_high_water":4,"events_per_sec":9000.0,"wall_ns":1}}"#
    )
}

/// A healthy two-scale testbed trajectory including the 200-node
/// single-process record.
fn healthy_testbed() -> String {
    array(&[
        testbed_record("SP", 60, 0.70, 2000, 2000),
        testbed_record("SP", 200, 0.65, 2600, 2600),
    ])
}

#[test]
fn testbed_gate_passes_a_healthy_trajectory() {
    let h = healthy_testbed();
    let report = gate_testbed(&h, &h).expect("parses");
    assert!(report.passed(), "{:#?}", report.findings);
    assert!(report.table.contains("SP"));
}

#[test]
fn testbed_gate_fails_a_success_regression_over_25_percent() {
    let base = healthy_testbed();
    let cand = array(&[
        testbed_record("SP", 60, 0.50, 2000, 2000), // -29% vs baseline 0.70
        testbed_record("SP", 200, 0.65, 2600, 2600),
    ]);
    let report = gate_testbed(&base, &cand).expect("parses");
    assert!(!report.passed());
    assert!(report
        .findings
        .iter()
        .any(|f| f.severity == Severity::Fail && f.message.contains("success ratio regressed")));
}

#[test]
fn testbed_gate_fails_wire_frame_loss_even_against_itself() {
    // wire_out > wire_in means frames vanished inside a fault-free
    // cluster; a plain diff against an equally broken baseline is
    // clean, so this must fail as physically suspicious.
    let lossy = array(&[
        testbed_record("SP", 60, 0.70, 1990, 2000),
        testbed_record("SP", 200, 0.65, 2600, 2600),
    ]);
    let report = gate_testbed(&lossy, &lossy).expect("parses");
    assert!(!report.passed());
    assert!(report
        .findings
        .iter()
        .any(|f| f.severity == Severity::Fail && f.message.contains("frames were lost")));
}

#[test]
fn testbed_gate_fails_unsettled_escrow() {
    let stuck = healthy_testbed().replace("\"escrow_end\":0", "\"escrow_end\":42");
    let report = gate_testbed(&stuck, &stuck).expect("parses");
    assert!(!report.passed());
    assert!(report
        .findings
        .iter()
        .any(|f| f.severity == Severity::Fail && f.message.contains("still escrowed")));
}

#[test]
fn testbed_gate_requires_the_200_node_scale_record() {
    let small_only = array(&[testbed_record("SP", 60, 0.70, 2000, 2000)]);
    let report = gate_testbed(&small_only, &small_only).expect("parses");
    assert!(!report.passed());
    assert!(report
        .findings
        .iter()
        .any(|f| f.severity == Severity::Fail && f.message.contains("200-node")));
}

#[test]
fn testbed_gate_warns_but_never_fails_on_events_per_sec_drop() {
    let base = healthy_testbed();
    let cand = healthy_testbed().replace("\"events_per_sec\":9000.0", "\"events_per_sec\":4000.0");
    let report = gate_testbed(&base, &cand).expect("parses");
    assert!(report.passed(), "{:#?}", report.findings);
    assert!(report
        .findings
        .iter()
        .any(|f| f.severity == Severity::Warn && f.message.contains("events/sec down")));
}

#[test]
fn testbed_gate_fails_total_mismatch() {
    let base = healthy_testbed();
    let cand = array(&[
        testbed_record("Spider", 60, 0.70, 2000, 2000),
        testbed_record("Spider", 200, 0.65, 2600, 2600),
    ]);
    let report = gate_testbed(&base, &cand).expect("parses");
    assert!(!report.passed());
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.severity == Severity::Fail
                && f.message.contains("no candidate record matches"))
    );
}
