//! `e2e_bench` — the end-to-end routing perf trajectory.
//!
//! ```text
//! e2e_bench [--smoke] [--out FILE]
//! ```
//!
//! Drives every scheme through the discrete-event engine
//! (`pcn_sim::des`) on the §5.2 Watts–Strogatz testbed topology under a
//! Poisson arrival process, and records per scheme: success ratio,
//! delivered throughput (successful payments per *virtual* second),
//! completion-latency percentiles, peak in-flight payments, event
//! count, and the wall-clock cost of simulating it all. Results go to
//! `BENCH_e2e.json` (default) so the end-to-end trajectory is tracked
//! across PRs, next to `BENCH_maxflow.json`'s kernel trajectory.
//! `--smoke` shrinks the run for CI.
//!
//! Everything virtual is deterministic: two runs of this binary must
//! produce byte-identical JSON except for the `wall_ns` timing fields.

use pcn_experiments::harness::{run_scheme_des, DEFAULT_MICE_FRACTION};
use pcn_experiments::SimScheme;
use pcn_sim::LatencyModel;
use pcn_workload::testbed_topology;
use pcn_workload::trace::{generate_trace, TraceConfig};
use serde::Serialize;
use std::time::Instant;

/// One (scheme, offered-load) measurement.
#[derive(Serialize)]
struct Record {
    scheme: String,
    nodes: usize,
    payments: usize,
    offered_pps: f64,
    hop_latency_ms: u64,
    success_ratio: f64,
    throughput_pps: f64,
    p50_latency_ms: f64,
    p95_latency_ms: f64,
    p99_latency_ms: f64,
    peak_in_flight: u64,
    events: u64,
    virtual_makespan_ms: f64,
    wall_ns: u64,
}

const SCHEMES: [SimScheme; 5] = SimScheme::ALL;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut out = String::from("BENCH_e2e.json");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => smoke = true,
            "--out" => {
                i += 1;
                out = args.get(i).expect("--out needs a file").clone();
            }
            "--help" | "-h" => {
                eprintln!("usage: e2e_bench [--smoke] [--out FILE]");
                return;
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let (nodes, payments, loads): (usize, usize, &[f64]) = if smoke {
        (60, 150, &[100.0])
    } else {
        (200, 800, &[50.0, 400.0])
    };
    let hop_latency_ms = 25;
    let seed = 1009;
    let net = testbed_topology(nodes, 1000, 1500, seed);
    let trace = generate_trace(net.graph(), &TraceConfig::ripple(payments, seed + 7));

    let mut records: Vec<Record> = Vec::new();
    for scheme in SCHEMES {
        for &load in loads {
            let start = Instant::now();
            let report = run_scheme_des(
                &net,
                scheme,
                &trace,
                DEFAULT_MICE_FRACTION,
                seed + 31,
                load,
                LatencyModel::constant_ms(hop_latency_ms),
            );
            let wall = start.elapsed();
            println!(
                "{:>14} @{:>4} pps: ratio {:>5.1}% tput {:>6.1} pps p95 {:>8.1} ms peak {:>3} in flight",
                scheme.label(),
                load,
                report.metrics.success_ratio() * 100.0,
                report.throughput_pps,
                report.latency_ms(0.95),
                report.peak_in_flight,
            );
            records.push(Record {
                scheme: scheme.label(),
                nodes,
                payments,
                offered_pps: load,
                hop_latency_ms,
                success_ratio: report.metrics.success_ratio(),
                throughput_pps: report.throughput_pps,
                p50_latency_ms: report.latency_ms(0.5),
                p95_latency_ms: report.latency_ms(0.95),
                p99_latency_ms: report.latency_ms(0.99),
                peak_in_flight: report.peak_in_flight,
                events: report.events,
                virtual_makespan_ms: report.makespan.as_millis_f64(),
                wall_ns: u64::try_from(wall.as_nanos()).unwrap_or(u64::MAX),
            });
        }
    }

    // One record per line: diffable in review, still a plain JSON array.
    let body: Vec<String> = records
        .iter()
        .map(|r| {
            format!(
                "  {}",
                serde_json::to_string(r).expect("bench record serializes")
            )
        })
        .collect();
    std::fs::write(&out, format!("[\n{}\n]\n", body.join(",\n"))).expect("write bench output");
    println!("wrote {out}");
}
