//! `e2e_bench` — the end-to-end routing perf trajectory.
//!
//! ```text
//! e2e_bench [--smoke] [--out FILE]
//! ```
//!
//! Drives every scheme through the discrete-event engine
//! (`pcn_sim::des`) on the §5.2 Watts–Strogatz testbed topology under a
//! Poisson arrival process — per-hop propagation latency plus a
//! per-node M/D/1-style service queue — and records per (scheme,
//! offered load): success ratio, delivered throughput (successful
//! payments per *virtual* second), completion-latency percentiles,
//! queueing-delay percentiles, peak in-flight payments and node
//! backlog, busiest-node utilization, event count, and the wall-clock
//! cost of simulating it all. Results go to `BENCH_e2e.json` (default).
//!
//! The **committed** `BENCH_e2e.json` is the `--smoke` output: CI
//! regenerates it every run and `bench_gate` diffs the two, failing
//! on regressions beyond 25% in the virtual metrics and on physically
//! suspicious shapes (e.g. identical latency percentiles across the
//! 8× offered-load spread — the flat-curve bug service queues fixed).
//! Both modes sweep the same loads and emit the service-time parameter
//! in every record so the gate always compares like with like; the
//! full-scale run happens on the weekly scheduled CI job.
//!
//! Everything virtual is deterministic: two runs of this binary must
//! produce byte-identical JSON except for the wall-derived `wall_ns`
//! and `events_per_sec` fields (which is why the gate only *warns* on
//! `events_per_sec` drops).

use pcn_experiments::harness::{run_scheme_des, DesLoad, DEFAULT_MICE_FRACTION};
use pcn_experiments::SimScheme;
use pcn_sim::{ChurnRate, LatencyModel, ServiceModel};
use pcn_workload::testbed_topology;
use pcn_workload::trace::{generate_trace, TraceConfig};
use serde::Serialize;

/// One (scheme, offered-load) measurement.
#[derive(Serialize)]
struct Record {
    scheme: String,
    nodes: usize,
    payments: usize,
    offered_pps: f64,
    hop_latency_ms: u64,
    service_time_ms: u64,
    success_ratio: f64,
    throughput_pps: f64,
    p50_latency_ms: f64,
    p95_latency_ms: f64,
    p99_latency_ms: f64,
    p50_queue_delay_ms: f64,
    p95_queue_delay_ms: f64,
    peak_in_flight: u64,
    peak_backlog: u64,
    max_node_utilization: f64,
    events: u64,
    virtual_makespan_ms: f64,
    wall_ns: u64,
    events_per_sec: f64,
}

const SCHEMES: [SimScheme; 5] = SimScheme::ALL;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut out = String::from("BENCH_e2e.json");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => smoke = true,
            "--out" => {
                i += 1;
                out = args.get(i).expect("--out needs a file").clone();
            }
            "--help" | "-h" => {
                eprintln!("usage: e2e_bench [--smoke] [--out FILE]");
                return;
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    // Both modes sweep the same 8× load spread so the latency-vs-load
    // shape (and the gate's flat-curve check) is present in the smoke
    // numbers; full scale only grows the topology and trace.
    let loads: &[f64] = &[50.0, 400.0];
    let (nodes, payments): (usize, usize) = if smoke { (60, 200) } else { (200, 800) };
    let hop_latency_ms = 25;
    let service_time_ms = 10;
    let seed = 1009;
    let net = testbed_topology(nodes, 1000, 1500, seed);
    let trace = generate_trace(net.graph(), &TraceConfig::ripple(payments, seed + 7));

    let mut records: Vec<Record> = Vec::new();
    for scheme in SCHEMES {
        for &load in loads {
            let wall_start = pcn_proto::wall_now();
            let report = run_scheme_des(
                &net,
                scheme,
                &trace,
                DEFAULT_MICE_FRACTION,
                seed + 31,
                DesLoad {
                    rate_per_sec: load,
                    latency: LatencyModel::constant_ms(hop_latency_ms),
                    service: ServiceModel::constant_ms(service_time_ms),
                    churn: ChurnRate::zero(),
                },
            );
            let wall = wall_start.elapsed();
            println!(
                "{:>14} @{:>4} pps: ratio {:>5.1}% tput {:>6.1} pps p95 {:>8.1} ms queue95 {:>7.1} ms peak {:>3} in flight",
                scheme.label(),
                load,
                report.metrics.success_ratio() * 100.0,
                report.throughput_pps,
                report.latency_ms(0.95),
                report.queue_delay_ms(0.95),
                report.peak_in_flight,
            );
            records.push(Record {
                scheme: scheme.label(),
                nodes,
                payments,
                offered_pps: load,
                hop_latency_ms,
                service_time_ms,
                success_ratio: report.metrics.success_ratio(),
                throughput_pps: report.throughput_pps,
                p50_latency_ms: report.latency_ms(0.5),
                p95_latency_ms: report.latency_ms(0.95),
                p99_latency_ms: report.latency_ms(0.99),
                p50_queue_delay_ms: report.queue_delay_ms(0.5),
                p95_queue_delay_ms: report.queue_delay_ms(0.95),
                peak_in_flight: report.peak_in_flight,
                peak_backlog: report.peak_backlog,
                max_node_utilization: report.max_node_utilization,
                events: report.events,
                virtual_makespan_ms: report.makespan.as_millis_f64(),
                wall_ns: u64::try_from(wall.as_nanos()).unwrap_or(u64::MAX),
                events_per_sec: if wall.as_secs_f64() > 0.0 {
                    report.events as f64 / wall.as_secs_f64()
                } else {
                    0.0
                },
            });
        }
    }

    // One record per line: diffable in review, still a plain JSON array.
    let body: Vec<String> = records
        .iter()
        .map(|r| {
            format!(
                "  {}",
                serde_json::to_string(r).expect("bench record serializes")
            )
        })
        .collect();
    std::fs::write(&out, format!("[\n{}\n]\n", body.join(",\n"))).expect("write bench output");
    println!("wrote {out}");
}
