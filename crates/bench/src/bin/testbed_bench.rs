//! `testbed_bench` — scenario-driven event-loop cluster trajectory.
//!
//! ```text
//! testbed_bench [--smoke] [--out FILE]
//! ```
//!
//! Runs declarative scenarios (`pcn_scenario`) on the single-process
//! event-loop TCP cluster and records per (scheme, scale): success
//! ratio, volume, fees, the probe/commit message breakdown, wire-frame
//! conservation totals, end-of-run escrow, queue high-water marks, and
//! wire events per wall second. Results go to `BENCH_testbed.json`
//! (default).
//!
//! The **committed** `BENCH_testbed.json` is the `--smoke` output: CI
//! regenerates it every run and `bench_gate testbed` diffs the two,
//! failing on success-ratio regressions beyond 25%, on wire-frame
//! loss or unsettled escrow inside a fault-free cluster, and on the
//! ≥200-node single-process record disappearing. The full-scale run
//! (all five schemes) happens on the weekly scheduled CI job.
//!
//! Routing is deterministic (seeded topology, trace, and routers); the
//! wall-derived `events_per_sec`/`wall_ns` fields vary run to run and
//! only ever warn in the gate.

use pcn_proto::SchemeKind;
use pcn_scenario::{Invariant, ScenarioBuilder, TopologySpec, WorkloadSpec};
use serde::Serialize;

/// One (scheme, scale) measurement — the serialization twin of
/// `flash_bench::gate::TestbedRecord`.
#[derive(Serialize)]
struct Record {
    scheme: String,
    nodes: usize,
    payments: usize,
    success_ratio: f64,
    success_volume_micros: u64,
    fees_micros: u64,
    probe_messages: u64,
    commit_messages: u64,
    wire_in: u64,
    wire_out: u64,
    escrow_end: u64,
    queue_high_water: u64,
    events_per_sec: f64,
    wall_ns: u64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut out = String::from("BENCH_testbed.json");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => smoke = true,
            "--out" => {
                i += 1;
                out = args.get(i).expect("--out needs a file").clone();
            }
            "--help" | "-h" => {
                eprintln!("usage: testbed_bench [--smoke] [--out FILE]");
                return;
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    // Both modes include the 200-node single-process scale point the
    // gate requires; full scale adds the remaining schemes and longer
    // traces.
    let schemes: &[SchemeKind] = if smoke {
        &[SchemeKind::ShortestPath, SchemeKind::Flash]
    } else {
        &SchemeKind::ALL
    };
    let scales: &[(usize, usize)] = if smoke {
        &[(60, 120), (200, 60)]
    } else {
        &[(60, 400), (200, 200)]
    };
    let seed = 2003;

    let mut records: Vec<Record> = Vec::new();
    for &scheme in schemes {
        for &(nodes, payments) in scales {
            let wall_start = pcn_proto::wall_now();
            let report = ScenarioBuilder::new(
                format!("bench-{}-{}n", scheme.name(), nodes),
                TopologySpec::Testbed {
                    n: nodes,
                    lo: 1000,
                    hi: 1500,
                    seed,
                },
            )
            .workload(WorkloadSpec::Ripple {
                txns: payments,
                seed: seed + 7,
            })
            .scheme(scheme)
            .seed(seed + 31)
            .expect(Invariant::FundsConserved)
            .expect(Invariant::MessagesConserved)
            .build()
            .run()
            .expect("scenario run");
            let wall = wall_start.elapsed();
            if !report.all_invariants_hold() {
                eprintln!(
                    "invariant violation in {}: {:?}",
                    report.name,
                    report.failed_invariants()
                );
                std::process::exit(1);
            }
            println!(
                "{:>14} @{:>4} nodes: ratio {:>5.1}% msgs {:>6} wire {:>6} {:>8.0} ev/s",
                report.scheme,
                nodes,
                report.success_ratio * 100.0,
                report.probe_messages + report.commit_messages,
                report.wire_in,
                report.events_per_sec,
            );
            records.push(Record {
                scheme: report.scheme.clone(),
                nodes,
                payments,
                success_ratio: report.success_ratio,
                success_volume_micros: report.success_volume_micros,
                fees_micros: report.fees_micros,
                probe_messages: report.probe_messages,
                commit_messages: report.commit_messages,
                wire_in: report.wire_in,
                wire_out: report.wire_out,
                escrow_end: report.telemetry.iter().map(|t| t.escrow_held).sum(),
                queue_high_water: report
                    .telemetry
                    .iter()
                    .map(|t| t.queue_high_water)
                    .max()
                    .unwrap_or(0),
                events_per_sec: report.events_per_sec,
                wall_ns: u64::try_from(wall.as_nanos()).unwrap_or(u64::MAX),
            });
        }
    }

    // One record per line: diffable in review, still a plain JSON array.
    let body: Vec<String> = records
        .iter()
        .map(|r| {
            format!(
                "  {}",
                serde_json::to_string(r).expect("bench record serializes")
            )
        })
        .collect();
    std::fs::write(&out, format!("[\n{}\n]\n", body.join(",\n"))).expect("write bench output");
    println!("wrote {out}");
}
