//! `churn_bench` — success-under-churn trajectory.
//!
//! ```text
//! churn_bench [--smoke] [--out FILE]
//! ```
//!
//! Drives every scheme through the discrete-event engine with a seeded
//! topology-churn schedule (`pcn_sim::des::churn`) at a fixed offered
//! load and a sweep of churn intensities, recording per (scheme,
//! churn-rate): success ratio, p95 completion latency, and the
//! engine's churn counters (channels closed, probes bounced off stale
//! topology, threshold-triggered re-probes). Results go to
//! `BENCH_churn.json` (default).
//!
//! The **committed** `BENCH_churn.json` is the `--smoke` output: CI
//! regenerates it every run and `bench_gate churn` diffs the two,
//! failing on success-ratio regressions beyond 25% and on physically
//! suspicious shapes — the sweep must cover ≥3 churn rates, success
//! must *strictly* degrade as churn rises, and the zero-churn record
//! must report zero churn activity (the empty schedule stays
//! bit-exact). The full-scale run happens on the weekly scheduled CI
//! job.
//!
//! Everything virtual is deterministic: two runs of this binary must
//! produce byte-identical JSON except for the wall-derived `wall_ns`
//! field.

use pcn_experiments::figures::churn::{
    churn_mix, HOP_LATENCY_MS, NODE_SERVICE_MS, OFFERED_LOAD_PPS,
};
use pcn_experiments::harness::{run_scheme_des, DesLoad, DEFAULT_MICE_FRACTION};
use pcn_experiments::SimScheme;
use pcn_sim::{LatencyModel, ServiceModel};
use pcn_workload::testbed_topology;
use pcn_workload::trace::{generate_trace, TraceConfig};
use serde::Serialize;

/// One (scheme, churn-rate) measurement — the serialization twin of
/// `flash_bench::gate::ChurnRecord`.
#[derive(Serialize)]
struct Record {
    scheme: String,
    nodes: usize,
    payments: usize,
    offered_pps: f64,
    closes_per_sec: f64,
    hop_latency_ms: u64,
    service_time_ms: u64,
    success_ratio: f64,
    p95_latency_ms: f64,
    closed_channels: u64,
    stale_probe_failures: u64,
    reprobes_triggered: u64,
    wall_ns: u64,
}

const SCHEMES: [SimScheme; 5] = SimScheme::ALL;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut out = String::from("BENCH_churn.json");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => smoke = true,
            "--out" => {
                i += 1;
                out = args.get(i).expect("--out needs a file").clone();
            }
            "--help" | "-h" => {
                eprintln!("usage: churn_bench [--smoke] [--out FILE]");
                return;
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    // Both modes sweep the same rates so the strict-degradation shape
    // (and the gate's check of it) is present in the smoke numbers;
    // full scale only grows the topology and trace.
    let rates: &[f64] = &[0.0, 10.0, 40.0, 160.0];
    let (nodes, payments): (usize, usize) = if smoke { (60, 200) } else { (200, 800) };
    let seed = 1009;
    let net = testbed_topology(nodes, 1000, 1500, seed);
    let trace = generate_trace(net.graph(), &TraceConfig::ripple(payments, seed + 7));

    let mut records: Vec<Record> = Vec::new();
    for scheme in SCHEMES {
        for &rate in rates {
            let wall_start = pcn_proto::wall_now();
            let report = run_scheme_des(
                &net,
                scheme,
                &trace,
                DEFAULT_MICE_FRACTION,
                seed + 31,
                DesLoad {
                    rate_per_sec: OFFERED_LOAD_PPS,
                    latency: LatencyModel::constant_ms(HOP_LATENCY_MS),
                    service: ServiceModel::constant_ms(NODE_SERVICE_MS),
                    churn: churn_mix(rate),
                },
            );
            let wall = wall_start.elapsed();
            println!(
                "{:>14} @{:>5} closes/s: ratio {:>5.1}% p95 {:>8.1} ms closed {:>4} stale {:>4} reprobes {:>3}",
                scheme.label(),
                rate,
                report.metrics.success_ratio() * 100.0,
                report.latency_ms(0.95),
                report.closed_channels,
                report.stale_probe_failures,
                report.reprobes_triggered,
            );
            records.push(Record {
                scheme: scheme.label(),
                nodes,
                payments,
                offered_pps: OFFERED_LOAD_PPS,
                closes_per_sec: rate,
                hop_latency_ms: HOP_LATENCY_MS,
                service_time_ms: NODE_SERVICE_MS,
                success_ratio: report.metrics.success_ratio(),
                p95_latency_ms: report.latency_ms(0.95),
                closed_channels: report.closed_channels,
                stale_probe_failures: report.stale_probe_failures,
                reprobes_triggered: report.reprobes_triggered,
                wall_ns: u64::try_from(wall.as_nanos()).unwrap_or(u64::MAX),
            });
        }
    }

    // One record per line: diffable in review, still a plain JSON array.
    let body: Vec<String> = records
        .iter()
        .map(|r| {
            format!(
                "  {}",
                serde_json::to_string(r).expect("bench record serializes")
            )
        })
        .collect();
    std::fs::write(&out, format!("[\n{}\n]\n", body.join(",\n"))).expect("write bench output");
    println!("wrote {out}");
}
