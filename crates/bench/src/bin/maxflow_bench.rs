//! `maxflow_bench` — the max-flow kernel perf trajectory.
//!
//! ```text
//! maxflow_bench [--smoke] [--out FILE]
//! ```
//!
//! Times every [`MaxFlowSolver`] kernel (Edmonds–Karp oracle, Dinic,
//! Dinic + capacity scaling, push-relabel) over a fixed set of
//! source/sink pairs on the Watts–Strogatz testbed family and the
//! scale-free Ripple/Lightning stand-ins, cross-checks that all kernels
//! report identical flow values (a differential test at bench scale),
//! runs a warm-vs-cold payment-delta workload through
//! [`IncrementalMaxFlow`] (`warm-start` applies per-batch capacity
//! deltas to a live residual graph; `cold-restart` re-solves each batch
//! from scratch — same flows, so the gap is pure warm-start savings),
//! and writes the numbers to `BENCH_maxflow.json` (default) so the
//! kernel's perf trajectory is tracked across PRs. `bench_gate maxflow`
//! *fails* when the fastest non-oracle kernel stops beating the oracle
//! (>2× at lightning scale) or warm-start stops beating cold restart.
//! `--smoke` shrinks the topologies for CI.

use pcn_graph::generators;
use pcn_graph::maxflow::{Dinic, EdmondsKarp, IncrementalMaxFlow, MaxFlowSolver, PushRelabel};
use pcn_graph::{DiGraph, EdgeId};
use pcn_types::NodeId;
use serde::Serialize;

/// One (topology, kernel) measurement.
#[derive(Serialize)]
struct Record {
    topology: String,
    nodes: usize,
    directed_edges: usize,
    kernel: String,
    pairs: usize,
    iters_per_pair: usize,
    mean_ns_per_pair: u64,
    total_flow: u64,
}

/// Deterministic capacities spanning several orders of magnitude (the
/// satoshi-vs-dollar spread that motivates capacity scaling).
fn capacities(g: &DiGraph) -> Vec<u64> {
    (0..g.edge_count() as u64)
        .map(|i| 1 + (i.wrapping_mul(2_654_435_761) % 1_000_000))
        .collect()
}

/// Deterministic, well-spread source/sink pairs.
fn pairs(n: usize, count: usize) -> Vec<(NodeId, NodeId)> {
    (0..count as u32)
        .map(|i| {
            let s = (i.wrapping_mul(7919) + 1) % n as u32;
            let mut t = (i.wrapping_mul(104_729) + n as u32 / 2) % n as u32;
            if t == s {
                t = (t + 1) % n as u32;
            }
            (NodeId(s), NodeId(t))
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut out = String::from("BENCH_maxflow.json");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => smoke = true,
            "--out" => {
                i += 1;
                out = args.get(i).expect("--out needs a file").clone();
            }
            "--help" | "-h" => {
                eprintln!("usage: maxflow_bench [--smoke] [--out FILE]");
                return;
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    // (name, graph, pair count, timed iterations per pair).
    let topologies: Vec<(&str, DiGraph, usize, usize)> = if smoke {
        vec![
            (
                "watts_strogatz_100",
                generators::watts_strogatz(100, 4, 0.3, 11),
                4,
                1,
            ),
            (
                "lightning_scale_smoke",
                generators::scale_free_with_channels(300, 1200, 17),
                4,
                1,
            ),
        ]
    } else {
        vec![
            (
                "watts_strogatz_500",
                generators::watts_strogatz(500, 8, 0.3, 11),
                8,
                3,
            ),
            (
                "ripple_scale",
                generators::scale_free_with_channels(1870, 8708, 13),
                6,
                3,
            ),
            (
                "lightning_scale",
                generators::scale_free_with_channels(2511, 36_016, 17),
                6,
                3,
            ),
        ]
    };
    let solvers: Vec<Box<dyn MaxFlowSolver>> = vec![
        Box::new(EdmondsKarp),
        Box::new(Dinic::new()),
        Box::new(Dinic::with_capacity_scaling()),
        Box::new(PushRelabel),
    ];

    let mut records: Vec<Record> = Vec::new();
    for (name, g, npairs, iters) in &topologies {
        let caps = capacities(g);
        let st = pairs(g.node_count(), *npairs);
        // Differential check first: every kernel must report the same
        // value on every pair before its timing is worth recording.
        let reference: Vec<u64> = st
            .iter()
            .map(|&(s, t)| solvers[0].max_flow(g, s, t, &caps).value)
            .collect();
        for (si, solver) in solvers.iter().enumerate() {
            // solvers[0] produced the reference; re-running it against
            // itself would double the slowest kernel's untimed work.
            if si > 0 {
                for (&(s, t), &want) in st.iter().zip(&reference) {
                    let got = solver.max_flow(g, s, t, &caps).value;
                    assert_eq!(
                        got,
                        want,
                        "{} disagrees with the oracle on {name} {s}→{t}",
                        solver.name()
                    );
                }
            }
            let wall_start = pcn_proto::wall_now();
            let mut total_flow = 0u64;
            for _ in 0..*iters {
                for &(s, t) in &st {
                    total_flow += solver.max_flow(g, s, t, &caps).value;
                }
            }
            let wall_elapsed = wall_start.elapsed();
            let per_pair = wall_elapsed.as_nanos() / (st.len() as u128 * *iters as u128);
            records.push(Record {
                topology: (*name).to_string(),
                nodes: g.node_count(),
                directed_edges: g.edge_count(),
                kernel: solver.name().to_string(),
                pairs: st.len(),
                iters_per_pair: *iters,
                mean_ns_per_pair: u64::try_from(per_pair).unwrap_or(u64::MAX),
                total_flow: total_flow / *iters as u64,
            });
            println!("{name:>22} {:>14}: {:>12} ns/pair", solver.name(), per_pair);
        }

        // Warm-vs-cold payment-delta workload: one long-lived (s, t)
        // query re-solved after each batch of capacity deltas (the few
        // channels a committed payment debits). `warm-start` keeps the
        // residual graph alive; `cold-restart` rebuilds and re-solves
        // from scratch each batch. Identical per-batch values are
        // asserted, so `total_flow` matches between the two records and
        // the timing gap is pure warm-start savings.
        let batches = if smoke { 24 } else { 48 };
        let deltas_per_batch = 4;
        let (s, t) = st[0];
        let delta_at = |b: u64, j: u64, m: u64| -> (usize, u64) {
            let h = (b * 1_000 + j).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let edge = (h % m) as usize;
            let cap = 1 + ((h >> 17) % 1_000_000);
            (edge, cap)
        };
        let m = g.edge_count() as u64;

        let mut warm = IncrementalMaxFlow::new(g, s, t, &caps);
        let mut warm_values = Vec::with_capacity(batches);
        let wall_warm = pcn_proto::wall_now();
        for b in 0..batches {
            for j in 0..deltas_per_batch {
                let (edge, cap) = delta_at(b as u64, j, m);
                warm.set_capacity(EdgeId(edge as u32), cap);
            }
            warm_values.push(warm.solve().value);
        }
        let warm_ns = wall_warm.elapsed().as_nanos() / batches as u128;
        let warm_total: u64 = warm_values.iter().sum();

        let mut cold_caps = caps.clone();
        let mut cold_total = 0u64;
        let wall_cold = pcn_proto::wall_now();
        for (b, &warm_value) in warm_values.iter().enumerate() {
            for j in 0..deltas_per_batch {
                let (edge, cap) = delta_at(b as u64, j, m);
                cold_caps[edge] = cap;
            }
            let value = IncrementalMaxFlow::new(g, s, t, &cold_caps).solve().value;
            assert_eq!(
                value, warm_value,
                "warm and cold disagree on {name} batch {b}"
            );
            cold_total += value;
        }
        let cold_ns = wall_cold.elapsed().as_nanos() / batches as u128;

        for (kernel, ns, total) in [
            ("warm-start", warm_ns, warm_total),
            ("cold-restart", cold_ns, cold_total),
        ] {
            records.push(Record {
                topology: (*name).to_string(),
                nodes: g.node_count(),
                directed_edges: g.edge_count(),
                kernel: kernel.to_string(),
                pairs: batches,
                iters_per_pair: 1,
                mean_ns_per_pair: u64::try_from(ns).unwrap_or(u64::MAX),
                total_flow: total,
            });
            println!("{name:>22} {kernel:>14}: {ns:>12} ns/batch");
        }
    }

    // One record per line: diffable in review, still a plain JSON array.
    let body: Vec<String> = records
        .iter()
        .map(|r| {
            format!(
                "  {}",
                serde_json::to_string(r).expect("bench record serializes")
            )
        })
        .collect();
    std::fs::write(&out, format!("[\n{}\n]\n", body.join(",\n"))).expect("write bench output");
    println!("wrote {out}");
}
