//! `bench_gate` — fail CI when a regenerated bench regresses against
//! the committed trajectory, or looks physically suspicious.
//!
//! ```text
//! bench_gate <e2e|maxflow|churn|testbed> <committed.json> <regenerated.json>
//! ```
//!
//! Compares the regenerated smoke bench against the committed file
//! (see `flash_bench::gate` for the checks: >25% virtual-metric
//! regressions fail; identical latency percentiles across a ≥4×
//! offered-load spread fail as physically suspicious; the churn sweep
//! must cover ≥3 rates with strictly degrading success; max-flow
//! values must be identical, the fastest non-oracle kernel must beat
//! the Edmonds–Karp oracle — by >2× at lightning scale — and
//! warm-start must beat cold restart; wall-clock deltas only warn). The delta table
//! and findings are printed to stdout and appended to
//! `$GITHUB_STEP_SUMMARY` when that variable is set, so the per-PR
//! deltas are readable from the Actions run page without downloading
//! artifacts. Exits 1 on any failing finding.

use flash_bench::gate::{gate_churn, gate_e2e, gate_maxflow, gate_testbed, GateReport, Severity};
use std::io::Write;

fn render(kind: &str, baseline_path: &str, candidate_path: &str, report: &GateReport) -> String {
    let verdict = if report.passed() {
        "✅ pass"
    } else {
        "❌ FAIL"
    };
    let mut out = format!(
        "## bench_gate {kind}: {verdict}\n\n\
         `{candidate_path}` (regenerated) vs `{baseline_path}` (committed)\n\n{}",
        report.table
    );
    if !report.findings.is_empty() {
        out.push('\n');
        for f in &report.findings {
            let tag = match f.severity {
                Severity::Fail => "❌",
                Severity::Warn => "⚠️",
            };
            out.push_str(&format!("- {tag} {}\n", f.message));
        }
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() != 3 || matches!(args[0].as_str(), "--help" | "-h") {
        eprintln!(
            "usage: bench_gate <e2e|maxflow|churn|testbed> <committed.json> <regenerated.json>"
        );
        std::process::exit(2);
    }
    let (kind, baseline_path, candidate_path) = (&args[0], &args[1], &args[2]);
    let read = |p: &str| {
        std::fs::read_to_string(p).unwrap_or_else(|e| {
            eprintln!("bench_gate: cannot read {p}: {e}");
            std::process::exit(2);
        })
    };
    let baseline = read(baseline_path);
    let candidate = read(candidate_path);
    let report = match kind.as_str() {
        "e2e" => gate_e2e(&baseline, &candidate),
        "maxflow" => gate_maxflow(&baseline, &candidate),
        "churn" => gate_churn(&baseline, &candidate),
        "testbed" => gate_testbed(&baseline, &candidate),
        other => {
            eprintln!("bench_gate: unknown kind {other} (want e2e, maxflow, churn, or testbed)");
            std::process::exit(2);
        }
    }
    .unwrap_or_else(|e| {
        eprintln!("bench_gate: {e}");
        std::process::exit(2);
    });

    let text = render(kind, baseline_path, candidate_path, &report);
    println!("{text}");
    if let Ok(summary) = std::env::var("GITHUB_STEP_SUMMARY") {
        if let Ok(mut f) = std::fs::OpenOptions::new().append(true).open(&summary) {
            let _ = writeln!(f, "{text}");
        }
    }
    if !report.passed() {
        std::process::exit(1);
    }
}
