//! The bench-regression gate: diffs regenerated bench results against
//! the committed `BENCH_e2e.json` / `BENCH_maxflow.json` /
//! `BENCH_churn.json` / `BENCH_testbed.json` trajectories.
//!
//! Two kinds of check:
//!
//! * **Regression deltas** — records are matched on their full
//!   configuration key; a matched pair whose *virtual* (deterministic)
//!   metrics regress by more than [`MAX_REGRESSION`] fails the gate.
//!   For the e2e bench that is delivered throughput down, completion
//!   latency up, or success ratio down. For the max-flow bench the
//!   flow values themselves must be **identical** (they are
//!   deterministic; any drift is a kernel bug), while wall-clock
//!   timings only *warn* — CI runners are too noisy for a hard
//!   wall-time gate. The e2e bench's wall-derived `events_per_sec`
//!   (the hot-loop churn metric) warns on >25% drops for the same
//!   reason.
//! * **Physical suspicion** — result *shapes* that are numerically
//!   valid but physically implausible fail even when they diff
//!   cleanly against an equally suspicious baseline. The canonical
//!   case (and the regression that motivated this gate): identical
//!   completion-latency percentiles across a ≥[`FLAT_LOAD_SPREAD`]×
//!   offered-load spread. The pre-service-queue engine committed
//!   exactly that — bit-identical p50/p95/p99 at 50 and 400 pps —
//!   and nothing diffing the artifact would ever have objected. The
//!   churn bench carries the same kind of check: success must
//!   *strictly* degrade as the churn rate rises across ≥3 rates per
//!   scheme ([`gate_churn`]) — a flat curve means churn events are
//!   not actually reaching the engine. The max-flow bench hard-fails
//!   on within-run wall-time *ratios* (robust to runner speed, unlike
//!   absolute deltas): the fastest non-oracle kernel must beat
//!   Edmonds–Karp everywhere (>2× on the ≥1000-node lightning-scale
//!   topology, the ROADMAP win condition) and warm-start must beat a
//!   cold restart with identical total flow ([`gate_maxflow`]).
//!
//! The library half (this module) is pure string-in/report-out so the
//! gate itself is testable — `crates/bench/tests/gate.rs` replays the
//! flat PR-4 fixture and asserts the gate rejects it. The
//! `bench_gate` binary wraps it with file IO, a Markdown delta table
//! for `$GITHUB_STEP_SUMMARY`, and a process exit code.

use serde::Deserialize;

/// Maximum tolerated relative regression on matched virtual metrics
/// (0.25 = 25%).
pub const MAX_REGRESSION: f64 = 0.25;

/// Minimum offered-load spread (max/min pps within one configuration)
/// above which identical latency percentiles are physically suspicious.
pub const FLAT_LOAD_SPREAD: f64 = 4.0;

/// One record of `BENCH_e2e.json`. Fields added after PR 4 carry
/// `#[serde(default)]` so the gate can still parse historical
/// artifacts (and its own regression-test fixtures).
#[derive(Clone, Debug, Deserialize)]
pub struct E2eRecord {
    /// Scheme label (`Flash`, `Spider`, …).
    pub scheme: String,
    /// Topology size.
    pub nodes: usize,
    /// Trace length.
    pub payments: usize,
    /// Offered load, payments per virtual second.
    pub offered_pps: f64,
    /// Per-hop propagation latency, ms.
    pub hop_latency_ms: u64,
    /// Per-node service time, ms (0 in pre-queue artifacts).
    #[serde(default)]
    pub service_time_ms: u64,
    /// Fraction of payments fully delivered.
    pub success_ratio: f64,
    /// Successful payments per virtual second.
    pub throughput_pps: f64,
    /// Completion-latency percentiles, virtual ms.
    pub p50_latency_ms: f64,
    /// p95 completion latency, virtual ms.
    pub p95_latency_ms: f64,
    /// p99 completion latency, virtual ms.
    pub p99_latency_ms: f64,
    /// Median per-message queueing delay, virtual ms.
    #[serde(default)]
    pub p50_queue_delay_ms: f64,
    /// p95 per-message queueing delay, virtual ms.
    #[serde(default)]
    pub p95_queue_delay_ms: f64,
    /// Peak concurrently in-flight payments.
    pub peak_in_flight: u64,
    /// Peak per-node message backlog.
    #[serde(default)]
    pub peak_backlog: u64,
    /// Busiest node's utilization in `[0, 1]`.
    #[serde(default)]
    pub max_node_utilization: f64,
    /// Settlement events processed.
    pub events: u64,
    /// Virtual makespan, ms.
    pub virtual_makespan_ms: f64,
    /// Wall-clock cost of the simulation, ns (not gated).
    pub wall_ns: u64,
    /// Engine events processed per wall-clock second — the hot-loop
    /// churn metric `des_hot_loop` tracks. Wall-derived, so drops
    /// beyond [`MAX_REGRESSION`] only *warn* (CI hardware varies).
    #[serde(default)]
    pub events_per_sec: f64,
}

impl E2eRecord {
    fn key(&self) -> (String, usize, usize, u64, u64, u64) {
        (
            self.scheme.clone(),
            self.nodes,
            self.payments,
            self.offered_pps.to_bits(),
            self.hop_latency_ms,
            self.service_time_ms,
        )
    }

    /// The configuration group a record sweeps load within.
    fn group(&self) -> (String, usize, usize, u64, u64) {
        (
            self.scheme.clone(),
            self.nodes,
            self.payments,
            self.hop_latency_ms,
            self.service_time_ms,
        )
    }
}

/// One record of `BENCH_churn.json`: one (scheme, churn-rate) point of
/// the success-under-churn trajectory. Counter fields carry
/// `#[serde(default)]` so the gate keeps parsing artifacts from before
/// a counter existed.
#[derive(Clone, Debug, Deserialize)]
pub struct ChurnRecord {
    /// Scheme label (`Flash`, `Spider`, …).
    pub scheme: String,
    /// Topology size.
    pub nodes: usize,
    /// Trace length.
    pub payments: usize,
    /// Offered load, payments per virtual second (fixed within a sweep).
    pub offered_pps: f64,
    /// Channel-close intensity — the sweep variable (crashes and
    /// drains ride along proportionally; see the churn figure module).
    pub closes_per_sec: f64,
    /// Per-hop propagation latency, ms.
    pub hop_latency_ms: u64,
    /// Per-node service time, ms.
    pub service_time_ms: u64,
    /// Fraction of payments fully delivered.
    pub success_ratio: f64,
    /// p95 completion latency, virtual ms.
    pub p95_latency_ms: f64,
    /// Channels closed by churn during the run.
    #[serde(default)]
    pub closed_channels: u64,
    /// Probes bounced off closed channels / crashed nodes.
    #[serde(default)]
    pub stale_probe_failures: u64,
    /// Threshold-triggered re-probes across all routers.
    #[serde(default)]
    pub reprobes_triggered: u64,
    /// Wall-clock cost of the simulation, ns (not gated).
    #[serde(default)]
    pub wall_ns: u64,
}

impl ChurnRecord {
    fn key(&self) -> (String, usize, usize, u64, u64, u64, u64) {
        (
            self.scheme.clone(),
            self.nodes,
            self.payments,
            self.offered_pps.to_bits(),
            self.closes_per_sec.to_bits(),
            self.hop_latency_ms,
            self.service_time_ms,
        )
    }

    /// The configuration group a record sweeps churn within.
    fn group(&self) -> (String, usize, usize, u64, u64, u64) {
        (
            self.scheme.clone(),
            self.nodes,
            self.payments,
            self.offered_pps.to_bits(),
            self.hop_latency_ms,
            self.service_time_ms,
        )
    }
}

/// One record of `BENCH_maxflow.json`.
#[derive(Clone, Debug, Deserialize)]
pub struct MaxflowRecord {
    /// Generator topology name.
    pub topology: String,
    /// Node count.
    pub nodes: usize,
    /// Directed edge count.
    pub directed_edges: usize,
    /// Kernel name (`edmonds-karp`, `dinic`, …).
    pub kernel: String,
    /// Source/sink pairs measured.
    pub pairs: usize,
    /// Timed iterations per pair.
    pub iters_per_pair: usize,
    /// Mean wall time per pair, ns (warn-only: CI hardware varies).
    pub mean_ns_per_pair: u64,
    /// Sum of flow values over the pairs (deterministic; hard-gated).
    pub total_flow: u64,
}

impl MaxflowRecord {
    fn key(&self) -> (String, usize, usize, String, usize, usize) {
        (
            self.topology.clone(),
            self.nodes,
            self.directed_edges,
            self.kernel.clone(),
            self.pairs,
            self.iters_per_pair,
        )
    }
}

/// One record of `BENCH_testbed.json`: one (scheme, scale) scenario run
/// on the event-loop TCP cluster. Wall-derived fields
/// (`events_per_sec`, `wall_ns`) only ever warn; everything else is
/// deterministic for a zero-fault scenario.
#[derive(Clone, Debug, Deserialize)]
pub struct TestbedRecord {
    /// Scheme label (`Flash`, `SP`, …).
    pub scheme: String,
    /// Hosted node count (the ≥200 record is the single-process scale
    /// acceptance check).
    pub nodes: usize,
    /// Trace length.
    pub payments: usize,
    /// Fraction of payments fully delivered.
    pub success_ratio: f64,
    /// Volume delivered, micro-units.
    #[serde(default)]
    pub success_volume_micros: u64,
    /// Fees charged, micro-units.
    #[serde(default)]
    pub fees_micros: u64,
    /// `PROBE` messages serviced cluster-wide.
    pub probe_messages: u64,
    /// `COMMIT` messages serviced cluster-wide.
    pub commit_messages: u64,
    /// Wire frames received cluster-wide.
    pub wire_in: u64,
    /// Wire frames sent cluster-wide.
    pub wire_out: u64,
    /// Micro-units still escrowed at the end of the run (must be 0:
    /// every commit was confirmed or reversed).
    #[serde(default)]
    pub escrow_end: u64,
    /// Largest per-connection frame-queue high-water mark.
    #[serde(default)]
    pub queue_high_water: u64,
    /// Wire frames received per wall second (warn-only: CI varies).
    #[serde(default)]
    pub events_per_sec: f64,
    /// Wall-clock cost of the run, ns (not gated).
    #[serde(default)]
    pub wall_ns: u64,
}

impl TestbedRecord {
    fn key(&self) -> (String, usize, usize) {
        (self.scheme.clone(), self.nodes, self.payments)
    }
}

/// How bad one finding is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Severity {
    /// Gate fails (process exits nonzero).
    Fail,
    /// Reported but not fatal.
    Warn,
}

/// One gate finding.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Fail or warn.
    pub severity: Severity,
    /// Human-readable description.
    pub message: String,
}

/// The gate's verdict: findings plus a Markdown delta table.
#[derive(Clone, Debug, Default)]
pub struct GateReport {
    /// Everything noteworthy, fails first.
    pub findings: Vec<Finding>,
    /// A Markdown table of per-record deltas (for
    /// `$GITHUB_STEP_SUMMARY`).
    pub table: String,
}

impl GateReport {
    /// Whether the gate passes (no [`Severity::Fail`] findings).
    pub fn passed(&self) -> bool {
        self.findings.iter().all(|f| f.severity != Severity::Fail)
    }

    fn fail(&mut self, message: String) {
        self.findings.push(Finding {
            severity: Severity::Fail,
            message,
        });
    }

    fn warn(&mut self, message: String) {
        self.findings.push(Finding {
            severity: Severity::Warn,
            message,
        });
    }

    fn sort(&mut self) {
        self.findings
            .sort_by_key(|f| if f.severity == Severity::Fail { 0 } else { 1 });
    }
}

/// Relative change from `base` to `cand` (`+0.25` = 25% higher); zero
/// when the baseline is zero and the candidate is too.
fn rel_change(base: f64, cand: f64) -> f64 {
    if base == 0.0 {
        if cand == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (cand - base) / base
    }
}

fn pct(x: f64) -> String {
    if x.is_infinite() {
        "new".into()
    } else {
        format!("{:+.1}%", x * 100.0)
    }
}

/// Gates a regenerated e2e bench (`candidate`) against the committed
/// one (`baseline`), both as JSON text. See the module docs for the
/// checks.
pub fn gate_e2e(baseline: &str, candidate: &str) -> Result<GateReport, String> {
    let base: Vec<E2eRecord> =
        serde_json::from_str(baseline).map_err(|e| format!("baseline: {e:?}"))?;
    let cand: Vec<E2eRecord> =
        serde_json::from_str(candidate).map_err(|e| format!("candidate: {e:?}"))?;
    let mut report = GateReport::default();
    report.table.push_str(
        "| scheme | pps | svc ms | throughput (pps) | Δ | p95 latency (ms) | Δ | success | Δ |\n\
         |---|---|---|---|---|---|---|---|---|\n",
    );
    let mut matched = 0usize;
    for c in &cand {
        let Some(b) = base.iter().find(|b| b.key() == c.key()) else {
            report.warn(format!(
                "no committed baseline for {} @ {} pps (nodes {}, service {}ms) — new configuration?",
                c.scheme, c.offered_pps, c.nodes, c.service_time_ms
            ));
            continue;
        };
        matched += 1;
        let d_tput = rel_change(b.throughput_pps, c.throughput_pps);
        let d_p95 = rel_change(b.p95_latency_ms, c.p95_latency_ms);
        let d_ratio = rel_change(b.success_ratio, c.success_ratio);
        report.table.push_str(&format!(
            "| {} | {} | {} | {:.1} → {:.1} | {} | {:.1} → {:.1} | {} | {:.1}% → {:.1}% | {} |\n",
            c.scheme,
            c.offered_pps,
            c.service_time_ms,
            b.throughput_pps,
            c.throughput_pps,
            pct(d_tput),
            b.p95_latency_ms,
            c.p95_latency_ms,
            pct(d_p95),
            b.success_ratio * 100.0,
            c.success_ratio * 100.0,
            pct(d_ratio),
        ));
        if d_tput < -MAX_REGRESSION {
            report.fail(format!(
                "{} @ {} pps: delivered throughput regressed {} ({:.2} → {:.2} pps)",
                c.scheme,
                c.offered_pps,
                pct(d_tput),
                b.throughput_pps,
                c.throughput_pps
            ));
        }
        if d_p95 > MAX_REGRESSION {
            report.fail(format!(
                "{} @ {} pps: p95 completion latency regressed {} ({:.1} → {:.1} ms)",
                c.scheme,
                c.offered_pps,
                pct(d_p95),
                b.p95_latency_ms,
                c.p95_latency_ms
            ));
        }
        if d_ratio < -MAX_REGRESSION {
            report.fail(format!(
                "{} @ {} pps: success ratio regressed {} ({:.1}% → {:.1}%)",
                c.scheme,
                c.offered_pps,
                pct(d_ratio),
                b.success_ratio * 100.0,
                c.success_ratio * 100.0
            ));
        }
        let d_eps = rel_change(b.events_per_sec, c.events_per_sec);
        if b.events_per_sec > 0.0 && c.events_per_sec > 0.0 && d_eps < -MAX_REGRESSION {
            report.warn(format!(
                "{} @ {} pps: engine events/sec down {} ({:.0} → {:.0}) — \
                 hot-loop churn suspect; warn-only (CI hardware varies)",
                c.scheme,
                c.offered_pps,
                pct(d_eps),
                b.events_per_sec,
                c.events_per_sec
            ));
        }
    }
    for b in &base {
        if !cand.iter().any(|c| c.key() == b.key()) {
            report.warn(format!(
                "committed record {} @ {} pps (nodes {}, service {}ms) was not regenerated — lost coverage?",
                b.scheme, b.offered_pps, b.nodes, b.service_time_ms
            ));
        }
    }
    if matched == 0 && !base.is_empty() {
        report.fail(
            "no candidate record matches any committed record — \
             schema or configuration drift; regenerate the committed file"
                .into(),
        );
    }
    check_flat_latency(&cand, &mut report);
    report.sort();
    Ok(report)
}

/// The physical-suspicion check: within one (scheme, topology,
/// latency, service) configuration swept across a ≥4× offered-load
/// spread, *identical* p50/p95/p99 completion latencies mean latency
/// is not responding to load — the pre-service-queue engine's exact
/// failure mode.
fn check_flat_latency(records: &[E2eRecord], report: &mut GateReport) {
    let mut groups: Vec<(String, usize, usize, u64, u64)> = Vec::new();
    for r in records {
        if !groups.contains(&r.group()) {
            groups.push(r.group());
        }
    }
    for g in groups {
        let members: Vec<&E2eRecord> = records.iter().filter(|r| r.group() == g).collect();
        if members.len() < 2 {
            continue;
        }
        let min_pps = members
            .iter()
            .map(|r| r.offered_pps)
            .fold(f64::MAX, f64::min);
        let max_pps = members.iter().map(|r| r.offered_pps).fold(0.0, f64::max);
        if min_pps <= 0.0 || max_pps / min_pps < FLAT_LOAD_SPREAD {
            continue;
        }
        let first = members[0];
        let flat = members.iter().all(|r| {
            r.p50_latency_ms == first.p50_latency_ms
                && r.p95_latency_ms == first.p95_latency_ms
                && r.p99_latency_ms == first.p99_latency_ms
        });
        if flat {
            report.fail(format!(
                "physically suspicious: {} (nodes {}, service {}ms) reports identical \
                 p50/p95/p99 completion latency across a {:.0}× offered-load spread \
                 ({} → {} pps) — latency is not responding to load",
                first.scheme,
                first.nodes,
                first.service_time_ms,
                max_pps / min_pps,
                min_pps,
                max_pps
            ));
        }
    }
}

/// Gates a regenerated churn bench (`candidate`) against the committed
/// one (`baseline`), both as JSON text.
///
/// * **Regressions** — success ratio down >[`MAX_REGRESSION`] on a
///   matched (scheme, churn-rate) pair fails; p95 completion latency
///   only warns (latency tails under churn are legitimately sensitive
///   to re-probing behavior).
/// * **Shape** — within each (scheme, load, topology, delay)
///   configuration, the candidate must sweep **at least three** churn
///   rates and the success ratio must *strictly* decrease as the rate
///   rises. A flat or non-monotone curve fails as physically
///   suspicious: either churn events are not reaching the engine, or
///   the sweep no longer stresses it.
/// * **Zero-churn purity** — a `closes_per_sec = 0` record reporting
///   nonzero churn counters fails: the empty schedule must stay
///   bit-exact.
pub fn gate_churn(baseline: &str, candidate: &str) -> Result<GateReport, String> {
    let base: Vec<ChurnRecord> =
        serde_json::from_str(baseline).map_err(|e| format!("baseline: {e:?}"))?;
    let cand: Vec<ChurnRecord> =
        serde_json::from_str(candidate).map_err(|e| format!("candidate: {e:?}"))?;
    let mut report = GateReport::default();
    report.table.push_str(
        "| scheme | closes/s | success | Δ | p95 latency (ms) | Δ | closed | reprobes |\n\
         |---|---|---|---|---|---|---|---|\n",
    );
    let mut matched = 0usize;
    for c in &cand {
        let Some(b) = base.iter().find(|b| b.key() == c.key()) else {
            report.warn(format!(
                "no committed baseline for {} @ {} closes/s (nodes {}, {} pps) — new configuration?",
                c.scheme, c.closes_per_sec, c.nodes, c.offered_pps
            ));
            continue;
        };
        matched += 1;
        let d_ratio = rel_change(b.success_ratio, c.success_ratio);
        let d_p95 = rel_change(b.p95_latency_ms, c.p95_latency_ms);
        report.table.push_str(&format!(
            "| {} | {} | {:.1}% → {:.1}% | {} | {:.1} → {:.1} | {} | {} | {} |\n",
            c.scheme,
            c.closes_per_sec,
            b.success_ratio * 100.0,
            c.success_ratio * 100.0,
            pct(d_ratio),
            b.p95_latency_ms,
            c.p95_latency_ms,
            pct(d_p95),
            c.closed_channels,
            c.reprobes_triggered,
        ));
        if d_ratio < -MAX_REGRESSION {
            report.fail(format!(
                "{} @ {} closes/s: success ratio regressed {} ({:.1}% → {:.1}%)",
                c.scheme,
                c.closes_per_sec,
                pct(d_ratio),
                b.success_ratio * 100.0,
                c.success_ratio * 100.0
            ));
        }
        if d_p95 > MAX_REGRESSION {
            report.warn(format!(
                "{} @ {} closes/s: p95 completion latency up {} ({:.1} → {:.1} ms) — \
                 warn-only (churn latency tails are re-probing-sensitive)",
                c.scheme,
                c.closes_per_sec,
                pct(d_p95),
                b.p95_latency_ms,
                c.p95_latency_ms
            ));
        }
    }
    for b in &base {
        if !cand.iter().any(|c| c.key() == b.key()) {
            report.warn(format!(
                "committed record {} @ {} closes/s was not regenerated — lost coverage?",
                b.scheme, b.closes_per_sec
            ));
        }
    }
    if matched == 0 && !base.is_empty() {
        report.fail(
            "no candidate record matches any committed record — \
             schema or configuration drift; regenerate the committed file"
                .into(),
        );
    }
    check_churn_shape(&cand, &mut report);
    report.sort();
    Ok(report)
}

/// The churn physical-suspicion check: each configuration must sweep
/// ≥3 churn rates and success must strictly fall as churn rises.
fn check_churn_shape(records: &[ChurnRecord], report: &mut GateReport) {
    let mut groups: Vec<(String, usize, usize, u64, u64, u64)> = Vec::new();
    for r in records {
        if !groups.contains(&r.group()) {
            groups.push(r.group());
        }
    }
    for g in groups {
        let mut members: Vec<&ChurnRecord> = records.iter().filter(|r| r.group() == g).collect();
        members.sort_by_key(|r| r.closes_per_sec.to_bits());
        if members.len() < 3 {
            report.fail(format!(
                "{} (nodes {}, {} pps): only {} churn rate(s) swept — \
                 the shape check needs at least 3",
                members[0].scheme,
                members[0].nodes,
                members[0].offered_pps,
                members.len()
            ));
            continue;
        }
        for w in members.windows(2) {
            let (lo, hi) = (w[0], w[1]);
            if hi.success_ratio >= lo.success_ratio {
                report.fail(format!(
                    "physically suspicious: {} success ratio does not strictly degrade \
                     with churn ({:.1}% @ {} closes/s vs {:.1}% @ {} closes/s) — \
                     churn is not reaching the engine or the sweep no longer stresses it",
                    hi.scheme,
                    lo.success_ratio * 100.0,
                    lo.closes_per_sec,
                    hi.success_ratio * 100.0,
                    hi.closes_per_sec
                ));
            }
        }
        for r in &members {
            if r.closes_per_sec == 0.0 && (r.closed_channels != 0 || r.stale_probe_failures != 0) {
                report.fail(format!(
                    "{}: zero-churn record reports churn activity \
                     ({} closed, {} stale probe failures) — the empty schedule must be exact",
                    r.scheme, r.closed_channels, r.stale_probe_failures
                ));
            }
        }
    }
}

/// Gates a regenerated testbed bench (`candidate`) against the
/// committed one (`baseline`), both as JSON text.
///
/// * **Regressions** — success ratio down >[`MAX_REGRESSION`] on a
///   matched (scheme, nodes, payments) pair fails; probe+commit
///   message growth beyond [`MAX_REGRESSION`] and wall-derived
///   `events_per_sec` drops only warn.
/// * **Conservation** — each candidate record must report
///   `wire_in == wire_out` (every frame sent was received at
///   quiescence) and `escrow_end == 0` (every commit settled). Either
///   violation fails regardless of how the diff looks.
/// * **Scale** — the candidate must include at least one ≥200-node
///   record: the single-process scale acceptance check must stay in
///   the committed trajectory.
/// * **Liveness** — a record with `success_ratio == 0` fails: a trace
///   that exercises no successes measures nothing.
pub fn gate_testbed(baseline: &str, candidate: &str) -> Result<GateReport, String> {
    let base: Vec<TestbedRecord> =
        serde_json::from_str(baseline).map_err(|e| format!("baseline: {e:?}"))?;
    let cand: Vec<TestbedRecord> =
        serde_json::from_str(candidate).map_err(|e| format!("candidate: {e:?}"))?;
    let mut report = GateReport::default();
    report.table.push_str(
        "| scheme | nodes | success | Δ | messages | Δ | events/s | Δ |\n\
         |---|---|---|---|---|---|---|---|\n",
    );
    let mut matched = 0usize;
    for c in &cand {
        let Some(b) = base.iter().find(|b| b.key() == c.key()) else {
            report.warn(format!(
                "no committed baseline for {} @ {} nodes ({} payments) — new configuration?",
                c.scheme, c.nodes, c.payments
            ));
            continue;
        };
        matched += 1;
        let b_msgs = b.probe_messages + b.commit_messages;
        let c_msgs = c.probe_messages + c.commit_messages;
        let d_ratio = rel_change(b.success_ratio, c.success_ratio);
        let d_msgs = rel_change(b_msgs as f64, c_msgs as f64);
        let d_eps = rel_change(b.events_per_sec, c.events_per_sec);
        report.table.push_str(&format!(
            "| {} | {} | {:.1}% → {:.1}% | {} | {} → {} | {} | {:.0} → {:.0} | {} |\n",
            c.scheme,
            c.nodes,
            b.success_ratio * 100.0,
            c.success_ratio * 100.0,
            pct(d_ratio),
            b_msgs,
            c_msgs,
            pct(d_msgs),
            b.events_per_sec,
            c.events_per_sec,
            pct(d_eps),
        ));
        if d_ratio < -MAX_REGRESSION {
            report.fail(format!(
                "{} @ {} nodes: success ratio regressed {} ({:.1}% → {:.1}%)",
                c.scheme,
                c.nodes,
                pct(d_ratio),
                b.success_ratio * 100.0,
                c.success_ratio * 100.0
            ));
        }
        if d_msgs > MAX_REGRESSION {
            report.warn(format!(
                "{} @ {} nodes: probe+commit messages up {} ({} → {}) — \
                 message-budget drift; check probing changes",
                c.scheme,
                c.nodes,
                pct(d_msgs),
                b_msgs,
                c_msgs
            ));
        }
        if b.events_per_sec > 0.0 && c.events_per_sec > 0.0 && d_eps < -MAX_REGRESSION {
            report.warn(format!(
                "{} @ {} nodes: wire events/sec down {} ({:.0} → {:.0}) — \
                 event-loop throughput suspect; warn-only (CI hardware varies)",
                c.scheme,
                c.nodes,
                pct(d_eps),
                b.events_per_sec,
                c.events_per_sec
            ));
        }
    }
    for b in &base {
        if !cand.iter().any(|c| c.key() == b.key()) {
            report.warn(format!(
                "committed record {} @ {} nodes was not regenerated — lost coverage?",
                b.scheme, b.nodes
            ));
        }
    }
    if matched == 0 && !base.is_empty() {
        report.fail(
            "no candidate record matches any committed record — \
             schema or configuration drift; regenerate the committed file"
                .into(),
        );
    }
    check_testbed_shape(&cand, &mut report);
    report.sort();
    Ok(report)
}

/// The testbed physical-suspicion checks: per-record wire conservation
/// and settled escrow, plus the ≥200-node scale record.
fn check_testbed_shape(records: &[TestbedRecord], report: &mut GateReport) {
    for r in records {
        if r.wire_in != r.wire_out {
            report.fail(format!(
                "physically suspicious: {} @ {} nodes sent {} wire frames but received {} — \
                 frames were lost inside a fault-free cluster",
                r.scheme, r.nodes, r.wire_out, r.wire_in
            ));
        }
        if r.escrow_end != 0 {
            report.fail(format!(
                "physically suspicious: {} @ {} nodes ended with {} µ-units still escrowed — \
                 some commit was never confirmed or reversed",
                r.scheme, r.nodes, r.escrow_end
            ));
        }
        if r.success_ratio == 0.0 {
            report.fail(format!(
                "{} @ {} nodes: nothing succeeded — the trace exercises no settlement path",
                r.scheme, r.nodes
            ));
        }
    }
    if !records.is_empty() && !records.iter().any(|r| r.nodes >= 200) {
        report.fail(
            "no ≥200-node record in the candidate — the single-process scale \
             acceptance check is gone from the trajectory"
                .into(),
        );
    }
}

/// Gates a regenerated max-flow bench against the committed one, both
/// as JSON text. Flow values are hard-gated (they are deterministic);
/// wall-clock *deltas* against the baseline only warn. Within-run
/// wall-time ratios hard-fail on shape: the fastest non-oracle kernel
/// must beat the Edmonds–Karp oracle on every topology (by >2× on
/// ≥1000-node lightning-scale topologies), and where a warm-vs-cold
/// pair was recorded, `warm-start` must beat `cold-restart` and carry
/// an identical total flow.
pub fn gate_maxflow(baseline: &str, candidate: &str) -> Result<GateReport, String> {
    let base: Vec<MaxflowRecord> =
        serde_json::from_str(baseline).map_err(|e| format!("baseline: {e:?}"))?;
    let cand: Vec<MaxflowRecord> =
        serde_json::from_str(candidate).map_err(|e| format!("candidate: {e:?}"))?;
    let mut report = GateReport::default();
    report
        .table
        .push_str("| topology | kernel | ns/pair | Δ | total flow |\n|---|---|---|---|---|\n");
    let mut matched = 0usize;
    for c in &cand {
        let Some(b) = base.iter().find(|b| b.key() == c.key()) else {
            report.warn(format!(
                "no committed baseline for {} / {}",
                c.topology, c.kernel
            ));
            continue;
        };
        matched += 1;
        let d_ns = rel_change(b.mean_ns_per_pair as f64, c.mean_ns_per_pair as f64);
        let flow_note = if c.total_flow == b.total_flow {
            format!("{}", c.total_flow)
        } else {
            format!("{} → {} ✗", b.total_flow, c.total_flow)
        };
        report.table.push_str(&format!(
            "| {} | {} | {} → {} | {} | {} |\n",
            c.topology,
            c.kernel,
            b.mean_ns_per_pair,
            c.mean_ns_per_pair,
            pct(d_ns),
            flow_note
        ));
        if c.total_flow != b.total_flow {
            report.fail(format!(
                "{} / {}: total flow drifted {} → {} — kernels are deterministic, \
                 this is a correctness change",
                c.topology, c.kernel, b.total_flow, c.total_flow
            ));
        }
        if d_ns > MAX_REGRESSION {
            report.warn(format!(
                "{} / {}: mean wall time per pair up {} ({} → {} ns) — \
                 warn-only (CI hardware varies)",
                c.topology,
                c.kernel,
                pct(d_ns),
                b.mean_ns_per_pair,
                c.mean_ns_per_pair
            ));
        }
    }
    for b in &base {
        if !cand.iter().any(|c| c.key() == b.key()) {
            report.warn(format!(
                "committed record {} / {} was not regenerated — lost coverage?",
                b.topology, b.kernel
            ));
        }
    }
    if matched == 0 && !base.is_empty() {
        report.fail(
            "no candidate record matches any committed record — \
             schema or configuration drift; regenerate the committed file"
                .into(),
        );
    }

    // Shape checks on the candidate alone (they fail even against
    // itself): the kernels exist to beat the oracle, and warm-start
    // exists to beat a cold restart. Both are wall-time *ratios within
    // one run* on one machine, so unlike the absolute deltas above they
    // are robust to CI hardware variance and can hard-fail.
    let mut topologies: Vec<&str> = Vec::new();
    for c in &cand {
        if !topologies.contains(&c.topology.as_str()) {
            topologies.push(&c.topology);
        }
    }
    for topo in topologies {
        let recs: Vec<&MaxflowRecord> = cand.iter().filter(|c| c.topology == topo).collect();
        let oracle = recs.iter().find(|r| r.kernel == "edmonds-karp");
        let fastest = recs
            .iter()
            .filter(|r| {
                !matches!(
                    r.kernel.as_str(),
                    "edmonds-karp" | "warm-start" | "cold-restart"
                )
            })
            .min_by_key(|r| (r.mean_ns_per_pair, &r.kernel));
        if let (Some(o), Some(f)) = (oracle, fastest) {
            if f.mean_ns_per_pair >= o.mean_ns_per_pair {
                report.fail(format!(
                    "{topo}: fastest kernel {} ({} ns/pair) does not beat the \
                     Edmonds–Karp oracle ({} ns/pair) — the hot path has no \
                     reason to exist; see docs/maxflow.md",
                    f.kernel, f.mean_ns_per_pair, o.mean_ns_per_pair
                ));
            } else if topo.contains("lightning")
                && f.nodes >= 1000
                && f.mean_ns_per_pair.saturating_mul(2) > o.mean_ns_per_pair
            {
                report.fail(format!(
                    "{topo}: fastest kernel {} ({} ns/pair) beats the oracle \
                     ({} ns/pair) by less than 2× at lightning scale — the \
                     ROADMAP win condition regressed",
                    f.kernel, f.mean_ns_per_pair, o.mean_ns_per_pair
                ));
            }
        }
        let warm = recs.iter().find(|r| r.kernel == "warm-start");
        let cold = recs.iter().find(|r| r.kernel == "cold-restart");
        if let (Some(w), Some(c)) = (warm, cold) {
            if w.total_flow != c.total_flow {
                report.fail(format!(
                    "{topo}: warm-start total flow {} != cold-restart total flow {} \
                     — incremental re-solve is computing a different flow",
                    w.total_flow, c.total_flow
                ));
            }
            if w.mean_ns_per_pair >= c.mean_ns_per_pair {
                report.fail(format!(
                    "{topo}: warm-start ({} ns/batch) is not faster than a cold \
                     restart ({} ns/batch) — the incremental path has no reason \
                     to exist",
                    w.mean_ns_per_pair, c.mean_ns_per_pair
                ));
            }
        }
    }
    report.sort();
    Ok(report)
}
