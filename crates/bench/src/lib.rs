//! # flash-bench
//!
//! Shared fixtures for the Criterion benchmarks. Three bench targets:
//!
//! * `kernels` — algorithmic hot paths (BFS, Yen, the max-flow kernels
//!   — Edmonds–Karp, Dinic, flow decomposition — the simplex solver,
//!   Algorithm 1, waterfilling, the wire codec).
//! * `figures` — one representative cell per paper figure, so `cargo
//!   bench` regenerates a reduced-scale version of every experiment and
//!   its runtime budget is tracked over time.
//! * `ablations` — the design-choice ablations called out in DESIGN.md
//!   (random vs. fixed mice path order, lazy vs. exhaustive probing,
//!   max-flow vs. edge-disjoint vs. Yen path finding, LP vs. sequential
//!   fee splits).
//!
//! Plus the binaries:
//!
//! * `maxflow_bench` — compares every `MaxFlowSolver` kernel on the
//!   Watts–Strogatz and Ripple/Lightning generator topologies,
//!   cross-checks their flow values, and writes `BENCH_maxflow.json`.
//! * `e2e_bench` — all five schemes through the discrete-event engine
//!   (propagation latency + per-node service queues) under Poisson
//!   load, writing `BENCH_e2e.json`.
//! * `churn_bench` — the success-under-churn trajectory, writing
//!   `BENCH_churn.json`.
//! * `testbed_bench` — scenario-driven runs on the event-loop TCP
//!   cluster (including the 200-node single-process scale point),
//!   writing `BENCH_testbed.json`.
//! * `bench_gate` — diffs the regenerated smoke benches against the
//!   committed files and fails CI on regressions or physically
//!   suspicious shapes (see [`gate`]).
//!
//! The committed `BENCH_*.json` files are the `--smoke` outputs (so
//! the gate always compares like with like on PR CI); the weekly
//! scheduled workflow regenerates the full-scale trajectory as
//! artifacts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Library code reports through returned values and serialized artifacts,
// never ad-hoc stdout; the experiment/bench binaries print, libraries do not.
#![deny(clippy::dbg_macro, clippy::print_stdout)]

pub mod gate;

use pcn_graph::generators;
use pcn_sim::Network;
use pcn_types::{Amount, NodeId, Payment, TxId};

/// A mid-size scale-free test network (uniform funds).
pub fn bench_network(nodes: usize, seed: u64) -> Network {
    let g = generators::scale_free_with_channels(nodes, nodes * 3, seed);
    Network::uniform(g, Amount::from_units(500))
}

/// A Watts–Strogatz network like the paper's testbed topologies.
pub fn bench_ws_network(nodes: usize, seed: u64) -> Network {
    let g = generators::watts_strogatz(nodes, 4, 0.3, seed);
    Network::uniform(g, Amount::from_units(1200))
}

/// A deterministic payment between two pseudo-random nodes.
pub fn bench_payment(net: &Network, amount_units: u64, seed: u64) -> Payment {
    let n = net.graph().node_count() as u32;
    let s = NodeId(seed as u32 % n);
    let mut t = NodeId((seed as u32 * 7 + n / 2) % n);
    if s == t {
        t = NodeId((t.0 + 1) % n);
    }
    Payment::new(TxId(seed), s, t, Amount::from_units(amount_units))
}
