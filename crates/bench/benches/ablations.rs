//! Design-choice ablations called out in DESIGN.md. Each bench reports
//! throughput of the variant; the companion assertions live in the
//! integration tests — here we quantify the *cost* of each choice.

use criterion::{criterion_group, criterion_main, Criterion};
use flash_bench::{bench_network, bench_payment};
use flash_core::flash::elephant::{self, PathProber, ProbedChannel};
use flash_core::flash::fees;
use flash_core::{FlashConfig, FlashRouter};
use pcn_graph::{disjoint, yen, Path};
use pcn_sim::{Network, Router};
use pcn_types::{Amount, PaymentClass};
use std::hint::black_box;

/// Ablation: mice path order — Flash randomizes "to better load balance
/// [paths] without knowing their instantaneous capacities"; the
/// alternative is a fixed (shortest-first) order. We measure end-to-end
/// routing throughput of both; success-volume comparisons live in
/// EXPERIMENTS.md.
fn ablation_mice_order(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_mice_order");
    // Fixed order is emulated by seeding the RNG identically every
    // payment (seed 0 reshuffles, but deterministically); random order
    // is the default router behaviour.
    for (label, seed) in [("random", 1u64), ("fixed_seed", 0u64)] {
        group.bench_function(label, |b| {
            b.iter_batched(
                || bench_network(200, 3),
                |mut net| {
                    let mut router = FlashRouter::new(FlashConfig {
                        elephant_threshold: Amount::MAX,
                        seed,
                        ..Default::default()
                    });
                    for i in 0..50 {
                        let p = bench_payment(&net, 400, i);
                        black_box(router.route(&mut net, &p, PaymentClass::Mice));
                    }
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

/// A prober that answers from a full snapshot without charging per-path
/// messages — the "probe everything up front" strawman the paper
/// rejects for its overhead.
struct SnapshotProber {
    caps: Vec<Amount>,
    fees: Vec<pcn_types::FeePolicy>,
    graph: pcn_graph::DiGraph,
}

impl PathProber for SnapshotProber {
    fn probe_path_channels(&mut self, path: &Path) -> Option<Vec<ProbedChannel>> {
        Some(
            path.channels()
                .map(|(u, v)| {
                    let e = self.graph.edge(u, v).expect("edge");
                    ProbedChannel {
                        capacity: self.caps[e.index()],
                        fee: self.fees[e.index()],
                        reverse_capacity: None,
                    }
                })
                .collect(),
        )
    }
}

/// Ablation: lazy per-path probing (Flash) vs. snapshot-based search.
fn ablation_probe_policy(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_probe_policy");
    group.bench_function("lazy_probing", |b| {
        b.iter_batched(
            || bench_network(300, 5),
            |mut net| {
                let p = bench_payment(&net, 3000, 7);
                black_box(elephant::find_paths(
                    &mut net, p.sender, p.receiver, p.amount, 20,
                ))
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_function("snapshot", |b| {
        b.iter_batched(
            || {
                let net = bench_network(300, 5);
                let graph = net.graph().clone();
                let caps: Vec<Amount> = graph.edges().map(|(e, _, _)| net.balance(e)).collect();
                let fees: Vec<pcn_types::FeePolicy> =
                    graph.edges().map(|(e, _, _)| net.fee_policy(e)).collect();
                (net, SnapshotProber { caps, fees, graph })
            },
            |(net, mut prober)| {
                let p = bench_payment(&net, 3000, 7);
                let g = net.graph().clone();
                black_box(elephant::find_paths_with(
                    &g,
                    &mut prober,
                    p.sender,
                    p.receiver,
                    p.amount,
                    20,
                ))
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

/// Ablation: path finding — Flash's residual max-flow search vs. the
/// strawmen of Figure 5 (k simple shortest via Yen, k edge-disjoint).
fn ablation_pathfind(c: &mut Criterion) {
    let net = bench_network(300, 9);
    let g = net.graph().clone();
    let p = bench_payment(&net, 3000, 11);
    let mut group = c.benchmark_group("ablation_pathfind");
    group.bench_function("flash_residual_maxflow", |b| {
        b.iter_batched(
            || net.clone(),
            |mut n| {
                black_box(elephant::find_paths(
                    &mut n, p.sender, p.receiver, p.amount, 20,
                ))
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_function("yen_k20", |b| {
        b.iter(|| black_box(yen::k_shortest_paths_hops(&g, p.sender, p.receiver, 20)))
    });
    group.bench_function("edge_disjoint_k20", |b| {
        b.iter(|| black_box(disjoint::edge_disjoint_paths(&g, p.sender, p.receiver, 20)))
    });
    group.finish();
}

/// Ablation: the fee-minimizing LP vs. sequential filling on an
/// identical elephant plan (Figure 9's mechanism, timed).
fn ablation_fee_split(c: &mut Criterion) {
    let mut net = bench_network(300, 13);
    pcn_workload::topology::assign_paper_fees(&mut net, 15);
    let p = bench_payment(&net, 1500, 17);
    let plan = {
        let mut scratch: Network = net.clone();
        elephant::find_paths(&mut scratch, p.sender, p.receiver, p.amount, 20)
    };
    let demand = plan.max_flow.min(p.amount);
    if demand.is_zero() {
        return; // disconnected draw; nothing to measure
    }
    let g = net.graph().clone();
    let mut group = c.benchmark_group("ablation_fee_split");
    group.bench_function("lp_optimized", |b| {
        b.iter(|| black_box(fees::split_payment(&g, &plan, demand, true)))
    });
    group.bench_function("sequential", |b| {
        b.iter(|| black_box(fees::split_payment(&g, &plan, demand, false)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = ablation_mice_order, ablation_probe_policy, ablation_pathfind, ablation_fee_split
}
criterion_main!(benches);
