//! One representative cell per paper figure, at reduced scale, so
//! `cargo bench` re-exercises every experiment path end-to-end. (The
//! full sweeps are `flash-repro`'s job; see EXPERIMENTS.md.)

use criterion::{criterion_group, criterion_main, Criterion};
use flash_core::classify::threshold_for_mice_fraction;
use pcn_experiments::harness::{run_scheme, Effort, SimScheme, Topo, DEFAULT_MICE_FRACTION};
use pcn_proto::{Cluster, SchemeKind, TestbedRunner};
use pcn_types::Amount;
use pcn_workload::stats::{daily_recurrence, top_fraction_volume_share};
use pcn_workload::trace::{generate_trace, TraceConfig};
use pcn_workload::{testbed_topology, SizeModel};
use std::hint::black_box;

fn fig3_size_cdf(c: &mut Criterion) {
    c.bench_function("fig3_size_sampling_10k", |b| {
        b.iter(|| {
            let s = SizeModel::RippleUsd.sample_many(10_000, 3);
            let units: Vec<f64> = s.iter().map(|a| a.as_units_f64()).collect();
            black_box(top_fraction_volume_share(&units, 0.1))
        })
    });
}

fn fig4_recurrence(c: &mut Criterion) {
    let g = pcn_graph::generators::scale_free_with_channels(150, 600, 5);
    c.bench_function("fig4_recurrence_8k_trace", |b| {
        b.iter(|| {
            let mut cfg = TraceConfig::ripple(8_000, 7);
            cfg.require_connectivity = false;
            let trace = generate_trace(&g, &cfg);
            black_box(daily_recurrence(&trace, 400))
        })
    });
}

/// One (scheme, cell) simulation run shared by the Figures 6–10 benches.
fn sim_cell(scheme: SimScheme, mice_fraction: f64) -> f64 {
    let mut net = Topo::Ripple.build_network(Effort::Quick, 11);
    net.scale_balances(10);
    let trace = Topo::Ripple.build_trace(&net, 120, 13);
    run_scheme(&net, scheme, &trace, mice_fraction, 17)
        .success_volume()
        .as_units_f64()
}

fn fig6_capacity_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_cell");
    for scheme in [
        SimScheme::Flash,
        SimScheme::Spider,
        SimScheme::SpeedyMurmurs,
        SimScheme::ShortestPath,
    ] {
        group.bench_function(scheme.label(), |b| {
            b.iter(|| black_box(sim_cell(scheme, DEFAULT_MICE_FRACTION)))
        });
    }
    group.finish();
}

fn fig7_load_sweep(c: &mut Criterion) {
    c.bench_function("fig7_cell_flash_high_load", |b| {
        b.iter(|| {
            let mut net = Topo::Ripple.build_network(Effort::Quick, 19);
            net.scale_balances(10);
            let trace = Topo::Ripple.build_trace(&net, 240, 23);
            black_box(run_scheme(&net, SimScheme::Flash, &trace, 0.9, 29).success_ratio())
        })
    });
}

fn fig8_probe_overhead(c: &mut Criterion) {
    c.bench_function("fig8_cell_probe_comparison", |b| {
        b.iter(|| {
            let flash = sim_cell(SimScheme::Flash, DEFAULT_MICE_FRACTION);
            let spider = sim_cell(SimScheme::Spider, DEFAULT_MICE_FRACTION);
            black_box((flash, spider))
        })
    });
}

fn fig9_fee_opt(c: &mut Criterion) {
    c.bench_function("fig9_cell_fee_ratio", |b| {
        b.iter(|| {
            let mut net = Topo::Ripple.build_network(Effort::Quick, 31);
            net.scale_balances(10);
            let net = pcn_experiments::harness::with_paper_fees(&net, 37);
            let trace = Topo::Ripple.build_trace(&net, 120, 41);
            let with = run_scheme(&net, SimScheme::Flash, &trace, 0.9, 43);
            let without = run_scheme(&net, SimScheme::FlashNoFeeOpt, &trace, 0.9, 43);
            black_box((with.fee_ratio_percent(), without.fee_ratio_percent()))
        })
    });
}

fn fig10_threshold(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10_cell");
    for frac in [0.0, 0.9] {
        group.bench_function(format!("mice_{}pct", (frac * 100.0) as u32), |b| {
            b.iter(|| black_box(sim_cell(SimScheme::Flash, frac)))
        });
    }
    group.finish();
}

fn fig11_mice_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11_cell");
    for m in [0usize, 4] {
        group.bench_function(format!("m_{m}"), |b| {
            b.iter(|| black_box(sim_cell(SimScheme::FlashWithM(m), 1.0)))
        });
    }
    group.finish();
}

fn testbed_cell(nodes: usize, scheme: SchemeKind) -> f64 {
    let topo = testbed_topology(nodes, 1000, 1500, 53);
    let graph = topo.graph().clone();
    let balances: Vec<Amount> = graph.edges().map(|(e, _, _)| topo.balance(e)).collect();
    let cluster = Cluster::launch(graph, &balances).expect("launch");
    let trace = generate_trace(cluster.graph(), &TraceConfig::ripple(30, 59));
    let amounts: Vec<Amount> = trace.iter().map(|p| p.amount).collect();
    let threshold = threshold_for_mice_fraction(&amounts, 0.9);
    let mut runner = TestbedRunner::new(cluster, scheme, threshold, 61);
    runner.run_trace(&trace).success_volume.as_units_f64()
}

fn fig12_testbed50(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12_cell_20n");
    group.sample_size(10);
    for scheme in [
        SchemeKind::Flash,
        SchemeKind::Spider,
        SchemeKind::ShortestPath,
    ] {
        group.bench_function(scheme.name(), |b| {
            b.iter(|| black_box(testbed_cell(20, scheme)))
        });
    }
    group.finish();
}

fn fig13_testbed100(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig13_cell_30n");
    group.sample_size(10);
    group.bench_function("Flash", |b| {
        b.iter(|| black_box(testbed_cell(30, SchemeKind::Flash)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = fig3_size_cdf, fig4_recurrence, fig6_capacity_sweep, fig7_load_sweep,
              fig8_probe_overhead, fig9_fee_opt, fig10_threshold, fig11_mice_paths,
              fig12_testbed50, fig13_testbed100
}
criterion_main!(benches);
