//! `des_hot_loop` — events/sec through the DES engine's hot loop.
//!
//! Drives one full `run_scheme_des` sweep (Watts–Strogatz testbed,
//! Poisson arrivals, per-hop latency + per-node service queues) and
//! measures how fast the engine chews through its event stream. This
//! is the bench that the P1 hot-path-alloc fixes (scratch-buffer
//! reuse in `probe_path`, part-edge pooling, `mem::take` on metrics)
//! have to move: the virtual-time results are identical before and
//! after, so events/sec is the whole story.
//!
//! Besides the criterion ns/iter line, the bench prints a
//! `des_hot_loop events/sec: N` line derived from a dedicated timed
//! run — `e2e_bench` records the same metric per (scheme, load) into
//! `BENCH_e2e.json`, where `bench_gate` watches it (warn-only, since
//! it is wall-derived).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pcn_experiments::harness::{run_scheme_des, DesLoad, DEFAULT_MICE_FRACTION};
use pcn_experiments::SimScheme;
use pcn_sim::{ChurnRate, LatencyModel, Network, ServiceModel};
use pcn_types::Payment;
use pcn_workload::testbed_topology;
use pcn_workload::trace::{generate_trace, TraceConfig};

const NODES: usize = 100;
const PAYMENTS: usize = 400;
const SEED: u64 = 1009;

fn load() -> DesLoad {
    DesLoad {
        rate_per_sec: 200.0,
        latency: LatencyModel::constant_ms(25),
        service: ServiceModel::constant_ms(10),
        churn: ChurnRate::zero(),
    }
}

fn fixture() -> (Network, Vec<Payment>) {
    let net = testbed_topology(NODES, 1000, 1500, SEED);
    let trace = generate_trace(net.graph(), &TraceConfig::ripple(PAYMENTS, SEED + 7));
    (net, trace)
}

fn bench_hot_loop(c: &mut Criterion) {
    let (net, trace) = fixture();

    // Wall-derived events/sec over a handful of runs: the headline
    // number for the allocation-churn fixes.
    let mut events = 0u64;
    let wall = pcn_proto::wall_now();
    const RUNS: u32 = 3;
    for _ in 0..RUNS {
        let report = run_scheme_des(
            &net,
            SimScheme::ShortestPath,
            &trace,
            DEFAULT_MICE_FRACTION,
            SEED + 31,
            load(),
        );
        events += report.events;
    }
    let secs = wall.elapsed().as_secs_f64();
    if secs > 0.0 {
        println!(
            "des_hot_loop events/sec: {:.0} ({} events over {} runs)",
            events as f64 / secs,
            events,
            RUNS
        );
    }

    c.bench_function("des_hot_loop_100n_400p_shortest", |b| {
        b.iter(|| {
            black_box(run_scheme_des(
                &net,
                SimScheme::ShortestPath,
                &trace,
                DEFAULT_MICE_FRACTION,
                SEED + 31,
                load(),
            ))
        })
    });
    c.bench_function("des_hot_loop_100n_400p_flash", |b| {
        b.iter(|| {
            black_box(run_scheme_des(
                &net,
                SimScheme::Flash,
                &trace,
                DEFAULT_MICE_FRACTION,
                SEED + 31,
                load(),
            ))
        })
    });
}

criterion_group!(benches, bench_hot_loop);
criterion_main!(benches);
