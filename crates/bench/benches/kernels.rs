//! Microbenchmarks of the algorithmic kernels.

use criterion::{criterion_group, criterion_main, Criterion};
use flash_bench::{bench_network, bench_payment};
use flash_core::flash::elephant;
use flash_core::spider::waterfill;
use pcn_graph::{bfs, disjoint, maxflow, yen, DiGraph};
use pcn_lp::{Cmp, LinearProgram};
use pcn_proto::{Message, MsgType};
use pcn_types::{Amount, NodeId};
use std::hint::black_box;

fn graph_kernels(c: &mut Criterion) {
    let net = bench_network(500, 1);
    let g: &DiGraph = net.graph();
    let s = NodeId(0);
    let t = NodeId(250);

    c.bench_function("bfs_shortest_path_500n", |b| {
        b.iter(|| black_box(bfs::shortest_path(g, s, t)))
    });
    c.bench_function("yen_k4_500n", |b| {
        b.iter(|| black_box(yen::k_shortest_paths_hops(g, s, t, 4)))
    });
    c.bench_function("edge_disjoint_k4_500n", |b| {
        b.iter(|| black_box(disjoint::edge_disjoint_paths(g, s, t, 4)))
    });
    let caps: Vec<u64> = (0..g.edge_count() as u64).map(|i| 1 + i % 100).collect();
    c.bench_function("edmonds_karp_500n", |b| {
        b.iter(|| black_box(maxflow::edmonds_karp(g, s, t, &caps).value))
    });
    c.bench_function("dinic_500n", |b| {
        b.iter(|| black_box(maxflow::dinic(g, s, t, &caps).value))
    });
    c.bench_function("dinic_scaling_500n", |b| {
        b.iter(|| black_box(maxflow::dinic_scaling(g, s, t, &caps).value))
    });
    c.bench_function("push_relabel_500n", |b| {
        b.iter(|| black_box(maxflow::push_relabel(g, s, t, &caps).value))
    });
    c.bench_function("warm_restart_4deltas_500n", |b| {
        // One capacity nudge per solve — the ElephantOracle /
        // WarmFlowBound pattern of repeated max-flow queries against a
        // slowly drifting network.
        b.iter_batched(
            || maxflow::IncrementalMaxFlow::new(g, s, t, &caps),
            |mut inc| {
                for round in 0..4u64 {
                    let e = pcn_graph::EdgeId(((round * 7919) % g.edge_count() as u64) as u32);
                    inc.set_capacity(e, 1 + round * 50);
                    black_box(inc.solve().value);
                }
            },
            criterion::BatchSize::LargeInput,
        )
    });
    c.bench_function("flow_decompose_500n", |b| {
        let mf = maxflow::dinic(g, s, t, &caps);
        b.iter(|| black_box(maxflow::decompose_into_paths(g, s, t, &mf)))
    });
}

fn algorithm1(c: &mut Criterion) {
    c.bench_function("flash_algorithm1_k20_500n", |b| {
        b.iter_batched(
            || bench_network(500, 2),
            |mut net| {
                let p = bench_payment(&net, 5000, 3);
                black_box(elephant::find_paths(
                    &mut net, p.sender, p.receiver, p.amount, 20,
                ))
            },
            criterion::BatchSize::LargeInput,
        )
    });
}

fn lp_solver(c: &mut Criterion) {
    // The fee-minimization LP at Flash's real size: 20 path variables,
    // ~60 channel constraints.
    c.bench_function("simplex_20v_60c", |b| {
        b.iter(|| {
            let mut lp =
                LinearProgram::minimize((0..20).map(|i| 1.0 + (i % 7) as f64 * 0.1).collect());
            lp.constrain(vec![1.0; 20], Cmp::Eq, 50.0);
            for j in 0..60usize {
                let row: Vec<f64> = (0..20)
                    .map(|i| if (i + j) % 3 == 0 { 1.0 } else { 0.0 })
                    .collect();
                lp.constrain(row, Cmp::Le, 10.0 + (j % 5) as f64);
            }
            black_box(lp.solve().ok())
        })
    });
}

fn waterfilling(c: &mut Criterion) {
    let caps: Vec<Amount> = (0..4).map(|i| Amount::from_units(100 + i * 37)).collect();
    c.bench_function("spider_waterfill_4paths", |b| {
        b.iter(|| black_box(waterfill(&caps, Amount::from_units(260))))
    });
}

fn wire_codec(c: &mut Criterion) {
    let msg = Message {
        trans_id: 77,
        msg_type: MsgType::Probe,
        pos: 2,
        path: (0..12).collect(),
        capacities: (0..11).map(|i| 1_000_000 + i).collect(),
        commit: 123_456,
    };
    c.bench_function("wire_encode", |b| b.iter(|| black_box(msg.encode())));
    let frame = msg.encode().slice(4..);
    c.bench_function("wire_decode", |b| {
        b.iter(|| black_box(Message::decode(frame.clone()).unwrap()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = graph_kernels, algorithm1, lp_solver, waterfilling, wire_codec
}
criterion_main!(benches);
