//! The discrete-event executor.
//!
//! [`DesEngine::run`] admits payments from a timed workload (see
//! `pcn_workload::arrivals` for Poisson and trace-replay arrival
//! processes), drives the scheme's [`Router`] against the
//! [`DesNetwork`] backend at each arrival instant, and drains the
//! settlement queue at the end. Because settlement is delayed, payments
//! whose arrival spacing is shorter than their settlement latency are
//! genuinely concurrent: they contend for escrowed balance, their
//! probes go stale, and the run reports a nonzero peak in-flight count.
//!
//! Runs are bit-reproducible: the only sources of ordering are the
//! sorted arrival list (ties broken by position) and the
//! [event queue](super::queue)'s `(time, insertion)` order, and nothing
//! reads a wall clock.

use super::network::{DesConfig, DesNetwork};
use super::time::SimTime;
use crate::{Metrics, Network, Router};
use pcn_types::{Amount, Payment};
use serde::{Deserialize, Serialize};

/// The result of one discrete-event run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DesReport {
    /// The usual simulation metrics (success ratio, volume, messages)
    /// plus the completion-latency histogram
    /// ([`Metrics::latency`](crate::Metrics)).
    pub metrics: Metrics,
    /// Maximum number of concurrently in-flight payments observed.
    pub peak_in_flight: u64,
    /// Settlement events processed (a determinism fingerprint: two runs
    /// with the same seed must agree on this exactly).
    pub events: u64,
    /// Virtual time from the first arrival to the last settlement.
    pub makespan: SimTime,
    /// Successful payments per virtual second
    /// (`succeeded / makespan`; zero for an empty or instant run).
    pub throughput_pps: f64,
    /// Highest number of messages simultaneously queued (waiting + in
    /// service) at any single node. Zero under the zero-service
    /// default (no queues form — see [`node`](super::node)).
    #[serde(default)]
    pub peak_backlog: u64,
    /// The busiest node's utilization: its accumulated service time
    /// over the makespan, in `[0, 1]`. Approaches 1 as that node
    /// saturates — the congestion knee. Zero under the zero-service
    /// default.
    #[serde(default)]
    pub max_node_utilization: f64,
    /// Churn: close events applied to channels that were open
    /// ([`DesNetwork::closed_channels`]). Zero without a schedule.
    #[serde(default)]
    pub closed_channels: u64,
    /// Churn: probes bounced mid-walk by a closed channel or a down
    /// node ([`DesNetwork::stale_probe_failures`]).
    #[serde(default)]
    pub stale_probe_failures: u64,
    /// Times a router crossed its staleness threshold and refreshed its
    /// topology knowledge ([`DesNetwork::reprobes_triggered`]).
    #[serde(default)]
    pub reprobes_triggered: u64,
}

impl DesReport {
    /// Completion-latency quantile in virtual milliseconds (successful
    /// payments only). `q` in `[0, 1]`; zero when nothing succeeded.
    pub fn latency_ms(&self, q: f64) -> f64 {
        self.metrics.latency.quantile_us(q) as f64 / 1_000.0
    }

    /// Per-message queueing-delay quantile in virtual milliseconds
    /// (time spent waiting behind node backlogs;
    /// [`Metrics::queue_delay`](crate::Metrics)). `q` in `[0, 1]`;
    /// zero when no message was serviced by a nonzero-service node.
    pub fn queue_delay_ms(&self, q: f64) -> f64 {
        self.metrics.queue_delay.quantile_us(q) as f64 / 1_000.0
    }

    /// Mean per-message queueing delay in virtual milliseconds.
    pub fn mean_queue_delay_ms(&self) -> f64 {
        self.metrics.queue_delay.mean_us() / 1_000.0
    }
}

/// The discrete-event engine: a [`DesNetwork`] plus the arrival loop.
pub struct DesEngine {
    net: DesNetwork,
}

impl DesEngine {
    /// Wraps `net` in a fresh engine at virtual time zero.
    pub fn new(net: Network, config: DesConfig) -> Self {
        DesEngine {
            net: DesNetwork::new(net, config),
        }
    }

    /// The underlying time-aware backend.
    pub fn network(&self) -> &DesNetwork {
        &self.net
    }

    /// Drains all pending settlements and returns the backend.
    pub fn into_network(mut self) -> DesNetwork {
        self.net.drain_all();
        self.net
    }

    /// Runs one timed workload to completion.
    ///
    /// Arrivals are admitted in `(time, position)` order (the slice need
    /// not be pre-sorted; sorting is stable so equal-time payments keep
    /// their order). Each payment is classified against
    /// `elephant_threshold` and routed at its arrival instant; the
    /// settlement queue is fully drained before the report is built.
    ///
    /// The engine is one continuing virtual world: a second `run` on
    /// the same engine keeps the clock, balances, and event counter.
    /// The **metrics are moved into the report** (no per-run clone of
    /// the latency histograms), so each report covers exactly its own
    /// workload's attempts while the makespan of a second run is still
    /// measured from that run's earliest arrival over the shared
    /// clock. Build a fresh engine per independent run.
    // pcn-lint: hot — the DES executor: everything it reaches is per-event
    pub fn run<R>(
        &mut self,
        router: &mut R,
        workload: &[(SimTime, Payment)],
        elephant_threshold: Amount,
    ) -> DesReport
    where
        R: Router<DesNetwork> + ?Sized,
    {
        // pcn-lint: allow(hot-alloc) — one sort scratch per run, not per event
        let mut order: Vec<usize> = (0..workload.len()).collect();
        order.sort_by_key(|&i| workload[i].0);
        let first_arrival = order
            .first()
            .map(|&i| workload[i].0)
            .unwrap_or(SimTime::ZERO);
        for &i in &order {
            let (t, p) = &workload[i];
            self.net.advance_to(*t);
            let class = p.classify(elephant_threshold);
            router.route(&mut self.net, p, class);
        }
        self.net.drain_all();
        let makespan = self.net.horizon().saturating_sub(first_arrival);
        let metrics = self.net.take_metrics();
        let succeeded = metrics.total().succeeded;
        let secs = makespan.as_secs_f64();
        let throughput_pps = if secs > 0.0 {
            succeeded as f64 / secs
        } else {
            0.0
        };
        DesReport {
            metrics,
            peak_in_flight: self.net.peak_in_flight(),
            events: self.net.events_delivered(),
            makespan,
            throughput_pps,
            peak_backlog: self.net.service_queues().peak_backlog(),
            max_node_utilization: self.net.service_queues().max_utilization(makespan),
            closed_channels: self.net.closed_channels(),
            stale_probe_failures: self.net.stale_probe_failures(),
            reprobes_triggered: self.net.reprobes_triggered(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::des::{LatencyModel, ServiceModel};
    use crate::{FailureReason, PaymentNetwork, RouteOutcome};
    use pcn_graph::{DiGraph, Path};
    use pcn_types::{NodeId, PaymentClass, TxId};

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    fn line_net() -> Network {
        let mut g = DiGraph::new(4);
        g.add_channel(n(0), n(1)).unwrap();
        g.add_channel(n(1), n(2)).unwrap();
        g.add_channel(n(2), n(3)).unwrap();
        Network::uniform(g, Amount::from_units(10))
    }

    /// A one-path router: sends the full amount along 0→1→2→3.
    struct LineRouter;

    impl Router<DesNetwork> for LineRouter {
        fn name(&self) -> &'static str {
            "Line"
        }

        fn route(
            &mut self,
            net: &mut DesNetwork,
            payment: &Payment,
            class: PaymentClass,
        ) -> RouteOutcome {
            let path = Path::new(vec![n(0), n(1), n(2), n(3)], None).unwrap();
            match net.send_single_path(payment, class, &path) {
                out @ RouteOutcome::Success { .. } => out,
                _ => RouteOutcome::failure(FailureReason::InsufficientCapacity),
            }
        }
    }

    fn workload(gap_ms: u64, count: u64, amount: u64) -> Vec<(SimTime, Payment)> {
        (0..count)
            .map(|i| {
                (
                    SimTime::from_millis(i * gap_ms),
                    Payment::new(TxId(i), n(0), n(3), Amount::from_units(amount)),
                )
            })
            .collect()
    }

    fn config() -> DesConfig {
        DesConfig {
            latency: LatencyModel::constant_ms(10),
            check_conservation: true,
            ..DesConfig::default()
        }
    }

    #[test]
    fn widely_spaced_arrivals_never_overlap() {
        let mut engine = DesEngine::new(line_net(), config());
        // 3-hop settlement finishes ~90ms after arrival; 1s spacing.
        // 5 × 2 units exactly drains the 10-unit forward direction.
        let report = engine.run(&mut LineRouter, &workload(1000, 5, 2), Amount::MAX);
        assert_eq!(report.metrics.total().attempted, 5);
        assert_eq!(report.metrics.total().succeeded, 5);
        assert_eq!(report.peak_in_flight, 1);
    }

    #[test]
    fn tight_arrivals_overlap_and_contend() {
        let mut engine = DesEngine::new(line_net(), config());
        // 5 payments of 4 units back-to-back: the line holds 10, so at
        // most two fit before settlement returns capacity.
        let report = engine.run(&mut LineRouter, &workload(1, 5, 4), Amount::MAX);
        assert!(report.peak_in_flight > 1, "expected overlapping payments");
        assert!(
            report.metrics.total().succeeded < 5,
            "contention must fail some payments"
        );
        let net = engine.into_network();
        assert_eq!(net.conserved_total_micros(), net.initial_total_micros());
    }

    #[test]
    fn same_workload_same_report() {
        let run = || {
            let mut engine = DesEngine::new(line_net(), config());
            engine.run(&mut LineRouter, &workload(3, 20, 3), Amount::MAX)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn unsorted_workload_is_admitted_in_time_order() {
        let mut w = workload(10, 6, 2);
        w.reverse();
        let mut a = DesEngine::new(line_net(), config());
        let ra = a.run(&mut LineRouter, &w, Amount::MAX);
        w.reverse();
        let mut b = DesEngine::new(line_net(), config());
        let rb = b.run(&mut LineRouter, &w, Amount::MAX);
        assert_eq!(ra, rb);
    }

    #[test]
    fn empty_workload_is_a_clean_noop() {
        let mut engine = DesEngine::new(line_net(), config());
        let report = engine.run(&mut LineRouter, &[], Amount::MAX);
        assert_eq!(report.metrics.total().attempted, 0);
        assert_eq!(report.events, 0);
        assert_eq!(report.makespan, SimTime::ZERO);
        assert_eq!(report.throughput_pps, 0.0);
    }

    #[test]
    fn service_queues_make_latency_respond_to_load() {
        // Same workload, compressed arrival gaps: with a nonzero
        // per-node service time the tighter spacing piles messages onto
        // the line's nodes and completion latency must rise. Amounts of
        // 1 unit never exhaust the 10-unit channels, so success is
        // identical across loads and only queueing moves.
        let run = |gap_ms: u64| {
            let mut engine = DesEngine::new(
                line_net(),
                DesConfig {
                    latency: LatencyModel::constant_ms(10),
                    service: ServiceModel::constant_ms(8),
                    check_conservation: true,
                    ..DesConfig::default()
                },
            );
            engine.run(&mut LineRouter, &workload(gap_ms, 8, 1), Amount::MAX)
        };
        let relaxed = run(2000);
        let loaded = run(1);
        assert_eq!(relaxed.metrics.total().succeeded, 8);
        assert_eq!(loaded.metrics.total().succeeded, 8);
        assert_eq!(relaxed.peak_backlog, 1, "spaced arrivals never queue");
        assert!(
            loaded.peak_backlog > 1,
            "tight arrivals must queue: peak {}",
            loaded.peak_backlog
        );
        assert!(
            loaded.latency_ms(0.95) > relaxed.latency_ms(0.95),
            "p95 must rise with load: {} !> {}",
            loaded.latency_ms(0.95),
            relaxed.latency_ms(0.95)
        );
        assert!(loaded.metrics.queue_delay.count() > 0);
        assert_eq!(
            relaxed.metrics.queue_delay.max_us(),
            0,
            "spaced arrivals must not wait"
        );
        assert!(loaded.max_node_utilization > relaxed.max_node_utilization);
    }

    #[test]
    fn zero_service_reports_no_queueing() {
        let mut engine = DesEngine::new(line_net(), config());
        let report = engine.run(&mut LineRouter, &workload(1, 5, 1), Amount::MAX);
        assert_eq!(report.peak_backlog, 0);
        assert_eq!(report.max_node_utilization, 0.0);
        assert_eq!(report.metrics.queue_delay.count(), 0);
    }

    #[test]
    fn old_report_json_still_parses() {
        // Growth hygiene: every field added to DesReport after the
        // seed is #[serde(default)], so committed bench artifacts from
        // older PRs keep parsing. Reconstruct the older shapes by
        // truncating the serialized report at the first field each PR
        // introduced (serialization follows declaration order).
        let mut engine = DesEngine::new(line_net(), config());
        let report = engine.run(&mut LineRouter, &workload(1000, 3, 2), Amount::MAX);
        let json = serde_json::to_string(&report).unwrap();
        for first_new_field in [",\"peak_backlog\"", ",\"closed_channels\""] {
            let cut = json
                .find(first_new_field)
                .expect("report fields must keep declaration order");
            let old = format!("{}}}", &json[..cut]);
            let parsed: DesReport = serde_json::from_str(&old)
                .unwrap_or_else(|e| panic!("old report JSON must parse: {e}"));
            assert_eq!(parsed.metrics, report.metrics);
            assert_eq!(parsed.makespan, report.makespan);
            assert_eq!(parsed.events, report.events);
            assert_eq!(parsed.closed_channels, 0);
            assert_eq!(parsed.stale_probe_failures, 0);
            assert_eq!(parsed.reprobes_triggered, 0);
        }
    }

    #[test]
    fn report_measures_latency_and_throughput() {
        let mut engine = DesEngine::new(line_net(), config());
        let report = engine.run(&mut LineRouter, &workload(1000, 4, 2), Amount::MAX);
        // Each success settles 3 forward + 3 ack + 3 confirm hops after
        // arrival = 90ms of completion latency.
        assert_eq!(report.metrics.latency.count(), 4);
        assert!((report.latency_ms(0.5) - 90.0).abs() < 15.0);
        assert!(report.throughput_pps > 0.0);
        assert!(report.makespan >= SimTime::from_secs(3));
    }
}
