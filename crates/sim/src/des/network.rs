//! The time-aware [`PaymentNetwork`] backend.
//!
//! [`DesNetwork`] wraps the instantaneous [`Network`] and re-plays every
//! backend operation over virtual time: probes take a round trip, each
//! phase-1 `COMMIT` hop takes one link delay, and — crucially — the
//! phase-2 settlement (`CONFIRM` reverse-direction credits on commit,
//! `REVERSE` escrow releases on abort) is **scheduled into the event
//! queue** instead of applied immediately. Funds reserved by
//! [`PaymentSession::try_send_part`] therefore stay escrowed across
//! virtual time until the delayed settlement wave fires, so payments
//! admitted close together genuinely contend for channel balance and
//! probe reports genuinely go stale — the paper's §5.1 failure mode
//! ("the balance of some channel has changed after it was last probed")
//! emerges from delay instead of from [`FaultConfig`] injection.
//!
//! ## Timing model
//!
//! Hop `i` of a wave crosses channel `i` after that channel's
//! [`LatencyModel::delay`] (*propagation*), and is then **serviced** by
//! the receiving node: it waits behind that node's FIFO backlog and
//! occupies its single server for the [`ServiceModel`]'s deterministic
//! service time before its handler runs and the next hop is scheduled
//! (see [`node`](super::node) for the M/D/1 model). Waves retrace the
//! path for ACKs/NACKs, paying propagation *and* service at every
//! delivery on the way back. For a `k`-hop path:
//!
//! * a probe costs a full round trip (`2k` link delays plus `2k` node
//!   services, the last at the sender itself) and snapshots balances
//!   when the farthest node finishes servicing the probe;
//! * a successful part reservation costs `2k` delays + services
//!   (COMMIT forward, ACK back) and escrows each hop as its node
//!   finishes servicing the COMMIT;
//! * a failed reservation NACKs back from the failing hop, releasing
//!   each escrowed hop as the NACK is serviced on the retrace;
//! * `commit`/`abort` launch one settlement wave per part from the
//!   sender's current clock; each hop settles when its node finishes
//!   servicing the wave.
//!
//! With the default [`ServiceModel::Instant`] every service completes
//! at its arrival instant and the model reduces exactly to the
//! propagation-only engine of PR 4 (the zero-service differential in
//! `tests/des_engine.rs` asserts this bit for bit).
//!
//! ## Sender-serialized admission
//!
//! Routers are ordinary synchronous code, so the engine runs each
//! payment's decision logic to completion at its arrival time (in
//! arrival order). Balance state is shared and settles monotonically in
//! drain order: reservations made by an earlier-admitted payment are
//! visible immediately, and a scheduled release becomes visible once
//! the *farthest-advanced* sender clock has drained past its fire time
//! — not necessarily the observing payment's own clock. The resulting
//! contention model is approximate in both directions: a payment can be
//! blocked by an in-flight payment's escrow (and its probes can be
//! stale with respect to waves that have not yet drained), but it can
//! also observe a release that a previously admitted payment's
//! farther-ahead clock already applied. What holds exactly: event
//! application order is the queue's `(time, insertion)` order, runs are
//! bit-reproducible, funds are conserved at every event boundary, and
//! with a zero-latency model every wave fires at its issue instant,
//! making the backend behaviorally identical to [`Network`] (the parity
//! tests assert this).

use super::churn::{ChurnAction, ChurnSchedule};
use super::latency::LatencyModel;
use super::node::{ServiceModel, ServiceQueues};
use super::queue::EventQueue;
use super::time::SimTime;
use crate::backend::{FailureCause, PartFailure, PaymentNetwork, PaymentSession};
use crate::{FaultConfig, Metrics, Network, ProbeReport, RouteOutcome};
use pcn_graph::{DiGraph, EdgeId, Path};
use pcn_types::{Amount, NodeId, Payment, PaymentClass};

/// Configuration of the discrete-event backend.
#[derive(Clone, Debug)]
pub struct DesConfig {
    /// Per-hop message *propagation* latency model.
    pub latency: LatencyModel,
    /// Per-node message *service* model: how long a node's single
    /// server takes per delivered message, with FIFO queueing behind
    /// the backlog. The default ([`ServiceModel::Instant`]) disables
    /// queueing and reproduces the propagation-only engine exactly.
    pub service: ServiceModel,
    /// Fault injection (probe loss / probe noise) applied to the
    /// wrapped network's probe path — the same [`FaultConfig`] surface
    /// the sequential simulator uses. The default
    /// ([`FaultConfig::none`]) installs nothing, leaving the wrapped
    /// network's fault state (and its RNG stream) untouched.
    pub faults: FaultConfig,
    /// Deterministic topology dynamics applied mid-run (see
    /// [`churn`](super::churn)). Events are admitted into the engine's
    /// `(time, seq)` event order at construction, in declared order;
    /// the default empty schedule admits nothing and keeps the run
    /// bit-identical to a churn-free engine.
    pub churn: ChurnSchedule,
    /// Assert funds conservation (balances + escrow + settled-out funds
    /// = initial total) and service-backlog conservation after
    /// **every** applied event. O(edges + nodes) per event — enable in
    /// tests, leave off in benchmarks.
    pub check_conservation: bool,
}

impl Default for DesConfig {
    fn default() -> Self {
        DesConfig {
            latency: LatencyModel::constant_ms(10),
            service: ServiceModel::Instant,
            faults: FaultConfig::none(),
            churn: ChurnSchedule::none(),
            check_conservation: false,
        }
    }
}

/// One delayed settlement effect.
enum Settle {
    /// Abort/NACK: return the escrowed amount to the forward direction.
    Restore { edge: EdgeId, amount: Amount },
    /// Commit: credit the reverse direction of a debited hop (funds
    /// leave the channel system when the hop has no reverse direction,
    /// exactly as in [`Network`]'s instantaneous commit).
    Credit { edge: EdgeId, amount: Amount },
    /// A payment's final settlement landed: it is no longer in flight.
    Done,
    /// A scheduled topology mutation (see [`churn`](super::churn)).
    /// Unlike settlement events, churn never extends the run's horizon:
    /// a reopen scheduled past the last settlement must not stretch the
    /// makespan.
    Churn(ChurnAction),
}

/// The discrete-event [`PaymentNetwork`] backend. See the module docs
/// for the timing model; see [`DesEngine`](super::engine::DesEngine) for
/// the executor that feeds it timed arrivals.
pub struct DesNetwork {
    inner: Network,
    latency: LatencyModel,
    /// Per-node FIFO service queues (see [`node`](super::node)).
    service: ServiceQueues,
    queue: EventQueue<Settle>,
    /// The current sender-local virtual clock.
    now: SimTime,
    /// Monotone message counter feeding the latency model.
    msg_tick: u64,
    /// Micros currently escrowed (debited but not yet settled).
    escrow: u128,
    /// Micros settled out of the channel system (commits over
    /// unidirectional hops).
    exited: u128,
    /// `inner.total_funds()` at construction, in micros.
    initial_total: u128,
    check_conservation: bool,
    in_flight: u64,
    peak_in_flight: u64,
    /// Latest fire time ever scheduled or applied — the run's makespan.
    /// Churn events are excluded: topology mutations do not extend a
    /// run, only the settlement traffic does.
    horizon: SimTime,
    /// Edge-indexed closed flags (both directions of a closed channel
    /// are flagged). Balances of a closed channel stay frozen in the
    /// balance vector, so conservation holds trivially.
    closed: Vec<bool>,
    /// Node-indexed crashed flags: a down node NACKs everything it
    /// would service.
    down: Vec<bool>,
    /// Close events applied to channels that were open.
    closed_channels: u64,
    /// Probes bounced by a closed channel or a down node mid-walk.
    stale_probe_failures: u64,
    /// Times a router reported consuming stale evidence and refreshing
    /// its topology knowledge ([`PaymentNetwork::note_reprobe`]).
    reprobes_triggered: u64,
    /// Scratch buffer for [`DesNetwork::probe_path`]'s per-hop edge
    /// list, reused across probes so the hot path allocates nothing
    /// per probe.
    probe_scratch: Vec<Option<EdgeId>>,
    /// Spent part edge-lists, recycled between reservations: a
    /// settled or NACKed part returns its `Vec` here and the next
    /// [`DesSession::try_send_part`] reuses it instead of allocating.
    edge_pool: Vec<Vec<EdgeId>>,
}

impl DesNetwork {
    /// Wraps a network in the discrete-event backend, starting the
    /// virtual clock at [`SimTime::ZERO`].
    ///
    /// The churn schedule (if any) is admitted into the event queue
    /// here, in declared order, so its events share the engine's
    /// `(time, seq)` total order with every settlement wave. Installing
    /// the empty schedule schedules nothing, draws no randomness, and
    /// advances no message tick. Fault injection is installed only when
    /// [`FaultConfig::enabled`], so a disabled config leaves the
    /// wrapped network's fault RNG stream untouched.
    pub fn new(mut inner: Network, config: DesConfig) -> Self {
        let initial_total = inner.total_funds().micros() as u128;
        let service = ServiceQueues::new(config.service, inner.graph().node_count());
        if config.faults.enabled() {
            inner.set_faults(config.faults);
        }
        let mut queue = EventQueue::new();
        for ev in config.churn.events() {
            // Deliberately not via `schedule()`: churn must not touch
            // the horizon (it would stretch the makespan of runs whose
            // schedule outlives their traffic).
            queue.schedule(ev.at, Settle::Churn(ev.action));
        }
        let closed = vec![false; inner.graph().edge_count()];
        let down = vec![false; inner.graph().node_count()];
        DesNetwork {
            inner,
            latency: config.latency,
            service,
            queue,
            now: SimTime::ZERO,
            msg_tick: 0,
            escrow: 0,
            exited: 0,
            initial_total,
            check_conservation: config.check_conservation,
            in_flight: 0,
            peak_in_flight: 0,
            horizon: SimTime::ZERO,
            closed,
            down,
            closed_channels: 0,
            stale_probe_failures: 0,
            reprobes_triggered: 0,
            probe_scratch: Vec::new(),
            edge_pool: Vec::new(),
        }
    }

    /// The current virtual time (the active sender's local clock).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Metrics collected so far (delegates to the wrapped [`Network`]).
    pub fn metrics(&self) -> &Metrics {
        self.inner.metrics()
    }

    /// Moves the accumulated metrics out, leaving fresh (zeroed)
    /// counters behind. [`DesEngine::run`](super::engine::DesEngine)
    /// uses this to hand the report its metrics without cloning the
    /// latency histograms at the end of every run.
    pub fn take_metrics(&mut self) -> Metrics {
        std::mem::take(self.inner.metrics_mut())
    }

    /// Installs a fault-injection configuration on the wrapped network.
    /// Under the DES backend stale probes already arise naturally from
    /// delay; injection remains available for probe *loss*.
    pub fn set_faults(&mut self, faults: FaultConfig) {
        self.inner.set_faults(faults);
    }

    /// Payments currently in flight (admitted, not yet fully settled).
    pub fn in_flight(&self) -> u64 {
        self.in_flight
    }

    /// The maximum number of concurrently in-flight payments observed.
    pub fn peak_in_flight(&self) -> u64 {
        self.peak_in_flight
    }

    /// Settlement and churn events applied so far.
    pub fn events_delivered(&self) -> u64 {
        self.queue.delivered()
    }

    /// Close events applied to channels that were open at the time.
    pub fn closed_channels(&self) -> u64 {
        self.closed_channels
    }

    /// Probes bounced mid-walk by a closed channel or a down node —
    /// the router's cached path was stale.
    pub fn stale_probe_failures(&self) -> u64 {
        self.stale_probe_failures
    }

    /// Times a router crossed its staleness threshold and refreshed
    /// its topology knowledge ([`PaymentNetwork::note_reprobe`]).
    pub fn reprobes_triggered(&self) -> u64 {
        self.reprobes_triggered
    }

    /// Whether `edge` belongs to a currently closed channel.
    fn edge_closed(&self, edge: EdgeId) -> bool {
        self.closed.get(edge.0 as usize).copied().unwrap_or(false)
    }

    /// Whether `node` is currently crashed.
    fn node_down(&self, node: NodeId) -> bool {
        self.down.get(node.0 as usize).copied().unwrap_or(false)
    }

    /// Flags or unflags both directions of `edge`'s channel.
    fn set_channel_closed(&mut self, edge: EdgeId, val: bool) {
        if let Some(flag) = self.closed.get_mut(edge.0 as usize) {
            *flag = val;
        }
        if let Some(rev) = self.inner.graph().reverse_edge(edge) {
            if let Some(flag) = self.closed.get_mut(rev.0 as usize) {
                *flag = val;
            }
        }
    }

    /// Applies one topology mutation. Freeze semantics: a closed
    /// channel's balances stay in the balance vector (conservation
    /// holds trivially) and resurface on reopen; in-flight settlement
    /// waves land harmlessly on frozen balances. Draining moves funds
    /// to the reverse direction, or out of the channel system when the
    /// direction is unidirectional.
    // pcn-lint: hot — fires inside the drain loop, once per churn event
    fn apply_churn(&mut self, action: ChurnAction) {
        match action {
            ChurnAction::ChannelClose(edge) => {
                if !self.edge_closed(edge) {
                    self.closed_channels += 1;
                    self.set_channel_closed(edge, true);
                }
            }
            ChurnAction::ChannelReopen(edge) => self.set_channel_closed(edge, false),
            ChurnAction::NodeDown(node) => {
                if let Some(flag) = self.down.get_mut(node.0 as usize) {
                    *flag = true;
                }
            }
            ChurnAction::NodeUp(node) => {
                if let Some(flag) = self.down.get_mut(node.0 as usize) {
                    *flag = false;
                }
            }
            ChurnAction::BalanceDrain { edge, amount } => {
                let bal = self.inner.balance(edge);
                let moved = bal.min(amount);
                if !moved.is_zero() {
                    self.inner.set_balance(edge, bal.saturating_sub(moved));
                    match self.inner.graph().reverse_edge(edge) {
                        Some(rev) => {
                            let rbal = self.inner.balance(rev).saturating_add(moved);
                            self.inner.set_balance(rev, rbal);
                        }
                        None => self.exited += moved.micros() as u128,
                    }
                }
            }
        }
    }

    /// The latest virtual time any event was scheduled or applied — the
    /// run's makespan once the queue is drained.
    pub fn horizon(&self) -> SimTime {
        self.horizon
    }

    /// Micros currently escrowed across all in-flight parts.
    pub fn escrow_micros(&self) -> u128 {
        self.escrow
    }

    /// Channel balances + escrow + settled-out funds, in micros. Equal
    /// to the initial total at every event boundary (the conservation
    /// invariant; asserted per event under
    /// [`DesConfig::check_conservation`]).
    pub fn conserved_total_micros(&self) -> u128 {
        self.inner.total_funds().micros() as u128 + self.escrow + self.exited
    }

    /// The initial total funds, in micros.
    pub fn initial_total_micros(&self) -> u128 {
        self.initial_total
    }

    /// Advances the active sender clock to `t`, applying every
    /// settlement event scheduled at or before it. The engine calls this
    /// at each arrival; `t` may be earlier than a previous sender's
    /// clock (clocks are per-sender), which applies nothing.
    pub fn advance_to(&mut self, t: SimTime) {
        self.drain_until(t);
        // No message computed from here on can arrive before `t`:
        // finished service reservations below it can be released.
        self.service.release_before(t);
        self.now = t;
    }

    /// Applies every pending settlement event and advances the clock to
    /// the run's horizon. Call at the end of a run before reading final
    /// balances.
    pub fn drain_all(&mut self) {
        self.drain_until(SimTime::MAX);
        self.now = self.now.max(self.horizon);
    }

    /// Drains the wrapped network back out. Pending settlements are
    /// applied first so no escrow is lost.
    pub fn into_inner(mut self) -> Network {
        self.drain_all();
        self.inner
    }

    fn drain_until(&mut self, horizon: SimTime) {
        while let Some((fire, settle)) = self.queue.pop_before(horizon) {
            self.apply(fire, settle);
        }
    }

    fn apply(&mut self, fire: SimTime, settle: Settle) {
        if !matches!(settle, Settle::Churn(_)) {
            self.horizon = self.horizon.max(fire);
        }
        match settle {
            Settle::Churn(action) => self.apply_churn(action),
            Settle::Restore { edge, amount } => {
                self.escrow -= amount.micros() as u128;
                let bal = self.inner.balance(edge).saturating_add(amount);
                self.inner.set_balance(edge, bal);
            }
            Settle::Credit { edge, amount } => {
                self.escrow -= amount.micros() as u128;
                match self.inner.graph().reverse_edge(edge) {
                    Some(rev) => {
                        let bal = self.inner.balance(rev).saturating_add(amount);
                        self.inner.set_balance(rev, bal);
                    }
                    None => self.exited += amount.micros() as u128,
                }
            }
            Settle::Done => {
                self.in_flight -= 1;
            }
        }
        if self.check_conservation {
            assert_eq!(
                self.conserved_total_micros(),
                self.initial_total,
                "funds not conserved after event at {fire}"
            );
            self.service.assert_backlog_conserved();
        }
    }

    fn schedule(&mut self, fire: SimTime, settle: Settle) {
        self.horizon = self.horizon.max(fire);
        self.queue.schedule(fire, settle);
    }

    /// One link delay for the next message crossing `edge`.
    fn hop_delay(&mut self, edge: Option<EdgeId>) -> SimTime {
        let d = self.latency.delay(edge, self.msg_tick);
        self.msg_tick += 1;
        d
    }

    /// Delivers one message to `node` at `arrival`: the message waits
    /// behind the node's FIFO backlog and is serviced; returns the
    /// instant the node finishes processing it. Records the queueing
    /// delay in the metrics histogram (zero-service nodes are
    /// infinitely fast and record nothing — see
    /// [`node`](super::node)).
    // pcn-lint: hot — runs once per message delivery, the innermost loop
    fn deliver(&mut self, node: NodeId, arrival: SimTime) -> SimTime {
        if self.service.model().service_time(node) == SimTime::ZERO {
            return arrival;
        }
        let pass = self.service.admit(node, arrival);
        self.inner
            .metrics_mut()
            .observe_queue_delay(pass.queued.micros());
        pass.complete
    }

    /// The per-node service-queue state and statistics.
    pub fn service_queues(&self) -> &ServiceQueues {
        &self.service
    }
}

impl PaymentNetwork for DesNetwork {
    type Session<'a> = DesSession<'a>;

    fn graph(&self) -> &DiGraph {
        self.inner.graph()
    }

    /// Probes over virtual time: the request takes one link delay plus
    /// one node service per hop out, the `PROBE_ACK` the same per hop
    /// back (the final service is the sender absorbing the ACK).
    /// Balances are snapshotted when the farthest node finishes
    /// servicing the probe — any settlement wave landing after that
    /// instant is invisible, which is exactly how probe reports go
    /// stale under load.
    // pcn-lint: hot — one round trip per probe; probes dominate under Flash
    fn probe_path(&mut self, path: &Path) -> Option<ProbeReport> {
        let nodes = path.nodes();
        // Per-hop edge ids go into the reused scratch buffer — no
        // allocation once it has grown to the longest path probed.
        let mut edges = std::mem::take(&mut self.probe_scratch);
        edges.clear();
        edges.extend(path.channels().map(|(u, v)| self.inner.graph().edge(u, v)));
        let mut t = self.now;
        // Out: hop i crosses channel i, then nodes[i + 1] services it.
        // Settlement *and churn* events up to each node's finish
        // instant are drained before the walk continues, so a channel
        // that closed (or a node that crashed) mid-walk bounces the
        // probe. Per-hop draining is order-equivalent to the old
        // drain-at-snapshot: events apply in the same `(time, seq)`
        // order either way, and delivery reads no balances.
        let mut blocked_at = None;
        for (i, e) in edges.iter().enumerate() {
            t += self.hop_delay(*e);
            t = self.deliver(nodes[i + 1], t);
            self.drain_until(t);
            if self.node_down(nodes[i + 1]) || matches!(e, Some(e) if self.edge_closed(*e)) {
                blocked_at = Some(i);
                break;
            }
        }
        if let Some(i) = blocked_at {
            // The probe dies at hop i: a NACK retraces the traversed
            // prefix, serviced by each upstream node down to the
            // sender. The i + 1 outbound messages are still metered.
            for j in (0..=i).rev() {
                t += self.hop_delay(edges[j]);
                t = self.deliver(nodes[j], t);
            }
            self.inner.metrics_mut().probe_messages += (i + 1) as u64;
            self.stale_probe_failures += 1;
            self.probe_scratch = edges;
            self.now = t;
            return None;
        }
        let snapshot_at = t;
        // Back: the ACK retraces, serviced by each upstream node down
        // to (and including) the sender.
        for (i, e) in edges.iter().enumerate().rev() {
            t += self.hop_delay(*e);
            t = self.deliver(nodes[i], t);
        }
        self.probe_scratch = edges;
        self.drain_until(snapshot_at);
        let report = self.inner.probe_path(path);
        self.now = t;
        report
    }

    fn note_reprobe(&mut self) {
        self.reprobes_triggered += 1;
    }

    fn begin_payment(&mut self, payment: &Payment, class: PaymentClass) -> DesSession<'_> {
        self.inner
            .metrics_mut()
            .record_attempt(class, payment.amount);
        self.in_flight += 1;
        self.peak_in_flight = self.peak_in_flight.max(self.in_flight);
        let admitted = self.now;
        DesSession {
            net: self,
            demand: payment.amount,
            class,
            admitted,
            parts: Vec::new(),
            fees_accrued: Amount::ZERO,
            closed: false,
        }
    }
}

/// An escrowed part on the DES backend.
struct DesPart {
    edges: Vec<EdgeId>,
    amount: Amount,
}

/// An in-flight atomic multi-path payment on the [`DesNetwork`] backend:
/// the same two-phase semantics as
/// [`NetworkSession`](crate::NetworkSession), with phase-2 settlement
/// deferred into the event queue (see the module docs).
pub struct DesSession<'a> {
    net: &'a mut DesNetwork,
    demand: Amount,
    class: PaymentClass,
    admitted: SimTime,
    parts: Vec<DesPart>,
    fees_accrued: Amount,
    closed: bool,
}

impl DesSession<'_> {
    /// Schedules the final settlement marker and observes completion.
    fn finish(&mut self, settle_end: SimTime, success: bool) {
        if success {
            self.net
                .inner
                .metrics_mut()
                .observe_latency(settle_end.saturating_sub(self.admitted).micros());
        }
        self.net.schedule(settle_end, Settle::Done);
        self.closed = true;
    }

    /// Launches one settlement wave per reserved part from the sender's
    /// current clock — the `CONFIRM` (commit) or `REVERSE` (abort) pass
    /// of §5.1 — scheduling `make(edge, amount)` for the instant each
    /// hop's downstream node finishes servicing the wave. Consumes the
    /// reserved parts (their edge lists return to the pool) and
    /// returns when the last wave lands.
    // pcn-lint: hot — one wave per part on every commit/abort
    fn schedule_waves(&mut self, make: fn(EdgeId, Amount) -> Settle) -> SimTime {
        let mut settle_end = self.net.now;
        for mut part in std::mem::take(&mut self.parts) {
            let mut t = self.net.now;
            for &e in &part.edges {
                let (_, to) = self.net.inner.graph().endpoints(e);
                t += self.net.hop_delay(Some(e));
                t = self.net.deliver(to, t);
                self.net.schedule(t, make(e, part.amount));
            }
            settle_end = settle_end.max(t);
            part.edges.clear();
            self.net.edge_pool.push(part.edges);
        }
        settle_end
    }

    fn rollback(&mut self) {
        let settle_end = self.schedule_waves(|edge, amount| Settle::Restore { edge, amount });
        self.finish(settle_end, false);
    }
}

impl PaymentSession for DesSession<'_> {
    /// Reserves `amount` along `path` over virtual time. Each hop is
    /// escrowed when its node finishes servicing the phase-1 `COMMIT`
    /// (propagation across the channel, then FIFO queueing and service
    /// at the receiving node); on failure the NACK retraces the debited
    /// hops, scheduling their escrow release as each upstream node
    /// services it, and the sender's clock lands when it has serviced
    /// the returning NACK. On success the sender's clock lands when it
    /// has serviced the last hop's ACK.
    // pcn-lint: hot — one COMMIT wave per reservation attempt
    fn try_send_part(&mut self, path: &Path, amount: Amount) -> Result<(), PartFailure> {
        assert!(!self.closed, "session already closed");
        if amount.is_zero() {
            return Ok(());
        }
        let mut t = self.net.now;
        // Reuse a pooled edge list (see `DesNetwork::edge_pool`)
        // instead of allocating one per reservation attempt.
        let mut debited: Vec<EdgeId> = self.net.edge_pool.pop().unwrap_or_default();
        for (hop, (u, v)) in path.channels().enumerate() {
            let edge = self.net.inner.graph().edge(u, v);
            t += self.net.hop_delay(edge);
            t = self.net.deliver(v, t);
            self.net.drain_until(t);
            self.net.inner.metrics_mut().commit_messages += 1;
            // Churn first: a crashed node NACKs everything it would
            // service, and a closed channel refuses the COMMIT — both
            // before any balance is consulted. Zero churn leaves both
            // flags false everywhere, so the flow is unchanged.
            let (available, cause) = if self.net.node_down(v) {
                (Amount::ZERO, FailureCause::NodeDown)
            } else {
                match edge {
                    Some(e) if self.net.edge_closed(e) => {
                        (Amount::ZERO, FailureCause::ChannelClosed)
                    }
                    Some(e) => {
                        let bal = self.net.inner.balance(e);
                        if bal >= amount {
                            self.net.inner.set_balance(e, bal.saturating_sub(amount));
                            self.net.escrow += amount.micros() as u128;
                            debited.push(e);
                            continue;
                        }
                        (bal, FailureCause::InsufficientBalance)
                    }
                    None => (Amount::ZERO, FailureCause::MissingChannel),
                }
            };
            // NACK back to the sender, releasing escrow as each
            // upstream node services the retracing message — the
            // REVERSE wave that also fails in-flight escrow when a
            // channel closes under a COMMIT.
            for &d in debited.iter().rev() {
                let (up, _) = self.net.inner.graph().endpoints(d);
                t += self.net.hop_delay(Some(d));
                t = self.net.deliver(up, t);
                self.net.schedule(t, Settle::Restore { edge: d, amount });
            }
            self.net.now = t;
            debited.clear();
            self.net.edge_pool.push(debited);
            return Err(PartFailure {
                failed_hop: hop,
                available,
                cause,
            });
        }
        // ACK retraces the path to the sender; escrow is held.
        for &e in debited.iter().rev() {
            let (up, _) = self.net.inner.graph().endpoints(e);
            t += self.net.hop_delay(Some(e));
            t = self.net.deliver(up, t);
        }
        self.net.now = t;
        for &e in &debited {
            self.fees_accrued = self
                .fees_accrued
                .saturating_add(self.net.inner.fee_policy(e).fee(amount));
        }
        self.parts.push(DesPart {
            edges: debited,
            amount,
        });
        Ok(())
    }

    fn probe_path(&mut self, path: &Path) -> Option<ProbeReport> {
        self.net.probe_path(path)
    }

    fn reserved(&self) -> Amount {
        self.parts.iter().map(|p| p.amount).sum()
    }

    fn remaining(&self) -> Amount {
        self.demand.saturating_sub(self.reserved())
    }

    /// Commits every reserved part: one `CONFIRM` wave per part leaves
    /// the sender now; each hop's reverse-direction credit is scheduled
    /// for the instant the wave reaches it. The payment's completion
    /// latency (admission → last settlement) is recorded in the metrics
    /// histogram.
    ///
    /// # Panics
    /// Panics if the reserved total does not cover the demand.
    fn commit(mut self) -> RouteOutcome {
        assert!(
            self.is_satisfied(),
            "commit called with unsatisfied demand (reserved {} of {})",
            self.reserved(),
            self.demand
        );
        let paths_used = self.parts.len() as u32;
        let settle_end = self.schedule_waves(|edge, amount| Settle::Credit { edge, amount });
        self.net.inner.metrics_mut().record_success(
            self.class,
            self.demand,
            self.fees_accrued,
            paths_used as u64,
        );
        self.finish(settle_end, true);
        RouteOutcome::Success {
            volume: self.demand,
            fees: self.fees_accrued,
            paths_used,
        }
    }

    fn abort(mut self) {
        self.rollback();
    }
}

impl Drop for DesSession<'_> {
    fn drop(&mut self) {
        if !self.closed {
            self.rollback();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcn_types::{NodeId, TxId};

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    /// A 4-node line with bidirectional channels of 10 units each way.
    fn line_net() -> Network {
        let mut g = DiGraph::new(4);
        g.add_channel(n(0), n(1)).unwrap();
        g.add_channel(n(1), n(2)).unwrap();
        g.add_channel(n(2), n(3)).unwrap();
        Network::uniform(g, Amount::from_units(10))
    }

    fn des(latency_ms: u64) -> DesNetwork {
        des_with_service(latency_ms, ServiceModel::Instant)
    }

    fn des_with_service(latency_ms: u64, service: ServiceModel) -> DesNetwork {
        DesNetwork::new(
            line_net(),
            DesConfig {
                latency: LatencyModel::constant_ms(latency_ms),
                service,
                check_conservation: true,
                ..DesConfig::default()
            },
        )
    }

    fn des_with_churn(latency_ms: u64, churn: ChurnSchedule) -> DesNetwork {
        DesNetwork::new(
            line_net(),
            DesConfig {
                latency: LatencyModel::constant_ms(latency_ms),
                churn,
                check_conservation: true,
                ..DesConfig::default()
            },
        )
    }

    fn payment(amount: u64) -> Payment {
        Payment::new(TxId(1), n(0), n(3), Amount::from_units(amount))
    }

    fn path_0123() -> Path {
        Path::new(vec![n(0), n(1), n(2), n(3)], None).unwrap()
    }

    #[test]
    fn probe_costs_a_round_trip_of_virtual_time() {
        let mut net = des(10);
        let report = net.probe_path(&path_0123()).unwrap();
        assert_eq!(report.bottleneck(), Amount::from_units(10));
        // 3 hops out + 3 hops back at 10ms each.
        assert_eq!(net.now(), SimTime::from_millis(60));
        assert_eq!(net.metrics().probe_messages, 3);
    }

    #[test]
    fn reservation_holds_escrow_until_commit_wave_lands() {
        let mut net = des(10);
        let p = payment(4);
        let mut s = net.begin_payment(&p, PaymentClass::Mice);
        s.try_send_part(&path_0123(), Amount::from_units(4))
            .unwrap();
        let out = s.commit();
        assert!(out.is_success());
        // Escrow is still held: the CONFIRM wave has not fired yet.
        assert_eq!(
            net.escrow_micros(),
            3 * Amount::from_units(4).micros() as u128
        );
        assert_eq!(net.in_flight(), 1);
        // The wave lands hop by hop; drain everything.
        net.drain_all();
        assert_eq!(net.escrow_micros(), 0);
        assert_eq!(net.in_flight(), 0);
        let rev = net.graph().edge(n(1), n(0)).unwrap();
        let inner = net.into_inner();
        assert_eq!(inner.balance(rev), Amount::from_units(14));
        assert_eq!(inner.total_funds(), Amount::from_units(60));
    }

    #[test]
    fn failed_part_nacks_back_and_restores_later() {
        // Drain the middle channel so hop 1 NACKs.
        let mut inner = line_net();
        let mid = inner.graph().edge(n(1), n(2)).unwrap();
        inner.set_balance(mid, Amount::from_units(2));
        let mut net = DesNetwork::new(
            inner,
            DesConfig {
                latency: LatencyModel::constant_ms(10),
                check_conservation: true,
                ..DesConfig::default()
            },
        );
        let p = payment(5);
        let mut s = net.begin_payment(&p, PaymentClass::Mice);
        let err = s
            .try_send_part(&path_0123(), Amount::from_units(5))
            .unwrap_err();
        assert_eq!(err.failed_hop, 1);
        assert_eq!(err.available, Amount::from_units(2));
        assert_eq!(err.cause, FailureCause::InsufficientBalance);
        s.abort();
        // 2 hops forward + 1 hop NACK back = 30ms on the sender clock.
        assert_eq!(net.now(), SimTime::from_millis(30));
        // Hop 0's escrow was scheduled for release but has not fired.
        assert_eq!(net.escrow_micros(), Amount::from_units(5).micros() as u128);
        net.drain_all();
        assert_eq!(net.escrow_micros(), 0);
        let first = net.graph().edge(n(0), n(1)).unwrap();
        let inner = net.into_inner();
        assert_eq!(inner.balance(first), Amount::from_units(10));
    }

    #[test]
    fn concurrent_payment_contends_with_held_escrow() {
        // Payment A reserves the full line; payment B admitted before
        // A's settlement wave lands must fail, even though B's probe at
        // admission time saw the pre-A balances go stale.
        let mut net = des(10);
        let pa = Payment::new(TxId(1), n(0), n(3), Amount::from_units(8));
        let mut sa = net.begin_payment(&pa, PaymentClass::Mice);
        sa.try_send_part(&path_0123(), Amount::from_units(8))
            .unwrap();
        assert!(sa.commit().is_success());
        // B arrives 1ms later — long before A's 30ms settlement wave.
        net.advance_to(SimTime::from_millis(1));
        let pb = Payment::new(TxId(2), n(0), n(3), Amount::from_units(5));
        let mut sb = net.begin_payment(&pb, PaymentClass::Mice);
        let err = sb.try_send_part(&path_0123(), Amount::from_units(5));
        assert!(err.is_err(), "B must contend with A's escrow");
        sb.abort();
        assert_eq!(net.peak_in_flight(), 2);
        net.drain_all();
        assert_eq!(net.conserved_total_micros(), net.initial_total_micros());
    }

    #[test]
    fn later_payment_sees_released_escrow() {
        let mut net = des(10);
        let pa = Payment::new(TxId(1), n(0), n(3), Amount::from_units(8));
        let mut sa = net.begin_payment(&pa, PaymentClass::Mice);
        sa.try_send_part(&path_0123(), Amount::from_units(8))
            .unwrap();
        assert!(sa.commit().is_success());
        // B arrives after A's settlement horizon: 0→3 is drained to 2,
        // but the reverse direction has been credited.
        net.advance_to(SimTime::from_secs(10));
        let pb = Payment::new(TxId(2), n(3), n(0), Amount::from_units(15));
        let path_back = Path::new(vec![n(3), n(2), n(1), n(0)], None).unwrap();
        let mut sb = net.begin_payment(&pb, PaymentClass::Mice);
        sb.try_send_part(&path_back, Amount::from_units(15))
            .unwrap();
        assert!(sb.commit().is_success());
        net.drain_all();
        assert_eq!(net.conserved_total_micros(), net.initial_total_micros());
    }

    #[test]
    fn dropping_session_schedules_reverse_wave() {
        let mut net = des(10);
        {
            let p = payment(5);
            let mut s = net.begin_payment(&p, PaymentClass::Mice);
            s.try_send_part(&path_0123(), Amount::from_units(5))
                .unwrap();
            // dropped without commit
        }
        assert!(net.escrow_micros() > 0, "REVERSE wave still in flight");
        net.drain_all();
        assert_eq!(net.escrow_micros(), 0);
        assert_eq!(net.in_flight(), 0);
        let inner = net.into_inner();
        assert_eq!(inner.total_funds(), Amount::from_units(60));
    }

    #[test]
    fn service_time_slows_every_wave() {
        // 3 hops at 10ms propagation + 5ms service per delivery: a
        // probe's round trip is 6 deliveries = 60ms + 30ms.
        let mut net = des_with_service(10, ServiceModel::constant_ms(5));
        net.probe_path(&path_0123()).unwrap();
        assert_eq!(net.now(), SimTime::from_millis(90));
        // Every delivery waited zero behind an idle node, but each was
        // still observed into the queue-delay histogram.
        assert_eq!(net.metrics().queue_delay.count(), 6);
        assert_eq!(net.metrics().queue_delay.max_us(), 0);
        assert_eq!(net.service_queues().peak_backlog(), 1);
    }

    #[test]
    fn settlement_wave_contends_with_a_probe_for_node_service() {
        // A's CONFIRM wave is in flight when a probe lands on the same
        // nodes: the probe must wait behind the wave's service.
        let mut net = des_with_service(10, ServiceModel::constant_ms(5));
        let pa = payment(4);
        let mut sa = net.begin_payment(&pa, PaymentClass::Mice);
        sa.try_send_part(&path_0123(), Amount::from_units(4))
            .unwrap();
        assert!(sa.commit().is_success());
        // The sender's clock is past the COMMIT/ACK round trip; the
        // CONFIRM wave is being serviced hop by hop right now. A probe
        // issued immediately reaches node 1 while it is busy.
        let before = net.metrics().queue_delay.count();
        net.probe_path(&path_0123()).unwrap();
        assert!(net.metrics().queue_delay.count() > before);
        assert!(
            net.metrics().queue_delay.max_us() > 0,
            "probe must have queued behind the settlement wave"
        );
        assert!(net.service_queues().peak_backlog() >= 2);
        net.drain_all();
        assert_eq!(net.conserved_total_micros(), net.initial_total_micros());
    }

    #[test]
    fn explicit_zero_service_is_bit_identical_to_instant() {
        // ServiceModel::Constant(ZERO) exercises the queue machinery's
        // zero-service fast path; ServiceModel::Instant skips it. The
        // two must be observationally identical (the PR-4 engine had
        // neither) — clocks, metrics, balances, everything.
        let run = |service: ServiceModel| {
            let mut net = des_with_service(10, service);
            net.probe_path(&path_0123());
            for (id, amount) in [(1u64, 4u64), (2, 9), (3, 7)] {
                let p = Payment::new(TxId(id), n(0), n(3), Amount::from_units(amount));
                let _ = crate::PaymentNetwork::send_single_path(
                    &mut net,
                    &p,
                    PaymentClass::Mice,
                    &path_0123(),
                );
            }
            net.drain_all();
            let now = net.now();
            let metrics = net.take_metrics();
            let inner = net.into_inner();
            (now, metrics, inner)
        };
        let (now_a, metrics_a, net_a) = run(ServiceModel::Instant);
        let (now_b, metrics_b, net_b) = run(ServiceModel::Constant(SimTime::ZERO));
        assert_eq!(now_a, now_b);
        assert_eq!(metrics_a, metrics_b);
        for (e, _, _) in net_a.graph().edges() {
            assert_eq!(net_a.balance(e), net_b.balance(e));
        }
    }

    #[test]
    fn zero_latency_matches_instantaneous_network() {
        let mut des_net = DesNetwork::new(
            line_net(),
            DesConfig {
                latency: LatencyModel::instant(),
                check_conservation: true,
                ..DesConfig::default()
            },
        );
        let mut plain = line_net();
        for (id, amount) in [(1u64, 4u64), (2, 9), (3, 11), (4, 10)] {
            let p = Payment::new(TxId(id), n(0), n(3), Amount::from_units(amount));
            let a = crate::PaymentNetwork::send_single_path(
                &mut des_net,
                &p,
                PaymentClass::Mice,
                &path_0123(),
            );
            des_net.drain_all();
            let b = plain.send_single_path(&p, PaymentClass::Mice, &path_0123());
            assert_eq!(a, b, "outcome diverged on payment {id}");
        }
        assert_eq!(des_net.now(), SimTime::ZERO);
        let m = des_net.metrics();
        let pm = plain.metrics();
        assert_eq!(m.total(), pm.total());
        assert_eq!(m.probe_messages, pm.probe_messages);
        assert_eq!(m.commit_messages, pm.commit_messages);
        let des_inner = des_net.into_inner();
        for (e, _, _) in plain.graph().edges() {
            assert_eq!(des_inner.balance(e), plain.balance(e));
        }
    }

    #[test]
    fn mid_run_close_nacks_commit_and_releases_escrow() {
        // The middle channel closes at 15ms — after hop 0's COMMIT is
        // escrowed (10ms) but before hop 1's arrives (20ms). The COMMIT
        // must NACK with ChannelClosed and hop 0's escrow must come
        // back over the REVERSE wave.
        let mid = line_net().graph().edge(n(1), n(2)).unwrap();
        let mut schedule = ChurnSchedule::none();
        schedule.push(SimTime::from_millis(15), ChurnAction::ChannelClose(mid));
        let mut net = des_with_churn(10, schedule);
        let p = payment(5);
        let mut s = net.begin_payment(&p, PaymentClass::Mice);
        let err = s
            .try_send_part(&path_0123(), Amount::from_units(5))
            .unwrap_err();
        assert_eq!(err.failed_hop, 1);
        assert_eq!(err.cause, FailureCause::ChannelClosed);
        assert!(err.cause.is_stale());
        s.abort();
        assert_eq!(net.closed_channels(), 1);
        net.drain_all();
        assert_eq!(net.escrow_micros(), 0);
        assert_eq!(net.conserved_total_micros(), net.initial_total_micros());
        let first = net.graph().edge(n(0), n(1)).unwrap();
        assert_eq!(net.into_inner().balance(first), Amount::from_units(10));
    }

    #[test]
    fn down_node_bounces_probes_and_commits_until_up() {
        let mut schedule = ChurnSchedule::none();
        schedule.push(SimTime::ZERO, ChurnAction::NodeDown(n(2)));
        schedule.push(SimTime::from_secs(1), ChurnAction::NodeUp(n(2)));
        let mut net = des_with_churn(10, schedule);
        // The probe reaches node 2 (2 hops, 20ms), finds it down, and
        // the NACK retraces the same 2 hops: sender clock lands at 40ms.
        assert!(net.probe_path(&path_0123()).is_none());
        assert_eq!(net.now(), SimTime::from_millis(40));
        assert_eq!(net.stale_probe_failures(), 1);
        assert_eq!(net.metrics().probe_messages, 2);
        // A commit attempt dies at the same node with a stale cause.
        let p = payment(3);
        let mut s = net.begin_payment(&p, PaymentClass::Mice);
        let err = s
            .try_send_part(&path_0123(), Amount::from_units(3))
            .unwrap_err();
        assert_eq!(err.cause, FailureCause::NodeDown);
        s.abort();
        // After recovery everything flows again.
        net.advance_to(SimTime::from_secs(2));
        let report = net.probe_path(&path_0123()).unwrap();
        assert_eq!(report.bottleneck(), Amount::from_units(10));
        net.drain_all();
        assert_eq!(net.conserved_total_micros(), net.initial_total_micros());
    }

    #[test]
    fn reopen_resurfaces_frozen_funds() {
        let first = line_net().graph().edge(n(0), n(1)).unwrap();
        let mut schedule = ChurnSchedule::none();
        schedule.push(SimTime::ZERO, ChurnAction::ChannelClose(first));
        schedule.push(SimTime::from_millis(30), ChurnAction::ChannelReopen(first));
        let mut net = des_with_churn(10, schedule);
        // Closed: the probe bounces at hop 0 (out 10ms + back 10ms).
        assert!(net.probe_path(&path_0123()).is_none());
        assert_eq!(net.now(), SimTime::from_millis(20));
        // Reopened: the frozen balances resurface untouched.
        net.advance_to(SimTime::from_millis(50));
        let report = net.probe_path(&path_0123()).unwrap();
        assert_eq!(report.bottleneck(), Amount::from_units(10));
        assert_eq!(net.conserved_total_micros(), net.initial_total_micros());
    }

    #[test]
    fn balance_drain_depletes_a_direction_and_conserves() {
        let first = line_net().graph().edge(n(0), n(1)).unwrap();
        let mut schedule = ChurnSchedule::none();
        schedule.push(
            SimTime::from_millis(1),
            ChurnAction::BalanceDrain {
                edge: first,
                // More than the balance: the drain clamps to 10.
                amount: Amount::from_units(25),
            },
        );
        let mut net = des_with_churn(10, schedule);
        net.advance_to(SimTime::from_millis(5));
        let rev = net.graph().edge(n(1), n(0)).unwrap();
        assert_eq!(net.conserved_total_micros(), net.initial_total_micros());
        let inner = net.into_inner();
        assert_eq!(inner.balance(first), Amount::ZERO);
        assert_eq!(inner.balance(rev), Amount::from_units(20));
    }

    #[test]
    fn trailing_churn_never_extends_the_makespan() {
        // A close/reopen pair scheduled an hour past the traffic must
        // not stretch the horizon (= makespan) by one microsecond.
        let run = |churn: ChurnSchedule| {
            let mut net = des_with_churn(10, churn);
            let p = payment(4);
            let mut s = net.begin_payment(&p, PaymentClass::Mice);
            s.try_send_part(&path_0123(), Amount::from_units(4))
                .unwrap();
            assert!(s.commit().is_success());
            net.drain_all();
            net.horizon()
        };
        let quiet = run(ChurnSchedule::none());
        let mid = line_net().graph().edge(n(1), n(2)).unwrap();
        let mut late = ChurnSchedule::none();
        late.push(SimTime::from_secs(3600), ChurnAction::ChannelClose(mid));
        late.push(SimTime::from_secs(7200), ChurnAction::ChannelReopen(mid));
        assert_eq!(run(late), quiet);
    }

    #[test]
    fn empty_schedule_is_bit_identical_to_default_config() {
        // ChurnSchedule::none() must not perturb anything: clocks,
        // metrics, balances, event counts.
        let run = |churn: ChurnSchedule| {
            let mut net = des_with_churn(10, churn);
            net.probe_path(&path_0123());
            for (id, amount) in [(1u64, 4u64), (2, 9), (3, 7)] {
                let p = Payment::new(TxId(id), n(0), n(3), Amount::from_units(amount));
                let _ = crate::PaymentNetwork::send_single_path(
                    &mut net,
                    &p,
                    PaymentClass::Mice,
                    &path_0123(),
                );
            }
            net.drain_all();
            let now = net.now();
            let delivered = net.events_delivered();
            let metrics = net.take_metrics();
            let inner = net.into_inner();
            (now, delivered, metrics, inner)
        };
        let (now_a, del_a, metrics_a, net_a) = run(ChurnSchedule::none());
        let (now_b, del_b, metrics_b, net_b) = run(ChurnSchedule::default());
        assert_eq!(now_a, now_b);
        assert_eq!(del_a, del_b);
        assert_eq!(metrics_a, metrics_b);
        for (e, _, _) in net_a.graph().edges() {
            assert_eq!(net_a.balance(e), net_b.balance(e));
        }
    }
}
