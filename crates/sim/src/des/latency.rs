//! Per-hop *propagation* latency models.
//!
//! Every message the engine simulates (probe hops, phase-1 `COMMIT`
//! hops, `CONFIRM`/`REVERSE` settlement hops) is delayed by the model's
//! [`LatencyModel::delay`] while crossing the channel. The jittered
//! model is a *pure function* of the seed and a monotone message
//! counter — no RNG state is carried between calls — so a run's delays
//! are bit-reproducible and independent of how the model is shared or
//! cloned.
//!
//! Propagation is deliberately load-independent: a message's wire time
//! never depends on how busy the network is. The load-*dependent* half
//! of the delay model — per-node service times and FIFO queueing
//! behind a node's backlog — lives in [`node`](super::node), and is
//! what makes completion latency respond to offered load. With the
//! default zero-service model, propagation is the only delay and the
//! engine behaves exactly as it did before service queues existed.

use super::time::SimTime;
use pcn_graph::EdgeId;

/// How long one message takes to traverse one channel hop.
#[derive(Clone, Debug)]
pub enum LatencyModel {
    /// The same delay on every hop (the testbed's homogeneous links).
    Constant(SimTime),
    /// A base delay plus deterministic uniform jitter in
    /// `[0, jitter_us]`, derived by hashing `(seed, message counter)`.
    UniformJitter {
        /// Minimum per-hop delay.
        base: SimTime,
        /// Jitter span added on top, in microseconds.
        jitter_us: u64,
        /// Seed for the jitter hash.
        seed: u64,
    },
    /// A per-edge delay table (e.g. geographic link latencies), indexed
    /// by [`EdgeId`]; edges beyond the table use `default`.
    PerEdge {
        /// `table[e.index()]` is the delay of directed edge `e`.
        table: Vec<SimTime>,
        /// Delay for edges not covered by the table.
        default: SimTime,
    },
}

impl LatencyModel {
    /// A constant per-hop delay in milliseconds — the common case (the
    /// paper's testbed measures per-hop processing in the tens of
    /// milliseconds).
    pub fn constant_ms(ms: u64) -> Self {
        LatencyModel::Constant(SimTime::from_millis(ms))
    }

    /// Zero delay on every hop: the DES engine degenerates to the
    /// instantaneous simulator (useful for parity tests).
    pub fn instant() -> Self {
        LatencyModel::Constant(SimTime::ZERO)
    }

    /// The delay of message number `tick` crossing `edge`. `tick` is the
    /// engine's monotone message counter; for `None` edges (a probe of a
    /// path with a missing channel) the model's base/default applies.
    pub fn delay(&self, edge: Option<EdgeId>, tick: u64) -> SimTime {
        match self {
            LatencyModel::Constant(d) => *d,
            LatencyModel::UniformJitter {
                base,
                jitter_us,
                seed,
            } => {
                if *jitter_us == 0 {
                    return *base;
                }
                let h = splitmix64(seed ^ tick.wrapping_mul(0x9E37_79B9_7F4A_7C15));
                // jitter_us + 1 would overflow at u64::MAX, where any
                // h is already in range.
                let jitter = match jitter_us.checked_add(1) {
                    Some(m) => h % m,
                    None => h,
                };
                base.saturating_add(SimTime::from_micros(jitter))
            }
            LatencyModel::PerEdge { table, default } => match edge {
                Some(e) => table.get(e.index()).copied().unwrap_or(*default),
                None => *default,
            },
        }
    }
}

/// SplitMix64 finalizer — the same mixer the `rand` shim seeds with.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        let m = LatencyModel::constant_ms(10);
        for tick in 0..10 {
            assert_eq!(m.delay(None, tick), SimTime::from_millis(10));
        }
        assert_eq!(LatencyModel::instant().delay(None, 3), SimTime::ZERO);
    }

    #[test]
    fn jitter_is_bounded_and_deterministic() {
        let m = LatencyModel::UniformJitter {
            base: SimTime::from_millis(5),
            jitter_us: 2_000,
            seed: 42,
        };
        let lo = SimTime::from_millis(5);
        let hi = SimTime::from_micros(7_000);
        let draws: Vec<SimTime> = (0..200).map(|t| m.delay(None, t)).collect();
        for d in &draws {
            assert!((lo..=hi).contains(d), "{d} out of [5ms, 7ms]");
        }
        // Pure function of (seed, tick): replay matches exactly.
        let replay: Vec<SimTime> = (0..200).map(|t| m.delay(None, t)).collect();
        assert_eq!(draws, replay);
        // Different seed, different sequence.
        let other = LatencyModel::UniformJitter {
            base: SimTime::from_millis(5),
            jitter_us: 2_000,
            seed: 43,
        };
        let others: Vec<SimTime> = (0..200).map(|t| other.delay(None, t)).collect();
        assert_ne!(draws, others);
    }

    #[test]
    fn full_range_jitter_does_not_overflow() {
        let m = LatencyModel::UniformJitter {
            base: SimTime::ZERO,
            jitter_us: u64::MAX,
            seed: 2,
        };
        for tick in 0..100 {
            let _ = m.delay(None, tick); // must not panic
        }
    }

    #[test]
    fn zero_jitter_is_the_base() {
        let m = LatencyModel::UniformJitter {
            base: SimTime::from_millis(3),
            jitter_us: 0,
            seed: 1,
        };
        assert_eq!(m.delay(None, 9), SimTime::from_millis(3));
    }

    #[test]
    fn per_edge_table_with_default() {
        let m = LatencyModel::PerEdge {
            table: vec![SimTime::from_millis(1), SimTime::from_millis(2)],
            default: SimTime::from_millis(9),
        };
        assert_eq!(m.delay(Some(EdgeId(0)), 0), SimTime::from_millis(1));
        assert_eq!(m.delay(Some(EdgeId(1)), 0), SimTime::from_millis(2));
        assert_eq!(m.delay(Some(EdgeId(7)), 0), SimTime::from_millis(9));
        assert_eq!(m.delay(None, 0), SimTime::from_millis(9));
    }
}
