//! Virtual time.
//!
//! The discrete-event engine never reads a wall clock: every timestamp
//! is a [`SimTime`] — microseconds of *virtual* time since the start of
//! the run. Arithmetic saturates, so a pathological latency model
//! cannot wrap the clock backwards.

use serde::{Deserialize, Serialize};

/// A point in virtual time (microseconds since the start of the run).
///
/// `SimTime` doubles as a duration: the engine only ever adds durations
/// to points, and both are non-negative microsecond counts.
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// The start of every run.
    pub const ZERO: SimTime = SimTime(0);

    /// The largest representable time.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// A time from a microsecond count.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// A time from a millisecond count.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms.saturating_mul(1_000))
    }

    /// A time from a second count.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s.saturating_mul(1_000_000))
    }

    /// The microsecond count.
    pub const fn micros(self) -> u64 {
        self.0
    }

    /// The time as fractional milliseconds (for reporting).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// The time as fractional seconds (for throughput math).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Saturating addition.
    pub const fn saturating_add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction (clamped at [`SimTime::ZERO`]).
    pub const fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl core::ops::Add for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimTime) -> SimTime {
        self.saturating_add(rhs)
    }
}

impl core::ops::AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        *self = *self + rhs;
    }
}

impl core::fmt::Display for SimTime {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}µs", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_millis(3).micros(), 3_000);
        assert_eq!(SimTime::from_secs(2).micros(), 2_000_000);
        assert_eq!(SimTime::from_micros(7).micros(), 7);
        assert!((SimTime::from_millis(1500).as_secs_f64() - 1.5).abs() < 1e-12);
        assert!((SimTime::from_micros(2500).as_millis_f64() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn arithmetic_saturates() {
        assert_eq!(SimTime::MAX + SimTime::from_micros(1), SimTime::MAX);
        assert_eq!(
            SimTime::ZERO.saturating_sub(SimTime::from_micros(5)),
            SimTime::ZERO
        );
        let mut t = SimTime::from_micros(10);
        t += SimTime::from_micros(5);
        assert_eq!(t, SimTime::from_micros(15));
    }

    #[test]
    fn ordering_and_max() {
        let a = SimTime::from_micros(3);
        let b = SimTime::from_micros(9);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(b.max(a), b);
    }

    #[test]
    fn display_picks_a_readable_unit() {
        assert_eq!(SimTime::from_micros(12).to_string(), "12µs");
        assert_eq!(SimTime::from_micros(2_500).to_string(), "2.500ms");
        assert_eq!(SimTime::from_secs(3).to_string(), "3.000s");
    }
}
