//! The deterministic event queue.
//!
//! # Invariants
//!
//! The queue is the only ordering authority in the engine, and it is
//! bit-reproducible by construction:
//!
//! * **Total order.** Events are delivered in ascending
//!   ([`SimTime`], insertion sequence) order. Two events scheduled for
//!   the same virtual instant fire in the order they were scheduled —
//!   never in heap order, hash order, or address order.
//! * **No wall clock.** Nothing in this module (or anywhere in
//!   [`des`](crate::des)) reads `std::time`; virtual time advances only
//!   when an event is popped or a backend operation adds latency, so the
//!   same seed always produces the same event sequence.
//! * **Monotone delivery.** [`EventQueue::pop_before`] never returns an
//!   event scheduled after the requested horizon, and repeated calls
//!   with non-decreasing horizons deliver every event exactly once.
//!
//! Scheduling an event in the past is allowed (a settlement wave
//! computed from an earlier sender clock may land before another
//! payment's current horizon); it simply fires at the next drain.

use super::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One scheduled event. Ordering ignores the payload entirely.
struct Scheduled<T> {
    fire: SimTime,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Scheduled<T> {
    fn eq(&self, other: &Self) -> bool {
        self.fire == other.fire && self.seq == other.seq
    }
}

impl<T> Eq for Scheduled<T> {}

impl<T> PartialOrd for Scheduled<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Scheduled<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.fire, self.seq).cmp(&(other.fire, other.seq))
    }
}

/// A binary-heap event queue over [`SimTime`] with insertion-sequence
/// tie-breaking (see the module docs for the determinism invariants).
pub struct EventQueue<T> {
    heap: BinaryHeap<Reverse<Scheduled<T>>>,
    next_seq: u64,
    delivered: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<T> EventQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            delivered: 0,
        }
    }

    /// Schedules `payload` to fire at `fire`. Events scheduled for the
    /// same instant fire in call order.
    // pcn-lint: hot — every settlement effect passes through here
    pub fn schedule(&mut self, fire: SimTime, payload: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Scheduled { fire, seq, payload }));
    }

    /// The fire time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(s)| s.fire)
    }

    /// Pops the earliest event if it fires at or before `horizon`.
    // pcn-lint: hot — every drained event passes through here
    pub fn pop_before(&mut self, horizon: SimTime) -> Option<(SimTime, T)> {
        if self.peek_time()? > horizon {
            return None;
        }
        let Reverse(s) = self.heap.pop()?;
        self.delivered += 1;
        Some((s.fire, s.payload))
    }

    /// Number of events still pending.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total events delivered so far (the engine's event counter).
    pub fn delivered(&self) -> u64 {
        self.delivered
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn delivers_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(30), "c");
        q.schedule(t(10), "a");
        q.schedule(t(20), "b");
        let mut seen = Vec::new();
        while let Some((_, p)) = q.pop_before(SimTime::MAX) {
            seen.push(p);
        }
        assert_eq!(seen, vec!["a", "b", "c"]);
        assert_eq!(q.delivered(), 3);
    }

    #[test]
    fn ties_break_by_insertion_sequence() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(t(5), i);
        }
        let mut seen = Vec::new();
        while let Some((_, p)) = q.pop_before(t(5)) {
            seen.push(p);
        }
        assert_eq!(seen, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn pop_before_respects_the_horizon() {
        let mut q = EventQueue::new();
        q.schedule(t(10), 'x');
        q.schedule(t(20), 'y');
        assert_eq!(q.pop_before(t(5)), None);
        assert_eq!(q.pop_before(t(10)), Some((t(10), 'x')));
        assert_eq!(q.pop_before(t(10)), None);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop_before(t(25)), Some((t(20), 'y')));
        assert!(q.is_empty());
    }

    #[test]
    fn scheduling_in_the_past_still_fires() {
        let mut q = EventQueue::new();
        q.schedule(t(100), 1);
        assert_eq!(q.pop_before(t(100)), Some((t(100), 1)));
        // An event computed from an earlier sender clock.
        q.schedule(t(50), 2);
        assert_eq!(q.pop_before(t(100)), Some((t(50), 2)));
    }
}
