//! Per-node message service: a deterministic service time and a FIFO
//! queue at every node.
//!
//! The [`LatencyModel`](super::latency) prices *propagation* — how long
//! a message spends on the wire between two nodes. It is a pure
//! function of the message, so a node under heavy load forwards its
//! thousandth concurrent message exactly as fast as its first, and
//! completion latency cannot respond to offered load (the flat
//! `lat_b` curve ROADMAP used to track). This module adds the missing
//! half of the delay model: **service**. Every message delivered to a
//! node (`PROBE`, phase-1 `COMMIT`, and the `CONFIRM`/`REVERSE`
//! settlement waves alike) occupies that node's single server for a
//! deterministic service time, and messages that arrive while the
//! server is busy wait behind the node's backlog before their handler
//! runs and the next hop is scheduled.
//!
//! With Poisson arrivals and a deterministic service time this is the
//! classic **M/D/1** queue per node: mean waiting time
//! `W = ρ·s / (2(1−ρ))` for utilization `ρ = λ·s`, so queueing delay
//! is negligible while a node is mostly idle and diverges as its
//! message rate `λ` approaches the service rate `1/s`. That divergence
//! is exactly the congestion knee the latency-vs-load sweep
//! (`figures::latency`) was missing.
//!
//! # The service calendar
//!
//! The engine runs each payment's decision logic to completion at its
//! admission instant (sender-serialized admission — see the
//! [`network`](super::network) module docs), so messages are
//! *processed* in admission order but *arrive* in arbitrary
//! virtual-time order: payment `i`'s probe may be computed after
//! payment `i−1`'s settlement wave yet arrive at a node long before
//! it. A single "server busy until" scalar would therefore serialize
//! messages by processing order and make early arrivals queue behind
//! far-future work — wildly over-counting contention at idle nodes.
//!
//! Instead each node keeps a **calendar** of non-overlapping service
//! reservations `[start, start + s)`. A message arriving at `a` takes
//! the earliest gap of length `s` at or after `a` (first fit), waiting
//! behind exactly the reservations that actually occupy the server
//! around its arrival. For messages arriving in time order this *is*
//! the FIFO M/D/1 queue; out-of-order processing slots into genuine
//! idle gaps instead of phantom-queueing. The single-server law —
//! **no two service intervals at a node ever overlap** — is the
//! backlog conservation invariant
//! ([`ServiceQueues::assert_backlog_conserved`]) checked at every
//! event boundary under
//! [`DesConfig::check_conservation`](super::network::DesConfig).
//!
//! # Determinism
//!
//! Calendar state depends only on the engine's (deterministic)
//! processing order and the model's deterministic service times —
//! never on hash order, address order, or a wall clock — so runs
//! remain bit-reproducible with queues in the path.
//!
//! # The zero-service fast path
//!
//! A node with zero service time is an infinitely fast server: the
//! message completes at its arrival instant, occupies no calendar
//! slot, and records no statistics. [`ServiceModel::Instant`]
//! therefore preserves the engine's pre-queue behavior **bit for
//! bit**, and `ServiceModel::Constant(SimTime::ZERO)` — which does run
//! the queue machinery — is asserted equivalent to it by the
//! differential test in `tests/des_engine.rs`.

use super::time::SimTime;
use pcn_types::NodeId;
use std::collections::VecDeque;

/// How long one node takes to process one delivered message.
#[derive(Clone, Debug, Default)]
pub enum ServiceModel {
    /// Zero service everywhere: nodes are infinitely fast and no queue
    /// ever forms. The default; preserves the queue-free engine
    /// behavior exactly.
    #[default]
    Instant,
    /// The same deterministic service time at every node (the paper's
    /// homogeneous testbed daemons). With Poisson arrivals this makes
    /// each node an M/D/1 queue.
    Constant(SimTime),
    /// A per-node service-time table (e.g. heterogeneous hardware),
    /// indexed by [`NodeId`]; nodes beyond the table use `default`.
    PerNode {
        /// `table[n.0 as usize]` is node `n`'s service time.
        table: Vec<SimTime>,
        /// Service time for nodes not covered by the table.
        default: SimTime,
    },
}

impl ServiceModel {
    /// A constant per-node service time in milliseconds.
    pub fn constant_ms(ms: u64) -> Self {
        ServiceModel::Constant(SimTime::from_millis(ms))
    }

    /// A constant per-node service time in microseconds.
    pub fn constant_us(us: u64) -> Self {
        ServiceModel::Constant(SimTime::from_micros(us))
    }

    /// Zero service everywhere (the default).
    pub fn instant() -> Self {
        ServiceModel::Instant
    }

    /// The service time of one message at `node`.
    pub fn service_time(&self, node: NodeId) -> SimTime {
        match self {
            ServiceModel::Instant => SimTime::ZERO,
            ServiceModel::Constant(s) => *s,
            ServiceModel::PerNode { table, default } => {
                table.get(node.0 as usize).copied().unwrap_or(*default)
            }
        }
    }
}

/// The outcome of admitting one message to a node's queue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServicePass {
    /// When the node finishes processing the message (the instant its
    /// handler runs and the next hop may be scheduled).
    pub complete: SimTime,
    /// How long the message waited behind the node's backlog before
    /// service began (zero when the server had a free slot on
    /// arrival).
    pub queued: SimTime,
}

/// Per-node bookkeeping: the service calendar and its statistics.
#[derive(Clone, Debug, Default)]
struct NodeState {
    /// Non-overlapping service reservations `(start, end)`, sorted by
    /// start (ends are then sorted too).
    calendar: VecDeque<(SimTime, SimTime)>,
    /// Highest number of messages simultaneously occupying the node
    /// (waiting + in service) observed by any single arrival.
    peak_backlog: u64,
    /// Total service time this node has accumulated, in microseconds.
    busy_us: u64,
}

/// All nodes' service queues plus the aggregate statistics the
/// [`DesReport`](super::engine::DesReport) exposes.
///
/// Owned by [`DesNetwork`](super::network::DesNetwork); every message
/// delivery goes through [`ServiceQueues::admit`].
#[derive(Clone, Debug)]
pub struct ServiceQueues {
    model: ServiceModel,
    nodes: Vec<NodeState>,
    /// Messages admitted to any calendar (zero-service messages
    /// excluded: they never occupy a server).
    enqueued: u64,
    /// Reservations released by [`ServiceQueues::release_before`].
    completed: u64,
    /// Max over nodes of `peak_backlog`.
    peak_backlog: u64,
    /// High-water mark of release calls: no reservation ending at or
    /// before this instant remains, so no future arrival may be placed
    /// below it (the engine releases at each admission time, which is
    /// non-decreasing).
    released_to: SimTime,
}

impl ServiceQueues {
    /// Queues for `node_count` nodes under `model`, all idle.
    pub fn new(model: ServiceModel, node_count: usize) -> Self {
        ServiceQueues {
            model,
            nodes: vec![NodeState::default(); node_count],
            enqueued: 0,
            completed: 0,
            peak_backlog: 0,
            released_to: SimTime::ZERO,
        }
    }

    /// The model in force.
    pub fn model(&self) -> &ServiceModel {
        &self.model
    }

    /// Admits a message arriving at `node` at `arrival`: it takes the
    /// earliest service slot of the model's length at or after
    /// `arrival` in the node's calendar (FIFO for in-order arrivals)
    /// and completes when that slot ends. Returns the completion
    /// instant and the queueing delay.
    ///
    /// Zero-service messages complete at their arrival instant without
    /// touching the calendar (see the module docs).
    // pcn-lint: hot — the reservation lookup behind every delivery
    pub fn admit(&mut self, node: NodeId, arrival: SimTime) -> ServicePass {
        let service = self.model.service_time(node);
        if service == SimTime::ZERO {
            return ServicePass {
                complete: arrival,
                queued: SimTime::ZERO,
            };
        }
        let state = &mut self.nodes[node.0 as usize];
        // Skip reservations already over by `arrival`; they are not
        // backlog for this message.
        let from = state.calendar.partition_point(|&(_, end)| end <= arrival);
        let mut start = arrival;
        let mut at = from;
        while let Some(&(res_start, res_end)) = state.calendar.get(at) {
            if start + service <= res_start {
                break; // the gap before this reservation fits
            }
            start = start.max(res_end);
            at += 1;
        }
        let complete = start + service;
        state.calendar.insert(at, (start, complete));
        state.busy_us += service.micros();
        self.enqueued += 1;
        // Everything it waited behind, plus itself.
        let backlog = (at - from + 1) as u64;
        state.peak_backlog = state.peak_backlog.max(backlog);
        self.peak_backlog = self.peak_backlog.max(backlog);
        ServicePass {
            complete,
            queued: start.saturating_sub(arrival),
        }
    }

    /// Releases every reservation ending at or before `t`. The engine
    /// calls this with each payment's admission time (non-decreasing),
    /// which bounds calendar memory by the in-flight window: no
    /// message computed after that admission can arrive before it.
    pub fn release_before(&mut self, t: SimTime) {
        if t <= self.released_to {
            return;
        }
        self.released_to = t;
        for state in &mut self.nodes {
            while state.calendar.front().is_some_and(|&(_, end)| end <= t) {
                state.calendar.pop_front();
                self.completed += 1;
            }
        }
    }

    /// Messages admitted to a calendar so far.
    pub fn enqueued(&self) -> u64 {
        self.enqueued
    }

    /// Reservations not yet released, across all nodes.
    pub fn backlog(&self) -> u64 {
        self.nodes.iter().map(|s| s.calendar.len() as u64).sum()
    }

    /// The highest per-node backlog (messages waiting + in service,
    /// as seen by one arrival) observed at any single node.
    pub fn peak_backlog(&self) -> u64 {
        self.peak_backlog
    }

    /// Node `n`'s highest observed backlog.
    pub fn peak_backlog_at(&self, node: NodeId) -> u64 {
        self.nodes
            .get(node.0 as usize)
            .map_or(0, |s| s.peak_backlog)
    }

    /// Node `n`'s total accumulated service time, in microseconds.
    pub fn busy_us_at(&self, node: NodeId) -> u64 {
        self.nodes.get(node.0 as usize).map_or(0, |s| s.busy_us)
    }

    /// The busiest node's utilization over a run of length `makespan`:
    /// its accumulated service time divided by the makespan, in
    /// `[0, 1]` (a saturated node serves back-to-back and approaches
    /// 1). Zero for an empty or instant run.
    pub fn max_utilization(&self, makespan: SimTime) -> f64 {
        if makespan == SimTime::ZERO {
            return 0.0;
        }
        let busiest = self.nodes.iter().map(|s| s.busy_us).max().unwrap_or(0);
        (busiest as f64 / makespan.micros() as f64).min(1.0)
    }

    /// Asserts the backlog-conservation invariant: every admitted
    /// message is either released or still on a calendar (`enqueued ==
    /// completed + Σ backlog`), and each node's calendar is sorted and
    /// **non-overlapping** — the single-server law: a node never
    /// serves two messages at once. Called at every event boundary
    /// under
    /// [`DesConfig::check_conservation`](super::network::DesConfig).
    ///
    /// # Panics
    /// Panics if any part of the invariant is violated.
    pub fn assert_backlog_conserved(&self) {
        let pending: u64 = self.backlog();
        assert_eq!(
            self.enqueued,
            self.completed + pending,
            "service backlog leaked: {} enqueued != {} completed + {} pending",
            self.enqueued,
            self.completed,
            pending
        );
        for (i, state) in self.nodes.iter().enumerate() {
            for (&(start, end), &(next_start, _)) in
                state.calendar.iter().zip(state.calendar.iter().skip(1))
            {
                assert!(start <= next_start, "node {i}: calendar out of order");
                assert!(
                    end <= next_start,
                    "node {i}: overlapping service reservations \
                     [{start}, {end}) and [{next_start}, ..) — two \
                     messages served at once"
                );
            }
            for &(start, end) in &state.calendar {
                assert!(start < end, "node {i}: empty or inverted reservation");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn idle_server_serves_immediately() {
        let mut q = ServiceQueues::new(ServiceModel::constant_us(100), 2);
        let pass = q.admit(n(0), t(50));
        assert_eq!(pass.complete, t(150));
        assert_eq!(pass.queued, SimTime::ZERO);
        assert_eq!(q.peak_backlog(), 1);
        q.assert_backlog_conserved();
    }

    #[test]
    fn busy_server_queues_fifo() {
        let mut q = ServiceQueues::new(ServiceModel::constant_us(100), 1);
        let a = q.admit(n(0), t(0));
        let b = q.admit(n(0), t(10));
        let c = q.admit(n(0), t(20));
        assert_eq!(a.complete, t(100));
        assert_eq!(b.complete, t(200));
        assert_eq!(b.queued, t(90));
        assert_eq!(c.complete, t(300));
        assert_eq!(c.queued, t(180));
        assert_eq!(q.peak_backlog(), 3);
        q.assert_backlog_conserved();
    }

    #[test]
    fn arrivals_after_the_backlog_drains_see_an_idle_server() {
        let mut q = ServiceQueues::new(ServiceModel::constant_us(100), 1);
        q.admit(n(0), t(0));
        q.admit(n(0), t(10));
        // Arrives long after both completions: no wait, and a release
        // at its arrival purges the finished reservations.
        let late = q.admit(n(0), t(10_000));
        assert_eq!(late.queued, SimTime::ZERO);
        assert_eq!(late.complete, t(10_100));
        q.release_before(t(10_000));
        assert_eq!(q.backlog(), 1);
        assert_eq!(q.enqueued(), 3);
        assert_eq!(q.peak_backlog(), 2);
        q.assert_backlog_conserved();
    }

    #[test]
    fn nodes_queue_independently() {
        let mut q = ServiceQueues::new(ServiceModel::constant_us(100), 3);
        q.admit(n(0), t(0));
        let other = q.admit(n(2), t(0));
        assert_eq!(other.queued, SimTime::ZERO, "nodes share no server");
        assert_eq!(q.peak_backlog(), 1);
        assert_eq!(q.peak_backlog_at(n(0)), 1);
        assert_eq!(q.peak_backlog_at(n(1)), 0);
    }

    #[test]
    fn out_of_order_arrival_takes_an_idle_gap() {
        // Processed later but arriving earlier: the server is genuinely
        // idle at t=100, so the message is served there — it does NOT
        // phantom-queue behind the far-future reservation.
        let mut q = ServiceQueues::new(ServiceModel::constant_us(100), 1);
        q.admit(n(0), t(500));
        let early = q.admit(n(0), t(100));
        assert_eq!(early.complete, t(200));
        assert_eq!(early.queued, SimTime::ZERO);
        q.assert_backlog_conserved();
    }

    #[test]
    fn out_of_order_arrival_with_no_gap_waits_its_turn() {
        // The gap before the existing reservation is too short: the
        // single-server law forces the late-processed message to the
        // far side of it.
        let mut q = ServiceQueues::new(ServiceModel::constant_us(100), 1);
        q.admit(n(0), t(50));
        let early = q.admit(n(0), t(0));
        assert_eq!(early.queued, t(150));
        assert_eq!(early.complete, t(250));
        assert_eq!(q.peak_backlog(), 2);
        q.assert_backlog_conserved();
    }

    #[test]
    fn first_fit_fills_interior_gaps() {
        let mut q = ServiceQueues::new(ServiceModel::constant_us(100), 1);
        q.admit(n(0), t(0)); // [0, 100)
        q.admit(n(0), t(300)); // [300, 400)
                               // Fits exactly between the two.
        let mid = q.admit(n(0), t(150));
        assert_eq!(mid.complete, t(250));
        assert_eq!(mid.queued, SimTime::ZERO);
        // Does not fit before [300, 400) anymore; lands after it.
        let squeezed = q.admit(n(0), t(220));
        assert_eq!(squeezed.complete, t(500));
        assert_eq!(squeezed.queued, t(180));
        q.assert_backlog_conserved();
    }

    #[test]
    fn zero_service_is_transparent() {
        for model in [ServiceModel::Instant, ServiceModel::Constant(SimTime::ZERO)] {
            let mut q = ServiceQueues::new(model, 2);
            for i in 0..10 {
                let pass = q.admit(n(0), t(i * 7));
                assert_eq!(pass.complete, t(i * 7));
                assert_eq!(pass.queued, SimTime::ZERO);
            }
            assert_eq!(q.enqueued(), 0);
            assert_eq!(q.peak_backlog(), 0);
            assert_eq!(q.max_utilization(t(1000)), 0.0);
            q.assert_backlog_conserved();
        }
    }

    #[test]
    fn per_node_table_with_default() {
        let m = ServiceModel::PerNode {
            table: vec![t(5), t(0)],
            default: t(9),
        };
        assert_eq!(m.service_time(n(0)), t(5));
        assert_eq!(m.service_time(n(1)), SimTime::ZERO);
        assert_eq!(m.service_time(n(7)), t(9));
        let mut q = ServiceQueues::new(m, 8);
        // Node 1 has zero service: transparent even mid-table.
        assert_eq!(q.admit(n(1), t(3)).complete, t(3));
        assert_eq!(q.admit(n(7), t(3)).complete, t(12));
    }

    #[test]
    fn utilization_tracks_the_busiest_node() {
        let mut q = ServiceQueues::new(ServiceModel::constant_us(100), 2);
        for i in 0..5 {
            q.admit(n(0), t(i * 1000));
        }
        q.admit(n(1), t(0));
        // Node 0 accrued 500us of service over a 2000us run.
        assert!((q.max_utilization(t(2000)) - 0.25).abs() < 1e-12);
        assert_eq!(q.busy_us_at(n(0)), 500);
        assert_eq!(q.busy_us_at(n(1)), 100);
        // Utilization clamps at 1 even if makespan undercounts.
        assert_eq!(q.max_utilization(t(10)), 1.0);
        assert_eq!(q.max_utilization(SimTime::ZERO), 0.0);
    }

    #[test]
    fn release_is_monotone_and_conserves() {
        let mut q = ServiceQueues::new(ServiceModel::constant_us(100), 1);
        for i in 0..4 {
            q.admit(n(0), t(i * 1000));
        }
        q.release_before(t(2_500));
        assert_eq!(q.backlog(), 1);
        // Going backwards is a no-op.
        q.release_before(t(100));
        assert_eq!(q.backlog(), 1);
        q.assert_backlog_conserved();
        q.release_before(SimTime::MAX);
        assert_eq!(q.backlog(), 0);
        q.assert_backlog_conserved();
    }

    #[test]
    fn waiting_appears_past_the_capacity_knee() {
        // Fixed-gap arrivals: below capacity (gap > service) the server
        // is always idle on arrival and nothing waits; past the knee
        // (gap < service) the backlog — and with it the wait — grows
        // without bound. This is the deterministic skeleton of the
        // M/D/1 behavior the engine-level monotonicity test exercises
        // under Poisson arrivals.
        let wait = |gap_us: u64| {
            let mut q = ServiceQueues::new(ServiceModel::constant_us(90), 1);
            let mut total = 0u64;
            for i in 0..200 {
                total += q.admit(n(0), t(i * gap_us)).queued.micros();
            }
            total as f64 / 200.0
        };
        assert_eq!(wait(180), 0.0, "rho 0.5: no queueing below the knee");
        assert_eq!(wait(100), 0.0, "rho 0.9: still below the knee");
        let saturated = wait(80); // rho > 1: every arrival waits longer
        assert!(saturated > 100.0, "rho 1.125 must queue: {saturated}");
    }
}
