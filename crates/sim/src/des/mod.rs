//! The deterministic discrete-event engine (virtual time, concurrent
//! in-flight payments, latency/throughput metrics).
//!
//! The paper's §4 evaluation and §5 prototype both live in a world
//! where payments overlap in time: probes go stale, concurrent payments
//! contend on shared channels, and every hop costs real delay. The
//! instantaneous [`Network`](crate::Network) cannot express any of
//! that, so this module adds a second, *time-aware* backend behind the
//! very same [`PaymentNetwork`](crate::PaymentNetwork) /
//! [`PaymentSession`](crate::PaymentSession) traits — all five routing
//! schemes run on it unmodified.
//!
//! * [`SimTime`] — virtual microseconds; nothing here reads a wall
//!   clock.
//! * [`EventQueue`] — binary-heap event queue with insertion-sequence
//!   tie-breaking, so runs are bit-reproducible (see its module docs
//!   for the invariants).
//! * [`LatencyModel`] — per-hop *propagation* delay: constant,
//!   deterministic uniform jitter, or a per-edge table.
//! * [`ServiceModel`] / [`ServiceQueues`] — per-node *service*: every
//!   message delivered to a node occupies its single server for a
//!   deterministic service time behind a FIFO backlog (M/D/1-style),
//!   so completion latency responds to offered load and the
//!   congestion knee is visible.
//! * [`DesNetwork`] / [`DesSession`] — the backend: phase-1
//!   reservations escrow funds across virtual time; phase-2
//!   `CONFIRM`/`REVERSE` settlement is scheduled into the queue and
//!   lands hop-by-hop later, which is what makes concurrent payments
//!   genuinely contend and probes genuinely stale.
//! * [`DesEngine`] — the executor: admits payments from a timed
//!   workload (`pcn_workload::arrivals` builds Poisson and
//!   trace-replay arrival processes) and reports completion-latency
//!   percentiles, peak in-flight, and throughput in [`DesReport`].
//! * [`churn`] — deterministic topology dynamics: a declarative
//!   [`ChurnSchedule`] of channel close/reopen, node crash/recovery,
//!   and balance-drain events, admitted into the same `(time, seq)`
//!   event order and applied mid-run. Schedule generation is
//!   per-schedule seeded (`pcn_workload::churn_schedule`); an empty
//!   schedule leaves the engine bit-identical to a churn-free build
//!   (see the [`churn`] module docs for the invariants).
//!
//! # Determinism invariants
//!
//! The differential suite (zero-latency DES ≡ instantaneous simulator,
//! svc=0 ≡ committed bench, same-seed bit-identical reports) relies on
//! three invariants, enforced statically by `pcn-lint` (`det_lint`) on
//! every PR:
//!
//! 1. **No wall clock** (rule D1): time here is [`SimTime`] — virtual
//!    microseconds advanced only by the event queue. Nothing in this
//!    crate may touch `std::time::Instant::now` or `SystemTime`; wall
//!    metrics live in the testbed/bench crates behind
//!    `pcn_proto::wall_now()`.
//! 2. **Total event order** (rule D2): events are ordered by
//!    `(time, seq)` where `seq` is the insertion sequence — and by
//!    *nothing else*. No `HashMap`/`HashSet` iteration order may reach
//!    scheduling decisions, metrics, or serialized reports; hash-order
//!    iteration elsewhere must feed a sort or carry a justified
//!    `// det-lint: allow(hash-order) — …` annotation.
//! 3. **Single-threaded by contract** (rule D3): no `thread::spawn`,
//!    no `std::sync` primitives in this crate. A conservative parallel
//!    engine may relax this later, but only with deterministic merge
//!    rules that keep the `(time, seq)` order observable-equivalent.
//!
//! Given those, the whole engine is a pure function of
//! (topology seed, workload seed, model parameters): running it twice
//! — on one machine or two — produces byte-identical [`DesReport`]s.

pub mod churn;
pub mod engine;
pub mod latency;
pub mod network;
pub mod node;
pub mod queue;
pub mod time;

pub use churn::{ChurnAction, ChurnEvent, ChurnRate, ChurnSchedule};
pub use engine::{DesEngine, DesReport};
pub use latency::LatencyModel;
pub use network::{DesConfig, DesNetwork, DesSession};
pub use node::{ServiceModel, ServiceQueues};
pub use queue::EventQueue;
pub use time::SimTime;
