//! Deterministic topology dynamics for the DES backend.
//!
//! Every backend used to assume a static channel graph, but the
//! paper's setting — and any production PCN — lives with channel
//! opens/closes, balance depletion, and node crashes that silently
//! invalidate probed state (the §5.1 staleness problem that
//! [`FaultConfig`](crate::FaultConfig) only approximates with probe
//! noise). A [`ChurnSchedule`] is a declarative list of
//! [`ChurnEvent`]s that [`DesNetwork`](super::network::DesNetwork)
//! admits into its event queue at construction and applies mid-run:
//!
//! * [`ChurnAction::ChannelClose`] freezes a channel (both
//!   directions). Frozen balances stay in the balance vector, so the
//!   funds-conservation invariant holds trivially and a later
//!   [`ChurnAction::ChannelReopen`] resurfaces them. In-flight
//!   `CONFIRM`/`REVERSE` settlement waves land harmlessly on frozen
//!   balances; a phase-1 `COMMIT` arriving at a closed hop NACKs back
//!   over the existing REVERSE retrace, releasing the escrow of every
//!   hop already debited.
//! * [`ChurnAction::NodeDown`] crashes a node: every message that
//!   would be serviced by it — probes and commits alike — is NACKed
//!   until a matching [`ChurnAction::NodeUp`].
//! * [`ChurnAction::BalanceDrain`] models depletion: it moves up to
//!   the requested amount from a channel direction to its reverse
//!   direction (or out of the channel system entirely when the
//!   channel is unidirectional), conserving total funds.
//!
//! # Determinism invariants
//!
//! * Schedule events share the engine's `(time, seq)` total order:
//!   they are scheduled into the same
//!   [`EventQueue`](super::queue::EventQueue) as the settlement
//!   waves, at install time, in declared order — so two runs with the
//!   same seeds and the same schedule apply every event at the same
//!   point of the same total order, bit for bit.
//! * Schedule *generation* is seeded per schedule
//!   (`pcn_workload::churn_schedule` draws from its own
//!   `StdRng::seed_from_u64` stream); applying a schedule draws no
//!   randomness at all.
//! * An **empty schedule is exact**: installing it schedules nothing,
//!   draws nothing, and advances no message tick, so a zero-churn run
//!   is bit-identical to the engine without churn support (the
//!   differential test in `tests/des_engine.rs` pins this for all
//!   five schemes).
//! * Churn events never extend the run's makespan: a reopen scheduled
//!   past the last settlement fires during the final drain without
//!   stretching [`DesNetwork::horizon`](super::network::DesNetwork).

use super::time::SimTime;
use pcn_graph::EdgeId;
use pcn_types::{Amount, NodeId};

/// One topology mutation a [`ChurnSchedule`] can apply.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChurnAction {
    /// Freeze a channel: both directions of `edge`'s channel stop
    /// accepting probes and commits. Balances stay frozen in place.
    ChannelClose(EdgeId),
    /// Reopen a previously closed channel (both directions). A no-op
    /// on an open channel.
    ChannelReopen(EdgeId),
    /// Crash a node: everything it would service NACKs until
    /// [`ChurnAction::NodeUp`].
    NodeDown(NodeId),
    /// Bring a crashed node back. A no-op on a live node.
    NodeUp(NodeId),
    /// Deplete a channel direction: move up to `amount` from `edge`
    /// to its reverse direction (or out of the channel system when
    /// unidirectional). Funds are conserved either way.
    BalanceDrain {
        /// The direction being drained.
        edge: EdgeId,
        /// Upper bound on the amount moved (clamped to the balance).
        amount: Amount,
    },
}

/// One scheduled topology mutation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChurnEvent {
    /// Virtual instant the mutation takes effect.
    pub at: SimTime,
    /// The mutation.
    pub action: ChurnAction,
}

/// A declarative, replayable list of topology mutations.
///
/// Events are applied in the engine's `(time, seq)` total order: the
/// schedule is installed into the event queue in declared order, so
/// same-time events tie-break by their position in the schedule. Build
/// one by hand with [`ChurnSchedule::push`] or generate one from a
/// [`ChurnRate`] with `pcn_workload::churn_schedule`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChurnSchedule {
    events: Vec<ChurnEvent>,
}

impl ChurnSchedule {
    /// The empty schedule: a run with it is bit-identical to a run
    /// without churn support (see the module docs).
    pub fn none() -> Self {
        ChurnSchedule::default()
    }

    /// A schedule over the given events, kept in declared order.
    pub fn new(events: Vec<ChurnEvent>) -> Self {
        ChurnSchedule { events }
    }

    /// Appends one event.
    pub fn push(&mut self, at: SimTime, action: ChurnAction) {
        self.events.push(ChurnEvent { at, action });
    }

    /// Whether the schedule holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// The events, in declared (installation) order.
    pub fn events(&self) -> &[ChurnEvent] {
        &self.events
    }
}

/// Poisson intensities for generated churn — the input to
/// `pcn_workload::churn_schedule`, which turns a rate, a horizon, and
/// a seed into a concrete [`ChurnSchedule`].
///
/// Each field is an independent Poisson process; an event drawn from
/// the close (resp. down) process picks a uniformly random channel
/// (resp. node) and schedules the matching reopen (resp. up) after
/// [`ChurnRate::downtime`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChurnRate {
    /// Channel closes per virtual second across the whole network.
    pub closes_per_sec: f64,
    /// Node crashes per virtual second across the whole network.
    pub node_downs_per_sec: f64,
    /// Balance-drain events per virtual second across the whole
    /// network (each drains one random channel direction completely).
    pub drains_per_sec: f64,
    /// How long a closed channel stays closed / a crashed node stays
    /// down before the matching reopen/up event.
    pub downtime: SimTime,
}

impl ChurnRate {
    /// No churn at all: generation from this rate yields the empty
    /// schedule.
    pub fn zero() -> Self {
        ChurnRate {
            closes_per_sec: 0.0,
            node_downs_per_sec: 0.0,
            drains_per_sec: 0.0,
            downtime: SimTime::ZERO,
        }
    }

    /// Channel closes only, at `closes_per_sec`, each lasting
    /// `downtime`.
    pub fn closes(closes_per_sec: f64, downtime: SimTime) -> Self {
        ChurnRate {
            closes_per_sec,
            ..ChurnRate::zero()
        }
        .with_downtime(downtime)
    }

    /// Sets the downtime, builder-style.
    pub fn with_downtime(mut self, downtime: SimTime) -> Self {
        self.downtime = downtime;
        self
    }

    /// Whether every intensity is zero.
    pub fn is_zero(&self) -> bool {
        self.closes_per_sec <= 0.0 && self.node_downs_per_sec <= 0.0 && self.drains_per_sec <= 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_keeps_declared_order() {
        let mut s = ChurnSchedule::none();
        assert!(s.is_empty());
        s.push(
            SimTime::from_millis(5),
            ChurnAction::ChannelClose(EdgeId(1)),
        );
        s.push(
            SimTime::from_millis(5),
            ChurnAction::ChannelReopen(EdgeId(1)),
        );
        s.push(SimTime::from_millis(1), ChurnAction::NodeDown(NodeId(2)));
        assert_eq!(s.len(), 3);
        // Declared order is preserved verbatim — the event queue's
        // (time, seq) order decides application order at install time.
        assert_eq!(s.events()[0].at, SimTime::from_millis(5));
        assert_eq!(s.events()[2].action, ChurnAction::NodeDown(NodeId(2)));
    }

    #[test]
    fn zero_rate_is_zero() {
        assert!(ChurnRate::zero().is_zero());
        assert!(!ChurnRate::closes(0.5, SimTime::from_secs(10)).is_zero());
        let r = ChurnRate::closes(1.0, SimTime::from_secs(3));
        assert_eq!(r.downtime, SimTime::from_secs(3));
        assert_eq!(r.node_downs_per_sec, 0.0);
    }
}
