//! The backend-agnostic payment-network API.
//!
//! The paper evaluates every routing scheme twice: on the §4 simulator
//! and on the §5 distributed prototype. Both expose the same three
//! primitives — "source routing, probing, and atomic payment
//! processing" — so the routers are written once, against the
//! [`PaymentNetwork`] trait, and run unmodified on either backend:
//!
//! * [`Network`](crate::Network) — the in-memory simulator. Probes and
//!   commits mutate a balance vector directly and are metered into
//!   [`Metrics`](crate::Metrics).
//! * `pcn_proto::Cluster` — the TCP testbed. Probes become `PROBE` /
//!   `PROBE_ACK` frames, payment sessions become the concurrent
//!   two-phase `COMMIT` / `CONFIRM` / `REVERSE` exchange of §5.1.
//!
//! The trait captures the *only* surface routers may touch: the local
//! topology, path probing, and a transactional [`PaymentSession`].
//! Balances are never readable directly — a backend that wanted to leak
//! them would have to do so through [`PaymentNetwork::probe_path`],
//! where the probing overhead the paper measures (Figure 8) is charged.
//!
//! ## Plugging in a custom backend
//!
//! Any settlement substrate that can probe a path and atomically
//! reserve/commit funds can host the routers. A minimal example — an
//! unmetered instant-settlement rail — and a custom router driving it:
//!
//! ```
//! use pcn_graph::{DiGraph, Path};
//! use pcn_sim::{
//!     ChannelInfo, FailureCause, FailureReason, PartFailure, PaymentNetwork, PaymentSession,
//!     ProbeReport, RouteOutcome, Router,
//! };
//! use pcn_types::{Amount, FeePolicy, NodeId, Payment, PaymentClass, TxId};
//!
//! /// A toy backend: every existing channel has unlimited capacity.
//! struct Unmetered {
//!     graph: DiGraph,
//! }
//!
//! struct UnmeteredSession<'a> {
//!     graph: &'a DiGraph,
//!     demand: Amount,
//!     reserved: Amount,
//!     paths_used: u32,
//! }
//!
//! impl PaymentNetwork for Unmetered {
//!     type Session<'a> = UnmeteredSession<'a>;
//!
//!     fn graph(&self) -> &DiGraph {
//!         &self.graph
//!     }
//!
//!     fn probe_path(&mut self, path: &Path) -> Option<ProbeReport> {
//!         let channels = path
//!             .channels()
//!             .map(|(u, v)| {
//!                 Some(ChannelInfo {
//!                     edge: self.graph.edge(u, v)?,
//!                     capacity: Amount::MAX,
//!                     fee: FeePolicy::FREE,
//!                     reverse: None,
//!                 })
//!             })
//!             .collect::<Option<Vec<_>>>()?;
//!         Some(ProbeReport { channels })
//!     }
//!
//!     fn begin_payment(&mut self, payment: &Payment, _class: PaymentClass) -> UnmeteredSession<'_> {
//!         UnmeteredSession {
//!             graph: &self.graph,
//!             demand: payment.amount,
//!             reserved: Amount::ZERO,
//!             paths_used: 0,
//!         }
//!     }
//! }
//!
//! impl PaymentSession for UnmeteredSession<'_> {
//!     fn try_send_part(&mut self, path: &Path, amount: Amount) -> Result<(), PartFailure> {
//!         // Reject parts over channels that do not exist; accept the rest.
//!         for (u, v) in path.channels() {
//!             if self.graph.edge(u, v).is_none() {
//!                 return Err(PartFailure {
//!                     failed_hop: 0,
//!                     available: Amount::ZERO,
//!                     cause: FailureCause::MissingChannel,
//!                 });
//!             }
//!         }
//!         self.reserved = self.reserved.saturating_add(amount);
//!         self.paths_used += 1;
//!         Ok(())
//!     }
//!
//!     fn probe_path(&mut self, _path: &Path) -> Option<ProbeReport> {
//!         None // nothing mid-session to learn: capacity is unlimited
//!     }
//!
//!     fn reserved(&self) -> Amount {
//!         self.reserved
//!     }
//!
//!     fn remaining(&self) -> Amount {
//!         self.demand.saturating_sub(self.reserved)
//!     }
//!
//!     fn commit(self) -> RouteOutcome {
//!         RouteOutcome::Success {
//!             volume: self.demand,
//!             fees: Amount::ZERO,
//!             paths_used: self.paths_used,
//!         }
//!     }
//!
//!     fn abort(self) {}
//! }
//!
//! // Any `Router<N>` — here a one-hop direct-send router — runs on it.
//! struct Direct;
//!
//! impl<N: PaymentNetwork> Router<N> for Direct {
//!     fn name(&self) -> &'static str {
//!         "Direct"
//!     }
//!
//!     fn route(&mut self, net: &mut N, payment: &Payment, class: PaymentClass) -> RouteOutcome {
//!         let Ok(path) = Path::new(vec![payment.sender, payment.receiver], None) else {
//!             return RouteOutcome::failure(FailureReason::NoRoute);
//!         };
//!         net.send_single_path(payment, class, &path)
//!     }
//! }
//!
//! let mut g = DiGraph::new(2);
//! g.add_edge(NodeId(0), NodeId(1)).unwrap();
//! let mut rail = Unmetered { graph: g };
//! let p = Payment::new(TxId(1), NodeId(0), NodeId(1), Amount::from_units(3));
//! assert!(Direct.route(&mut rail, &p, PaymentClass::Mice).is_success());
//! ```

use crate::{FailureReason, ProbeReport, RouteOutcome};
use pcn_graph::{DiGraph, Path};
use pcn_types::{Amount, Payment, PaymentClass};

/// Why one hop NACKed a commit attempt — the signal the staleness
/// layer ([`StalenessTracker`](crate::StalenessTracker)) classifies
/// failures by.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailureCause {
    /// The hop's channel existed and was open but held less than the
    /// part's amount — ordinary contention, *not* evidence of stale
    /// topology knowledge.
    InsufficientBalance,
    /// The path names a channel the topology never had.
    MissingChannel,
    /// The hop's channel has been closed since the sender learned the
    /// path (topology churn — see [`des::churn`](crate::des::churn)).
    ChannelClosed,
    /// The hop's node is down and NACKed the message (topology churn).
    NodeDown,
    /// The backend's wire protocol reports no cause (the prototype's
    /// `COMMIT_NACK` carries none).
    Unreported,
}

impl FailureCause {
    /// Whether the cause indicates *stale topology knowledge* (a
    /// closed channel or crashed node) rather than ordinary balance
    /// contention. Only stale causes feed re-probe thresholds — an
    /// `InsufficientBalance` NACK must never trigger a topology
    /// refresh, or zero-churn runs would change behavior.
    pub fn is_stale(self) -> bool {
        matches!(self, FailureCause::ChannelClosed | FailureCause::NodeDown)
    }
}

/// One hop-failure during a commit attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PartFailure {
    /// Index of the hop whose balance was insufficient (0 = first hop).
    pub failed_hop: usize,
    /// Balance available at that hop when the part arrived. Best effort:
    /// backends whose wire protocol does not report it (the prototype's
    /// `COMMIT_NACK` carries no balance field) leave it at zero.
    pub available: Amount,
    /// Why the hop NACKed, best effort: backends whose wire protocol
    /// reports no cause use [`FailureCause::Unreported`].
    pub cause: FailureCause,
}

/// An in-flight atomic multi-path payment — the AMP guarantee of §3.1
/// realized as the two-phase commit of §5.1.
///
/// Parts reserved with [`PaymentSession::try_send_part`] escrow funds
/// hop-by-hop (phase 1, the prototype's `COMMIT` forward pass);
/// [`PaymentSession::commit`] settles every part (phase 2, the
/// `CONFIRM_ACK` pass crediting each reverse channel direction), while
/// [`PaymentSession::abort`] — or simply dropping the session — restores
/// every escrow (the `REVERSE` pass). A failed payment therefore leaves
/// no trace in any backend's balances.
pub trait PaymentSession {
    /// Attempts to reserve `amount` along `path` (phase-1 commit). On
    /// success the funds are escrowed until [`PaymentSession::commit`]
    /// or [`PaymentSession::abort`]; on failure nothing from *this part*
    /// stays escrowed and the failing hop is reported best-effort.
    ///
    /// A zero `amount` is a no-op that reserves nothing and always
    /// succeeds.
    fn try_send_part(&mut self, path: &Path, amount: Amount) -> Result<(), PartFailure>;

    /// Reserves a batch of parts. The paper's prototype "prepares a
    /// COMMIT message for each of the sub-payment and sends them out"
    /// before collecting replies, so backends with real message latency
    /// override this to issue the phase-1 commits concurrently.
    ///
    /// The default issues [`PaymentSession::try_send_part`] sequentially
    /// and stops at the first failure — the simulator's semantics. On
    /// `Err`, parts reserved earlier in the batch (and, for concurrent
    /// backends, any part that individually succeeded) remain escrowed;
    /// callers are expected to [`PaymentSession::abort`] the session,
    /// which is what every router does on a failed batch.
    fn try_send_parts(&mut self, parts: &[(Path, Amount)]) -> Result<(), PartFailure> {
        for (path, amount) in parts {
            if amount.is_zero() {
                continue;
            }
            self.try_send_part(path, *amount)?;
        }
        Ok(())
    }

    /// Probes a path while the session is open. Escrowed funds of
    /// already-reserved parts are invisible to the probe, exactly as a
    /// concurrent prototype probe sees post-`COMMIT` balances (Flash's
    /// mice loop probes a path only after a full-amount attempt fails).
    fn probe_path(&mut self, path: &Path) -> Option<ProbeReport>;

    /// Total amount reserved so far across all parts.
    fn reserved(&self) -> Amount;

    /// Remaining demand (`demand − reserved`, clamped at zero).
    fn remaining(&self) -> Amount;

    /// Whether the reserved parts cover the full demand.
    fn is_satisfied(&self) -> bool {
        self.remaining().is_zero()
    }

    /// Commits every reserved part (phase 2), crediting reverse channel
    /// directions, and returns the success outcome.
    ///
    /// # Panics
    /// Panics if the reserved total does not cover the demand — routers
    /// must check [`PaymentSession::is_satisfied`] first.
    fn commit(self) -> RouteOutcome;

    /// Aborts the session, restoring every escrowed part. Equivalent to
    /// dropping the session; provided for explicitness at call sites.
    fn abort(self);
}

/// A payment-channel network backend: the complete surface a
/// [`Router`](crate::Router) may touch.
///
/// Implementations exist for the in-memory simulator
/// ([`Network`](crate::Network)) and the TCP testbed prototype
/// (`pcn_proto::Cluster`); the module docs show how to plug in a custom
/// one. Routers never see balances except through
/// [`PaymentNetwork::probe_path`] — the trait is what turns the old
/// "routers never read balances directly" convention into a guarantee.
pub trait PaymentNetwork {
    /// The session type opened by [`PaymentNetwork::begin_payment`].
    type Session<'a>: PaymentSession
    where
        Self: 'a;

    /// The locally known topology — no balance information, exactly what
    /// the paper assumes every node knows (§3.1).
    fn graph(&self) -> &DiGraph;

    /// Probes a path end-to-end: per-hop capacities and fees, charging
    /// the backend's probe-message accounting. `None` when the path has
    /// a missing channel or the probe was lost (fault injection /
    /// transport timeout) — messages are still charged in that case.
    fn probe_path(&mut self, path: &Path) -> Option<ProbeReport>;

    /// Probes several paths. Spider probes all its candidate paths for
    /// every payment; backends with real message latency override this
    /// to probe concurrently, as the prototype's sender does. The
    /// default probes sequentially (the simulator's semantics).
    fn probe_paths(&mut self, paths: &[Path]) -> Vec<Option<ProbeReport>> {
        paths.iter().map(|p| self.probe_path(p)).collect()
    }

    /// Opens an atomic payment session and records the attempt in the
    /// backend's accounting. The session must be
    /// [`PaymentSession::commit`]ted or it aborts on drop.
    fn begin_payment(&mut self, payment: &Payment, class: PaymentClass) -> Self::Session<'_>;

    /// Convenience for single-path schemes: attempt the full amount on
    /// one path and commit if it fits.
    fn send_single_path(
        &mut self,
        payment: &Payment,
        class: PaymentClass,
        path: &Path,
    ) -> RouteOutcome {
        let mut session = self.begin_payment(payment, class);
        match session.try_send_part(path, payment.amount) {
            Ok(()) => session.commit(),
            Err(_) => {
                session.abort();
                RouteOutcome::failure(FailureReason::InsufficientCapacity)
            }
        }
    }

    /// Records a payment the router rejected without touching any
    /// channel (no route, infeasible demand) so success-ratio accounting
    /// stays fair across schemes: the attempt is counted, nothing moves.
    fn record_rejected_attempt(&mut self, payment: &Payment, class: PaymentClass) {
        self.begin_payment(payment, class).abort();
    }

    /// Notifies the backend that the router's staleness layer tripped
    /// a re-probe threshold and is about to refresh its topology
    /// knowledge (fresh probe/flood instead of retrying a dead path —
    /// see [`ReprobePolicy`](crate::ReprobePolicy)). Default: no-op.
    /// The DES backend counts these into
    /// [`DesReport::reprobes_triggered`](crate::DesReport).
    fn note_reprobe(&mut self) {}
}
