//! Fault injection for probing.
//!
//! Real offchain probes race with concurrent payments: "due to network
//! dynamics it is possible that a payment fails on its path because the
//! balance of some channel has changed after it was last probed" (§5.1).
//! The sequential simulator has no concurrency, so [`FaultConfig`]
//! optionally injects the same effect: probes may be dropped (the router
//! sees capacity zero) or report stale/noisy balances. Defaults are all
//! off, matching the paper's simulation.

use rand::prelude::*;
use rand::rngs::StdRng;

/// Probe fault-injection parameters.
#[derive(Clone, Debug)]
pub struct FaultConfig {
    /// Probability a probe of a path is lost entirely (router learns
    /// nothing and must treat the path as unusable).
    pub probe_drop_prob: f64,
    /// Relative error injected into each probed balance, in parts per
    /// million. A value of 100_000 means reports are off by up to ±10%.
    pub probe_noise_ppm: u64,
    /// RNG seed for reproducible fault sequences.
    pub seed: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            probe_drop_prob: 0.0,
            probe_noise_ppm: 0,
            seed: 0,
        }
    }
}

impl FaultConfig {
    /// No faults (the paper's simulation setting).
    pub fn none() -> Self {
        Self::default()
    }

    /// Builds the per-run RNG.
    pub(crate) fn rng(&self) -> StdRng {
        StdRng::seed_from_u64(self.seed)
    }

    /// Whether faults are enabled at all (fast path check).
    pub fn enabled(&self) -> bool {
        self.probe_drop_prob > 0.0 || self.probe_noise_ppm > 0
    }

    /// Applies noise to a probed balance (in micro-units).
    pub(crate) fn distort(&self, rng: &mut StdRng, micros: u64) -> u64 {
        if self.probe_noise_ppm == 0 {
            return micros;
        }
        let span = (micros as u128 * self.probe_noise_ppm as u128 / 1_000_000) as u64;
        if span == 0 {
            return micros;
        }
        let delta = rng.random_range(0..=2 * span);
        (micros + delta).saturating_sub(span)
    }

    /// Rolls the probe-drop dice.
    pub(crate) fn drops_probe(&self, rng: &mut StdRng) -> bool {
        self.probe_drop_prob > 0.0 && rng.random::<f64>() < self.probe_drop_prob
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_inert() {
        let f = FaultConfig::none();
        assert!(!f.enabled());
        let mut rng = f.rng();
        assert_eq!(f.distort(&mut rng, 12345), 12345);
        assert!(!f.drops_probe(&mut rng));
    }

    #[test]
    fn noise_stays_within_bounds() {
        let f = FaultConfig {
            probe_noise_ppm: 100_000, // ±10%
            ..Default::default()
        };
        let mut rng = f.rng();
        for _ in 0..1000 {
            let v = f.distort(&mut rng, 1_000_000);
            assert!((900_000..=1_100_000).contains(&v), "{v} out of bounds");
        }
    }

    #[test]
    fn drop_probability_one_always_drops() {
        let f = FaultConfig {
            probe_drop_prob: 1.0,
            ..Default::default()
        };
        let mut rng = f.rng();
        for _ in 0..10 {
            assert!(f.drops_probe(&mut rng));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let f = FaultConfig {
            probe_noise_ppm: 50_000,
            probe_drop_prob: 0.5,
            seed: 9,
        };
        let run = || {
            let mut rng = f.rng();
            (0..20)
                .map(|_| (f.distort(&mut rng, 777_777), f.drops_probe(&mut rng)))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
