//! # pcn-sim
//!
//! The payment-channel-network simulator behind the paper's §4
//! evaluation, plus the backend-agnostic routing API ([`backend`]) that
//! lets the same routers also drive the §5 TCP testbed.
//!
//! Every backend exposes exactly the three operations the paper's
//! prototype implements (§5.1): **probing**, **source-routed two-phase
//! commit**, and **atomic multi-path payments** — captured by the
//! [`PaymentNetwork`] and [`PaymentSession`] traits:
//!
//! * [`Network`] — the in-memory backend: topology + balances + fees.
//!   Routers never read balances directly — the trait surface has no
//!   balance accessor; they call [`Network::probe_path`] (which meters
//!   probe messages) or attempt a send (which can fail mid-path exactly
//!   like a `COMMIT_NACK`).
//! * Payment sessions — [`Network::begin_payment`] opens an atomic
//!   [`NetworkSession`]; parts reserved with
//!   [`NetworkSession::try_send_part`] are escrowed and either all
//!   committed ([`NetworkSession::commit`], crediting the reverse
//!   channel direction like the prototype's `CONFIRM_ACK`) or all
//!   reversed ([`NetworkSession::abort`]).
//! * [`Router`] — a scheme, generic over the backend; `flash-core`
//!   implements all five schemes against it.
//! * [`Metrics`] — success ratio / success volume / probing messages /
//!   fees, the exact quantities plotted in Figures 6–13.
//! * [`FaultConfig`] — optional fault injection (stale probes, probe
//!   loss), in the spirit of the smoltcp examples' `--drop-chance`.
//! * [`des`] — the deterministic discrete-event engine: a second,
//!   time-aware backend behind the same traits, where payments overlap
//!   in virtual time, reservations hold escrow until delayed
//!   settlement waves land, and [`Metrics`] gains completion-latency
//!   percentiles, peak in-flight, and throughput. Its
//!   [`des::churn`] submodule injects deterministic topology dynamics
//!   (channel close/reopen, node crash, balance drain) into the same
//!   event order.
//! * [`reprobe`] — the router-facing staleness layer: per-destination
//!   stale-error/probe-drop accounting ([`StalenessTracker`]) with
//!   FlyPath-style edge-scaled thresholds ([`ReprobePolicy`]) that
//!   trigger a fresh probe/flood instead of retrying a dead path.
//!
//! Total funds are conserved exactly (integer micro-units): every debit
//! of a forward balance is matched by a credit of escrow and ultimately
//! of the reverse balance, which the property tests assert.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Library code reports through returned values and serialized artifacts,
// never ad-hoc stdout; the experiment/bench binaries print, libraries do not.
#![deny(clippy::dbg_macro, clippy::print_stdout)]

pub mod backend;
pub mod des;
pub mod fault;
pub mod metrics;
pub mod network;
pub mod outcome;
pub mod reprobe;
pub mod router;

pub use backend::{FailureCause, PartFailure, PaymentNetwork, PaymentSession};
pub use des::{
    ChurnAction, ChurnEvent, ChurnRate, ChurnSchedule, DesConfig, DesEngine, DesNetwork, DesReport,
    LatencyModel, ServiceModel, SimTime,
};
pub use fault::FaultConfig;
pub use metrics::{ClassMetrics, LatencyHistogram, Metrics};
pub use network::{ChannelInfo, Network, NetworkSession, ProbeReport};
pub use outcome::{FailureReason, RouteOutcome};
pub use reprobe::{ReprobePolicy, StalenessTracker};
pub use router::Router;
