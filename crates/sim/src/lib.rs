//! # pcn-sim
//!
//! The payment-channel-network simulator behind the paper's §4
//! evaluation. It owns the only mutable truth in the system — per-channel
//! balances — and exposes exactly the three operations the paper's
//! prototype implements (§5.1): **probing**, **source-routed two-phase
//! commit**, and **atomic multi-path payments**:
//!
//! * [`Network`] — topology + balances + fees. Routers never read
//!   balances directly; they call [`Network::probe_path`] (which meters
//!   probe messages) or attempt a send (which can fail mid-path exactly
//!   like a `COMMIT_NACK`).
//! * Payment sessions — [`Network::begin_payment`] opens an atomic
//!   session; parts reserved with [`PaymentSession::try_send_part`] are
//!   escrowed and either all committed ([`PaymentSession::commit`],
//!   crediting the reverse channel direction like the prototype's
//!   `CONFIRM_ACK`) or all reversed ([`PaymentSession::abort`]).
//! * [`Metrics`] — success ratio / success volume / probing messages /
//!   fees, the exact quantities plotted in Figures 6–13.
//! * [`FaultConfig`] — optional fault injection (stale probes, probe
//!   loss), in the spirit of the smoltcp examples' `--drop-chance`.
//!
//! Total funds are conserved exactly (integer micro-units): every debit
//! of a forward balance is matched by a credit of escrow and ultimately
//! of the reverse balance, which the property tests assert.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fault;
pub mod metrics;
pub mod network;
pub mod outcome;
pub mod router;

pub use fault::FaultConfig;
pub use metrics::{ClassMetrics, Metrics};
pub use network::{ChannelInfo, Network, PaymentSession, ProbeReport};
pub use outcome::{FailureReason, RouteOutcome};
pub use router::Router;
