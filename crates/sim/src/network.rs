//! Network state and atomic payment sessions.

use crate::backend::{FailureCause, PartFailure, PaymentNetwork, PaymentSession};
use crate::{FaultConfig, Metrics, RouteOutcome};
use pcn_graph::{DiGraph, EdgeId, Path};
use pcn_types::{Amount, FeePolicy, Payment, PaymentClass, PcnError, Result};
use rand::rngs::StdRng;

/// Probed state of one directed channel on a path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChannelInfo {
    /// Directed edge probed.
    pub edge: EdgeId,
    /// Balance reported by the probe (may be distorted under fault
    /// injection; otherwise the exact current balance).
    pub capacity: Amount,
    /// Fee policy of the channel ("The fee information is collected
    /// during the probing process with the capacity information", §3.2).
    pub fee: FeePolicy,
    /// Balance of the opposite channel direction, when the channel is
    /// bidirectional. Algorithm 1 records both `C[u,v]` and `C[v,u]`
    /// from a single probe (lines 17–22), which the `PROBE_ACK` pass
    /// collects on its way back.
    pub reverse: Option<(EdgeId, Amount)>,
}

/// The result of probing a path end-to-end.
#[derive(Clone, Debug)]
pub struct ProbeReport {
    /// Per-hop channel states, sender → receiver order.
    pub channels: Vec<ChannelInfo>,
}

impl ProbeReport {
    /// The bottleneck (minimum) capacity along the path — `min C_p` of
    /// Algorithm 1.
    pub fn bottleneck(&self) -> Amount {
        self.channels
            .iter()
            .map(|c| c.capacity)
            .min()
            .unwrap_or(Amount::ZERO)
    }
}

/// The offchain network: topology, per-direction channel balances, fee
/// policies, metrics, and fault injection.
///
/// `Clone` produces an independent copy (balances, metrics, fault
/// config), which the experiment harness uses to run every scheme
/// against identical initial conditions. The clone's fault RNG restarts
/// from the configured seed, so clones see identical fault sequences.
pub struct Network {
    graph: DiGraph,
    balances: Vec<Amount>,
    fees: Vec<FeePolicy>,
    metrics: Metrics,
    faults: FaultConfig,
    fault_rng: StdRng,
}

impl Clone for Network {
    fn clone(&self) -> Self {
        Network {
            graph: self.graph.clone(),
            balances: self.balances.clone(),
            fees: self.fees.clone(),
            metrics: self.metrics.clone(),
            fault_rng: self.faults.rng(),
            faults: self.faults.clone(),
        }
    }
}

impl Network {
    /// Creates a network. `balances[e]` and `fees[e]` are indexed by
    /// [`EdgeId`] and must match the graph's edge count.
    pub fn new(graph: DiGraph, balances: Vec<Amount>, fees: Vec<FeePolicy>) -> Result<Self> {
        if balances.len() != graph.edge_count() {
            return Err(PcnError::InvalidConfig(format!(
                "balance table has {} entries for {} edges",
                balances.len(),
                graph.edge_count()
            )));
        }
        if fees.len() != graph.edge_count() {
            return Err(PcnError::InvalidConfig(format!(
                "fee table has {} entries for {} edges",
                fees.len(),
                graph.edge_count()
            )));
        }
        let faults = FaultConfig::none();
        let fault_rng = faults.rng();
        Ok(Network {
            graph,
            balances,
            fees,
            metrics: Metrics::default(),
            faults,
            fault_rng,
        })
    }

    /// Creates a network with the same balance on every directed edge and
    /// free fees — the "evenly assigning the total funds over both
    /// directions" preprocessing the paper applies to Ripple.
    pub fn uniform(graph: DiGraph, balance: Amount) -> Self {
        let e = graph.edge_count();
        Network::new(graph, vec![balance; e], vec![FeePolicy::FREE; e])
            // pcn-lint: allow(panic) — both tables are built with len == edge_count just above
            .expect("tables sized from the graph cannot mismatch")
    }

    /// Installs a fault-injection configuration (resets its RNG).
    pub fn set_faults(&mut self, faults: FaultConfig) {
        self.fault_rng = faults.rng();
        self.faults = faults;
    }

    /// The topology (no balance information — this is exactly what the
    /// paper assumes every node knows locally, §3.1).
    pub fn graph(&self) -> &DiGraph {
        &self.graph
    }

    /// Simulation metrics collected so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Resets metrics (topology and balances unchanged).
    pub fn reset_metrics(&mut self) {
        self.metrics = Metrics::default();
    }

    /// Mutable access to the metrics — for harnesses that need to
    /// exclude maintenance traffic (e.g. the rebalancing extension)
    /// from experiment counters.
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    /// Current balance of a directed edge. **Simulator-internal truth**:
    /// routers must use [`Network::probe_path`] instead (direct reads
    /// would dodge the probe-message accounting the paper measures).
    pub fn balance(&self, e: EdgeId) -> Amount {
        self.balances[e.index()]
    }

    /// Fee policy of a directed edge.
    pub fn fee_policy(&self, e: EdgeId) -> FeePolicy {
        self.fees[e.index()]
    }

    /// Overwrites the fee policy of a directed edge.
    pub fn set_fee_policy(&mut self, e: EdgeId, fee: FeePolicy) {
        self.fees[e.index()] = fee;
    }

    /// Overwrites the balance of a directed edge (setup/scenario code).
    pub fn set_balance(&mut self, e: EdgeId, balance: Amount) {
        self.balances[e.index()] = balance;
    }

    /// Multiplies every balance by `factor` — the capacity scale factor
    /// sweep of Figures 6 and 7.
    pub fn scale_balances(&mut self, factor: u64) {
        for b in &mut self.balances {
            *b = b.scale(factor);
        }
    }

    /// Sum of all channel balances. With no payment session open this is
    /// invariant across payments (fees are accounted separately; see
    /// crate docs).
    pub fn total_funds(&self) -> Amount {
        self.balances.iter().copied().sum()
    }

    /// Probes a path: returns per-hop capacities and fees, charging one
    /// probe message per hop. Returns `None` if the path has a missing
    /// edge, or (under fault injection) when the probe is lost — the
    /// probe messages are still charged in that case.
    pub fn probe_path(&mut self, path: &Path) -> Option<ProbeReport> {
        self.metrics.probe_messages += path.hops() as u64;
        if self.faults.enabled() && self.faults.drops_probe(&mut self.fault_rng) {
            return None;
        }
        // pcn-lint: allow(hot-alloc) — the report Vec is the probe's return value; one per probe round trip, not per event
        let mut channels = Vec::with_capacity(path.hops());
        for (u, v) in path.channels() {
            let e = self.graph.edge(u, v)?;
            let mut cap = self.balances[e.index()];
            if self.faults.enabled() {
                cap = Amount::from_micros(self.faults.distort(&mut self.fault_rng, cap.micros()));
            }
            let reverse = self.graph.reverse_edge(e).map(|rev| {
                let mut rcap = self.balances[rev.index()];
                if self.faults.enabled() {
                    rcap = Amount::from_micros(
                        self.faults.distort(&mut self.fault_rng, rcap.micros()),
                    );
                }
                (rev, rcap)
            });
            channels.push(ChannelInfo {
                edge: e,
                capacity: cap,
                fee: self.fees[e.index()],
                reverse,
            });
        }
        Some(ProbeReport { channels })
    }

    /// Opens an atomic payment session. The attempt is recorded
    /// immediately; the session must then be [`NetworkSession::commit`]ted
    /// or it aborts on drop, restoring all balances.
    pub fn begin_payment(&mut self, payment: &Payment, class: PaymentClass) -> NetworkSession<'_> {
        self.metrics.record_attempt(class, payment.amount);
        NetworkSession {
            net: self,
            demand: payment.amount,
            class,
            parts: Vec::new(),
            fees_accrued: Amount::ZERO,
            closed: false,
        }
    }

    /// Convenience for single-path schemes: attempt the full amount on
    /// one path and commit if it fits.
    pub fn send_single_path(
        &mut self,
        payment: &Payment,
        class: PaymentClass,
        path: &Path,
    ) -> RouteOutcome {
        let mut session = self.begin_payment(payment, class);
        match session.try_send_part(path, payment.amount) {
            Ok(()) => session.commit(),
            Err(_) => {
                session.abort();
                RouteOutcome::failure(crate::FailureReason::InsufficientCapacity)
            }
        }
    }
}

/// An escrowed part: the edges debited and the amount held on each.
struct ReservedPart {
    edges: Vec<EdgeId>,
    amount: Amount,
}

/// An in-flight atomic multi-path payment (the AMP guarantee of §3.1 and
/// the two-phase commit of §5.1) on the in-memory simulator — the
/// [`Network`] backend's [`PaymentSession`] implementation.
///
/// Parts reserved via [`NetworkSession::try_send_part`] escrow funds
/// hop-by-hop, exactly like the prototype's `COMMIT` messages decrement
/// balances on the forward pass. [`NetworkSession::commit`] then credits
/// every reverse channel direction (the prototype's `CONFIRM_ACK` pass);
/// dropping the session un-escrows everything (the `REVERSE` pass), so a
/// failed payment leaves no trace in the balances.
pub struct NetworkSession<'a> {
    net: &'a mut Network,
    demand: Amount,
    class: PaymentClass,
    parts: Vec<ReservedPart>,
    fees_accrued: Amount,
    closed: bool,
}

impl NetworkSession<'_> {
    /// Attempts to reserve `amount` along `path`. On success the funds
    /// are escrowed; on failure every hop debited by *this part* is
    /// restored and the failing hop index is reported (the router can
    /// then probe, as Flash's mice loop does).
    ///
    /// Commit messages are charged for every hop traversed, including
    /// the hops of a failed attempt (the prototype sends `COMMIT` until
    /// a node NACKs).
    pub fn try_send_part(
        &mut self,
        path: &Path,
        amount: Amount,
    ) -> std::result::Result<(), PartFailure> {
        assert!(!self.closed, "session already closed");
        if amount.is_zero() {
            return Ok(());
        }
        let mut debited: Vec<EdgeId> = Vec::with_capacity(path.hops());
        for (hop, (u, v)) in path.channels().enumerate() {
            self.net.metrics.commit_messages += 1;
            let Some(e) = self.net.graph.edge(u, v) else {
                // Path references a non-existent channel: undo and fail.
                for &d in debited.iter().rev() {
                    self.net.balances[d.index()] += amount;
                }
                return Err(PartFailure {
                    failed_hop: hop,
                    available: Amount::ZERO,
                    cause: FailureCause::MissingChannel,
                });
            };
            let bal = self.net.balances[e.index()];
            if bal < amount {
                for &d in debited.iter().rev() {
                    self.net.balances[d.index()] += amount;
                }
                return Err(PartFailure {
                    failed_hop: hop,
                    available: bal,
                    cause: FailureCause::InsufficientBalance,
                });
            }
            self.net.balances[e.index()] = bal.saturating_sub(amount);
            debited.push(e);
        }
        for &e in &debited {
            self.fees_accrued = self
                .fees_accrued
                .saturating_add(self.net.fees[e.index()].fee(amount));
        }
        self.parts.push(ReservedPart {
            edges: debited,
            amount,
        });
        Ok(())
    }

    /// Probes a path while the session is open (Flash's mice
    /// trial-and-error probes a path only after a full-amount attempt on
    /// it fails). Escrowed funds of already-reserved parts are invisible
    /// to the probe, exactly as a concurrent prototype probe would see
    /// post-`COMMIT` balances.
    pub fn probe_path(&mut self, path: &Path) -> Option<ProbeReport> {
        self.net.probe_path(path)
    }

    /// Total amount reserved so far across all parts.
    pub fn reserved(&self) -> Amount {
        self.parts.iter().map(|p| p.amount).sum()
    }

    /// Remaining demand (`demand − reserved`, clamped at zero).
    pub fn remaining(&self) -> Amount {
        self.demand.saturating_sub(self.reserved())
    }

    /// Whether the reserved parts cover the full demand.
    pub fn is_satisfied(&self) -> bool {
        self.remaining().is_zero()
    }

    /// Commits every reserved part: credits the reverse direction of each
    /// hop ("adding the committed funds of this sub-payment to the
    /// channel in the reverse direction, in order to make the
    /// bidirectional channel balances consistent", §5.1) and records the
    /// success. Returns the success outcome.
    ///
    /// # Panics
    /// Panics if the reserved total does not cover the demand — routers
    /// must check [`NetworkSession::is_satisfied`] first.
    pub fn commit(mut self) -> RouteOutcome {
        assert!(
            self.is_satisfied(),
            "commit called with unsatisfied demand (reserved {} of {})",
            self.reserved(),
            self.demand
        );
        let paths_used = self.parts.len() as u32;
        for part in self.parts.drain(..) {
            for e in part.edges {
                if let Some(rev) = self.net.graph.reverse_edge(e) {
                    self.net.balances[rev.index()] =
                        self.net.balances[rev.index()].saturating_add(part.amount);
                }
            }
        }
        self.net.metrics.record_success(
            self.class,
            self.demand,
            self.fees_accrued,
            paths_used as u64,
        );
        self.closed = true;
        RouteOutcome::Success {
            volume: self.demand,
            fees: self.fees_accrued,
            paths_used,
        }
    }

    /// Aborts the session, restoring every escrowed part.
    pub fn abort(mut self) {
        self.rollback();
    }

    fn rollback(&mut self) {
        for part in self.parts.drain(..) {
            for e in part.edges {
                self.net.balances[e.index()] =
                    self.net.balances[e.index()].saturating_add(part.amount);
            }
        }
        self.closed = true;
    }
}

impl Drop for NetworkSession<'_> {
    fn drop(&mut self) {
        if !self.closed {
            self.rollback();
        }
    }
}

/// The simulator is the reference [`PaymentNetwork`] backend: every
/// trait method forwards to the inherent method of the same name, so
/// concrete-`Network` callers and generic routers observe identical
/// semantics (and identical [`Metrics`] accounting).
impl PaymentNetwork for Network {
    type Session<'a> = NetworkSession<'a>;

    fn graph(&self) -> &DiGraph {
        Network::graph(self)
    }

    fn probe_path(&mut self, path: &Path) -> Option<ProbeReport> {
        Network::probe_path(self, path)
    }

    fn begin_payment(&mut self, payment: &Payment, class: PaymentClass) -> NetworkSession<'_> {
        Network::begin_payment(self, payment, class)
    }

    fn send_single_path(
        &mut self,
        payment: &Payment,
        class: PaymentClass,
        path: &Path,
    ) -> RouteOutcome {
        Network::send_single_path(self, payment, class, path)
    }
}

impl PaymentSession for NetworkSession<'_> {
    fn try_send_part(
        &mut self,
        path: &Path,
        amount: Amount,
    ) -> std::result::Result<(), PartFailure> {
        NetworkSession::try_send_part(self, path, amount)
    }

    fn probe_path(&mut self, path: &Path) -> Option<ProbeReport> {
        NetworkSession::probe_path(self, path)
    }

    fn reserved(&self) -> Amount {
        NetworkSession::reserved(self)
    }

    fn remaining(&self) -> Amount {
        NetworkSession::remaining(self)
    }

    fn is_satisfied(&self) -> bool {
        NetworkSession::is_satisfied(self)
    }

    fn commit(self) -> RouteOutcome {
        NetworkSession::commit(self)
    }

    fn abort(self) {
        NetworkSession::abort(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FailureReason;
    use pcn_types::{NodeId, TxId};
    use proptest::prelude::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    /// A 4-node line with bidirectional channels of 10 units each way.
    fn line_net() -> Network {
        let mut g = DiGraph::new(4);
        g.add_channel(n(0), n(1)).unwrap();
        g.add_channel(n(1), n(2)).unwrap();
        g.add_channel(n(2), n(3)).unwrap();
        Network::uniform(g, Amount::from_units(10))
    }

    fn payment(amount: u64) -> Payment {
        Payment::new(TxId(1), n(0), n(3), Amount::from_units(amount))
    }

    fn path_0123() -> Path {
        Path::new(vec![n(0), n(1), n(2), n(3)], None).unwrap()
    }

    #[test]
    fn successful_payment_moves_balances_both_directions() {
        let mut net = line_net();
        let before = net.total_funds();
        let out = net.send_single_path(&payment(4), PaymentClass::Mice, &path_0123());
        assert!(out.is_success());
        let fwd = net.graph().edge(n(0), n(1)).unwrap();
        let rev = net.graph().edge(n(1), n(0)).unwrap();
        assert_eq!(net.balance(fwd), Amount::from_units(6));
        assert_eq!(net.balance(rev), Amount::from_units(14));
        assert_eq!(net.total_funds(), before);
    }

    #[test]
    fn failed_payment_leaves_no_trace() {
        let mut net = line_net();
        let before: Vec<Amount> = net
            .graph()
            .edges()
            .map(|(e, _, _)| net.balance(e))
            .collect();
        let out = net.send_single_path(&payment(11), PaymentClass::Mice, &path_0123());
        assert!(!out.is_success());
        let after: Vec<Amount> = net
            .graph()
            .edges()
            .map(|(e, _, _)| net.balance(e))
            .collect();
        assert_eq!(before, after);
        assert_eq!(net.metrics().total().attempted, 1);
        assert_eq!(net.metrics().total().succeeded, 0);
    }

    #[test]
    fn mid_path_failure_rolls_back_earlier_hops() {
        let mut net = line_net();
        // Drain the middle channel 1→2.
        let mid = net.graph().edge(n(1), n(2)).unwrap();
        net.set_balance(mid, Amount::from_units(2));
        let p = payment(5);
        let mut s = net.begin_payment(&p, PaymentClass::Mice);
        let err = s
            .try_send_part(&path_0123(), Amount::from_units(5))
            .unwrap_err();
        assert_eq!(err.failed_hop, 1);
        assert_eq!(err.available, Amount::from_units(2));
        s.abort();
        let first = net.graph().edge(n(0), n(1)).unwrap();
        assert_eq!(net.balance(first), Amount::from_units(10));
    }

    #[test]
    fn multipath_commit_is_atomic() {
        // Diamond: 0→1→3 and 0→2→3, capacity 10 each; demand 15 split 10+5.
        let mut g = DiGraph::new(4);
        g.add_channel(n(0), n(1)).unwrap();
        g.add_channel(n(1), n(3)).unwrap();
        g.add_channel(n(0), n(2)).unwrap();
        g.add_channel(n(2), n(3)).unwrap();
        let mut net = Network::uniform(g, Amount::from_units(10));
        let before = net.total_funds();
        let p = Payment::new(TxId(9), n(0), n(3), Amount::from_units(15));
        let p1 = Path::new(vec![n(0), n(1), n(3)], None).unwrap();
        let p2 = Path::new(vec![n(0), n(2), n(3)], None).unwrap();
        let mut s = net.begin_payment(&p, PaymentClass::Elephant);
        s.try_send_part(&p1, Amount::from_units(10)).unwrap();
        s.try_send_part(&p2, Amount::from_units(5)).unwrap();
        assert!(s.is_satisfied());
        let out = s.commit();
        assert_eq!(
            out,
            RouteOutcome::Success {
                volume: Amount::from_units(15),
                fees: Amount::ZERO,
                paths_used: 2
            }
        );
        assert_eq!(net.total_funds(), before);
    }

    #[test]
    fn dropping_session_auto_aborts() {
        let mut net = line_net();
        let before = net.total_funds();
        {
            let p = payment(5);
            let mut s = net.begin_payment(&p, PaymentClass::Mice);
            s.try_send_part(&path_0123(), Amount::from_units(5))
                .unwrap();
            // dropped without commit
        }
        assert_eq!(net.total_funds(), before);
        let e = net.graph().edge(n(0), n(1)).unwrap();
        assert_eq!(net.balance(e), Amount::from_units(10));
    }

    #[test]
    #[should_panic(expected = "unsatisfied demand")]
    fn commit_with_shortfall_panics() {
        let mut net = line_net();
        let p = payment(8);
        let mut s = net.begin_payment(&p, PaymentClass::Mice);
        s.try_send_part(&path_0123(), Amount::from_units(3))
            .unwrap();
        let _ = s.commit();
    }

    #[test]
    fn probe_reports_capacities_and_counts_messages() {
        let mut net = line_net();
        let report = net.probe_path(&path_0123()).unwrap();
        assert_eq!(report.channels.len(), 3);
        assert_eq!(report.bottleneck(), Amount::from_units(10));
        assert_eq!(net.metrics().probe_messages, 3);
        net.probe_path(&path_0123()).unwrap();
        assert_eq!(net.metrics().probe_messages, 6);
    }

    #[test]
    fn probe_sees_escrowed_funds_as_gone() {
        let mut net = line_net();
        let p = payment(4);
        let mut s = net.begin_payment(&p, PaymentClass::Mice);
        s.try_send_part(&path_0123(), Amount::from_units(4))
            .unwrap();
        // While escrowed, a probe inside the same borrow isn't possible
        // (session borrows net), so check after abort + re-reserve flow:
        s.abort();
        let report = net.probe_path(&path_0123()).unwrap();
        assert_eq!(report.bottleneck(), Amount::from_units(10));
    }

    #[test]
    fn probe_of_broken_path_is_none_but_charged() {
        let mut net = line_net();
        let bogus = Path::new(vec![n(0), n(2)], None).unwrap();
        assert!(net.probe_path(&bogus).is_none());
        assert_eq!(net.metrics().probe_messages, 1);
    }

    #[test]
    fn probe_drop_fault_loses_report() {
        let mut net = line_net();
        net.set_faults(FaultConfig {
            probe_drop_prob: 1.0,
            ..Default::default()
        });
        assert!(net.probe_path(&path_0123()).is_none());
        assert_eq!(net.metrics().probe_messages, 3);
    }

    #[test]
    fn fees_accrue_per_hop_and_per_part() {
        let mut net = line_net();
        // 1% on every edge.
        let ids: Vec<EdgeId> = net.graph().edges().map(|(e, _, _)| e).collect();
        for e in ids {
            net.set_fee_policy(e, FeePolicy::proportional(10_000));
        }
        let out = net.send_single_path(&payment(5), PaymentClass::Mice, &path_0123());
        match out {
            RouteOutcome::Success { fees, .. } => {
                // 3 hops × 1% of $5 = $0.15.
                assert_eq!(fees, Amount::from_units_f64(0.15));
            }
            _ => panic!("expected success"),
        }
        assert_eq!(net.metrics().fees_paid, Amount::from_units_f64(0.15));
    }

    #[test]
    fn unknown_edge_in_send_fails_cleanly() {
        let mut net = line_net();
        let p = payment(1);
        let bogus = Path::new(vec![n(0), n(2), n(3)], None).unwrap();
        let out = net.send_single_path(&p, PaymentClass::Mice, &bogus);
        assert_eq!(
            out,
            RouteOutcome::failure(FailureReason::InsufficientCapacity)
        );
        assert_eq!(net.total_funds(), Amount::from_units(60));
    }

    #[test]
    fn table_size_mismatch_rejected() {
        let mut g = DiGraph::new(2);
        g.add_channel(n(0), n(1)).unwrap();
        assert!(Network::new(g.clone(), vec![Amount::ZERO], vec![]).is_err());
        assert!(Network::new(g, vec![Amount::ZERO; 2], vec![FeePolicy::FREE; 3]).is_err());
    }

    proptest! {
        /// Conservation: any sequence of sends (some succeeding, some
        /// failing) on a channel graph preserves total funds.
        #[test]
        fn funds_conserved_over_random_sends(
            amounts in proptest::collection::vec(1u64..20, 1..40),
            seed in 0u64..1000,
        ) {
            let g = pcn_graph::generators::watts_strogatz(12, 4, 0.3, seed);
            let mut net = Network::uniform(g, Amount::from_units(10));
            let before = net.total_funds();
            let n_nodes = net.graph().node_count() as u32;
            for (i, a) in amounts.iter().enumerate() {
                let s = NodeId((i as u32 * 7 + seed as u32) % n_nodes);
                let t = NodeId((i as u32 * 13 + 1) % n_nodes);
                if s == t { continue; }
                let Some(path) = pcn_graph::bfs::shortest_path(net.graph(), s, t) else {
                    continue;
                };
                let p = Payment::new(TxId(i as u64), s, t, Amount::from_units(*a));
                let _ = net.send_single_path(&p, PaymentClass::Mice, &path);
                prop_assert_eq!(net.total_funds(), before);
            }
        }
    }
}
