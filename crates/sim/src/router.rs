//! The router abstraction every scheme implements.

use crate::{Network, PaymentNetwork, RouteOutcome};
use pcn_types::{Payment, PaymentClass};

/// A source-routing scheme, generic over the [`PaymentNetwork`] backend
/// it routes on.
///
/// The experiment harness classifies each payment against the configured
/// elephant threshold (the paper sets it so 90% of payments are mice) and
/// hands the payment to the router. Flash changes algorithm based on
/// `class`; the baselines ignore it (they "treat all payments equally
/// through the same routing mechanism", §2.2) but the class still flows
/// into the metrics so per-class breakdowns are comparable.
///
/// Routers interact with the network **only** through probing and
/// payment sessions — the [`PaymentNetwork`] trait exposes no balance
/// reads, so the probing-overhead comparison (Figure 8) is meaningful by
/// construction. A router implemented against the generic parameter runs
/// unmodified on the §4 simulator ([`Network`], the default) and on the
/// §5 TCP testbed (`pcn_proto::Cluster`); the five schemes in
/// `flash-core` are all written this way, which is how the testbed
/// figures drive the very same code the simulation figures measure.
pub trait Router<N: PaymentNetwork = Network> {
    /// Short scheme name for reports ("Flash", "Spider", ...).
    fn name(&self) -> &'static str;

    /// Routes one payment, driving probes and an atomic payment session
    /// on `net`. Must leave balances untouched when returning a failure.
    fn route(&mut self, net: &mut N, payment: &Payment, class: PaymentClass) -> RouteOutcome;

    /// Notification that the local topology was refreshed (the gossip
    /// protocol of §3.1). Routers with caches (Flash's routing table,
    /// SpeedyMurmurs' embeddings) recompute them here.
    fn on_topology_refresh(&mut self, _net: &N) {}
}
