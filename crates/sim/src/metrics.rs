//! Evaluation metrics.
//!
//! "Similar to prior work, we use success ratio, success volume and
//! number of probing messages as the primary metrics" (§4.1). Fees and
//! commit-message counts are additionally tracked for Figures 9 and the
//! testbed delay analysis.

use pcn_types::{Amount, PaymentClass};
use serde::{Deserialize, Serialize};

/// Counters for one traffic class (elephant or mice).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassMetrics {
    /// Payments attempted.
    pub attempted: u64,
    /// Payments fully delivered.
    pub succeeded: u64,
    /// Volume attempted.
    pub attempted_volume: Amount,
    /// Volume of fully delivered payments.
    pub success_volume: Amount,
}

impl ClassMetrics {
    /// Success ratio in [0, 1]; zero when nothing was attempted.
    pub fn success_ratio(&self) -> f64 {
        if self.attempted == 0 {
            0.0
        } else {
            self.succeeded as f64 / self.attempted as f64
        }
    }
}

/// Aggregated simulation metrics.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Metrics {
    /// Elephant-class counters.
    pub elephant: ClassMetrics,
    /// Mice-class counters.
    pub mice: ClassMetrics,
    /// Probe messages sent (one per hop traversed by a probe, as in the
    /// paper: "The number of probing messages along a path is
    /// proportional to the number of hops of the path").
    pub probe_messages: u64,
    /// Commit-phase messages sent (hops traversed by COMMIT attempts).
    pub commit_messages: u64,
    /// Total transaction fees charged on successful payments.
    pub fees_paid: Amount,
    /// Number of distinct paths used by successful payments.
    pub paths_used: u64,
}

impl Metrics {
    /// Records a payment attempt.
    pub fn record_attempt(&mut self, class: PaymentClass, volume: Amount) {
        let c = self.class_mut(class);
        c.attempted += 1;
        c.attempted_volume = c.attempted_volume.saturating_add(volume);
    }

    /// Records a fully delivered payment.
    pub fn record_success(
        &mut self,
        class: PaymentClass,
        volume: Amount,
        fees: Amount,
        paths: u64,
    ) {
        let c = self.class_mut(class);
        c.succeeded += 1;
        c.success_volume = c.success_volume.saturating_add(volume);
        self.fees_paid = self.fees_paid.saturating_add(fees);
        self.paths_used += paths;
    }

    fn class_mut(&mut self, class: PaymentClass) -> &mut ClassMetrics {
        match class {
            PaymentClass::Elephant => &mut self.elephant,
            PaymentClass::Mice => &mut self.mice,
        }
    }

    /// Combined counters over both classes.
    pub fn total(&self) -> ClassMetrics {
        ClassMetrics {
            attempted: self.elephant.attempted + self.mice.attempted,
            succeeded: self.elephant.succeeded + self.mice.succeeded,
            attempted_volume: self
                .elephant
                .attempted_volume
                .saturating_add(self.mice.attempted_volume),
            success_volume: self
                .elephant
                .success_volume
                .saturating_add(self.mice.success_volume),
        }
    }

    /// Overall success ratio in [0, 1].
    pub fn success_ratio(&self) -> f64 {
        self.total().success_ratio()
    }

    /// Overall success volume.
    pub fn success_volume(&self) -> Amount {
        self.total().success_volume
    }

    /// Fee-to-volume ratio in percent (Figure 9's y-axis), zero when no
    /// volume succeeded.
    pub fn fee_ratio_percent(&self) -> f64 {
        let v = self.success_volume();
        if v.is_zero() {
            0.0
        } else {
            100.0 * self.fees_paid.micros() as f64 / v.micros() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcn_types::PaymentClass::{Elephant, Mice};

    #[test]
    fn attempt_and_success_accounting() {
        let mut m = Metrics::default();
        m.record_attempt(Mice, Amount::from_units(5));
        m.record_attempt(Elephant, Amount::from_units(100));
        m.record_success(Mice, Amount::from_units(5), Amount::from_units(1), 1);
        assert_eq!(m.total().attempted, 2);
        assert_eq!(m.total().succeeded, 1);
        assert_eq!(m.success_volume(), Amount::from_units(5));
        assert_eq!(m.mice.success_ratio(), 1.0);
        assert_eq!(m.elephant.success_ratio(), 0.0);
        assert_eq!(m.success_ratio(), 0.5);
    }

    #[test]
    fn empty_metrics_have_zero_ratios() {
        let m = Metrics::default();
        assert_eq!(m.success_ratio(), 0.0);
        assert_eq!(m.fee_ratio_percent(), 0.0);
    }

    #[test]
    fn fee_ratio_percent_matches_hand_math() {
        let mut m = Metrics::default();
        m.record_attempt(Elephant, Amount::from_units(1000));
        m.record_success(
            Elephant,
            Amount::from_units(1000),
            Amount::from_units(15),
            3,
        );
        assert!((m.fee_ratio_percent() - 1.5).abs() < 1e-9);
        assert_eq!(m.paths_used, 3);
    }
}
