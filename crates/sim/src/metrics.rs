//! Evaluation metrics.
//!
//! "Similar to prior work, we use success ratio, success volume and
//! number of probing messages as the primary metrics" (§4.1). Fees and
//! commit-message counts are additionally tracked for Figures 9 and the
//! testbed delay analysis.

use pcn_types::{Amount, PaymentClass};
use serde::{Deserialize, Serialize};

/// Counters for one traffic class (elephant or mice).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassMetrics {
    /// Payments attempted.
    pub attempted: u64,
    /// Payments fully delivered.
    pub succeeded: u64,
    /// Volume attempted.
    pub attempted_volume: Amount,
    /// Volume of fully delivered payments.
    pub success_volume: Amount,
}

impl ClassMetrics {
    /// Success ratio in [0, 1]; zero when nothing was attempted.
    pub fn success_ratio(&self) -> f64 {
        if self.attempted == 0 {
            0.0
        } else {
            self.succeeded as f64 / self.attempted as f64
        }
    }
}

/// A deterministic log-bucketed histogram of completion latencies in
/// virtual microseconds.
///
/// Values below 16µs get exact buckets; larger values land in one of 8
/// sub-buckets per power of two, so quantile estimates carry at most
/// ~6% relative error while the histogram stays a few hundred bytes no
/// matter how many observations it absorbs. The discrete-event backend
/// ([`des`](crate::des)) records one observation per *successful*
/// payment (admission → final settlement); the instantaneous backend
/// records nothing, keeping its metrics bit-identical to before the
/// histogram existed.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyHistogram {
    /// Sparse `(bucket index, count)` pairs, sorted by index.
    buckets: Vec<(u32, u64)>,
    count: u64,
    sum_us: u64,
    min_us: u64,
    max_us: u64,
}

impl LatencyHistogram {
    /// Records one latency observation, in microseconds.
    pub fn observe(&mut self, us: u64) {
        let idx = Self::bucket_of(us);
        match self.buckets.binary_search_by_key(&idx, |&(i, _)| i) {
            Ok(pos) => self.buckets[pos].1 += 1,
            Err(pos) => self.buckets.insert(pos, (idx, 1)),
        }
        if self.count == 0 {
            self.min_us = us;
            self.max_us = us;
        } else {
            self.min_us = self.min_us.min(us);
            self.max_us = self.max_us.max(us);
        }
        self.count += 1;
        self.sum_us = self.sum_us.saturating_add(us);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Largest observation, in microseconds (zero when empty).
    pub fn max_us(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max_us
        }
    }

    /// Mean observation, in microseconds (zero when empty).
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_us as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`q` in `[0, 1]`) in microseconds, estimated
    /// from the bucket containing the rank and clamped to the observed
    /// min/max. Zero when empty.
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(idx, c) in &self.buckets {
            seen += c;
            if seen >= rank {
                return Self::representative(idx).clamp(self.min_us, self.max_us);
            }
        }
        self.max_us
    }

    /// Bucket index: exact below 16, then 8 sub-buckets per octave.
    fn bucket_of(us: u64) -> u32 {
        if us < 16 {
            return us as u32;
        }
        let k = 63 - us.leading_zeros(); // 4..=63
        let sub = ((us >> (k - 3)) & 7) as u32;
        16 + (k - 4) * 8 + sub
    }

    /// Midpoint of a bucket's value range.
    fn representative(idx: u32) -> u64 {
        if idx < 16 {
            return u64::from(idx);
        }
        let k = (idx - 16) / 8 + 4;
        let sub = u64::from((idx - 16) % 8);
        let width = 1u64 << (k - 3);
        (1u64 << k) + sub * width + width / 2
    }
}

/// Aggregated simulation metrics.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Metrics {
    /// Elephant-class counters.
    pub elephant: ClassMetrics,
    /// Mice-class counters.
    pub mice: ClassMetrics,
    /// Probe messages sent (one per hop traversed by a probe, as in the
    /// paper: "The number of probing messages along a path is
    /// proportional to the number of hops of the path").
    pub probe_messages: u64,
    /// Commit-phase messages sent (hops traversed by COMMIT attempts).
    pub commit_messages: u64,
    /// Total transaction fees charged on successful payments.
    pub fees_paid: Amount,
    /// Number of distinct paths used by successful payments.
    pub paths_used: u64,
    /// Completion-latency histogram (virtual µs). Populated only by
    /// time-aware backends ([`des`](crate::des)); the instantaneous
    /// simulator leaves it empty.
    pub latency: LatencyHistogram,
    /// Per-message queueing-delay histogram (virtual µs): how long each
    /// delivered message waited behind a node's FIFO backlog before
    /// service began. Populated only by time-aware backends with a
    /// nonzero per-node service time ([`des::node`](crate::des));
    /// empty on the instantaneous simulator and under the zero-service
    /// default.
    #[serde(default)]
    pub queue_delay: LatencyHistogram,
}

impl Metrics {
    /// Records a payment attempt.
    pub fn record_attempt(&mut self, class: PaymentClass, volume: Amount) {
        let c = self.class_mut(class);
        c.attempted += 1;
        c.attempted_volume = c.attempted_volume.saturating_add(volume);
    }

    /// Records a fully delivered payment.
    pub fn record_success(
        &mut self,
        class: PaymentClass,
        volume: Amount,
        fees: Amount,
        paths: u64,
    ) {
        let c = self.class_mut(class);
        c.succeeded += 1;
        c.success_volume = c.success_volume.saturating_add(volume);
        self.fees_paid = self.fees_paid.saturating_add(fees);
        self.paths_used += paths;
    }

    /// Records one payment-completion latency, in virtual microseconds.
    /// Time-aware backends call this once per successful payment
    /// (admission to final settlement).
    pub fn observe_latency(&mut self, us: u64) {
        self.latency.observe(us);
    }

    /// Records one message's queueing delay behind a node's backlog, in
    /// virtual microseconds. Time-aware backends call this once per
    /// message serviced by a node with a nonzero service time (zero
    /// waits included — the histogram's mean is the true mean wait).
    pub fn observe_queue_delay(&mut self, us: u64) {
        self.queue_delay.observe(us);
    }

    fn class_mut(&mut self, class: PaymentClass) -> &mut ClassMetrics {
        match class {
            PaymentClass::Elephant => &mut self.elephant,
            PaymentClass::Mice => &mut self.mice,
        }
    }

    /// Combined counters over both classes.
    pub fn total(&self) -> ClassMetrics {
        ClassMetrics {
            attempted: self.elephant.attempted + self.mice.attempted,
            succeeded: self.elephant.succeeded + self.mice.succeeded,
            attempted_volume: self
                .elephant
                .attempted_volume
                .saturating_add(self.mice.attempted_volume),
            success_volume: self
                .elephant
                .success_volume
                .saturating_add(self.mice.success_volume),
        }
    }

    /// Overall success ratio in [0, 1].
    pub fn success_ratio(&self) -> f64 {
        self.total().success_ratio()
    }

    /// Overall success volume.
    pub fn success_volume(&self) -> Amount {
        self.total().success_volume
    }

    /// Fee-to-volume ratio in percent (Figure 9's y-axis), zero when no
    /// volume succeeded.
    pub fn fee_ratio_percent(&self) -> f64 {
        let v = self.success_volume();
        if v.is_zero() {
            0.0
        } else {
            100.0 * self.fees_paid.micros() as f64 / v.micros() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcn_types::PaymentClass::{Elephant, Mice};

    #[test]
    fn attempt_and_success_accounting() {
        let mut m = Metrics::default();
        m.record_attempt(Mice, Amount::from_units(5));
        m.record_attempt(Elephant, Amount::from_units(100));
        m.record_success(Mice, Amount::from_units(5), Amount::from_units(1), 1);
        assert_eq!(m.total().attempted, 2);
        assert_eq!(m.total().succeeded, 1);
        assert_eq!(m.success_volume(), Amount::from_units(5));
        assert_eq!(m.mice.success_ratio(), 1.0);
        assert_eq!(m.elephant.success_ratio(), 0.0);
        assert_eq!(m.success_ratio(), 0.5);
    }

    #[test]
    fn empty_metrics_have_zero_ratios() {
        let m = Metrics::default();
        assert_eq!(m.success_ratio(), 0.0);
        assert_eq!(m.fee_ratio_percent(), 0.0);
    }

    #[test]
    fn latency_histogram_quantiles_are_close() {
        let mut h = LatencyHistogram::default();
        for us in 1..=1000u64 {
            h.observe(us * 1000); // 1ms..1000ms
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.max_us(), 1_000_000);
        let p50 = h.quantile_us(0.5) as f64;
        let p95 = h.quantile_us(0.95) as f64;
        let p99 = h.quantile_us(0.99) as f64;
        assert!((p50 - 500_000.0).abs() / 500_000.0 < 0.07, "p50 {p50}");
        assert!((p95 - 950_000.0).abs() / 950_000.0 < 0.07, "p95 {p95}");
        assert!((p99 - 990_000.0).abs() / 990_000.0 < 0.07, "p99 {p99}");
        assert!((h.mean_us() - 500_500.0).abs() < 1.0);
    }

    #[test]
    fn latency_histogram_edge_cases() {
        let h = LatencyHistogram::default();
        assert_eq!(h.quantile_us(0.5), 0);
        assert_eq!(h.count(), 0);
        assert_eq!(h.max_us(), 0);
        assert_eq!(h.mean_us(), 0.0);
        let mut h = LatencyHistogram::default();
        h.observe(0);
        h.observe(7);
        // Values below 16µs are bucketed exactly.
        assert_eq!(h.quantile_us(0.0), 0);
        assert_eq!(h.quantile_us(1.0), 7);
        let mut single = LatencyHistogram::default();
        single.observe(123_456);
        // Quantiles of a single observation clamp to it exactly.
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(single.quantile_us(q), 123_456);
        }
    }

    #[test]
    fn observe_latency_flows_into_metrics() {
        let mut m = Metrics::default();
        assert_eq!(m.latency.count(), 0);
        m.observe_latency(5_000);
        m.observe_latency(9_000);
        assert_eq!(m.latency.count(), 2);
        assert_eq!(m.latency.max_us(), 9_000);
    }

    #[test]
    fn observe_queue_delay_is_a_separate_histogram() {
        let mut m = Metrics::default();
        m.observe_queue_delay(0);
        m.observe_queue_delay(2_000);
        assert_eq!(m.queue_delay.count(), 2);
        assert_eq!(m.queue_delay.max_us(), 2_000);
        assert_eq!(m.latency.count(), 0, "completion latency untouched");
        assert!((m.queue_delay.mean_us() - 1_000.0).abs() < 1.0);
    }

    #[test]
    fn fee_ratio_percent_matches_hand_math() {
        let mut m = Metrics::default();
        m.record_attempt(Elephant, Amount::from_units(1000));
        m.record_success(
            Elephant,
            Amount::from_units(1000),
            Amount::from_units(15),
            3,
        );
        assert!((m.fee_ratio_percent() - 1.5).abs() < 1e-9);
        assert_eq!(m.paths_used, 3);
    }
}
