//! Routing outcomes reported back to the experiment harness.

use pcn_types::Amount;
use serde::{Deserialize, Serialize};

/// Why a payment failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FailureReason {
    /// No path exists between sender and receiver in the topology.
    NoRoute,
    /// Paths exist but their combined usable capacity fell short of the
    /// demand ("when m paths are exhausted and demand is not satisfied,
    /// Flash declares the payment fails").
    InsufficientCapacity,
    /// Probing failed (only under fault injection).
    ProbeLost,
}

/// The result of routing a single payment.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RouteOutcome {
    /// Payment delivered in full.
    Success {
        /// Amount delivered (the payment's full demand).
        volume: Amount,
        /// Total fees charged across all channels and parts.
        fees: Amount,
        /// Number of paths the payment was split over.
        paths_used: u32,
    },
    /// Payment failed; no balance changes were applied.
    Failure {
        /// The reason for the failure.
        reason: FailureReason,
    },
}

impl RouteOutcome {
    /// Whether the payment succeeded.
    pub fn is_success(&self) -> bool {
        matches!(self, RouteOutcome::Success { .. })
    }

    /// Convenience constructor for failures.
    pub fn failure(reason: FailureReason) -> Self {
        RouteOutcome::Failure { reason }
    }

    /// Delivered volume (zero on failure).
    pub fn volume(&self) -> Amount {
        match self {
            RouteOutcome::Success { volume, .. } => *volume,
            RouteOutcome::Failure { .. } => Amount::ZERO,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicates() {
        let s = RouteOutcome::Success {
            volume: Amount::from_units(5),
            fees: Amount::ZERO,
            paths_used: 1,
        };
        assert!(s.is_success());
        assert_eq!(s.volume(), Amount::from_units(5));
        let f = RouteOutcome::failure(FailureReason::NoRoute);
        assert!(!f.is_success());
        assert_eq!(f.volume(), Amount::ZERO);
    }
}
