//! Stale-state detection with threshold-driven re-probing.
//!
//! Under topology churn ([`des::churn`](crate::des::churn)) a router's
//! cached knowledge — Flash's routing table, the landmark trees, even
//! a previously probed path — silently goes stale: commits NACK with
//! [`FailureCause::ChannelClosed`] / [`FailureCause::NodeDown`] and
//! probes vanish. Retrying the dead path burns messages without
//! converging, so every router carries a [`StalenessTracker`]: it
//! accumulates per-destination stale-error and probe-drop counts, and
//! when either crosses the [`ReprobePolicy`]'s edge-scaled threshold
//! the router refreshes its topology knowledge (a fresh probe/flood)
//! instead of retrying, notifying the backend via
//! [`PaymentNetwork::note_reprobe`](crate::PaymentNetwork::note_reprobe).
//!
//! The threshold shape follows FlyPath's `should_flood`: scale with
//! the network's edge count, clamped to a sane band —
//! `(edge_count × SCALE / 100)` clamped to `[10, 100]`, with separate
//! scales for hard errors (30) and probe drops (20). Larger networks
//! tolerate more scattered failures before concluding their state is
//! stale; tiny networks still require a burst of 10.
//!
//! **Zero-churn exactness:** only *stale* causes
//! ([`FailureCause::is_stale`]) and lost probes feed the tracker.
//! Ordinary `InsufficientBalance` contention never does — so in a run
//! with no churn and no probe-loss faults the tracker stays at zero,
//! no threshold ever trips, and router behavior is bit-identical to a
//! build without the staleness layer.

use crate::backend::FailureCause;
use pcn_types::NodeId;

/// Edge-scaled re-probe thresholds (FlyPath's `should_flood` shape).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReprobePolicy {
    /// Percent-of-edge-count scale for stale commit errors.
    pub error_scale: u64,
    /// Percent-of-edge-count scale for lost probes.
    pub drop_scale: u64,
}

/// FlyPath's error scale: threshold = 30% of the edge count.
pub const ERROR_SCALE: u64 = 30;
/// FlyPath's drop scale: threshold = 20% of the edge count.
pub const DROP_SCALE: u64 = 20;
/// Thresholds never drop below this, however small the network.
pub const MIN_THRESHOLD: u64 = 10;
/// Thresholds never exceed this, however large the network.
pub const MAX_THRESHOLD: u64 = 100;

impl Default for ReprobePolicy {
    fn default() -> Self {
        ReprobePolicy {
            error_scale: ERROR_SCALE,
            drop_scale: DROP_SCALE,
        }
    }
}

impl ReprobePolicy {
    fn threshold(scale: u64, edge_count: usize) -> u64 {
        ((edge_count as u64).saturating_mul(scale) / 100).clamp(MIN_THRESHOLD, MAX_THRESHOLD)
    }

    /// Stale-error count at which a destination triggers a re-probe.
    pub fn error_threshold(&self, edge_count: usize) -> u64 {
        Self::threshold(self.error_scale, edge_count)
    }

    /// Lost-probe count at which a destination triggers a re-probe.
    pub fn drop_threshold(&self, edge_count: usize) -> u64 {
        Self::threshold(self.drop_scale, edge_count)
    }
}

/// Per-destination stale-failure accounting for one router.
///
/// Deterministic by construction: plain counters in [`NodeId`]-indexed
/// vectors (no hash order, no randomness, no clock). Embedded in every
/// router; see the module docs for the trip semantics.
#[derive(Clone, Debug, Default)]
pub struct StalenessTracker {
    policy: ReprobePolicy,
    /// Stale commit errors per destination, indexed by `NodeId`.
    errors: Vec<u64>,
    /// Lost probes per destination, indexed by `NodeId`.
    drops: Vec<u64>,
}

impl StalenessTracker {
    /// A fresh tracker under `policy`, all counters zero.
    pub fn new(policy: ReprobePolicy) -> Self {
        StalenessTracker {
            policy,
            errors: Vec::new(),
            drops: Vec::new(),
        }
    }

    /// The policy in force.
    pub fn policy(&self) -> ReprobePolicy {
        self.policy
    }

    fn slot(v: &mut Vec<u64>, dest: NodeId) -> &mut u64 {
        let i = dest.0 as usize;
        if v.len() <= i {
            v.resize(i + 1, 0);
        }
        &mut v[i]
    }

    /// Records one commit failure toward `dest`. Only stale causes
    /// ([`FailureCause::is_stale`]) count; ordinary balance contention
    /// is ignored so zero-churn behavior is unchanged.
    pub fn record_failure(&mut self, dest: NodeId, cause: FailureCause) {
        if cause.is_stale() {
            *Self::slot(&mut self.errors, dest) += 1;
        }
    }

    /// Records one lost probe toward `dest` (the probe returned
    /// `None`: a closed/crashed hop or injected probe loss).
    pub fn record_probe_loss(&mut self, dest: NodeId) {
        *Self::slot(&mut self.drops, dest) += 1;
    }

    /// Stale commit errors recorded toward `dest`.
    pub fn errors(&self, dest: NodeId) -> u64 {
        self.errors.get(dest.0 as usize).copied().unwrap_or(0)
    }

    /// Lost probes recorded toward `dest`.
    pub fn drops(&self, dest: NodeId) -> u64 {
        self.drops.get(dest.0 as usize).copied().unwrap_or(0)
    }

    /// Whether `dest`'s accumulated evidence crosses either threshold
    /// for a network of `edge_count` edges. On trip the destination's
    /// counters reset (the refresh consumes the evidence) and the
    /// caller refreshes its topology knowledge and calls
    /// [`PaymentNetwork::note_reprobe`](crate::PaymentNetwork::note_reprobe).
    pub fn should_reprobe(&mut self, dest: NodeId, edge_count: usize) -> bool {
        let errors = self.errors(dest);
        let drops = self.drops(dest);
        if errors == 0 && drops == 0 {
            return false;
        }
        let trip = errors >= self.policy.error_threshold(edge_count)
            || drops >= self.policy.drop_threshold(edge_count);
        if trip {
            *Self::slot(&mut self.errors, dest) = 0;
            *Self::slot(&mut self.drops, dest) = 0;
        }
        trip
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn thresholds_scale_with_edges_and_clamp() {
        let p = ReprobePolicy::default();
        // Tiny network: clamp to the floor.
        assert_eq!(p.error_threshold(4), 10);
        assert_eq!(p.drop_threshold(4), 10);
        // Mid-size: 200 edges → 60 errors / 40 drops.
        assert_eq!(p.error_threshold(200), 60);
        assert_eq!(p.drop_threshold(200), 40);
        // Huge: clamp to the ceiling.
        assert_eq!(p.error_threshold(10_000), 100);
        assert_eq!(p.drop_threshold(10_000), 100);
    }

    #[test]
    fn only_stale_causes_accumulate() {
        let mut t = StalenessTracker::default();
        t.record_failure(n(3), FailureCause::InsufficientBalance);
        t.record_failure(n(3), FailureCause::MissingChannel);
        t.record_failure(n(3), FailureCause::Unreported);
        assert_eq!(t.errors(n(3)), 0, "non-stale causes must not count");
        t.record_failure(n(3), FailureCause::ChannelClosed);
        t.record_failure(n(3), FailureCause::NodeDown);
        assert_eq!(t.errors(n(3)), 2);
        assert!(!t.should_reprobe(n(3), 4), "below the floor of 10");
    }

    #[test]
    fn tripping_resets_the_destination() {
        let mut t = StalenessTracker::default();
        for _ in 0..10 {
            t.record_failure(n(7), FailureCause::ChannelClosed);
        }
        t.record_probe_loss(n(9));
        assert!(t.should_reprobe(n(7), 4));
        assert_eq!(t.errors(n(7)), 0, "trip consumes the evidence");
        assert!(!t.should_reprobe(n(7), 4), "reset means no double trip");
        assert_eq!(t.drops(n(9)), 1, "other destinations untouched");
    }

    #[test]
    fn probe_losses_trip_their_own_threshold() {
        let mut t = StalenessTracker::default();
        for _ in 0..9 {
            t.record_probe_loss(n(2));
        }
        assert!(!t.should_reprobe(n(2), 4));
        t.record_probe_loss(n(2));
        assert!(t.should_reprobe(n(2), 4));
    }

    #[test]
    fn untouched_destination_never_trips() {
        let mut t = StalenessTracker::default();
        assert!(!t.should_reprobe(n(0), 0));
        assert_eq!(t.errors(n(42)), 0);
        assert_eq!(t.drops(n(42)), 0);
    }
}
