//! Shortest Path (SP) baseline.
//!
//! "SP uses the path with the fewest hops between the sender and receiver
//! to route a payment" (§4.1). It is a static scheme: no probing, a
//! single path, the full amount — the payment succeeds only if every
//! channel on the path holds the whole demand.

use pcn_graph::bfs;
use pcn_sim::{
    FailureReason, PaymentNetwork, PaymentSession, RouteOutcome, Router, StalenessTracker,
};
use pcn_types::{Payment, PaymentClass};

/// The fewest-hops single-path baseline router.
#[derive(Clone, Debug, Default)]
pub struct ShortestPathRouter {
    staleness: StalenessTracker,
}

impl ShortestPathRouter {
    /// Creates the baseline router.
    pub fn new() -> Self {
        ShortestPathRouter::default()
    }
}

impl<N: PaymentNetwork> Router<N> for ShortestPathRouter {
    fn name(&self) -> &'static str {
        "Shortest Path"
    }

    fn route(&mut self, net: &mut N, payment: &Payment, class: PaymentClass) -> RouteOutcome {
        // SP recomputes its BFS path per payment, so a tripped
        // staleness threshold only notifies the backend.
        if self
            .staleness
            .should_reprobe(payment.receiver, net.graph().edge_count())
        {
            net.note_reprobe();
        }
        let Some(path) = bfs::shortest_path(net.graph(), payment.sender, payment.receiver) else {
            // Record the attempt for fair success-ratio accounting.
            net.record_rejected_attempt(payment, class);
            return RouteOutcome::failure(FailureReason::NoRoute);
        };
        // Inlined `send_single_path` so the hop-failure cause reaches
        // the staleness tracker.
        let mut session = net.begin_payment(payment, class);
        match session.try_send_part(&path, payment.amount) {
            Ok(()) => session.commit(),
            Err(e) => {
                self.staleness.record_failure(payment.receiver, e.cause);
                session.abort();
                RouteOutcome::failure(FailureReason::InsufficientCapacity)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcn_graph::DiGraph;
    use pcn_sim::Network;
    use pcn_types::{Amount, NodeId, TxId};

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    fn net() -> Network {
        let mut g = DiGraph::new(4);
        g.add_channel(n(0), n(1)).unwrap();
        g.add_channel(n(1), n(3)).unwrap();
        g.add_channel(n(0), n(2)).unwrap();
        g.add_channel(n(2), n(3)).unwrap();
        Network::uniform(g, Amount::from_units(10))
    }

    #[test]
    fn delivers_within_capacity() {
        let mut net = net();
        let p = Payment::new(TxId(1), n(0), n(3), Amount::from_units(10));
        let out = ShortestPathRouter::new().route(&mut net, &p, PaymentClass::Mice);
        assert!(out.is_success());
        assert_eq!(net.metrics().probe_messages, 0, "SP never probes");
    }

    #[test]
    fn fails_beyond_single_path_capacity() {
        let mut net = net();
        // 11 > 10: SP cannot split across the two disjoint routes.
        let p = Payment::new(TxId(2), n(0), n(3), Amount::from_units(11));
        let out = ShortestPathRouter::new().route(&mut net, &p, PaymentClass::Mice);
        assert!(!out.is_success());
    }

    #[test]
    fn no_route_recorded_as_attempt() {
        let mut g = DiGraph::new(3);
        g.add_channel(n(0), n(1)).unwrap();
        let mut net = Network::uniform(g, Amount::from_units(10));
        let p = Payment::new(TxId(3), n(0), n(2), Amount::from_units(1));
        let out = ShortestPathRouter::new().route(&mut net, &p, PaymentClass::Mice);
        assert_eq!(out, RouteOutcome::failure(FailureReason::NoRoute));
        assert_eq!(net.metrics().total().attempted, 1);
        assert_eq!(net.metrics().total().succeeded, 0);
    }
}
