//! Shortest Path (SP) baseline.
//!
//! "SP uses the path with the fewest hops between the sender and receiver
//! to route a payment" (§4.1). It is a static scheme: no probing, a
//! single path, the full amount — the payment succeeds only if every
//! channel on the path holds the whole demand.

use pcn_graph::bfs;
use pcn_sim::{FailureReason, PaymentNetwork, RouteOutcome, Router};
use pcn_types::{Payment, PaymentClass};

/// The fewest-hops single-path baseline router.
#[derive(Clone, Copy, Debug, Default)]
pub struct ShortestPathRouter;

impl ShortestPathRouter {
    /// Creates the baseline router.
    pub fn new() -> Self {
        ShortestPathRouter
    }
}

impl<N: PaymentNetwork> Router<N> for ShortestPathRouter {
    fn name(&self) -> &'static str {
        "Shortest Path"
    }

    fn route(&mut self, net: &mut N, payment: &Payment, class: PaymentClass) -> RouteOutcome {
        let Some(path) = bfs::shortest_path(net.graph(), payment.sender, payment.receiver) else {
            // Record the attempt for fair success-ratio accounting.
            net.record_rejected_attempt(payment, class);
            return RouteOutcome::failure(FailureReason::NoRoute);
        };
        net.send_single_path(payment, class, &path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcn_graph::DiGraph;
    use pcn_sim::Network;
    use pcn_types::{Amount, NodeId, TxId};

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    fn net() -> Network {
        let mut g = DiGraph::new(4);
        g.add_channel(n(0), n(1)).unwrap();
        g.add_channel(n(1), n(3)).unwrap();
        g.add_channel(n(0), n(2)).unwrap();
        g.add_channel(n(2), n(3)).unwrap();
        Network::uniform(g, Amount::from_units(10))
    }

    #[test]
    fn delivers_within_capacity() {
        let mut net = net();
        let p = Payment::new(TxId(1), n(0), n(3), Amount::from_units(10));
        let out = ShortestPathRouter.route(&mut net, &p, PaymentClass::Mice);
        assert!(out.is_success());
        assert_eq!(net.metrics().probe_messages, 0, "SP never probes");
    }

    #[test]
    fn fails_beyond_single_path_capacity() {
        let mut net = net();
        // 11 > 10: SP cannot split across the two disjoint routes.
        let p = Payment::new(TxId(2), n(0), n(3), Amount::from_units(11));
        let out = ShortestPathRouter.route(&mut net, &p, PaymentClass::Mice);
        assert!(!out.is_success());
    }

    #[test]
    fn no_route_recorded_as_attempt() {
        let mut g = DiGraph::new(3);
        g.add_channel(n(0), n(1)).unwrap();
        let mut net = Network::uniform(g, Amount::from_units(10));
        let p = Payment::new(TxId(3), n(0), n(2), Amount::from_units(1));
        let out = ShortestPathRouter.route(&mut net, &p, PaymentClass::Mice);
        assert_eq!(out, RouteOutcome::failure(FailureReason::NoRoute));
        assert_eq!(net.metrics().total().attempted, 1);
        assert_eq!(net.metrics().total().succeeded, 0);
    }
}
