//! SilentWhispers baseline (Moreno-Sanchez et al., NDSS 2017).
//!
//! Not part of the paper's head-to-head evaluation (§4 compares against
//! its successor SpeedyMurmurs), but discussed in §6: "SilentWhispers
//! utilizes landmark-centered routing. It performs periodic
//! Breadth-First-Search to find the shortest path from the landmarks to
//! the sender and receiver. All paths need to go through the landmarks,
//! which makes some paths unnecessarily long." Implemented here as an
//! extension so the ablation suite can quantify exactly that effect
//! against SpeedyMurmurs' shortcut-capable embeddings.
//!
//! Mechanics: each landmark `l` maintains two BFS spanning trees — one
//! toward `l` (sender side) and one away from `l` (receiver side). A
//! payment is split evenly across landmarks; each share travels
//! `sender → l → receiver` along the concatenated tree paths. Static:
//! no probing; a share fails on the first under-funded hop.

use crate::speedymurmurs::split_evenly;
use pcn_graph::{bfs, DiGraph, Path};
use pcn_sim::{
    FailureReason, PaymentNetwork, PaymentSession, RouteOutcome, Router, StalenessTracker,
};
use pcn_types::{NodeId, Payment, PaymentClass};

/// The SilentWhispers landmark-centered router.
#[derive(Clone, Debug)]
pub struct SilentWhispersRouter {
    /// Number of landmarks (the paper's SpeedyMurmurs config uses 3; we
    /// default the same for comparability).
    pub num_landmarks: usize,
    landmarks: Vec<NodeId>,
    /// Per landmark: parent pointers toward the landmark.
    to_landmark: Vec<Vec<Option<NodeId>>>,
    /// Per landmark: parent pointers away from the landmark.
    from_landmark: Vec<Vec<Option<NodeId>>>,
    ready: bool,
    staleness: StalenessTracker,
}

impl Default for SilentWhispersRouter {
    fn default() -> Self {
        Self::new()
    }
}

impl SilentWhispersRouter {
    /// Creates a router with 3 landmarks.
    pub fn new() -> Self {
        Self::with_landmarks(3)
    }

    /// Creates a router with a custom landmark count.
    pub fn with_landmarks(num_landmarks: usize) -> Self {
        SilentWhispersRouter {
            num_landmarks,
            landmarks: Vec::new(),
            to_landmark: Vec::new(),
            from_landmark: Vec::new(),
            ready: false,
            staleness: StalenessTracker::default(),
        }
    }

    fn ensure_trees(&mut self, g: &DiGraph) {
        if self.ready {
            return;
        }
        let mut nodes: Vec<NodeId> = g.nodes().collect();
        nodes.sort_by_key(|&u| (std::cmp::Reverse(g.degree(u)), u));
        self.landmarks = nodes.into_iter().take(self.num_landmarks).collect();
        self.to_landmark = self
            .landmarks
            .iter()
            .map(|&l| bfs::spanning_tree(g, l, true))
            .collect();
        self.from_landmark = self
            .landmarks
            .iter()
            .map(|&l| bfs::spanning_tree(g, l, false))
            .collect();
        self.ready = true;
    }

    /// The landmark route `s → l → t`, if both tree halves exist and the
    /// concatenation is a simple path.
    fn landmark_route(&self, idx: usize, s: NodeId, t: NodeId) -> Option<Path> {
        let l = self.landmarks[idx];
        // Walk s up to the landmark.
        let mut up = vec![s];
        let mut cur = s;
        while cur != l {
            cur = self.to_landmark[idx][cur.index()]?;
            up.push(cur);
            if up.len() > self.to_landmark[idx].len() {
                return None; // defensive: broken tree
            }
        }
        // Walk t up to the landmark, then reverse for the downhill leg.
        let mut down = vec![t];
        let mut cur = t;
        while cur != l {
            cur = self.from_landmark[idx][cur.index()]?;
            down.push(cur);
            if down.len() > self.from_landmark[idx].len() {
                return None;
            }
        }
        // `down` now reads l ... t.
        down.reverse();
        // Concatenate, dropping the duplicated landmark; trim any
        // overlap to keep the path simple (e.g. s on t's landmark path).
        let mut nodes = up;
        nodes.extend_from_slice(&down[1..]);
        // Simplicity check: landmark routes can revisit nodes when the
        // two legs overlap; shorten by cutting loops.
        let mut seen = std::collections::HashMap::new();
        let mut out: Vec<NodeId> = Vec::with_capacity(nodes.len());
        for n in nodes {
            if let Some(&pos) = seen.get(&n) {
                out.truncate(pos + 1); // cut the loop
                seen.retain(|_, &mut v| v <= pos);
                continue;
            }
            seen.insert(n, out.len());
            out.push(n);
        }
        if out.len() < 2 {
            return None;
        }
        Path::new(out, None).ok()
    }
}

impl<N: PaymentNetwork> Router<N> for SilentWhispersRouter {
    fn name(&self) -> &'static str {
        "SilentWhispers"
    }

    fn route(&mut self, net: &mut N, payment: &Payment, class: PaymentClass) -> RouteOutcome {
        // Stale-state detection: enough stale errors toward this
        // destination trigger a fresh periodic BFS (the paper's
        // landmark trees are rebuilt below).
        if self
            .staleness
            .should_reprobe(payment.receiver, net.graph().edge_count())
        {
            net.note_reprobe();
            self.ready = false;
        }
        self.ensure_trees(net.graph());
        let routes: Vec<Path> = (0..self.landmarks.len())
            .filter_map(|i| self.landmark_route(i, payment.sender, payment.receiver))
            .collect();
        if routes.is_empty() {
            net.record_rejected_attempt(payment, class);
            return RouteOutcome::failure(FailureReason::NoRoute);
        }
        let parts = split_evenly(routes, payment.amount);
        let mut session = net.begin_payment(payment, class);
        if let Err(e) = session.try_send_parts(&parts) {
            self.staleness.record_failure(payment.receiver, e.cause);
            session.abort();
            return RouteOutcome::failure(FailureReason::InsufficientCapacity);
        }
        debug_assert!(session.is_satisfied());
        session.commit()
    }

    fn on_topology_refresh(&mut self, _net: &N) {
        self.ready = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcn_graph::generators;
    use pcn_sim::Network;
    use pcn_types::{Amount, TxId};

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn routes_through_landmark() {
        // Star around node 0 (highest degree → the landmark).
        let mut g = DiGraph::new(5);
        for i in 1..5 {
            g.add_channel(n(0), n(i)).unwrap();
        }
        let mut net = Network::uniform(g, Amount::from_units(10));
        let mut r = SilentWhispersRouter::with_landmarks(1);
        let p = Payment::new(TxId(1), n(1), n(3), Amount::from_units(4));
        let out = r.route(&mut net, &p, PaymentClass::Mice);
        assert!(out.is_success());
        // The route must pass the hub: 1→0 and 0→3 balances moved.
        let e = net.graph().edge(n(1), n(0)).unwrap();
        assert_eq!(net.balance(e), Amount::from_units(6));
        assert_eq!(net.metrics().probe_messages, 0, "static scheme");
    }

    #[test]
    fn loop_trimming_keeps_paths_simple() {
        // Landmark route where sender lies on the receiver's downhill
        // leg: s → l → ... → s → t would loop; trimming must cut it to
        // s → t's suffix.
        let mut g = DiGraph::new(4);
        g.add_channel(n(0), n(1)).unwrap(); // l = 0 (top degree w/ ties by id)
        g.add_channel(n(1), n(2)).unwrap();
        g.add_channel(n(0), n(3)).unwrap();
        let mut net = Network::uniform(g, Amount::from_units(10));
        let mut r = SilentWhispersRouter::with_landmarks(1);
        // 1 → 2: downhill leg from 0 is 0-1-2, uphill 1-0; concatenation
        // 1-0-1-2 must trim to 1-2.
        let p = Payment::new(TxId(2), n(1), n(2), Amount::from_units(1));
        let out = r.route(&mut net, &p, PaymentClass::Mice);
        assert!(out.is_success());
        let direct = net.graph().edge(n(1), n(2)).unwrap();
        assert_eq!(net.balance(direct), Amount::from_units(9));
        // The hub channel is untouched: the loop was cut.
        let hub = net.graph().edge(n(1), n(0)).unwrap();
        assert_eq!(net.balance(hub), Amount::from_units(10));
    }

    #[test]
    fn conserves_funds_and_is_atomic() {
        let g = generators::watts_strogatz(20, 4, 0.3, 5);
        let mut net = Network::uniform(g, Amount::from_units(10));
        let before = net.total_funds();
        let mut r = SilentWhispersRouter::new();
        for i in 0..40u64 {
            let p = Payment::new(
                TxId(i),
                n((i % 20) as u32),
                n(((i * 7 + 3) % 20) as u32),
                Amount::from_units(1 + i % 25),
            );
            if p.sender == p.receiver {
                continue;
            }
            r.route(&mut net, &p, PaymentClass::Mice);
            assert_eq!(net.total_funds(), before);
        }
    }

    #[test]
    fn longer_paths_than_speedymurmurs() {
        // The §6 critique quantified: on a ring+hub topology, routing
        // everything through landmarks uses at least as many hops as
        // SpeedyMurmurs' shortcut-capable greedy routing.
        let g = generators::watts_strogatz(30, 4, 0.2, 9);
        let mut sw_net = Network::uniform(g.clone(), Amount::from_units(1_000_000));
        let mut sm_net = Network::uniform(g, Amount::from_units(1_000_000));
        let mut sw = SilentWhispersRouter::new();
        let mut sm = crate::SpeedyMurmursRouter::new();
        let mut sw_hops = 0u64;
        let mut sm_hops = 0u64;
        for i in 0..30u64 {
            let p = Payment::new(
                TxId(i),
                n((i % 30) as u32),
                n(((i * 11 + 7) % 30) as u32),
                Amount::from_units(1),
            );
            if p.sender == p.receiver {
                continue;
            }
            if sw.route(&mut sw_net, &p, PaymentClass::Mice).is_success() {
                sw_hops += sw_net.metrics().commit_messages;
            }
            if sm.route(&mut sm_net, &p, PaymentClass::Mice).is_success() {
                sm_hops += sm_net.metrics().commit_messages;
            }
        }
        assert!(
            sw_hops >= sm_hops,
            "landmark detours ({sw_hops} hop-msgs) should cost ≥ embeddings ({sm_hops})"
        );
    }
}
