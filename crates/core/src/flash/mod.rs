//! The Flash routing protocol (§3 of the paper).
//!
//! Flash is "a distributed online routing system that processes each
//! transaction as it arrives at the sender". It differentiates elephant
//! and mice payments:
//!
//! * **Elephants** ([`elephant`]): a modified Edmonds–Karp search
//!   (Algorithm 1) finds at most `k` BFS-shortest paths on the residual
//!   topology, probing channel balances lazily; [`fees`] then splits the
//!   demand across the discovered paths, minimizing total transaction
//!   fees with a linear program (program (1) of §3.2).
//! * **Mice** ([`mice`]): a per-receiver routing table caches the top-`m`
//!   Yen shortest paths; a random trial-and-error loop sends the full
//!   remaining amount on each path, probing a path only after it fails.

pub mod elephant;
pub mod fees;
pub mod mice;

use pcn_sim::{
    FailureReason, PaymentNetwork, PaymentSession, RouteOutcome, Router, StalenessTracker,
};
use pcn_types::{Amount, Payment, PaymentClass};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration for [`FlashRouter`].
#[derive(Clone, Debug)]
pub struct FlashConfig {
    /// Maximum number of paths probed for an elephant payment
    /// ("setting k between 20 to 30 provides good performance"; the
    /// evaluation uses 20).
    pub max_elephant_paths: usize,
    /// Paths cached per receiver for mice payments (`m = 4` in the
    /// evaluation).
    pub mice_paths_per_receiver: usize,
    /// Payments with amount strictly greater than this are elephants.
    /// Set with [`crate::classify::threshold_for_mice_fraction`] so that
    /// 90% of payments are mice, as in §4.1.
    pub elephant_threshold: Amount,
    /// Whether to run the fee-minimizing LP for elephants (Figure 9's
    /// ablation disables this, falling back to sequential path filling
    /// in discovery order).
    pub optimize_fees: bool,
    /// Routing-table entries unused for this many payments are evicted
    /// ("Timeouts are used to remove receivers ... to limit the routing
    /// table size").
    pub table_ttl: u64,
    /// RNG seed for the random path order in mice trial-and-error.
    pub seed: u64,
}

impl Default for FlashConfig {
    fn default() -> Self {
        FlashConfig {
            max_elephant_paths: 20,
            mice_paths_per_receiver: 4,
            elephant_threshold: Amount::MAX,
            optimize_fees: true,
            table_ttl: 10_000,
            seed: 0,
        }
    }
}

/// The Flash router.
pub struct FlashRouter {
    config: FlashConfig,
    table: mice::RoutingTable,
    rng: StdRng,
    clock: u64,
    staleness: StalenessTracker,
}

impl FlashRouter {
    /// Creates a Flash router from a configuration.
    pub fn new(config: FlashConfig) -> Self {
        let table = mice::RoutingTable::new(config.mice_paths_per_receiver, config.table_ttl);
        let rng = StdRng::seed_from_u64(config.seed);
        FlashRouter {
            config,
            table,
            rng,
            clock: 0,
            staleness: StalenessTracker::default(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &FlashConfig {
        &self.config
    }

    /// The per-destination staleness accounting (stale commit errors
    /// and lost probes feeding the re-probe thresholds).
    pub fn staleness(&self) -> &StalenessTracker {
        &self.staleness
    }

    /// Number of (sender, receiver) entries currently cached in the mice
    /// routing table.
    pub fn routing_table_len(&self) -> usize {
        self.table.len()
    }

    /// Routes a payment with the elephant algorithm: Algorithm 1 + the
    /// fee-minimizing split. `class` is normally `Elephant`, but the
    /// Figure 11 `m = 0` configuration routes mice this way too (the
    /// paper's "performance upperbound" baseline) — metrics then still
    /// attribute the payment to the mice class.
    fn route_elephant<N: PaymentNetwork>(
        &mut self,
        net: &mut N,
        payment: &Payment,
        class: PaymentClass,
    ) -> RouteOutcome {
        let plan = elephant::find_paths(
            net,
            payment.sender,
            payment.receiver,
            payment.amount,
            self.config.max_elephant_paths,
        );
        if plan.paths.is_empty() {
            net.record_rejected_attempt(payment, class);
            return RouteOutcome::failure(FailureReason::NoRoute);
        }
        if plan.max_flow < payment.amount {
            // Algorithm 1 line 28: demand unsatisfiable over ≤ k paths.
            net.record_rejected_attempt(payment, class);
            return RouteOutcome::failure(FailureReason::InsufficientCapacity);
        }
        let Some(parts) = fees::split_payment(
            net.graph(),
            &plan,
            payment.amount,
            self.config.optimize_fees,
        ) else {
            net.record_rejected_attempt(payment, class);
            return RouteOutcome::failure(FailureReason::InsufficientCapacity);
        };
        let mut session = net.begin_payment(payment, class);
        if let Err(e) = session.try_send_parts(&parts) {
            self.staleness.record_failure(payment.receiver, e.cause);
            session.abort();
            return RouteOutcome::failure(FailureReason::InsufficientCapacity);
        }
        if !session.is_satisfied() {
            session.abort();
            return RouteOutcome::failure(FailureReason::InsufficientCapacity);
        }
        session.commit()
    }

    /// Routes a mice payment via the routing table + trial-and-error.
    fn route_mice<N: PaymentNetwork>(&mut self, net: &mut N, payment: &Payment) -> RouteOutcome {
        self.clock += 1;
        self.table.evict_stale(self.clock);
        let paths =
            self.table
                .lookup_or_compute(net.graph(), payment.sender, payment.receiver, self.clock);
        if paths.is_empty() {
            net.record_rejected_attempt(payment, PaymentClass::Mice);
            return RouteOutcome::failure(FailureReason::NoRoute);
        }
        // Random path order: "Instead of following a fixed order ...
        // Flash randomly picks the paths to better load balance them".
        let mut order: Vec<usize> = (0..paths.len()).collect();
        partial_shuffle(&mut order, &mut self.rng);

        let mut dead_paths: Vec<usize> = Vec::new();
        let mut session = net.begin_payment(payment, PaymentClass::Mice);
        for &idx in &order {
            if session.is_satisfied() {
                break;
            }
            let path = &paths[idx];
            let remaining = session.remaining();
            // First try the full remaining amount — no probe needed when
            // it goes through ("it only probes a path when it cannot
            // deliver the payment in full").
            match session.try_send_part(path, remaining) {
                Ok(()) => break,
                Err(e) => self.staleness.record_failure(payment.receiver, e.cause),
            }
            // Probe to learn the effective capacity, then send that much.
            let Some(report) = session.probe_path(path) else {
                // Probe lost: fault injection or a stale hop (closed
                // channel / crashed node) bounced it.
                self.staleness.record_probe_loss(payment.receiver);
                continue;
            };
            let cp = report.bottleneck().min(session.remaining());
            if cp.is_zero() {
                dead_paths.push(idx);
                continue;
            }
            if let Err(e) = session.try_send_part(path, cp) {
                // Probe raced a fault distortion; skip the path.
                self.staleness.record_failure(payment.receiver, e.cause);
                continue;
            }
        }
        let outcome = if session.is_satisfied() {
            session.commit()
        } else {
            session.abort();
            RouteOutcome::failure(FailureReason::InsufficientCapacity)
        };
        // Replace zero-capacity paths with the next top shortest path.
        // Highest index first: when Yen is exhausted `replace_path`
        // *removes* the dead path, which would shift any smaller index
        // still waiting in the list onto a live path.
        dead_paths.sort_unstable_by(|a, b| b.cmp(a));
        for idx in dead_paths {
            self.table
                .replace_path(net.graph(), payment.sender, payment.receiver, idx);
        }
        outcome
    }
}

/// Fisher–Yates shuffle via the router's own RNG (avoids depending on
/// `rand::seq` trait imports at every call site).
fn partial_shuffle(xs: &mut [usize], rng: &mut StdRng) {
    use rand::RngExt;
    for i in (1..xs.len()).rev() {
        let j = rng.random_range(0..=i);
        xs.swap(i, j);
    }
}

impl<N: PaymentNetwork> Router<N> for FlashRouter {
    fn name(&self) -> &'static str {
        "Flash"
    }

    fn route(&mut self, net: &mut N, payment: &Payment, class: PaymentClass) -> RouteOutcome {
        // Stale-state detection: once this destination has accumulated
        // enough stale errors / lost probes, refresh the routing table
        // from the latest topology instead of retrying dead paths.
        if self
            .staleness
            .should_reprobe(payment.receiver, net.graph().edge_count())
        {
            net.note_reprobe();
            self.table.refresh(net.graph());
        }
        match class {
            PaymentClass::Elephant => self.route_elephant(net, payment, class),
            // The m = 0 configuration routes mice with the elephant
            // machinery (Figure 11's upper-bound baseline).
            PaymentClass::Mice if self.config.mice_paths_per_receiver == 0 => {
                self.route_elephant(net, payment, class)
            }
            PaymentClass::Mice => self.route_mice(net, payment),
        }
    }

    fn on_topology_refresh(&mut self, net: &N) {
        // "The routing table is periodically refreshed when the local
        // network topology G is updated ... all entries are re-computed
        // using the latest G."
        self.table.refresh(net.graph());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcn_graph::DiGraph;
    use pcn_sim::Network;
    use pcn_types::{NodeId, TxId};

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    /// Diamond with two 2-hop routes of 10 each.
    fn diamond_net() -> Network {
        let mut g = DiGraph::new(4);
        g.add_channel(n(0), n(1)).unwrap();
        g.add_channel(n(1), n(3)).unwrap();
        g.add_channel(n(0), n(2)).unwrap();
        g.add_channel(n(2), n(3)).unwrap();
        Network::uniform(g, Amount::from_units(10))
    }

    fn flash() -> FlashRouter {
        FlashRouter::new(FlashConfig {
            elephant_threshold: Amount::from_units(5),
            ..Default::default()
        })
    }

    #[test]
    fn elephant_splits_across_paths() {
        let mut net = diamond_net();
        let p = Payment::new(TxId(1), n(0), n(3), Amount::from_units(15));
        let out = flash().route(&mut net, &p, PaymentClass::Elephant);
        assert!(out.is_success(), "15 needs both 10-unit routes: {out:?}");
        match out {
            RouteOutcome::Success { paths_used, .. } => assert!(paths_used >= 2),
            _ => unreachable!(),
        }
    }

    #[test]
    fn elephant_fails_beyond_max_flow() {
        let mut net = diamond_net();
        let before = net.total_funds();
        let p = Payment::new(TxId(1), n(0), n(3), Amount::from_units(21));
        let out = flash().route(&mut net, &p, PaymentClass::Elephant);
        assert_eq!(
            out,
            RouteOutcome::failure(FailureReason::InsufficientCapacity)
        );
        assert_eq!(net.total_funds(), before);
    }

    #[test]
    fn mice_first_attempt_needs_no_probe() {
        let mut net = diamond_net();
        let p = Payment::new(TxId(1), n(0), n(3), Amount::from_units(2));
        let mut r = flash();
        let out = r.route(&mut net, &p, PaymentClass::Mice);
        assert!(out.is_success());
        assert_eq!(
            net.metrics().probe_messages,
            0,
            "small mice payment must go through without probing"
        );
    }

    #[test]
    fn mice_trial_and_error_splits_when_needed() {
        let mut net = diamond_net();
        // 14 > any single 10-unit path: first attempt fails, probe, send
        // 10, second path carries 4.
        let p = Payment::new(TxId(1), n(0), n(3), Amount::from_units(14));
        let mut r = flash();
        let out = r.route(&mut net, &p, PaymentClass::Mice);
        assert!(out.is_success(), "{out:?}");
        assert!(net.metrics().probe_messages > 0);
    }

    #[test]
    fn mice_failure_is_atomic() {
        let mut net = diamond_net();
        let before = net.total_funds();
        let p = Payment::new(TxId(1), n(0), n(3), Amount::from_units(30));
        let out = flash().route(&mut net, &p, PaymentClass::Mice);
        assert!(!out.is_success());
        assert_eq!(net.total_funds(), before);
    }

    #[test]
    fn routing_table_caches_receivers() {
        let mut net = diamond_net();
        let mut r = flash();
        let p1 = Payment::new(TxId(1), n(0), n(3), Amount::from_units(1));
        r.route(&mut net, &p1, PaymentClass::Mice);
        assert_eq!(r.routing_table_len(), 1);
        let p2 = Payment::new(TxId(2), n(0), n(3), Amount::from_units(1));
        r.route(&mut net, &p2, PaymentClass::Mice);
        assert_eq!(r.routing_table_len(), 1, "recurring receiver reuses entry");
        let p3 = Payment::new(TxId(3), n(1), n(2), Amount::from_units(1));
        r.route(&mut net, &p3, PaymentClass::Mice);
        assert_eq!(r.routing_table_len(), 2);
    }

    #[test]
    fn topology_refresh_clears_table() {
        let mut net = diamond_net();
        let mut r = flash();
        let p = Payment::new(TxId(1), n(0), n(3), Amount::from_units(1));
        r.route(&mut net, &p, PaymentClass::Mice);
        assert_eq!(r.routing_table_len(), 1);
        r.on_topology_refresh(&net);
        assert_eq!(r.routing_table_len(), 0);
    }

    #[test]
    fn no_route_failure() {
        let mut g = DiGraph::new(3);
        g.add_channel(n(0), n(1)).unwrap();
        let mut net = Network::uniform(g, Amount::from_units(10));
        let mut r = flash();
        let p = Payment::new(TxId(1), n(0), n(2), Amount::from_units(1));
        assert_eq!(
            r.route(&mut net, &p, PaymentClass::Mice),
            RouteOutcome::failure(FailureReason::NoRoute)
        );
        let p = Payment::new(TxId(2), n(0), n(2), Amount::from_units(100));
        assert_eq!(
            r.route(&mut net, &p, PaymentClass::Elephant),
            RouteOutcome::failure(FailureReason::NoRoute)
        );
    }

    #[test]
    fn deterministic_with_same_seed() {
        let run = |seed: u64| {
            let mut net = diamond_net();
            let mut r = FlashRouter::new(FlashConfig {
                elephant_threshold: Amount::from_units(5),
                seed,
                ..Default::default()
            });
            let mut outs = Vec::new();
            for i in 0..10 {
                let p = Payment::new(
                    TxId(i),
                    n((i % 4) as u32),
                    n(((i + 2) % 4) as u32),
                    Amount::from_units(3 + i % 5),
                );
                if p.sender != p.receiver {
                    outs.push(r.route(&mut net, &p, PaymentClass::Mice));
                }
            }
            outs
        };
        assert_eq!(run(7), run(7));
    }
}
