//! The mice routing table (§3.3 path finding).
//!
//! "Each node maintains a routing table for mice payments. It contains
//! paths for the unique receivers of this node. Upon seeing a new
//! receiver that does not exist in the routing table, the node computes
//! top-m shortest paths (i.e. using Yen's algorithm) on the local
//! topology G, and adds them to the routing table."
//!
//! This implementation keys entries by `(sender, receiver)` because one
//! `FlashRouter` instance simulates every node's local state at once;
//! the per-sender view is identical to per-node tables.

use pcn_graph::{yen, DiGraph, Path};
use pcn_types::NodeId;
use std::collections::HashMap;

/// One routing-table entry.
#[derive(Clone, Debug)]
struct TableEntry {
    /// Cached top-m (plus replacements) shortest paths.
    paths: Vec<Path>,
    /// How many Yen paths have been consumed so far (m + replacements);
    /// the next replacement takes the path at this rank.
    yen_cursor: usize,
    /// Logical timestamp of the last lookup (for TTL eviction).
    last_used: u64,
}

/// The per-(sender, receiver) mice routing table.
#[derive(Clone, Debug)]
pub struct RoutingTable {
    m: usize,
    ttl: u64,
    entries: HashMap<(NodeId, NodeId), TableEntry>,
}

impl RoutingTable {
    /// Creates a table caching `m` paths per receiver, evicting entries
    /// unused for `ttl` lookups.
    pub fn new(m: usize, ttl: u64) -> Self {
        RoutingTable {
            m,
            ttl,
            entries: HashMap::new(),
        }
    }

    /// Number of cached (sender, receiver) entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Returns the cached paths for `(s, t)`, computing the top-m Yen
    /// shortest paths on a miss ("path finding is simplified into table
    /// lookups in most cases"). `now` stamps the entry for TTL purposes.
    pub fn lookup_or_compute(&mut self, g: &DiGraph, s: NodeId, t: NodeId, now: u64) -> Vec<Path> {
        let m = self.m;
        let entry = self.entries.entry((s, t)).or_insert_with(|| TableEntry {
            paths: yen::k_shortest_paths_hops(g, s, t, m),
            yen_cursor: m,
            last_used: now,
        });
        entry.last_used = now;
        entry.paths.clone()
    }

    /// Replaces the path at `idx` with the next-ranked Yen shortest path
    /// ("when a payment encounters an unaccessible path with zero
    /// effective capacity or no connectivity, Flash replaces it with the
    /// next top shortest path"). If the graph has no further simple
    /// path, the dead path is simply dropped.
    pub fn replace_path(&mut self, g: &DiGraph, s: NodeId, t: NodeId, idx: usize) {
        let Some(entry) = self.entries.get_mut(&(s, t)) else {
            return;
        };
        if idx >= entry.paths.len() {
            return;
        }
        let want = entry.yen_cursor + 1;
        let all = yen::k_shortest_paths_hops(g, s, t, want);
        if all.len() >= want {
            entry.paths[idx] = all[want - 1].clone();
        } else {
            entry.paths.remove(idx);
        }
        entry.yen_cursor = want;
    }

    /// Evicts entries unused for longer than the TTL.
    pub fn evict_stale(&mut self, now: u64) {
        let ttl = self.ttl;
        self.entries
            .retain(|_, e| now.saturating_sub(e.last_used) <= ttl);
    }

    /// Drops every entry; they will be recomputed lazily against the new
    /// topology (the periodic refresh of §3.3).
    pub fn refresh(&mut self, _g: &DiGraph) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    /// Diamond + long detour: at least 3 simple paths 0 → 3.
    fn graph() -> DiGraph {
        let mut g = DiGraph::new(5);
        for (u, v) in [(0, 1), (1, 3), (0, 2), (2, 3), (0, 4), (4, 2)] {
            g.add_edge(n(u), n(v)).unwrap();
        }
        g
    }

    #[test]
    fn miss_computes_top_m() {
        let g = graph();
        let mut t = RoutingTable::new(2, 100);
        let paths = t.lookup_or_compute(&g, n(0), n(3), 1);
        assert_eq!(paths.len(), 2);
        assert_eq!(paths[0].hops(), 2);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn hit_reuses_cached_paths() {
        let g = graph();
        let mut t = RoutingTable::new(2, 100);
        let a = t.lookup_or_compute(&g, n(0), n(3), 1);
        let b = t.lookup_or_compute(&g, n(0), n(3), 2);
        assert_eq!(
            a.iter().map(|p| p.nodes().to_vec()).collect::<Vec<_>>(),
            b.iter().map(|p| p.nodes().to_vec()).collect::<Vec<_>>()
        );
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn replacement_advances_to_next_yen_path() {
        let g = graph();
        let mut t = RoutingTable::new(2, 100);
        let before = t.lookup_or_compute(&g, n(0), n(3), 1);
        t.replace_path(&g, n(0), n(3), 0);
        let after = t.lookup_or_compute(&g, n(0), n(3), 2);
        assert_eq!(after.len(), 2);
        // Slot 0 now holds the 3rd Yen path (the 3-hop detour).
        assert_eq!(after[0].hops(), 3);
        assert_ne!(before[0].nodes(), after[0].nodes());
    }

    #[test]
    fn replacement_exhaustion_drops_path() {
        let mut g = DiGraph::new(2);
        g.add_edge(n(0), n(1)).unwrap();
        let mut t = RoutingTable::new(1, 100);
        let paths = t.lookup_or_compute(&g, n(0), n(1), 1);
        assert_eq!(paths.len(), 1);
        // Only one simple path exists; replacing it leaves nothing.
        t.replace_path(&g, n(0), n(1), 0);
        let paths = t.lookup_or_compute(&g, n(0), n(1), 2);
        assert!(paths.is_empty());
    }

    #[test]
    fn ttl_eviction() {
        let g = graph();
        let mut t = RoutingTable::new(2, 10);
        t.lookup_or_compute(&g, n(0), n(3), 1);
        t.lookup_or_compute(&g, n(1), n(3), 5);
        t.evict_stale(12);
        // Entry stamped at 1 is stale (12 − 1 > 10); the one at 5 lives.
        assert_eq!(t.len(), 1);
        t.evict_stale(100);
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn refresh_clears_everything() {
        let g = graph();
        let mut t = RoutingTable::new(2, 100);
        t.lookup_or_compute(&g, n(0), n(3), 1);
        t.lookup_or_compute(&g, n(2), n(3), 1);
        assert_eq!(t.len(), 2);
        t.refresh(&g);
        assert!(t.is_empty());
    }

    #[test]
    fn unreachable_receiver_yields_empty_entry() {
        let mut g = DiGraph::new(3);
        g.add_edge(n(0), n(1)).unwrap();
        let mut t = RoutingTable::new(4, 100);
        let paths = t.lookup_or_compute(&g, n(0), n(2), 1);
        assert!(paths.is_empty());
    }
}
