//! The mice routing table (§3.3 path finding).
//!
//! "Each node maintains a routing table for mice payments. It contains
//! paths for the unique receivers of this node. Upon seeing a new
//! receiver that does not exist in the routing table, the node computes
//! top-m shortest paths (i.e. using Yen's algorithm) on the local
//! topology G, and adds them to the routing table."
//!
//! This implementation keys entries by `(sender, receiver)` because one
//! `FlashRouter` instance simulates every node's local state at once;
//! the per-sender view is identical to per-node tables.

use pcn_graph::{yen, DiGraph, Path};
use pcn_types::NodeId;
use std::collections::HashMap;

/// One routing-table entry.
#[derive(Clone, Debug)]
struct TableEntry {
    /// The live path set: the top-m shortest paths, with dead paths
    /// swapped for later Yen ranks by [`RoutingTable::replace_path`].
    paths: Vec<Path>,
    /// Every Yen rank computed so far, in rank order — the cached prefix
    /// that replacements consume before recomputing anything.
    yen_all: Vec<Path>,
    /// How many Yen ranks have been handed out (initial paths +
    /// replacements); the next replacement takes `yen_all[yen_cursor]`.
    /// Always ≤ the number of ranks that actually exist: initialized to
    /// `paths.len()`, not `m`, because Yen may return fewer than `m`.
    yen_cursor: usize,
    /// `Some(edge_count)` of the topology on which Yen last proved
    /// `yen_all` is *every* simple path there is. While the fingerprint
    /// matches, replacements skip the refetch entirely instead of
    /// re-proving exhaustion with a full Yen run per dead path.
    /// ([`RoutingTable::refresh`] is the real answer to topology change;
    /// the fingerprint just keeps an un-refreshed grown graph from being
    /// treated as still exhausted.)
    exhausted_at_edges: Option<usize>,
    /// Logical timestamp of the last lookup (for TTL eviction).
    last_used: u64,
}

/// The per-(sender, receiver) mice routing table.
#[derive(Clone, Debug)]
pub struct RoutingTable {
    m: usize,
    ttl: u64,
    entries: HashMap<(NodeId, NodeId), TableEntry>,
}

impl RoutingTable {
    /// Creates a table caching `m` paths per receiver, evicting entries
    /// unused for `ttl` lookups.
    pub fn new(m: usize, ttl: u64) -> Self {
        RoutingTable {
            m,
            ttl,
            entries: HashMap::new(),
        }
    }

    /// Number of cached (sender, receiver) entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Returns the cached paths for `(s, t)`, computing the top-m Yen
    /// shortest paths on a miss ("path finding is simplified into table
    /// lookups in most cases"). `now` stamps the entry for TTL purposes.
    pub fn lookup_or_compute(&mut self, g: &DiGraph, s: NodeId, t: NodeId, now: u64) -> Vec<Path> {
        let m = self.m;
        let entry = self.entries.entry((s, t)).or_insert_with(|| {
            let paths = yen::k_shortest_paths_hops(g, s, t, m);
            TableEntry {
                yen_all: paths.clone(),
                yen_cursor: paths.len(),
                exhausted_at_edges: (paths.len() < m).then(|| g.edge_count()),
                paths,
                last_used: now,
            }
        });
        entry.last_used = now;
        entry.paths.clone()
    }

    /// Replaces the path at `idx` with the next-ranked Yen shortest path
    /// ("when a payment encounters an unaccessible path with zero
    /// effective capacity or no connectivity, Flash replaces it with the
    /// next top shortest path"). If the graph has no further simple
    /// path, the dead path is simply dropped.
    pub fn replace_path(&mut self, g: &DiGraph, s: NodeId, t: NodeId, idx: usize) {
        let Some(entry) = self.entries.get_mut(&(s, t)) else {
            return;
        };
        if idx >= entry.paths.len() {
            return;
        }
        // Serve from the cached Yen prefix when possible; only when it is
        // spent recompute — and then fetch a batch of `m` extra ranks so
        // the next m replacements are cache hits instead of full Yen runs
        // (the recompute returns all earlier ranks anyway, so the batch
        // costs little beyond what a single-rank fetch would). When Yen
        // has already proven there is no further simple path on this
        // topology, don't re-prove it on every dead path.
        if entry.yen_cursor >= entry.yen_all.len()
            && entry.exhausted_at_edges != Some(g.edge_count())
        {
            let fetch = entry.yen_cursor + self.m.max(1);
            entry.yen_all = yen::k_shortest_paths_hops(g, s, t, fetch);
            entry.exhausted_at_edges = (entry.yen_all.len() < fetch).then(|| g.edge_count());
        }
        if let Some(next) = entry.yen_all.get(entry.yen_cursor) {
            entry.paths[idx] = next.clone();
            entry.yen_cursor += 1;
        } else {
            // The graph has no further simple path: drop the dead one.
            // The cursor stays put — it counts ranks actually handed
            // out, so a later replacement against a grown topology
            // resumes from the right rank instead of skipping paths.
            entry.paths.remove(idx);
        }
    }

    /// Evicts entries unused for longer than the TTL.
    pub fn evict_stale(&mut self, now: u64) {
        let ttl = self.ttl;
        self.entries
            .retain(|_, e| now.saturating_sub(e.last_used) <= ttl);
    }

    /// Drops every entry; they will be recomputed lazily against the new
    /// topology (the periodic refresh of §3.3).
    pub fn refresh(&mut self, _g: &DiGraph) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    /// Diamond + long detour: at least 3 simple paths 0 → 3.
    fn graph() -> DiGraph {
        let mut g = DiGraph::new(5);
        for (u, v) in [(0, 1), (1, 3), (0, 2), (2, 3), (0, 4), (4, 2)] {
            g.add_edge(n(u), n(v)).unwrap();
        }
        g
    }

    #[test]
    fn miss_computes_top_m() {
        let g = graph();
        let mut t = RoutingTable::new(2, 100);
        let paths = t.lookup_or_compute(&g, n(0), n(3), 1);
        assert_eq!(paths.len(), 2);
        assert_eq!(paths[0].hops(), 2);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn hit_reuses_cached_paths() {
        let g = graph();
        let mut t = RoutingTable::new(2, 100);
        let a = t.lookup_or_compute(&g, n(0), n(3), 1);
        let b = t.lookup_or_compute(&g, n(0), n(3), 2);
        assert_eq!(
            a.iter().map(|p| p.nodes().to_vec()).collect::<Vec<_>>(),
            b.iter().map(|p| p.nodes().to_vec()).collect::<Vec<_>>()
        );
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn replacement_advances_to_next_yen_path() {
        let g = graph();
        let mut t = RoutingTable::new(2, 100);
        let before = t.lookup_or_compute(&g, n(0), n(3), 1);
        t.replace_path(&g, n(0), n(3), 0);
        let after = t.lookup_or_compute(&g, n(0), n(3), 2);
        assert_eq!(after.len(), 2);
        // Slot 0 now holds the 3rd Yen path (the 3-hop detour).
        assert_eq!(after[0].hops(), 3);
        assert_ne!(before[0].nodes(), after[0].nodes());
    }

    #[test]
    fn replacement_exhaustion_drops_path() {
        let mut g = DiGraph::new(2);
        g.add_edge(n(0), n(1)).unwrap();
        let mut t = RoutingTable::new(1, 100);
        let paths = t.lookup_or_compute(&g, n(0), n(1), 1);
        assert_eq!(paths.len(), 1);
        // Only one simple path exists; replacing it leaves nothing.
        t.replace_path(&g, n(0), n(1), 0);
        let paths = t.lookup_or_compute(&g, n(0), n(1), 2);
        assert!(paths.is_empty());
    }

    /// Regression: `yen_cursor` must count paths actually returned, not
    /// `m`. With the old `yen_cursor: m` initialization, an entry that
    /// cached fewer than `m` paths over-counted its consumed ranks, so
    /// the first replacement against a richer topology skipped the true
    /// next-best path and served a later rank.
    #[test]
    fn cursor_tracks_returned_paths_not_m() {
        // g1 has a single simple path 0 → 3, so m = 2 caches just one.
        let mut g1 = DiGraph::new(5);
        for (u, v) in [(0, 1), (1, 3)] {
            g1.add_edge(n(u), n(v)).unwrap();
        }
        let mut t = RoutingTable::new(2, 100);
        let paths = t.lookup_or_compute(&g1, n(0), n(3), 1);
        assert_eq!(paths.len(), 1);

        // The topology grows: now ranks are 0-1-3, 0-2-3, 0-4-3.
        let mut g2 = DiGraph::new(5);
        for (u, v) in [(0, 1), (1, 3), (0, 2), (2, 3), (0, 4), (4, 3)] {
            g2.add_edge(n(u), n(v)).unwrap();
        }
        // One rank was handed out, so the replacement must serve rank 2
        // (0-2-3) — not rank m + 1 = 3 (0-4-3).
        t.replace_path(&g2, n(0), n(3), 0);
        let after = t.lookup_or_compute(&g2, n(0), n(3), 2);
        assert_eq!(after.len(), 1);
        assert_eq!(after[0].nodes(), &[n(0), n(2), n(3)]);
    }

    /// Successive replacements hand out strictly increasing Yen ranks,
    /// served from the cached prefix (the batch refetch makes later
    /// replacements cache hits rather than fresh Yen runs).
    #[test]
    fn successive_replacements_advance_through_ranks() {
        // Four simple paths 0 → 3, all distinct.
        let mut g = DiGraph::new(6);
        for (u, v) in [
            (0, 1),
            (1, 3),
            (0, 2),
            (2, 3),
            (0, 4),
            (4, 3),
            (0, 5),
            (5, 3),
        ] {
            g.add_edge(n(u), n(v)).unwrap();
        }
        let mut t = RoutingTable::new(2, 100);
        let initial = t.lookup_or_compute(&g, n(0), n(3), 1);
        assert_eq!(initial.len(), 2);
        t.replace_path(&g, n(0), n(3), 0);
        t.replace_path(&g, n(0), n(3), 1);
        let after = t.lookup_or_compute(&g, n(0), n(3), 2);
        assert_eq!(after.len(), 2);
        let mut all: Vec<_> = initial
            .iter()
            .chain(after.iter())
            .map(|p| p.nodes().to_vec())
            .collect();
        let len_before = all.len();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), len_before, "a Yen rank was handed out twice");
    }

    /// The caller's contract when several paths die in one payment:
    /// replacements must run highest index first, because an exhausted
    /// `replace_path` removes its slot and shifts everything after it.
    /// Descending order drops both dead paths; ascending would leave a
    /// dead path cached (the second index, shifted, points past the end).
    #[test]
    fn exhausted_replacements_in_descending_index_order_drop_all() {
        // Exactly two simple paths 0 → 3.
        let mut g = DiGraph::new(4);
        for (u, v) in [(0, 1), (1, 3), (0, 2), (2, 3)] {
            g.add_edge(n(u), n(v)).unwrap();
        }
        let mut t = RoutingTable::new(2, 100);
        assert_eq!(t.lookup_or_compute(&g, n(0), n(3), 1).len(), 2);
        // Both paths found dead; Yen has no rank 3 to hand out.
        t.replace_path(&g, n(0), n(3), 1);
        t.replace_path(&g, n(0), n(3), 0);
        assert!(
            t.lookup_or_compute(&g, n(0), n(3), 2).is_empty(),
            "both dead paths must be gone"
        );
    }

    #[test]
    fn ttl_eviction() {
        let g = graph();
        let mut t = RoutingTable::new(2, 10);
        t.lookup_or_compute(&g, n(0), n(3), 1);
        t.lookup_or_compute(&g, n(1), n(3), 5);
        t.evict_stale(12);
        // Entry stamped at 1 is stale (12 − 1 > 10); the one at 5 lives.
        assert_eq!(t.len(), 1);
        t.evict_stale(100);
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn refresh_clears_everything() {
        let g = graph();
        let mut t = RoutingTable::new(2, 100);
        t.lookup_or_compute(&g, n(0), n(3), 1);
        t.lookup_or_compute(&g, n(2), n(3), 1);
        assert_eq!(t.len(), 2);
        t.refresh(&g);
        assert!(t.is_empty());
    }

    #[test]
    fn unreachable_receiver_yields_empty_entry() {
        let mut g = DiGraph::new(3);
        g.add_edge(n(0), n(1)).unwrap();
        let mut t = RoutingTable::new(4, 100);
        let paths = t.lookup_or_compute(&g, n(0), n(2), 1);
        assert!(paths.is_empty());
    }
}
