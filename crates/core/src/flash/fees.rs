//! Path selection: splitting an elephant payment across the candidate
//! paths to minimize transaction fees (program (1) of §3.2).
//!
//! The optimization is a linear program over one variable per path
//! (`r_p` = volume routed on path `p`):
//!
//! ```text
//! min  Σ_p Σ_(u,v) a^p_{u,v} · f_{u,v}(r_p)
//! s.t. Σ_p r_p = d
//!      Σ_p r_p a^p_{u,v} − Σ_p r_p a^p_{v,u} ≤ C(u,v)   ∀(u,v)
//! ```
//!
//! The capacity constraint is *netted*: "partial payments on different
//! direction of the same channel can offset each other in terms of
//! balance". A netted solution is not directly executable hop-by-hop
//! (escrow debits are gross), so after solving we convert the per-path
//! volumes to per-edge flows, cancel opposing flows, and re-decompose
//! into paths — the decomposed parts are gross-feasible against the
//! probed balances and deliver exactly the same volume at no higher fee.

use super::elephant::ElephantPlan;
use pcn_graph::maxflow::{decompose_into_paths, MaxFlow};
use pcn_graph::{DiGraph, EdgeId, Path};
use pcn_lp::{Cmp, LinearProgram};
use pcn_types::Amount;
use std::collections::HashMap;

/// Splits `demand` over the plan's paths.
///
/// With `optimize = true` the fee-minimizing LP decides the split; with
/// `optimize = false` (the Figure 9 baseline) "the paths are used
/// sequentially as they are found by our modified Edmonds-Karp algorithm
/// until the demand is met".
///
/// Returns executable `(path, amount)` parts summing exactly to `demand`,
/// or `None` when the plan cannot carry it.
pub fn split_payment(
    graph: &DiGraph,
    plan: &ElephantPlan,
    demand: Amount,
    optimize: bool,
) -> Option<Vec<(Path, Amount)>> {
    if demand.is_zero() {
        return Some(Vec::new());
    }
    if plan.paths.is_empty() {
        return None;
    }
    let alloc = if optimize {
        lp_allocate(graph, plan, demand).or_else(|| sequential_allocate(graph, plan, demand))?
    } else {
        sequential_allocate(graph, plan, demand)?
    };
    debug_assert_eq!(
        alloc.iter().map(|a| *a as u128).sum::<u128>(),
        demand.micros() as u128
    );
    materialize(graph, plan, &alloc, demand)
}

/// Marginal fee cost of one micro-unit on `path`, in ppm, with a small
/// per-hop tie-break so equal-fee splits prefer shorter paths.
fn path_unit_cost(graph: &DiGraph, plan: &ElephantPlan, path: &Path) -> f64 {
    let mut ppm = 0.0f64;
    for (u, v) in path.channels() {
        // pcn-lint: allow(panic) — plan paths were discovered over this same graph
        let e = graph.edge(u, v).expect("plan path edge must exist");
        ppm += plan
            .fees
            .get(&e)
            .map(|f| f.marginal_ppm() as f64)
            .unwrap_or(0.0);
    }
    ppm / 1e6 + 1e-9 * path.hops() as f64
}

/// Residual capacity of edge `e` given gross per-edge flows: probed
/// capacity plus whatever flows on the reverse direction (offsets).
fn residual(
    e: EdgeId,
    graph: &DiGraph,
    caps: &HashMap<EdgeId, Amount>,
    flow: &HashMap<EdgeId, u128>,
) -> u128 {
    let c = caps.get(&e).map(|a| a.micros() as u128).unwrap_or(0);
    let fwd = flow.get(&e).copied().unwrap_or(0);
    let rev = graph
        .reverse_edge(e)
        .and_then(|r| flow.get(&r).copied())
        .unwrap_or(0);
    (c + rev).saturating_sub(fwd)
}

/// Sequential fill in discovery order — the non-optimized baseline and
/// the fallback when the LP hits a numerically degenerate corner.
fn sequential_allocate(graph: &DiGraph, plan: &ElephantPlan, demand: Amount) -> Option<Vec<u64>> {
    let mut flow: HashMap<EdgeId, u128> = HashMap::new();
    let mut alloc = vec![0u64; plan.paths.len()];
    let mut remaining = demand.micros() as u128;
    for (i, path) in plan.paths.iter().enumerate() {
        if remaining == 0 {
            break;
        }
        let bottleneck = path
            .channels()
            .map(|(u, v)| {
                // pcn-lint: allow(panic) — plan paths were discovered over this same graph
                let e = graph.edge(u, v).expect("plan path edge must exist");
                residual(e, graph, &plan.capacities, &flow)
            })
            .min()
            .unwrap_or(0);
        let x = bottleneck.min(remaining);
        if x == 0 {
            continue;
        }
        for (u, v) in path.channels() {
            let e = graph.edge(u, v).unwrap(); // pcn-lint: allow(panic) — plan path edges exist in the discovery graph
            *flow.entry(e).or_insert(0) += x;
        }
        // pcn-lint: allow(panic) — x ≤ remaining ≤ demand.micros(), which is u64
        alloc[i] = u64::try_from(x).expect("allocation bounded by u64 demand");
        remaining -= x;
    }
    (remaining == 0).then_some(alloc)
}

/// LP-based allocation (the paper's program (1)).
fn lp_allocate(graph: &DiGraph, plan: &ElephantPlan, demand: Amount) -> Option<Vec<u64>> {
    let np = plan.paths.len();
    let costs: Vec<f64> = plan
        .paths
        .iter()
        .map(|p| path_unit_cost(graph, plan, p))
        .collect();
    let mut lp = LinearProgram::minimize(costs.clone());

    // Demand constraint (micros).
    lp.constrain(vec![1.0; np], Cmp::Eq, demand.micros() as f64);

    // Netted capacity constraint per directed edge that appears on any
    // path (both directions handled by the sign pattern).
    let mut edges: Vec<EdgeId> = Vec::new();
    {
        let mut seen = std::collections::HashSet::new();
        for p in &plan.paths {
            for (u, v) in p.channels() {
                let e = graph.edge(u, v).unwrap(); // pcn-lint: allow(panic) — plan path edges exist in the discovery graph
                if seen.insert(e) {
                    edges.push(e);
                }
            }
        }
    }
    for &e in &edges {
        let rev = graph.reverse_edge(e);
        let mut row = vec![0.0f64; np];
        for (i, p) in plan.paths.iter().enumerate() {
            let mut coef = 0.0;
            for (u, v) in p.channels() {
                let pe = graph.edge(u, v).unwrap(); // pcn-lint: allow(panic) — plan path edges exist in the discovery graph
                if pe == e {
                    coef += 1.0;
                } else if Some(pe) == rev {
                    coef -= 1.0;
                }
            }
            row[i] = coef;
        }
        let cap = plan
            .capacities
            .get(&e)
            .map(|a| a.micros() as f64)
            .unwrap_or(0.0);
        lp.constrain(row, Cmp::Le, cap);
    }

    let sol = lp.solve().ok()?;

    // Round down to integer micros, then place the remainder on paths
    // with residual slack, cheapest first.
    let mut alloc: Vec<u64> = sol
        .x
        .iter()
        .map(|&v| if v <= 0.0 { 0 } else { v.floor() as u64 })
        .collect();
    let mut flow: HashMap<EdgeId, u128> = HashMap::new();
    for (i, p) in plan.paths.iter().enumerate() {
        for (u, v) in p.channels() {
            let e = graph.edge(u, v).unwrap(); // pcn-lint: allow(panic) — plan path edges exist in the discovery graph
            *flow.entry(e).or_insert(0) += alloc[i] as u128;
        }
    }
    let assigned: u128 = alloc.iter().map(|a| *a as u128).sum();
    let mut rem = (demand.micros() as u128).checked_sub(assigned)?;
    if rem > 0 {
        let mut order: Vec<usize> = (0..np).collect();
        order.sort_by(|&a, &b| costs[a].total_cmp(&costs[b]));
        for i in order {
            if rem == 0 {
                break;
            }
            let addable = plan.paths[i]
                .channels()
                .map(|(u, v)| {
                    let e = graph.edge(u, v).unwrap(); // pcn-lint: allow(panic) — plan path edges exist in the discovery graph
                    residual(e, graph, &plan.capacities, &flow)
                })
                .min()
                .unwrap_or(0)
                .min(rem);
            if addable == 0 {
                continue;
            }
            for (u, v) in plan.paths[i].channels() {
                let e = graph.edge(u, v).unwrap(); // pcn-lint: allow(panic) — plan path edges exist in the discovery graph
                *flow.entry(e).or_insert(0) += addable;
            }
            // pcn-lint: allow(panic) — addable ≤ rem ≤ demand.micros(), which is u64
            alloc[i] += u64::try_from(addable).unwrap();
            rem -= addable;
        }
    }
    (rem == 0).then_some(alloc)
}

/// Converts per-path volumes into executable parts: per-edge flows →
/// cancellation of opposing flows → path decomposition. The result is
/// gross-feasible against the probed capacities.
fn materialize(
    graph: &DiGraph,
    plan: &ElephantPlan,
    alloc: &[u64],
    demand: Amount,
) -> Option<Vec<(Path, Amount)>> {
    let mut edge_flow = vec![0u64; graph.edge_count()];
    for (path, &a) in plan.paths.iter().zip(alloc) {
        if a == 0 {
            continue;
        }
        for (u, v) in path.channels() {
            let e = graph.edge(u, v).unwrap(); // pcn-lint: allow(panic) — plan path edges exist in the discovery graph
            edge_flow[e.index()] = edge_flow[e.index()].checked_add(a)?;
        }
    }
    // Cancel opposing flows on bidirectional channels.
    for (e, _, _) in graph.edges() {
        if let Some(r) = graph.reverse_edge(e) {
            if e.index() < r.index() {
                let cancel = edge_flow[e.index()].min(edge_flow[r.index()]);
                edge_flow[e.index()] -= cancel;
                edge_flow[r.index()] -= cancel;
            }
        }
    }
    let s = plan.paths[0].source();
    let t = plan.paths[0].target();
    let mf = MaxFlow {
        value: demand.micros(),
        edge_flow,
    };
    let parts = decompose_into_paths(graph, s, t, &mf);
    let total: u128 = parts.iter().map(|(_, f)| *f as u128).sum();
    if total != demand.micros() as u128 {
        return None; // decomposition shortfall — should not happen
    }
    Some(
        parts
            .into_iter()
            .map(|(p, f)| (p, Amount::from_micros(f)))
            .collect(),
    )
}

/// Total fees for a hypothetical split (analysis helper for tests and
/// the Figure 9 bench): applies each probed channel's fee policy to the
/// per-part volumes.
pub fn evaluate_fees(graph: &DiGraph, plan: &ElephantPlan, parts: &[(Path, Amount)]) -> Amount {
    let mut total = Amount::ZERO;
    for (path, amount) in parts {
        for (u, v) in path.channels() {
            // pcn-lint: allow(panic) — parts are decomposed from flows on this same graph
            let e = graph.edge(u, v).expect("part path edge must exist");
            if let Some(fee) = plan.fees.get(&e) {
                total = total.saturating_add(fee.fee(*amount));
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcn_types::{FeePolicy, NodeId};

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    /// Hand-built plan over a diamond: cheap path 0-1-3 (cap 10),
    /// expensive path 0-2-3 (cap 10).
    fn diamond_plan() -> (DiGraph, ElephantPlan) {
        let mut g = DiGraph::new(4);
        let mut caps = HashMap::new();
        let mut fees = HashMap::new();
        for (u, v, ppm) in [
            (0, 1, 1_000u64),
            (1, 3, 1_000),
            (0, 2, 50_000),
            (2, 3, 50_000),
        ] {
            let e = g.add_edge(n(u), n(v)).unwrap();
            caps.insert(e, Amount::from_units(10));
            fees.insert(e, FeePolicy::proportional(ppm));
        }
        let p1 = Path::new(vec![n(0), n(1), n(3)], Some(&g)).unwrap();
        let p2 = Path::new(vec![n(0), n(2), n(3)], Some(&g)).unwrap();
        let plan = ElephantPlan {
            paths: vec![p2.clone(), p1.clone()], // discovery order: expensive first
            capacities: caps,
            fees,
            max_flow: Amount::from_units(20),
            probes: 2,
        };
        (g, plan)
    }

    #[test]
    fn lp_prefers_cheap_path() {
        let (g, plan) = diamond_plan();
        let parts = split_payment(&g, &plan, Amount::from_units(8), true).unwrap();
        // Everything fits on the cheap path (0.1% × 2 hops) — the LP
        // must avoid the 5% path entirely.
        assert_eq!(parts.len(), 1);
        assert!(parts[0].0.uses_channel(n(0), n(1)));
        assert_eq!(parts[0].1, Amount::from_units(8));
    }

    #[test]
    fn sequential_follows_discovery_order() {
        let (g, plan) = diamond_plan();
        let parts = split_payment(&g, &plan, Amount::from_units(8), false).unwrap();
        // Discovery order had the expensive path first.
        assert_eq!(parts.len(), 1);
        assert!(parts[0].0.uses_channel(n(0), n(2)));
    }

    #[test]
    fn lp_cheaper_than_sequential() {
        let (g, plan) = diamond_plan();
        let d = Amount::from_units(8);
        let opt = split_payment(&g, &plan, d, true).unwrap();
        let seq = split_payment(&g, &plan, d, false).unwrap();
        let fee_opt = evaluate_fees(&g, &plan, &opt);
        let fee_seq = evaluate_fees(&g, &plan, &seq);
        assert!(
            fee_opt < fee_seq,
            "LP fees {fee_opt} must beat sequential {fee_seq}"
        );
    }

    #[test]
    fn split_covers_demand_across_paths() {
        let (g, plan) = diamond_plan();
        let parts = split_payment(&g, &plan, Amount::from_units(15), true).unwrap();
        let total: Amount = parts.iter().map(|(_, a)| *a).sum();
        assert_eq!(total, Amount::from_units(15));
        assert!(parts.len() >= 2, "15 > 10 requires both paths");
        // Per-edge feasibility.
        let mut per_edge: HashMap<EdgeId, u64> = HashMap::new();
        for (p, a) in &parts {
            for (u, v) in p.channels() {
                *per_edge.entry(g.edge(u, v).unwrap()).or_insert(0) += a.micros();
            }
        }
        // det-lint: allow(hash-order) — independent per-edge assertions; any order fails the same way
        for (e, used) in per_edge {
            assert!(used <= plan.capacities[&e].micros());
        }
    }

    #[test]
    fn infeasible_demand_is_none() {
        let (g, plan) = diamond_plan();
        assert!(split_payment(&g, &plan, Amount::from_units(21), true).is_none());
        assert!(split_payment(&g, &plan, Amount::from_units(21), false).is_none());
    }

    #[test]
    fn zero_demand_is_empty() {
        let (g, plan) = diamond_plan();
        assert_eq!(
            split_payment(&g, &plan, Amount::ZERO, true).unwrap().len(),
            0
        );
    }

    #[test]
    fn exact_micro_rounding() {
        let (g, plan) = diamond_plan();
        // A demand that does not divide evenly: 15 units + 1 micro.
        let d = Amount::from_micros(15_000_001);
        let parts = split_payment(&g, &plan, d, true).unwrap();
        let total: Amount = parts.iter().map(|(_, a)| *a).sum();
        assert_eq!(total, d);
    }

    #[test]
    fn overlapping_paths_respect_shared_edge() {
        // Shared first hop with capacity 12, two tails of 10 each:
        // demand 12 must be split so the shared edge carries exactly 12.
        let mut g = DiGraph::new(4);
        let mut caps = HashMap::new();
        let mut fees = HashMap::new();
        let shared = g.add_edge(n(0), n(1)).unwrap();
        caps.insert(shared, Amount::from_units(12));
        fees.insert(shared, FeePolicy::FREE);
        for (u, v) in [(1, 2), (1, 3)] {
            let e = g.add_edge(n(u), n(v)).unwrap();
            caps.insert(e, Amount::from_units(10));
            fees.insert(e, FeePolicy::FREE);
        }
        // Paths 0-1-2 and 0-1-3 — but receiver must be one node; use
        // target node 2 reached two ways: 0-1-2 and 0-1-3? Different
        // targets are invalid. Rebuild: 0-1-2 direct and 0-1-3-2.
        let e32 = g.add_edge(n(3), n(2)).unwrap();
        caps.insert(e32, Amount::from_units(10));
        fees.insert(e32, FeePolicy::FREE);
        let p1 = Path::new(vec![n(0), n(1), n(2)], Some(&g)).unwrap();
        let p2 = Path::new(vec![n(0), n(1), n(3), n(2)], Some(&g)).unwrap();
        let plan = ElephantPlan {
            paths: vec![p1, p2],
            capacities: caps.clone(),
            fees,
            max_flow: Amount::from_units(12),
            probes: 2,
        };
        let parts = split_payment(&g, &plan, Amount::from_units(12), true).unwrap();
        let total: Amount = parts.iter().map(|(_, a)| *a).sum();
        assert_eq!(total, Amount::from_units(12));
        let shared_use: u64 = parts
            .iter()
            .filter(|(p, _)| p.uses_channel(n(0), n(1)))
            .map(|(_, a)| a.micros())
            .sum();
        assert!(shared_use <= Amount::from_units(12).micros());
        // Demand 13 exceeds the shared edge: infeasible.
        assert!(split_payment(&g, &plan, Amount::from_units(13), true).is_none());
    }
}
