//! Algorithm 1: modified Edmonds–Karp for elephant payment routing.
//!
//! The classic Edmonds–Karp algorithm needs the capacity of *every* edge
//! up front; in an offchain network balances are private and must be
//! probed. Flash's modification probes lazily: BFS runs on the residual
//! topology treating **unprobed channels as usable** ("our algorithm
//! works without the capacity matrix as input by assuming each channel
//! has non-zero capacity"), each discovered path is probed exactly once
//! per channel, and the loop stops after at most `k` paths or when the
//! accumulated flow covers the demand.

use pcn_graph::{bfs, DiGraph, EdgeId, Path};
use pcn_sim::PaymentNetwork;
use pcn_types::{Amount, FeePolicy, NodeId};
use std::collections::HashMap;

/// Probed state of one hop, backend-agnostic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProbedChannel {
    /// Balance of the forward direction.
    pub capacity: Amount,
    /// Fee policy of the forward direction.
    pub fee: FeePolicy,
    /// Balance of the reverse direction when the probe collected it
    /// (the simulator's PROBE_ACK does; the TCP prototype's does not).
    pub reverse_capacity: Option<Amount>,
}

/// A probing backend for Algorithm 1. Every [`PaymentNetwork`] — the
/// simulator, the TCP testbed — gets this for free via the blanket impl
/// below, so both evaluations run the identical path-finding code;
/// standalone impls (snapshot probers in benches, mocks in tests) remain
/// possible for harnesses that are not full payment networks.
pub trait PathProber {
    /// Probes every channel on `path`, sender → receiver order. `None`
    /// means the probe was lost (fault injection / transport failure).
    fn probe_path_channels(&mut self, path: &Path) -> Option<Vec<ProbedChannel>>;
}

impl<N: PaymentNetwork> PathProber for N {
    fn probe_path_channels(&mut self, path: &Path) -> Option<Vec<ProbedChannel>> {
        let report = self.probe_path(path)?;
        Some(
            report
                .channels
                .iter()
                .map(|c| ProbedChannel {
                    capacity: c.capacity,
                    fee: c.fee,
                    reverse_capacity: c.reverse.map(|(_, cap)| cap),
                })
                .collect(),
        )
    }
}

/// The outcome of the path-finding phase for one elephant payment.
#[derive(Clone, Debug)]
pub struct ElephantPlan {
    /// Candidate paths in discovery (BFS-shortest-first) order — the
    /// path set `P` of Algorithm 1.
    pub paths: Vec<Path>,
    /// Probed channel capacities `C` (first-probe values) for every
    /// channel seen on any candidate path, both directions.
    pub capacities: HashMap<EdgeId, Amount>,
    /// Fee policies collected during probing.
    pub fees: HashMap<EdgeId, FeePolicy>,
    /// The max-flow value `f` achievable over `paths` (with
    /// reverse-direction offsets, as in Edmonds–Karp residuals).
    pub max_flow: Amount,
    /// Number of probe operations performed (one per newly found path).
    pub probes: usize,
}

/// Runs Algorithm 1: finds at most `k` paths from `s` to `t` whose
/// combined (residual) flow attempts to cover `demand`.
///
/// Unlike the paper's pseudocode — which returns `∅` when the demand is
/// unmet — the full plan is always returned so callers can distinguish
/// "no paths at all" from "insufficient max-flow" and so the Figure 10
/// sweep can measure partial capability. Callers enforce
/// `plan.max_flow ≥ demand` for the accept/reject decision.
pub fn find_paths<N: PaymentNetwork>(
    net: &mut N,
    s: NodeId,
    t: NodeId,
    demand: Amount,
    k: usize,
) -> ElephantPlan {
    let graph = net.graph().clone();
    find_paths_with(&graph, net, s, t, demand, k)
}

/// Backend-generic Algorithm 1 (see [`find_paths`]). `graph` is the
/// locally known topology; `prober` supplies balances one path at a
/// time.
pub fn find_paths_with(
    graph: &DiGraph,
    prober: &mut impl PathProber,
    s: NodeId,
    t: NodeId,
    demand: Amount,
    k: usize,
) -> ElephantPlan {
    let mut plan = ElephantPlan {
        paths: Vec::new(),
        capacities: HashMap::new(),
        fees: HashMap::new(),
        max_flow: Amount::ZERO,
        probes: 0,
    };
    // Residual capacity C'. Unprobed channels are absent from the map
    // and treated as usable (capacity assumed non-zero). Residuals can
    // exceed the probed capacity via reverse credits, hence u128.
    let mut residual: HashMap<EdgeId, u128> = HashMap::new();

    while plan.paths.len() < k {
        // BFS on G with residual filter (line 7).
        let path =
            bfs::shortest_path_filtered(graph, s, t, |e| residual.get(&e).is_none_or(|r| *r > 0));
        let Some(path) = path else {
            break; // line 9: no more augmenting paths
        };

        // Probe each channel on the path (line 11).
        plan.probes += 1;
        let Some(report) = prober.probe_path_channels(&path) else {
            // Probe lost (fault injection): we learned nothing; banning
            // the first hop forces BFS onto a different route rather
            // than looping forever on the same unprobeable path.
            let first = graph
                .edge(path.nodes()[0], path.nodes()[1])
                // pcn-lint: allow(panic) — the path was produced by BFS over this same graph
                .expect("BFS path edge must exist");
            residual.insert(first, 0);
            continue;
        };

        // Record first-probe capacities for both directions (lines 17–22).
        for ((u, v), info) in path.channels().zip(&report) {
            // pcn-lint: allow(panic) — the path was produced by BFS over this same graph
            let e = graph.edge(u, v).expect("path edge must exist");
            plan.capacities.entry(e).or_insert_with(|| {
                residual.insert(e, info.capacity.micros() as u128);
                info.capacity
            });
            plan.fees.entry(e).or_insert(info.fee);
            if let (Some(rev), Some(rcap)) = (graph.reverse_edge(e), info.reverse_capacity) {
                plan.capacities.entry(rev).or_insert_with(|| {
                    residual.insert(rev, rcap.micros() as u128);
                    rcap
                });
            }
        }

        // Bottleneck over *residual* capacities (line 12; the residual
        // matrix is what BFS searched, so it is what bounds this path).
        let bottleneck = path
            .channels()
            .map(|(u, v)| {
                // pcn-lint: allow(panic) — BFS path edge; residual inserted at first probe above
                let e = graph.edge(u, v).expect("path edge must exist");
                *residual.get(&e).expect("probed edge has residual") // pcn-lint: allow(panic) — inserted when the capacity was recorded
            })
            .min()
            .unwrap_or(0);

        plan.paths.push(path.clone());

        if bottleneck > 0 {
            // Push flow: decrease forward residuals, increase reverse
            // (lines 23–24).
            for (u, v) in path.channels() {
                // pcn-lint: allow(panic) — BFS path edge; residual inserted at first probe above
                let e = graph.edge(u, v).expect("path edge must exist");
                *residual.get_mut(&e).expect("probed") -= bottleneck; // pcn-lint: allow(panic) — inserted when the capacity was recorded

                if let Some(rev) = graph.reverse_edge(e) {
                    if let Some(r) = residual.get_mut(&rev) {
                        *r += bottleneck;
                    }
                    // If the reverse direction was never probed it stays
                    // "assumed usable"; no explicit credit needed.
                }
            }
            let add = Amount::from_micros(u64::try_from(bottleneck).unwrap_or(u64::MAX));
            plan.max_flow = plan.max_flow.saturating_add(add);
        }
        // A zero-bottleneck path stays in P (the paper: "it is thus
        // possible, though rare, that our algorithm finds a path but its
        // effective capacity is zero after probing") — the BFS filter
        // will route around its dead edge next iteration.

        if plan.max_flow >= demand {
            break; // line 25: demand satisfied
        }
    }
    plan
}

/// Reference check used in tests and ablations: the true max-flow over
/// the probed sub-capacities (unprobed edges at zero), via the
/// push-relabel kernel — itself differentially tested against
/// Edmonds–Karp in `pcn-graph`, and the fastest kernel at Lightning
/// scale (see `docs/maxflow.md` and `BENCH_maxflow.json`).
///
/// For repeated oracle queries across consecutive payments, prefer
/// [`ElephantOracle`]: it keeps the residual graph warm and re-solves
/// only the capacity deltas.
pub fn oracle_max_flow(graph: &DiGraph, plan: &ElephantPlan, s: NodeId, t: NodeId) -> Amount {
    use pcn_graph::maxflow::{MaxFlowSolver, PushRelabel};
    let mut caps = vec![0u64; graph.edge_count()];
    // det-lint: allow(hash-order) — each edge writes its own slot; no slot written twice
    for (e, c) in &plan.capacities {
        caps[e.index()] = c.micros();
    }
    let mf = PushRelabel.max_flow(graph, s, t, &caps);
    Amount::from_micros(mf.value)
}

/// Warm-start elephant oracle: [`oracle_max_flow`] for the per-payment
/// loop. Keeps a [`pcn_graph::maxflow::IncrementalMaxFlow`] alive
/// across calls, so a payment that perturbed a handful of channel
/// capacities costs a delta-solve instead of a from-scratch solve. The
/// instance is rebuilt only when the queried `(s, t)` pair (or the
/// graph's edge count) changes.
#[derive(Default)]
pub struct ElephantOracle {
    state: Option<WarmState>,
}

struct WarmState {
    s: NodeId,
    t: NodeId,
    inc: pcn_graph::maxflow::IncrementalMaxFlow,
    caps: Vec<u64>,
}

impl ElephantOracle {
    /// An oracle with no warm state yet (the first query cold-solves).
    pub fn new() -> Self {
        Self::default()
    }

    /// The max-flow over `plan`'s probed sub-capacities, warm-started
    /// from the previous query when `(s, t)` is unchanged. Always equal
    /// to [`oracle_max_flow`] on the same inputs (asserted by the
    /// warm-vs-cold equivalence proptests in `pcn-graph`).
    pub fn max_flow(
        &mut self,
        graph: &DiGraph,
        plan: &ElephantPlan,
        s: NodeId,
        t: NodeId,
    ) -> Amount {
        let mut caps = vec![0u64; graph.edge_count()];
        // det-lint: allow(hash-order) — each edge writes its own slot; no slot written twice
        for (e, c) in &plan.capacities {
            caps[e.index()] = c.micros();
        }
        match &mut self.state {
            Some(w) if w.s == s && w.t == t && w.caps.len() == caps.len() => {
                for (e, &cap) in caps.iter().enumerate() {
                    if w.caps[e] != cap {
                        w.inc.set_capacity(EdgeId(e as u32), cap);
                    }
                }
                w.caps = caps;
                Amount::from_micros(w.inc.solve().value)
            }
            _ => {
                let mut inc = pcn_graph::maxflow::IncrementalMaxFlow::new(graph, s, t, &caps);
                let value = inc.solve().value;
                self.state = Some(WarmState { s, t, inc, caps });
                Amount::from_micros(value)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcn_sim::Network;
    use pcn_types::PaymentClass;
    use pcn_types::{Payment, TxId};

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    /// Figure 5(a): two shortest paths share bottleneck 1→2 (30); the
    /// longer 1-5-4-6 path is needed to exceed 30.
    ///
    /// Channels here are unidirectional to match the figure exactly.
    fn fig5a_net() -> Network {
        let mut g = DiGraph::new(6);
        let caps = [
            (1, 2, 30),
            (1, 5, 30),
            (2, 3, 20),
            (2, 4, 20),
            (3, 6, 30),
            (4, 6, 30),
            (5, 4, 30),
        ];
        let mut net_caps = Vec::new();
        for (u, v, c) in caps {
            g.add_edge(n(u - 1), n(v - 1)).unwrap();
            net_caps.push(Amount::from_units(c));
        }
        let fees = vec![FeePolicy::FREE; net_caps.len()];
        Network::new(g, net_caps, fees).unwrap()
    }

    #[test]
    fn fig5a_finds_more_than_shared_bottleneck() {
        let mut net = fig5a_net();
        // k = 2 simple shortest paths through 1→2 would cap at 30; the
        // modified max-flow must escape via 1-5-4-6.
        let plan = find_paths(&mut net, n(0), n(5), Amount::from_units(50), 3);
        assert_eq!(plan.max_flow, Amount::from_units(50));
        assert!(plan.paths.len() <= 3);
    }

    #[test]
    fn k_bounds_path_count_and_probes() {
        let mut net = fig5a_net();
        let plan = find_paths(&mut net, n(0), n(5), Amount::from_units(1_000_000), 2);
        assert!(plan.paths.len() <= 2);
        assert_eq!(plan.probes, plan.paths.len());
        // With k = 2 the two BFS-shortest paths share 1→2 (30 total).
        assert_eq!(plan.max_flow, Amount::from_units(30));
    }

    #[test]
    fn stops_early_when_demand_met() {
        let mut net = fig5a_net();
        let plan = find_paths(&mut net, n(0), n(5), Amount::from_units(10), 20);
        assert_eq!(plan.paths.len(), 1, "one 20-capacity path covers demand 10");
        assert!(plan.max_flow >= Amount::from_units(10));
    }

    #[test]
    fn matches_oracle_max_flow_with_large_k() {
        let mut net = fig5a_net();
        let plan = find_paths(&mut net, n(0), n(5), Amount::from_units(1_000_000), 50);
        let oracle = oracle_max_flow(net.graph(), &plan, n(0), n(5));
        assert_eq!(plan.max_flow, oracle);
        assert_eq!(plan.max_flow, Amount::from_units(50));
    }

    /// The warm oracle must agree with the cold one across consecutive
    /// plans for the same pair (the per-payment delta-solve path) and
    /// survive a pair change (rebuild).
    #[test]
    fn warm_oracle_matches_cold_across_plans() {
        let net = fig5a_net();
        let mut warm = ElephantOracle::new();
        for k in [2, 3, 50] {
            let plan = find_paths(
                &mut net.clone(),
                n(0),
                n(5),
                Amount::from_units(1_000_000),
                k,
            );
            let cold = oracle_max_flow(net.graph(), &plan, n(0), n(5));
            assert_eq!(
                warm.max_flow(net.graph(), &plan, n(0), n(5)),
                cold,
                "k = {k}"
            );
        }
        // Pair change forces a rebuild; agreement must still hold.
        let plan = find_paths(
            &mut net.clone(),
            n(1),
            n(5),
            Amount::from_units(1_000_000),
            50,
        );
        let cold = oracle_max_flow(net.graph(), &plan, n(1), n(5));
        assert_eq!(warm.max_flow(net.graph(), &plan, n(1), n(5)), cold);
    }

    #[test]
    fn empty_when_unreachable() {
        let mut g = DiGraph::new(2);
        g.add_edge(n(1), n(0)).unwrap();
        let mut net = Network::uniform(g, Amount::from_units(5));
        let plan = find_paths(&mut net, n(0), n(1), Amount::from_units(1), 4);
        assert!(plan.paths.is_empty());
        assert_eq!(plan.max_flow, Amount::ZERO);
    }

    #[test]
    fn probes_are_metered() {
        let mut net = fig5a_net();
        let before = net.metrics().probe_messages;
        let plan = find_paths(&mut net, n(0), n(5), Amount::from_units(50), 3);
        let hops: u64 = plan.paths.iter().map(|p| p.hops() as u64).sum();
        assert_eq!(net.metrics().probe_messages - before, hops);
    }

    #[test]
    fn zero_capacity_channel_is_routed_around() {
        let mut net = fig5a_net();
        // Kill 2→3; flow must use 2→4 and 5→4 instead.
        let e = net.graph().edge(n(1), n(2)).unwrap();
        net.set_balance(e, Amount::ZERO);
        let plan = find_paths(&mut net, n(0), n(5), Amount::from_units(50), 6);
        // Max flow drops: 4→6 caps the right side at 30; plus nothing
        // through 3 → 30 total... wait, 2→4 (20) + 5→4 (30) both exit
        // via 4→6 (30) → 30.
        assert_eq!(plan.max_flow, Amount::from_units(30));
    }

    #[test]
    fn residual_reverse_credit_enables_rerouting() {
        // Classic case where a later path must undo part of an earlier
        // one: without residual credits max flow would be understated.
        //
        //  s→a 1, a→t 1, s→b 1, b→a... build the standard 2-flow net:
        //  s→a(1), s→b(1), a→b(1), a→t(1), b→t(1): max flow 2 but BFS
        //  shortest first takes s→a→t; then s→b→t. No reversal needed.
        //  Force it: s→a(1), a→b(1), b→t(1), s→b(1), a→t(1)? BFS picks
        //  2-hop s→a→t? a→t exists(1) → path1 s-a-t(1). path2 s-b-t(1).
        //  Still no reversal. Use bidirectional channels so the credit
        //  path exists and assert flow just matches the oracle.
        let g = pcn_graph::generators::watts_strogatz(16, 4, 0.4, 3);
        let mut net = Network::uniform(g, Amount::from_units(7));
        let plan = find_paths(&mut net, n(0), n(9), Amount::from_units(1_000_000), 64);
        let oracle = oracle_max_flow(net.graph(), &plan, n(0), n(9));
        // With k far above the path diversity, Flash's bounded variant
        // must reach the oracle value on the probed capacities.
        assert_eq!(plan.max_flow, oracle);
    }

    #[test]
    fn send_after_plan_succeeds() {
        let mut net = fig5a_net();
        let plan = find_paths(&mut net, n(0), n(5), Amount::from_units(50), 4);
        assert!(plan.max_flow >= Amount::from_units(50));
        // Execute sequentially along discovered paths using residual
        // capacities — end-to-end integration with the session API.
        let payment = Payment::new(TxId(1), n(0), n(5), Amount::from_units(50));
        let parts =
            crate::flash::fees::split_payment(net.graph(), &plan, Amount::from_units(50), false)
                .expect("sequential split must succeed when max_flow ≥ demand");
        let mut session = net.begin_payment(&payment, PaymentClass::Elephant);
        for (p, a) in &parts {
            if !a.is_zero() {
                session.try_send_part(p, *a).unwrap();
            }
        }
        assert!(session.is_satisfied());
        session.commit();
    }
}
