//! Channel rebalancing (Revive-style) — an extension.
//!
//! §6 of the paper discusses Revive (Khalil & Gervais, CCS 2017), which
//! "take\[s\] the dynamic channel balances into consideration and
//! propose\[s\] centralized offline routing algorithms" to rebalance
//! offchain channels, and §4.2 observes the failure mode rebalancing
//! addresses: "as more payments especially elephant payments are
//! accepted, channels are easier to be saturated in one direction."
//!
//! This module implements the natural decentralized variant as a future-
//! work extension: a node with a badly skewed channel issues a
//! **circular self-payment** — it pays itself around a cycle that
//! traverses the depleted direction's reverse, shifting funds back
//! without any onchain action. The ablation bench quantifies how much
//! success volume periodic rebalancing recovers for each scheme.

use pcn_graph::{bfs, EdgeId, Path};
use pcn_sim::Network;
use pcn_types::{Amount, Payment, PaymentClass, TxId};

/// Configuration for the rebalancer.
#[derive(Clone, Debug)]
pub struct RebalanceConfig {
    /// A channel direction is "depleted" when its balance falls below
    /// this fraction (in percent) of the channel's total funds.
    pub depletion_percent: u64,
    /// Restore the depleted direction up to this percent of the total.
    pub target_percent: u64,
    /// Maximum cycle length to search (longer cycles cost more fees and
    /// lock more intermediate liquidity).
    pub max_cycle_hops: usize,
}

impl Default for RebalanceConfig {
    fn default() -> Self {
        RebalanceConfig {
            depletion_percent: 10,
            target_percent: 50,
            max_cycle_hops: 6,
        }
    }
}

/// Outcome of one rebalancing sweep.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RebalanceReport {
    /// Channels inspected.
    pub scanned: u64,
    /// Channels found depleted.
    pub depleted: u64,
    /// Rebalancing cycles attempted.
    pub attempted_cycles: u64,
    /// Circular payments successfully executed.
    pub rebalanced: u64,
    /// Total funds shifted back.
    pub volume_shifted: Amount,
}

/// Scans every channel and issues circular self-payments for depleted
/// directions. Payments are atomic: a failed cycle leaves no trace.
///
/// Rebalancing payments are deliberately **not** recorded in the
/// network's routing metrics (they are maintenance traffic, not user
/// payments); the caller's metrics snapshot should be taken before and
/// after if it wants to separate them — this function resets the
/// per-sweep deltas itself and restores the user-visible counters.
pub fn rebalance_sweep(net: &mut Network, config: &RebalanceConfig) -> RebalanceReport {
    let graph = net.graph().clone();
    let mut report = RebalanceReport::default();
    let metrics_before = net.metrics().clone();
    // Snapshot the depleted set before moving anything: rebalancing one
    // channel shifts funds on others, and re-scanning live balances
    // makes sweeps chase their own tail (rebalance A by draining B,
    // then rebalance B by draining A, ...).
    let depleted: Vec<_> = graph
        .edges()
        .filter(|&(e, _, _)| is_depleted(net, e, config.depletion_percent))
        .collect();
    report.scanned = graph.edge_count() as u64;
    report.depleted = depleted.len() as u64;
    for (e, u, v) in depleted {
        let rev = graph
            .reverse_edge(e)
            // pcn-lint: allow(panic) — `depleted` was filtered to edges with a reverse direction
            .expect("depleted edges are bidirectional");
        let fwd_bal = net.balance(e);
        let rev_bal = net.balance(rev);
        let total = fwd_bal.saturating_add(rev_bal);
        let target = total.mul_ratio(config.target_percent, 100);
        let deficit = target.saturating_sub(fwd_bal);
        if deficit.is_zero() {
            continue;
        }
        // The circular payment u → (detour) → v → u: the closing hop
        // rides the rich reverse direction v→u, and committing it
        // credits the depleted u→v side (escrow debits forward, commit
        // credits the opposite direction). The detour supplies the
        // funds from u's other channels. Net effect: balance(v→u) −= x,
        // balance(u→v) += x — exactly the Revive rebalancing move,
        // fully offchain.
        let detour =
            bfs::shortest_path_filtered(&graph, u, v, |cand: EdgeId| cand != e && cand != rev);
        let Some(detour) = detour else { continue };
        if detour.hops() + 1 > config.max_cycle_hops {
            continue;
        }
        // Assemble the cycle path u → ... → v → u. Path must be simple;
        // the final hop closes the loop, so we send it as two parts of
        // one atomic session: detour (u→v) and the closing hop (v→u).
        // pcn-lint: allow(panic) — v != u: a channel's endpoints are distinct nodes
        let closing = Path::new(vec![v, u], None).expect("two distinct nodes");
        // Cap by what the cycle can carry WITHOUT depleting any detour
        // channel below its own threshold (no robbing Peter to pay
        // Paul): each edge may only give its balance minus its
        // depletion floor.
        let headroom = |edge: EdgeId| -> Amount {
            let bal = net.balance(edge);
            let floor = graph
                .reverse_edge(edge)
                .map(|r| {
                    bal.saturating_add(net.balance(r))
                        .mul_ratio(config.depletion_percent, 100)
                })
                .unwrap_or(Amount::ZERO);
            bal.saturating_sub(floor)
        };
        let cycle_cap = detour
            .channels()
            // pcn-lint: allow(panic) — the detour was found by BFS over this same graph
            .map(|(a, b)| headroom(graph.edge(a, b).expect("detour edge")))
            .min()
            .unwrap_or(Amount::ZERO)
            .min(headroom(rev));
        let amount = deficit.min(cycle_cap);
        if amount.is_zero() {
            continue;
        }
        report.attempted_cycles += 1;
        let payment = Payment::new(
            TxId(u64::MAX - report.attempted_cycles), // maintenance ids
            u,
            u,
            amount,
        );
        let mut session = net.begin_payment(&payment, PaymentClass::Mice);
        let ok = session.try_send_part(&detour, amount).is_ok()
            && session.try_send_part(&closing, amount).is_ok();
        if ok {
            session.commit();
            report.rebalanced += 1;
            report.volume_shifted = report.volume_shifted.saturating_add(amount);
        } else {
            session.abort();
        }
    }
    // Maintenance traffic must not pollute the experiment metrics.
    let mut metrics = net.metrics().clone();
    metrics.mice = metrics_before.mice;
    metrics.elephant = metrics_before.elephant;
    metrics.fees_paid = metrics_before.fees_paid;
    metrics.paths_used = metrics_before.paths_used;
    *net.metrics_mut() = metrics;
    report
}

/// Helper: true if the directed edge is below the depletion threshold.
pub fn is_depleted(net: &Network, e: EdgeId, depletion_percent: u64) -> bool {
    let graph = net.graph();
    let Some(rev) = graph.reverse_edge(e) else {
        return false;
    };
    let total = net.balance(e).saturating_add(net.balance(rev));
    if total.is_zero() {
        return false;
    }
    net.balance(e) < total.mul_ratio(depletion_percent, 100)
}

/// Finds the depleted directed edges of a network (diagnostics).
pub fn depleted_edges(net: &Network, depletion_percent: u64) -> Vec<EdgeId> {
    net.graph()
        .edges()
        .map(|(e, _, _)| e)
        .filter(|&e| is_depleted(net, e, depletion_percent))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcn_graph::DiGraph;
    use pcn_types::NodeId;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    /// A triangle where 0→1 is nearly drained.
    fn skewed_triangle() -> Network {
        let mut g = DiGraph::new(3);
        g.add_channel(n(0), n(1)).unwrap();
        g.add_channel(n(1), n(2)).unwrap();
        g.add_channel(n(0), n(2)).unwrap();
        let mut net = Network::uniform(g, Amount::from_units(10));
        let e01 = net.graph().edge(n(0), n(1)).unwrap();
        let e10 = net.graph().edge(n(1), n(0)).unwrap();
        net.set_balance(e01, Amount::from_units(1)); // depleted
        net.set_balance(e10, Amount::from_units(19));
        net
    }

    #[test]
    fn detects_depletion() {
        let net = skewed_triangle();
        let e01 = net.graph().edge(n(0), n(1)).unwrap();
        assert!(is_depleted(&net, e01, 10));
        let deps = depleted_edges(&net, 10);
        assert_eq!(deps, vec![e01]);
    }

    #[test]
    fn sweep_restores_balance_and_conserves_funds() {
        let mut net = skewed_triangle();
        let before = net.total_funds();
        let report = rebalance_sweep(&mut net, &RebalanceConfig::default());
        assert_eq!(
            report.depleted, 1,
            "snapshot sees exactly one depleted edge"
        );
        assert_eq!(report.rebalanced, 1);
        assert!(report.volume_shifted > Amount::ZERO);
        assert_eq!(net.total_funds(), before, "rebalancing must conserve funds");
        let e01 = net.graph().edge(n(0), n(1)).unwrap();
        assert!(
            net.balance(e01) > Amount::from_units(1),
            "depleted direction should have recovered, got {}",
            net.balance(e01)
        );
        assert!(!is_depleted(&net, e01, 10));
    }

    #[test]
    fn sweep_does_not_pollute_metrics() {
        let mut net = skewed_triangle();
        let attempted_before = net.metrics().total().attempted;
        rebalance_sweep(&mut net, &RebalanceConfig::default());
        assert_eq!(net.metrics().total().attempted, attempted_before);
        assert_eq!(net.metrics().fees_paid, Amount::ZERO);
    }

    #[test]
    fn no_cycle_no_action() {
        // A bare channel has no detour; nothing to do.
        let mut g = DiGraph::new(2);
        g.add_channel(n(0), n(1)).unwrap();
        let mut net = Network::uniform(g, Amount::from_units(10));
        let e01 = net.graph().edge(n(0), n(1)).unwrap();
        net.set_balance(e01, Amount::ZERO);
        let report = rebalance_sweep(&mut net, &RebalanceConfig::default());
        assert_eq!(report.depleted, 1);
        assert_eq!(report.rebalanced, 0);
    }

    #[test]
    fn rebalancing_recovers_routing_capability() {
        // After the sweep, a payment 0→1 that previously failed goes
        // through — the end-to-end motivation.
        let mut net = skewed_triangle();
        let payment = Payment::new(TxId(1), n(0), n(1), Amount::from_units(5));
        let path = Path::new(vec![n(0), n(1)], None).unwrap();
        let out = net.send_single_path(&payment, PaymentClass::Mice, &path);
        assert!(!out.is_success(), "depleted channel should fail first");
        rebalance_sweep(&mut net, &RebalanceConfig::default());
        let out = net.send_single_path(&payment, PaymentClass::Mice, &path);
        assert!(out.is_success(), "rebalanced channel should carry $5");
    }
}
