//! # flash-core
//!
//! The paper's primary contribution — the **Flash** routing protocol —
//! plus every baseline it is evaluated against, all behind the
//! [`pcn_sim::Router`] trait:
//!
//! * [`FlashRouter`] (§3): differentiates elephant and mice payments.
//!   Elephants are routed with a modified Edmonds–Karp probe-as-you-go
//!   max-flow search (Algorithm 1, [`flash::elephant`]) and split across
//!   paths by a fee-minimizing linear program ([`flash::fees`]). Mice hit
//!   a per-receiver routing table of top-m Yen shortest paths with a
//!   random trial-and-error loop ([`flash::mice`]).
//! * [`SpiderRouter`] (§4.1 benchmark): waterfilling over 4 edge-disjoint
//!   shortest paths, probing every path for every payment.
//! * [`SpeedyMurmursRouter`] (§4.1 benchmark): static embedding-based
//!   routing with 3 landmark spanning trees.
//! * [`ShortestPathRouter`] (§4.1 baseline): single fewest-hops path.
//! * [`classify`]: elephant/mice threshold selection ("The elephant-mice
//!   threshold is set such that 90% of payments are mice").

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Library code reports through returned values and serialized artifacts,
// never ad-hoc stdout; the experiment/bench binaries print, libraries do not.
#![deny(clippy::dbg_macro, clippy::print_stdout)]

pub mod classify;
pub mod flash;
pub mod rebalance;
pub mod shortest;
pub mod silentwhispers;
pub mod speedymurmurs;
pub mod spider;

pub use flash::{FlashConfig, FlashRouter};
pub use shortest::ShortestPathRouter;
pub use silentwhispers::SilentWhispersRouter;
pub use speedymurmurs::SpeedyMurmursRouter;
pub use spider::SpiderRouter;
