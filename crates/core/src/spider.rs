//! Spider baseline (Sivaraman et al., adapted as in the Flash paper).
//!
//! "The state-of-the-art offchain routing algorithm which considers the
//! dynamics of channel balance. It balances paths by using those with
//! maximum available capacity, following a 'waterfilling' heuristic. It
//! uses 4 edge-disjoint paths for each payment" (§4.1).
//!
//! For every payment Spider (re)computes the edge-disjoint shortest
//! paths, probes **all** of them (this is the probing overhead Figure 8
//! measures), waterfills the demand across them, and sends atomically.

use pcn_graph::{disjoint, Path};
use pcn_sim::{
    FailureReason, PaymentNetwork, PaymentSession, RouteOutcome, Router, StalenessTracker,
};
use pcn_types::{Amount, Payment, PaymentClass};

/// The Spider waterfilling router.
#[derive(Clone, Debug)]
pub struct SpiderRouter {
    /// Number of edge-disjoint paths per payment (4 in the paper).
    pub num_paths: usize,
    staleness: StalenessTracker,
}

impl Default for SpiderRouter {
    fn default() -> Self {
        Self::new()
    }
}

impl SpiderRouter {
    /// Creates a Spider router with the paper's default of 4 paths.
    pub fn new() -> Self {
        Self::with_paths(4)
    }

    /// Creates a Spider router with a custom path count.
    pub fn with_paths(num_paths: usize) -> Self {
        SpiderRouter {
            num_paths,
            staleness: StalenessTracker::default(),
        }
    }
}

/// Waterfilling allocation: given per-path capacities, splits `demand`
/// so that the *residual* capacities are as equal as possible — flow is
/// poured into the paths with maximum available capacity first.
///
/// Returns `None` when the total capacity cannot cover the demand.
/// All arithmetic is exact (u128 intermediates).
pub fn waterfill(capacities: &[Amount], demand: Amount) -> Option<Vec<Amount>> {
    let total: u128 = capacities.iter().map(|c| c.micros() as u128).sum();
    let d = demand.micros() as u128;
    if total < d || capacities.is_empty() {
        return None;
    }
    if d == 0 {
        return Some(vec![Amount::ZERO; capacities.len()]);
    }
    // Sort indices by capacity descending.
    let mut idx: Vec<usize> = (0..capacities.len()).collect();
    idx.sort_by_key(|&i| std::cmp::Reverse(capacities[i].micros()));
    let caps: Vec<u128> = idx
        .iter()
        .map(|&i| capacities[i].micros() as u128)
        .collect();

    // Find the number of active paths j and water level L such that
    // Σ_{i<j} (c_i − L) = d with c_{j} ≤ L ≤ c_{j−1} (descending order).
    let mut prefix = 0u128;
    let mut j = caps.len();
    for k in 1..=caps.len() {
        prefix += caps[k - 1];
        let next = if k < caps.len() { caps[k] } else { 0 };
        // With k active paths, level L = (prefix − d) / k must be ≥ next
        // to be consistent (otherwise more paths activate).
        if prefix >= d && (prefix - d) / k as u128 >= next {
            j = k;
            break;
        }
    }
    let prefix: u128 = caps[..j].iter().sum();
    debug_assert!(prefix >= d);
    let level = (prefix - d) / j as u128;
    let mut rem = prefix - d - level * j as u128; // paths left one micro above level
    let mut alloc = vec![Amount::ZERO; capacities.len()];
    for (rank, &orig) in idx[..j].iter().enumerate() {
        let c = caps[rank];
        // Residual target: level (+1 for the first `rem` paths).
        let target = if rem > 0 {
            rem -= 1;
            level + 1
        } else {
            level
        };
        let x = c.saturating_sub(target);
        alloc[orig] = Amount::from_micros(u64::try_from(x).unwrap_or(u64::MAX));
    }
    debug_assert_eq!(alloc.iter().map(|a| a.micros() as u128).sum::<u128>(), d);
    Some(alloc)
}

impl<N: PaymentNetwork> Router<N> for SpiderRouter {
    fn name(&self) -> &'static str {
        "Spider"
    }

    fn route(&mut self, net: &mut N, payment: &Payment, class: PaymentClass) -> RouteOutcome {
        // Spider recomputes its disjoint paths per payment, so a
        // tripped staleness threshold only notifies the backend (the
        // fresh probe/flood below is the refresh).
        if self
            .staleness
            .should_reprobe(payment.receiver, net.graph().edge_count())
        {
            net.note_reprobe();
        }
        let paths: Vec<Path> = disjoint::edge_disjoint_paths(
            net.graph(),
            payment.sender,
            payment.receiver,
            self.num_paths,
        );
        if paths.is_empty() {
            net.record_rejected_attempt(payment, class);
            return RouteOutcome::failure(FailureReason::NoRoute);
        }
        // Probe every path — Spider "treats mice and elephant flows the
        // same and always uses 4 shortest paths" (§4.2). `probe_paths`
        // lets message-passing backends probe them concurrently.
        let capacities: Vec<Amount> = net
            .probe_paths(&paths)
            .into_iter()
            .map(|report| match report {
                Some(r) => r.bottleneck(),
                None => {
                    // Lost probe: fault injection, a closed channel, or
                    // a crashed node on the path.
                    self.staleness.record_probe_loss(payment.receiver);
                    Amount::ZERO
                }
            })
            .collect();
        let Some(alloc) = waterfill(&capacities, payment.amount) else {
            net.record_rejected_attempt(payment, class);
            return RouteOutcome::failure(FailureReason::InsufficientCapacity);
        };
        let parts: Vec<(Path, Amount)> = paths.into_iter().zip(alloc).collect();
        let mut session = net.begin_payment(payment, class);
        if let Err(e) = session.try_send_parts(&parts) {
            self.staleness.record_failure(payment.receiver, e.cause);
            session.abort();
            return RouteOutcome::failure(FailureReason::InsufficientCapacity);
        }
        debug_assert!(session.is_satisfied());
        session.commit()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcn_graph::DiGraph;
    use pcn_sim::Network;
    use pcn_types::{NodeId, TxId};
    use proptest::prelude::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    fn units(v: &[u64]) -> Vec<Amount> {
        v.iter().map(|&x| Amount::from_units(x)).collect()
    }

    #[test]
    fn waterfill_prefers_big_paths() {
        let alloc = waterfill(&units(&[10, 4, 2]), Amount::from_units(6)).unwrap();
        // Pour 6 into the biggest: residuals become 4, 4, 2 — equalized
        // at level 4 without touching the others.
        assert_eq!(alloc, units(&[6, 0, 0]));
    }

    #[test]
    fn waterfill_equalizes_residuals() {
        let alloc = waterfill(&units(&[10, 8, 2]), Amount::from_units(10)).unwrap();
        // Level: (18 − 10)/2 = 4 → allocations 6 and 4, path 3 untouched.
        assert_eq!(alloc, units(&[6, 4, 0]));
    }

    #[test]
    fn waterfill_exact_fit_uses_everything() {
        let alloc = waterfill(&units(&[3, 2, 1]), Amount::from_units(6)).unwrap();
        assert_eq!(alloc, units(&[3, 2, 1]));
    }

    #[test]
    fn waterfill_insufficient_is_none() {
        assert!(waterfill(&units(&[1, 1]), Amount::from_units(3)).is_none());
        assert!(waterfill(&[], Amount::from_units(1)).is_none());
    }

    #[test]
    fn waterfill_zero_demand() {
        let alloc = waterfill(&units(&[5]), Amount::ZERO).unwrap();
        assert_eq!(alloc, units(&[0]));
    }

    proptest! {
        #[test]
        fn waterfill_allocation_is_valid(
            caps in proptest::collection::vec(0u64..1000, 1..6),
            d in 0u64..3000,
        ) {
            let caps: Vec<Amount> = caps.into_iter().map(Amount::from_micros).collect();
            let demand = Amount::from_micros(d);
            let total: u64 = caps.iter().map(|c| c.micros()).sum();
            match waterfill(&caps, demand) {
                Some(alloc) => {
                    prop_assert!(total >= d);
                    let sum: u64 = alloc.iter().map(|a| a.micros()).sum();
                    prop_assert_eq!(sum, d);
                    for (a, c) in alloc.iter().zip(&caps) {
                        prop_assert!(a <= c, "allocation exceeds capacity");
                    }
                    // Waterfilling property: any path with leftover
                    // capacity has residual ≥ residual of used paths − 1.
                    let residuals: Vec<u64> = alloc.iter().zip(&caps)
                        .map(|(a, c)| c.micros() - a.micros()).collect();
                    let used_max = alloc.iter().zip(&residuals)
                        .filter(|(a, _)| !a.is_zero())
                        .map(|(_, r)| *r).max();
                    if let Some(m) = used_max {
                        for (a, r) in alloc.iter().zip(&residuals) {
                            if a.is_zero() {
                                prop_assert!(*r <= m + 1,
                                    "unused path has more residual than used ones");
                            }
                        }
                    }
                }
                None => prop_assert!(total < d),
            }
        }
    }

    /// Two disjoint 2-hop routes 0→3 with 10 each.
    fn diamond_net() -> Network {
        let mut g = DiGraph::new(4);
        g.add_channel(n(0), n(1)).unwrap();
        g.add_channel(n(1), n(3)).unwrap();
        g.add_channel(n(0), n(2)).unwrap();
        g.add_channel(n(2), n(3)).unwrap();
        Network::uniform(g, Amount::from_units(10))
    }

    #[test]
    fn spider_splits_across_disjoint_paths() {
        let mut net = diamond_net();
        let p = Payment::new(TxId(1), n(0), n(3), Amount::from_units(15));
        let out = SpiderRouter::new().route(&mut net, &p, PaymentClass::Elephant);
        assert!(out.is_success(), "15 > any single path but ≤ combined 20");
        match out {
            RouteOutcome::Success { paths_used, .. } => assert_eq!(paths_used, 2),
            _ => unreachable!(),
        }
    }

    #[test]
    fn spider_probes_every_path_every_payment() {
        let mut net = diamond_net();
        let p = Payment::new(TxId(1), n(0), n(3), Amount::from_units(1));
        SpiderRouter::new().route(&mut net, &p, PaymentClass::Mice);
        // Two 2-hop disjoint paths probed → 4 probe messages.
        assert_eq!(net.metrics().probe_messages, 4);
        let p2 = Payment::new(TxId(2), n(0), n(3), Amount::from_units(1));
        SpiderRouter::new().route(&mut net, &p2, PaymentClass::Mice);
        assert_eq!(net.metrics().probe_messages, 8);
    }

    #[test]
    fn spider_fails_beyond_total_capacity() {
        let mut net = diamond_net();
        let p = Payment::new(TxId(1), n(0), n(3), Amount::from_units(21));
        let out = SpiderRouter::new().route(&mut net, &p, PaymentClass::Elephant);
        assert!(!out.is_success());
        assert_eq!(net.total_funds(), Amount::from_units(80));
    }

    #[test]
    fn spider_no_route() {
        let mut g = DiGraph::new(2);
        g.add_edge(n(1), n(0)).unwrap();
        let mut net = Network::uniform(g, Amount::from_units(10));
        let p = Payment::new(TxId(1), n(0), n(1), Amount::from_units(1));
        let out = SpiderRouter::new().route(&mut net, &p, PaymentClass::Mice);
        assert_eq!(out, RouteOutcome::failure(FailureReason::NoRoute));
    }
}
