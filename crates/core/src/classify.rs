//! Elephant/mice threshold selection.
//!
//! The paper sets the classification threshold *empirically* on the
//! workload: "The elephant-mice threshold is set such that 90% of
//! payments are mice" (§4.1). Figure 10 sweeps this fraction from 0% to
//! 100% to show the performance/overhead trade-off.

use pcn_types::Amount;

/// Returns the threshold amount such that (approximately) `mice_fraction`
/// of the given payment sizes are classified as mice (i.e. are ≤ the
/// threshold; [`pcn_types::Payment::classify`] treats strictly-greater
/// amounts as elephants).
///
/// Edge behaviour mirrors Figure 10's sweep endpoints:
/// * `mice_fraction = 0.0` → `Amount::ZERO`: every non-zero payment is an
///   elephant ("Flash routes mice payments in the same way as elephant
///   payments when m = 0" uses the same trick).
/// * `mice_fraction = 1.0` → `Amount::MAX`: everything is mice.
///
/// # Panics
/// Panics if `mice_fraction` is outside `[0, 1]` or not finite.
pub fn threshold_for_mice_fraction(amounts: &[Amount], mice_fraction: f64) -> Amount {
    assert!(
        mice_fraction.is_finite() && (0.0..=1.0).contains(&mice_fraction),
        "mice_fraction must be within [0, 1]"
    );
    if mice_fraction <= 0.0 {
        return Amount::ZERO;
    }
    if mice_fraction >= 1.0 || amounts.is_empty() {
        return Amount::MAX;
    }
    let mut sorted: Vec<Amount> = amounts.to_vec();
    sorted.sort_unstable();
    // The smallest threshold T with |{a : a ≤ T}| ≥ ceil(frac·n): pick the
    // element at rank ceil(frac·n) − 1.
    let n = sorted.len();
    let rank = ((mice_fraction * n as f64).ceil() as usize).clamp(1, n);
    sorted[rank - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn units(v: &[u64]) -> Vec<Amount> {
        v.iter().map(|&x| Amount::from_units(x)).collect()
    }

    #[test]
    fn ninety_percent_mice() {
        let amounts = units(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 100]);
        let t = threshold_for_mice_fraction(&amounts, 0.9);
        assert_eq!(t, Amount::from_units(9));
        let mice = amounts.iter().filter(|a| **a <= t).count();
        assert_eq!(mice, 9);
    }

    #[test]
    fn endpoints() {
        let amounts = units(&[5, 10]);
        assert_eq!(threshold_for_mice_fraction(&amounts, 0.0), Amount::ZERO);
        assert_eq!(threshold_for_mice_fraction(&amounts, 1.0), Amount::MAX);
    }

    #[test]
    fn empty_slice_everything_is_mice() {
        assert_eq!(threshold_for_mice_fraction(&[], 0.5), Amount::MAX);
    }

    #[test]
    fn half_fraction_is_median() {
        let amounts = units(&[1, 2, 3, 4]);
        let t = threshold_for_mice_fraction(&amounts, 0.5);
        assert_eq!(t, Amount::from_units(2));
    }

    #[test]
    fn duplicates_handled() {
        let amounts = units(&[5, 5, 5, 5, 100]);
        let t = threshold_for_mice_fraction(&amounts, 0.8);
        assert_eq!(t, Amount::from_units(5));
        // All the 5s are ≤ threshold → 80% mice, as requested.
        let mice = amounts.iter().filter(|a| **a <= t).count();
        assert_eq!(mice, 4);
    }

    #[test]
    #[should_panic(expected = "within [0, 1]")]
    fn rejects_out_of_range() {
        threshold_for_mice_fraction(&[], 1.5);
    }

    #[test]
    #[should_panic(expected = "within [0, 1]")]
    fn rejects_nan() {
        threshold_for_mice_fraction(&[], f64::NAN);
    }

    #[test]
    fn empty_trace_at_every_fraction() {
        // With no observed payments there is nothing to split: zero stays
        // the all-elephant endpoint, anything else defaults to all-mice.
        assert_eq!(threshold_for_mice_fraction(&[], 0.0), Amount::ZERO);
        assert_eq!(threshold_for_mice_fraction(&[], 1e-9), Amount::MAX);
        assert_eq!(threshold_for_mice_fraction(&[], 1.0), Amount::MAX);
    }

    #[test]
    fn all_equal_amounts_pin_the_threshold() {
        // Any interior fraction must return the common value: every
        // payment is then a mouse (≤ threshold), never an elephant.
        let amounts = units(&[7, 7, 7, 7, 7, 7]);
        for frac in [0.1, 0.5, 0.9] {
            let t = threshold_for_mice_fraction(&amounts, frac);
            assert_eq!(t, Amount::from_units(7), "fraction {frac}");
            assert!(amounts.iter().all(|a| *a <= t));
        }
        assert_eq!(threshold_for_mice_fraction(&amounts, 0.0), Amount::ZERO);
        assert_eq!(threshold_for_mice_fraction(&amounts, 1.0), Amount::MAX);
    }

    #[test]
    fn tiny_fraction_clamps_to_smallest_element() {
        // ceil(frac·n) would be rank 0; the clamp keeps at least one mouse
        // candidate so the threshold is the smallest observed amount.
        let amounts = units(&[4, 8, 15, 16, 23, 42]);
        let t = threshold_for_mice_fraction(&amounts, 1e-12);
        assert_eq!(t, Amount::from_units(4));
    }

    #[test]
    fn single_payment_trace() {
        let amounts = units(&[13]);
        assert_eq!(
            threshold_for_mice_fraction(&amounts, 0.5),
            Amount::from_units(13)
        );
        assert_eq!(threshold_for_mice_fraction(&amounts, 0.0), Amount::ZERO);
        assert_eq!(threshold_for_mice_fraction(&amounts, 1.0), Amount::MAX);
    }

    #[test]
    fn threshold_is_monotone_in_fraction() {
        let amounts = units(&[3, 1, 4, 1, 5, 9, 2, 6, 5, 3]);
        let mut last = Amount::ZERO;
        for i in 0..=10 {
            let t = threshold_for_mice_fraction(&amounts, f64::from(i) / 10.0);
            assert!(
                t >= last,
                "threshold decreased at fraction {}",
                i as f64 / 10.0
            );
            last = t;
        }
    }
}
