//! SpeedyMurmurs baseline (Roos et al., NDSS 2018, as used in §4.1).
//!
//! "An embedding-based routing algorithm which relies on assigning
//! coordinates to nodes to find short paths with reduced overhead. The
//! number of landmarks is 3" (§4.1).
//!
//! Implementation: each landmark roots a BFS spanning tree; every node's
//! coordinate is its path of tree-parent hops from the root (prefix
//! embedding). A payment is split evenly across the landmarks; each
//! share is routed greedily — at every node, forward to the neighbor
//! (any channel, not just tree edges, i.e. "shortcuts") that strictly
//! decreases the tree distance to the receiver. SpeedyMurmurs is a
//! *static* scheme: it never probes, so a share fails the moment a
//! channel on its greedy path lacks balance, and the whole payment is
//! then reversed (atomicity).

use pcn_graph::{bfs, DiGraph, Path};
use pcn_sim::{
    FailureReason, PaymentNetwork, PaymentSession, RouteOutcome, Router, StalenessTracker,
};
use pcn_types::{Amount, NodeId, Payment, PaymentClass};

/// Per-landmark prefix-embedding coordinates.
#[derive(Clone, Debug)]
struct TreeEmbedding {
    /// `coord[n]` = sequence of node ids from the landmark to `n` along
    /// the spanning tree (empty at the landmark, `None` if disconnected).
    coords: Vec<Option<Vec<u32>>>,
}

impl TreeEmbedding {
    fn build(g: &DiGraph, root: NodeId) -> Self {
        // Parent pointers along shortest paths *from* the root.
        let parent = bfs::spanning_tree(g, root, false);
        let n = g.node_count();
        let mut coords: Vec<Option<Vec<u32>>> = vec![None; n];
        coords[root.index()] = Some(Vec::new());
        // Nodes are finalized in BFS order; resolve iteratively.
        let order = {
            let dist = bfs::distances_from(g, root);
            let mut idx: Vec<usize> = (0..n).filter(|&i| dist[i] != usize::MAX).collect();
            idx.sort_by_key(|&i| dist[i]);
            idx
        };
        for i in order {
            if coords[i].is_some() {
                continue;
            }
            if let Some(p) = parent[i] {
                if let Some(pc) = coords[p.index()].clone() {
                    let mut c = pc;
                    c.push(i as u32);
                    coords[i] = Some(c);
                }
            }
        }
        TreeEmbedding { coords }
    }

    /// Tree distance between two nodes: sum of depths minus twice the
    /// common-prefix length; `None` when either node is outside the tree.
    fn distance(&self, a: NodeId, b: NodeId) -> Option<usize> {
        let ca = self.coords[a.index()].as_ref()?;
        let cb = self.coords[b.index()].as_ref()?;
        let common = ca.iter().zip(cb.iter()).take_while(|(x, y)| x == y).count();
        Some(ca.len() + cb.len() - 2 * common)
    }
}

/// The SpeedyMurmurs embedding-based router.
#[derive(Clone, Debug)]
pub struct SpeedyMurmursRouter {
    /// Number of landmark trees (3 in the paper's configuration).
    pub num_landmarks: usize,
    embeddings: Vec<TreeEmbedding>,
    ready: bool,
    staleness: StalenessTracker,
}

impl Default for SpeedyMurmursRouter {
    fn default() -> Self {
        Self::new()
    }
}

impl SpeedyMurmursRouter {
    /// Creates a router with the paper's 3 landmarks.
    pub fn new() -> Self {
        Self::with_landmarks(3)
    }

    /// Creates a router with a custom landmark count.
    pub fn with_landmarks(num_landmarks: usize) -> Self {
        SpeedyMurmursRouter {
            num_landmarks,
            embeddings: Vec::new(),
            ready: false,
            staleness: StalenessTracker::default(),
        }
    }

    fn ensure_embeddings(&mut self, g: &DiGraph) {
        if self.ready {
            return;
        }
        // Landmarks: highest-degree nodes (well-connected roots give
        // shallow trees), deterministic tie-break by id.
        let mut nodes: Vec<NodeId> = g.nodes().collect();
        nodes.sort_by_key(|&u| (std::cmp::Reverse(g.degree(u)), u));
        self.embeddings = nodes
            .iter()
            .take(self.num_landmarks)
            .map(|&root| TreeEmbedding::build(g, root))
            .collect();
        self.ready = true;
    }

    /// Greedy embedded route in one tree: strictly decrease the tree
    /// distance to `t` at every hop (shortcut channels allowed).
    fn greedy_route(&self, g: &DiGraph, emb: &TreeEmbedding, s: NodeId, t: NodeId) -> Option<Path> {
        let mut nodes = vec![s];
        let mut cur = s;
        let mut cur_dist = emb.distance(cur, t)?;
        while cur != t {
            let mut best: Option<(usize, NodeId)> = None;
            for &(v, _) in g.out_neighbors(cur) {
                if nodes.contains(&v) {
                    continue;
                }
                if let Some(d) = emb.distance(v, t) {
                    if d < cur_dist && best.is_none_or(|(bd, bn)| d < bd || (d == bd && v < bn)) {
                        best = Some((d, v));
                    }
                }
            }
            let (d, v) = best?;
            nodes.push(v);
            cur = v;
            cur_dist = d;
        }
        // pcn-lint: allow(panic) — greedy descent strictly decreases distance, so nodes never repeat
        Some(Path::new(nodes, None).expect("greedy route is simple by construction"))
    }
}

impl<N: PaymentNetwork> Router<N> for SpeedyMurmursRouter {
    fn name(&self) -> &'static str {
        "SpeedyMurmurs"
    }

    fn route(&mut self, net: &mut N, payment: &Payment, class: PaymentClass) -> RouteOutcome {
        // Stale-state detection: enough stale errors toward this
        // destination invalidate the landmark embeddings, which are
        // then rebuilt from the latest topology below.
        if self
            .staleness
            .should_reprobe(payment.receiver, net.graph().edge_count())
        {
            net.note_reprobe();
            self.ready = false;
            self.embeddings.clear();
        }
        self.ensure_embeddings(net.graph());
        let g = net.graph().clone();
        let routes: Vec<Path> = self
            .embeddings
            .iter()
            .filter_map(|emb| self.greedy_route(&g, emb, payment.sender, payment.receiver))
            .collect();
        if routes.is_empty() {
            net.record_rejected_attempt(payment, class);
            return RouteOutcome::failure(FailureReason::NoRoute);
        }
        let parts = split_evenly(routes, payment.amount);
        let mut session = net.begin_payment(payment, class);
        if let Err(e) = session.try_send_parts(&parts) {
            self.staleness.record_failure(payment.receiver, e.cause);
            session.abort();
            return RouteOutcome::failure(FailureReason::InsufficientCapacity);
        }
        debug_assert!(session.is_satisfied());
        session.commit()
    }

    fn on_topology_refresh(&mut self, _net: &N) {
        self.ready = false;
        self.embeddings.clear();
    }
}

/// Splits `amount` evenly over `routes` (remainder goes one micro-unit
/// at a time to the first shares) — the landmark-share split both tree
/// schemes use.
pub(crate) fn split_evenly(routes: Vec<Path>, amount: Amount) -> Vec<(Path, Amount)> {
    let k = routes.len() as u64;
    let base = amount.micros() / k;
    let mut rem = amount.micros() % k;
    routes
        .into_iter()
        .map(|p| {
            let mut share = base;
            if rem > 0 {
                share += 1;
                rem -= 1;
            }
            (p, Amount::from_micros(share))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcn_sim::Network;
    use pcn_types::TxId;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    fn star_plus_ring() -> DiGraph {
        // Node 0 is a hub (landmark); ring 1-2-3-4 around it.
        let mut g = DiGraph::new(5);
        for i in 1..5 {
            g.add_channel(n(0), n(i)).unwrap();
        }
        g.add_channel(n(1), n(2)).unwrap();
        g.add_channel(n(2), n(3)).unwrap();
        g.add_channel(n(3), n(4)).unwrap();
        g.add_channel(n(4), n(1)).unwrap();
        g
    }

    #[test]
    fn embedding_distance_is_a_tree_metric() {
        let g = star_plus_ring();
        let emb = TreeEmbedding::build(&g, n(0));
        assert_eq!(emb.distance(n(0), n(0)), Some(0));
        assert_eq!(emb.distance(n(0), n(1)), Some(1));
        // Two leaves of the star: distance 2 through the root.
        assert_eq!(emb.distance(n(1), n(3)), Some(2));
        // Symmetry.
        assert_eq!(emb.distance(n(3), n(1)), Some(2));
    }

    #[test]
    fn disconnected_node_has_no_coordinate() {
        let mut g = DiGraph::new(3);
        g.add_channel(n(0), n(1)).unwrap();
        let emb = TreeEmbedding::build(&g, n(0));
        assert_eq!(emb.distance(n(0), n(2)), None);
    }

    #[test]
    fn routes_and_delivers() {
        let g = star_plus_ring();
        let mut net = Network::uniform(g, Amount::from_units(10));
        let p = Payment::new(TxId(1), n(1), n(3), Amount::from_units(6));
        let mut r = SpeedyMurmursRouter::new();
        let out = r.route(&mut net, &p, PaymentClass::Mice);
        assert!(out.is_success());
        assert_eq!(net.metrics().probe_messages, 0, "static scheme, no probes");
    }

    #[test]
    fn atomicity_on_share_failure() {
        let g = star_plus_ring();
        let mut net = Network::uniform(g, Amount::from_units(10));
        let before = net.total_funds();
        // Demand exceeding what the greedy trees can carry.
        let p = Payment::new(TxId(2), n(1), n(3), Amount::from_units(100));
        let mut r = SpeedyMurmursRouter::new();
        let out = r.route(&mut net, &p, PaymentClass::Elephant);
        assert!(!out.is_success());
        assert_eq!(net.total_funds(), before);
    }

    #[test]
    fn refresh_invalidates_embeddings() {
        let g = star_plus_ring();
        let mut net = Network::uniform(g, Amount::from_units(10));
        let mut r = SpeedyMurmursRouter::new();
        let p = Payment::new(TxId(3), n(1), n(2), Amount::from_units(1));
        r.route(&mut net, &p, PaymentClass::Mice);
        assert!(r.ready);
        r.on_topology_refresh(&net);
        assert!(!r.ready);
    }

    #[test]
    fn greedy_respects_direction() {
        // A strictly one-way path 0→1→2 and landmark at 0: routing from
        // 2 to 0 must fail (no directed edges backwards).
        let mut g = DiGraph::new(3);
        g.add_edge(n(0), n(1)).unwrap();
        g.add_edge(n(1), n(2)).unwrap();
        let mut net = Network::uniform(g, Amount::from_units(10));
        let p = Payment::new(TxId(4), n(2), n(0), Amount::from_units(1));
        let mut r = SpeedyMurmursRouter::with_landmarks(1);
        let out = r.route(&mut net, &p, PaymentClass::Mice);
        assert!(!out.is_success());
    }
}
