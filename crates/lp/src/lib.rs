//! # pcn-lp
//!
//! A small, dependency-free linear-programming substrate. The Flash paper
//! solves its fee-minimizing path-split program (program (1) in §3.2)
//! with "standard solvers"; since the practical instance is tiny (one
//! variable per path, `k ≤ 20–30`), a dense two-phase primal simplex
//! solves it exactly and instantly.
//!
//! * [`LinearProgram`] — builder for `min cᵀx  s.t.  Ax {≤,=,≥} b, x ≥ 0`.
//! * [`simplex::solve`] — two-phase simplex with Bland's anti-cycling rule.
//! * [`Solution`] / [`LpError`] — results.
//!
//! ```
//! use pcn_lp::{LinearProgram, Cmp};
//! // min x + 2y  s.t.  x + y ≥ 3,  y ≤ 2,  x, y ≥ 0.  Optimum: x = 3.
//! let mut lp = LinearProgram::minimize(vec![1.0, 2.0]);
//! lp.constrain(vec![1.0, 1.0], Cmp::Ge, 3.0);
//! lp.constrain(vec![0.0, 1.0], Cmp::Le, 2.0);
//! let sol = lp.solve().unwrap();
//! assert!((sol.objective - 3.0).abs() < 1e-6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Library code reports through returned values and serialized artifacts,
// never ad-hoc stdout; the experiment/bench binaries print, libraries do not.
#![deny(clippy::dbg_macro, clippy::print_stdout)]

pub mod simplex;

pub use simplex::{solve, Cmp, LinearProgram, LpError, Solution};
