//! Two-phase dense primal simplex.
//!
//! Standard-form conversion: every constraint row is normalized to
//! `aᵀx (+ slack) (+ artificial) = b` with `b ≥ 0`; phase 1 minimizes the
//! sum of artificials to find a basic feasible solution, phase 2 then
//! minimizes the real objective. Bland's rule (smallest-index entering and
//! leaving variables) guarantees termination on degenerate instances.

use std::fmt;

/// Numerical tolerance for pivoting and feasibility checks.
const EPS: f64 = 1e-9;

/// Constraint direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Cmp {
    /// `aᵀx ≤ b`
    Le,
    /// `aᵀx = b`
    Eq,
    /// `aᵀx ≥ b`
    Ge,
}

/// Solver failure modes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LpError {
    /// No point satisfies all constraints.
    Infeasible,
    /// The objective decreases without bound.
    Unbounded,
    /// A constraint row's coefficient count didn't match the variable
    /// count.
    DimensionMismatch {
        /// Expected number of coefficients (variables in the program).
        expected: usize,
        /// Number of coefficients actually supplied.
        got: usize,
    },
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::Infeasible => write!(f, "infeasible"),
            LpError::Unbounded => write!(f, "unbounded"),
            LpError::DimensionMismatch { expected, got } => {
                write!(f, "constraint has {got} coefficients, expected {expected}")
            }
        }
    }
}

impl std::error::Error for LpError {}

/// An optimal solution.
#[derive(Clone, Debug)]
pub struct Solution {
    /// Optimal variable assignment (length = number of variables).
    pub x: Vec<f64>,
    /// Optimal objective value `cᵀx`.
    pub objective: f64,
}

/// Builder for `min cᵀx  s.t.  Ax {≤,=,≥} b,  x ≥ 0`.
#[derive(Clone, Debug)]
pub struct LinearProgram {
    objective: Vec<f64>,
    rows: Vec<Vec<f64>>,
    cmps: Vec<Cmp>,
    rhs: Vec<f64>,
}

impl LinearProgram {
    /// Starts a minimization over `costs.len()` non-negative variables.
    pub fn minimize(costs: Vec<f64>) -> Self {
        LinearProgram {
            objective: costs,
            rows: Vec::new(),
            cmps: Vec::new(),
            rhs: Vec::new(),
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.objective.len()
    }

    /// Number of constraint rows.
    pub fn num_constraints(&self) -> usize {
        self.rows.len()
    }

    /// Adds the constraint `coeffs · x  cmp  rhs`.
    pub fn constrain(&mut self, coeffs: Vec<f64>, cmp: Cmp, rhs: f64) -> &mut Self {
        assert_eq!(
            coeffs.len(),
            self.objective.len(),
            "constraint width must match variable count"
        );
        self.rows.push(coeffs);
        self.cmps.push(cmp);
        self.rhs.push(rhs);
        self
    }

    /// Solves the program.
    pub fn solve(&self) -> Result<Solution, LpError> {
        solve(self)
    }
}

/// Solves a [`LinearProgram`] with two-phase simplex.
pub fn solve(lp: &LinearProgram) -> Result<Solution, LpError> {
    let n = lp.num_vars();
    let m = lp.num_constraints();

    // Normalize rows to b ≥ 0 and count extra columns.
    // Column layout: [x (n)] [slack/surplus (≤ m)] [artificial (≤ m)].
    let mut rows: Vec<Vec<f64>> = Vec::with_capacity(m);
    let mut cmps: Vec<Cmp> = Vec::with_capacity(m);
    let mut rhs: Vec<f64> = Vec::with_capacity(m);
    for i in 0..m {
        if lp.rows[i].len() != n {
            return Err(LpError::DimensionMismatch {
                expected: n,
                got: lp.rows[i].len(),
            });
        }
        let (mut row, mut c, mut b) = (lp.rows[i].clone(), lp.cmps[i], lp.rhs[i]);
        if b < 0.0 {
            for a in &mut row {
                *a = -*a;
            }
            b = -b;
            c = match c {
                Cmp::Le => Cmp::Ge,
                Cmp::Eq => Cmp::Eq,
                Cmp::Ge => Cmp::Le,
            };
        }
        rows.push(row);
        cmps.push(c);
        rhs.push(b);
    }

    let n_slack = cmps.iter().filter(|c| **c != Cmp::Eq).count();
    let n_art = cmps
        .iter()
        .filter(|c| matches!(c, Cmp::Eq | Cmp::Ge))
        .count();
    let total = n + n_slack + n_art;

    // Tableau: m rows × (total + 1) columns (last column = rhs).
    let mut t = vec![vec![0.0f64; total + 1]; m];
    let mut basis = vec![usize::MAX; m];
    let mut next_slack = n;
    let mut next_art = n + n_slack;
    for i in 0..m {
        t[i][..n].copy_from_slice(&rows[i]);
        t[i][total] = rhs[i];
        match cmps[i] {
            Cmp::Le => {
                t[i][next_slack] = 1.0;
                basis[i] = next_slack;
                next_slack += 1;
            }
            Cmp::Ge => {
                t[i][next_slack] = -1.0; // surplus
                next_slack += 1;
                t[i][next_art] = 1.0;
                basis[i] = next_art;
                next_art += 1;
            }
            Cmp::Eq => {
                t[i][next_art] = 1.0;
                basis[i] = next_art;
                next_art += 1;
            }
        }
    }

    let art_start = n + n_slack;

    // ---- Phase 1: minimize sum of artificials ----
    if n_art > 0 {
        let mut cost = vec![0.0f64; total];
        for c in cost.iter_mut().take(total).skip(art_start) {
            *c = 1.0;
        }
        let obj = run_simplex(&mut t, &mut basis, &cost, total)?;
        if obj > 1e-7 {
            return Err(LpError::Infeasible);
        }
        // Drive any artificial still in the basis out (degenerate case).
        for i in 0..m {
            if basis[i] >= art_start {
                // Pivot on any non-artificial column with a non-zero
                // coefficient in this row.
                if let Some(j) = (0..art_start).find(|&j| t[i][j].abs() > EPS) {
                    pivot(&mut t, &mut basis, i, j, total);
                }
                // If none exists the row is all-zero: redundant, leave it.
            }
        }
    }

    // ---- Phase 2: original objective, artificials frozen at zero ----
    let mut cost = vec![0.0f64; total];
    cost[..n].copy_from_slice(&lp.objective);
    // Forbid artificials from re-entering by pricing them prohibitively.
    // (They are non-basic at zero after phase 1; simplex never picks a
    // column with positive reduced cost in a minimization.)
    let obj = run_simplex_restricted(&mut t, &mut basis, &cost, total, art_start)?;

    let mut x = vec![0.0f64; n];
    for i in 0..m {
        if basis[i] < n {
            x[basis[i]] = t[i][total];
        }
    }
    Ok(Solution { x, objective: obj })
}

/// Runs simplex minimizing `cost` over all `total` columns.
fn run_simplex(
    t: &mut [Vec<f64>],
    basis: &mut [usize],
    cost: &[f64],
    total: usize,
) -> Result<f64, LpError> {
    run_simplex_restricted(t, basis, cost, total, total)
}

/// Runs simplex but only allows columns `< allowed` to enter the basis.
fn run_simplex_restricted(
    t: &mut [Vec<f64>],
    basis: &mut [usize],
    cost: &[f64],
    total: usize,
    allowed: usize,
) -> Result<f64, LpError> {
    let m = t.len();
    loop {
        // Reduced costs: r_j = c_j − c_B · B⁻¹ A_j, computed directly
        // from the tableau (rows are already B⁻¹A).
        let mut entering = None;
        for j in 0..allowed {
            if basis.contains(&j) {
                continue;
            }
            let mut r = cost[j];
            for i in 0..m {
                r -= cost[basis[i]] * t[i][j];
            }
            if r < -EPS {
                entering = Some(j); // Bland: first (smallest) index
                break;
            }
        }
        let Some(j) = entering else {
            // Optimal.
            let mut obj = 0.0;
            for i in 0..m {
                obj += cost[basis[i]] * t[i][total];
            }
            return Ok(obj);
        };
        // Ratio test (Bland: smallest basis index on ties).
        let mut leave: Option<usize> = None;
        let mut best = f64::INFINITY;
        for i in 0..m {
            if t[i][j] > EPS {
                let ratio = t[i][total] / t[i][j];
                if ratio < best - EPS
                    || (ratio < best + EPS && leave.is_some_and(|l| basis[i] < basis[l]))
                {
                    best = ratio;
                    leave = Some(i);
                }
            }
        }
        let Some(i) = leave else {
            return Err(LpError::Unbounded);
        };
        pivot(t, basis, i, j, total);
    }
}

fn pivot(t: &mut [Vec<f64>], basis: &mut [usize], row: usize, col: usize, total: usize) {
    let p = t[row][col];
    debug_assert!(p.abs() > EPS);
    for v in t[row].iter_mut() {
        *v /= p;
    }
    let (before, rest) = t.split_at_mut(row);
    // pcn-lint: allow(panic) — `row` indexes the tableau, so the split-off rest is non-empty
    let (pivot_row, after) = rest.split_first_mut().expect("row index in bounds");
    for r in before.iter_mut().chain(after.iter_mut()) {
        if r[col].abs() > EPS {
            let f = r[col];
            for (dst, &src) in r[..=total].iter_mut().zip(&pivot_row[..=total]) {
                *dst -= f * src;
            }
        }
    }
    basis[row] = col;
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn textbook_le_program() {
        // max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 → x=2, y=6, obj 36.
        // As a minimization: min −3x − 5y.
        let mut lp = LinearProgram::minimize(vec![-3.0, -5.0]);
        lp.constrain(vec![1.0, 0.0], Cmp::Le, 4.0);
        lp.constrain(vec![0.0, 2.0], Cmp::Le, 12.0);
        lp.constrain(vec![3.0, 2.0], Cmp::Le, 18.0);
        let s = lp.solve().unwrap();
        assert_close(s.objective, -36.0);
        assert_close(s.x[0], 2.0);
        assert_close(s.x[1], 6.0);
    }

    #[test]
    fn equality_constraint() {
        // min 2x + 3y s.t. x + y = 10, x ≤ 4 → x=4, y=6, obj 26.
        let mut lp = LinearProgram::minimize(vec![2.0, 3.0]);
        lp.constrain(vec![1.0, 1.0], Cmp::Eq, 10.0);
        lp.constrain(vec![1.0, 0.0], Cmp::Le, 4.0);
        let s = lp.solve().unwrap();
        assert_close(s.objective, 26.0);
        assert_close(s.x[0], 4.0);
    }

    #[test]
    fn ge_constraints_need_phase_one() {
        // min x + y s.t. x + 2y ≥ 4, 3x + y ≥ 6 → intersection x=1.6, y=1.2.
        let mut lp = LinearProgram::minimize(vec![1.0, 1.0]);
        lp.constrain(vec![1.0, 2.0], Cmp::Ge, 4.0);
        lp.constrain(vec![3.0, 1.0], Cmp::Ge, 6.0);
        let s = lp.solve().unwrap();
        assert_close(s.objective, 2.8);
    }

    #[test]
    fn infeasible_detected() {
        let mut lp = LinearProgram::minimize(vec![1.0]);
        lp.constrain(vec![1.0], Cmp::Le, 1.0);
        lp.constrain(vec![1.0], Cmp::Ge, 2.0);
        assert_eq!(lp.solve().unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        // min −x with no upper bound on x.
        let mut lp = LinearProgram::minimize(vec![-1.0]);
        lp.constrain(vec![-1.0], Cmp::Le, 0.0); // −x ≤ 0 i.e. x ≥ 0, vacuous
        assert_eq!(lp.solve().unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn negative_rhs_normalized() {
        // x ≥ 2 written as −x ≤ −2.
        let mut lp = LinearProgram::minimize(vec![1.0]);
        lp.constrain(vec![-1.0], Cmp::Le, -2.0);
        let s = lp.solve().unwrap();
        assert_close(s.x[0], 2.0);
    }

    #[test]
    fn degenerate_program_terminates() {
        // Classic degeneracy: multiple constraints active at the optimum.
        let mut lp = LinearProgram::minimize(vec![-0.75, 150.0, -0.02, 6.0]);
        lp.constrain(vec![0.25, -60.0, -0.04, 9.0], Cmp::Le, 0.0);
        lp.constrain(vec![0.5, -90.0, -0.02, 3.0], Cmp::Le, 0.0);
        lp.constrain(vec![0.0, 0.0, 1.0, 0.0], Cmp::Le, 1.0);
        // Beale's cycling example — Bland's rule must terminate.
        let s = lp.solve().unwrap();
        assert_close(s.objective, -0.05);
    }

    #[test]
    fn path_split_shape() {
        // The fee-min program for 3 paths with unit costs (3, 1, 2),
        // demand 10, per-path caps 4, 5, 8:
        // optimum: fill path 2 (5 @ 1), then path 3 (5 @ 2) → 15.
        let mut lp = LinearProgram::minimize(vec![3.0, 1.0, 2.0]);
        lp.constrain(vec![1.0, 1.0, 1.0], Cmp::Eq, 10.0);
        lp.constrain(vec![1.0, 0.0, 0.0], Cmp::Le, 4.0);
        lp.constrain(vec![0.0, 1.0, 0.0], Cmp::Le, 5.0);
        lp.constrain(vec![0.0, 0.0, 1.0], Cmp::Le, 8.0);
        let s = lp.solve().unwrap();
        assert_close(s.objective, 15.0);
        assert_close(s.x[1], 5.0);
        assert_close(s.x[2], 5.0);
    }

    #[test]
    fn dimension_mismatch_via_raw_solve() {
        let lp = LinearProgram {
            objective: vec![1.0, 2.0],
            rows: vec![vec![1.0]],
            cmps: vec![Cmp::Le],
            rhs: vec![1.0],
        };
        assert!(matches!(
            solve(&lp),
            Err(LpError::DimensionMismatch {
                expected: 2,
                got: 1
            })
        ));
    }

    #[test]
    fn zero_variable_program() {
        let lp = LinearProgram::minimize(vec![]);
        let s = lp.solve().unwrap();
        assert_eq!(s.x.len(), 0);
        assert_close(s.objective, 0.0);
    }

    /// Random bounded-feasible programs: box constraints keep everything
    /// bounded, so the solver must return a solution that is feasible and
    /// no worse than a sample of random feasible points.
    fn arb_lp() -> impl Strategy<Value = (LinearProgram, Vec<Vec<f64>>)> {
        let nvars = 2usize..5;
        nvars.prop_flat_map(|n| {
            let costs = proptest::collection::vec(-5.0f64..5.0, n);
            let rows = proptest::collection::vec(
                (proptest::collection::vec(0.0f64..3.0, n), 1.0f64..20.0),
                1..4,
            );
            (costs, rows).prop_map(move |(c, rows)| {
                let mut lp = LinearProgram::minimize(c);
                // Box: every var ≤ 10 (keeps min of negative costs bounded).
                for v in 0..n {
                    let mut row = vec![0.0; n];
                    row[v] = 1.0;
                    lp.constrain(row, Cmp::Le, 10.0);
                }
                let mut sample_rows = Vec::new();
                for (row, b) in rows {
                    lp.constrain(row.clone(), Cmp::Le, b);
                    sample_rows.push(row);
                }
                (lp, sample_rows)
            })
        })
    }

    proptest! {
        #[test]
        fn solution_is_feasible_and_not_dominated((lp, _rows) in arb_lp()) {
            let s = lp.solve().unwrap();
            // Feasibility.
            for (i, row) in lp.rows.iter().enumerate() {
                let lhs: f64 = row.iter().zip(&s.x).map(|(a, x)| a * x).sum();
                match lp.cmps[i] {
                    Cmp::Le => prop_assert!(lhs <= lp.rhs[i] + 1e-6),
                    Cmp::Ge => prop_assert!(lhs >= lp.rhs[i] - 1e-6),
                    Cmp::Eq => prop_assert!((lhs - lp.rhs[i]).abs() < 1e-6),
                }
            }
            for x in &s.x {
                prop_assert!(*x >= -1e-9);
            }
            // The origin is feasible for pure ≤ programs with b ≥ 0, so
            // the optimum can never exceed 0 here.
            prop_assert!(s.objective <= 1e-9);
        }
    }
}
