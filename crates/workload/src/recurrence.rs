//! Sender–receiver pair generation with recurrence (Figure 4).
//!
//! The paper's two findings drive the model:
//!
//! 1. "the median percentage of recurring transactions among all
//!    transactions of the day stands at 86%" (Figure 4a) — so each
//!    payment reuses an existing sender→receiver pair with probability
//!    ≈ 0.86;
//! 2. "its top-5 most frequent recurring payments account for over 70%
//!    of the daily transactions" (Figure 4b) — so a sender's choice
//!    among its known contacts is Zipf-distributed, concentrating mass
//!    on the first few contacts.
//!
//! Senders themselves are Zipf-distributed over the node population
//! (financial activity is skewed too).

use pcn_types::NodeId;
use rand::prelude::*;
use rand::rngs::StdRng;

/// Configuration of the pair generator.
#[derive(Clone, Debug)]
pub struct RecurrenceConfig {
    /// Probability a payment goes to an already-known receiver.
    pub recur_prob: f64,
    /// Zipf exponent over a sender's contact ranks (≈1.2 reproduces the
    /// ≈70% top-5 share).
    pub contact_zipf: f64,
    /// Zipf exponent for sender activity (0 = uniform senders).
    pub sender_zipf: f64,
}

impl Default for RecurrenceConfig {
    fn default() -> Self {
        RecurrenceConfig {
            recur_prob: 0.92,
            contact_zipf: 1.6,
            // Strong sender skew: a handful of heavy senders dominate a
            // day's traffic, which is what makes most of a *day's*
            // transactions recurring (Figure 4a's 86% median) — real
            // cryptocurrency traffic is dominated by exchanges and
            // gateways.
            sender_zipf: 1.5,
        }
    }
}

/// Stateful generator of (sender, receiver) pairs over `n` nodes.
pub struct PairGenerator {
    config: RecurrenceConfig,
    n: usize,
    /// Per-sender ordered contact list (rank 0 = first/most-likely).
    contacts: Vec<Vec<NodeId>>,
    /// Sender sampling weights (precomputed Zipf CDF).
    sender_cdf: Vec<f64>,
    rng: StdRng,
}

impl PairGenerator {
    /// Creates a generator over `n` nodes.
    ///
    /// # Panics
    /// Panics if `n < 2` (no distinct pair exists).
    pub fn new(n: usize, config: RecurrenceConfig, seed: u64) -> Self {
        assert!(n >= 2, "need at least two nodes to form pairs");
        let mut weights: Vec<f64> = (1..=n)
            .map(|k| 1.0 / (k as f64).powf(config.sender_zipf))
            .collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        for w in &mut weights {
            acc += *w / total;
            *w = acc;
        }
        PairGenerator {
            config,
            n,
            contacts: vec![Vec::new(); n],
            sender_cdf: weights,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    fn sample_sender(&mut self) -> NodeId {
        let u: f64 = self.rng.random();
        let idx = self.sender_cdf.partition_point(|&c| c < u).min(self.n - 1);
        // Node ids are assigned in hub-first order by the scale-free
        // generator's preferential attachment, so low indices being more
        // active matches reality (hubs transact more).
        NodeId::from_index(idx)
    }

    /// Zipf-ranked choice among the sender's existing contacts.
    fn sample_contact(&mut self, sender: NodeId) -> Option<NodeId> {
        let list = &self.contacts[sender.index()];
        if list.is_empty() {
            return None;
        }
        let a = self.config.contact_zipf;
        let weights: Vec<f64> = (1..=list.len()).map(|k| 1.0 / (k as f64).powf(a)).collect();
        let total: f64 = weights.iter().sum();
        let mut u = self.rng.random::<f64>() * total;
        for (i, w) in weights.iter().enumerate() {
            if u < *w {
                return Some(list[i]);
            }
            u -= w;
        }
        list.last().copied()
    }

    /// Draws the next (sender, receiver) pair.
    pub fn next_pair(&mut self) -> (NodeId, NodeId) {
        let sender = self.sample_sender();
        let recur = self.rng.random::<f64>() < self.config.recur_prob;
        if recur {
            if let Some(receiver) = self.sample_contact(sender) {
                return (sender, receiver);
            }
        }
        // New receiver: uniform over everyone else; append to contacts.
        loop {
            let r = NodeId::from_index(self.rng.random_range(0..self.n));
            if r == sender {
                continue;
            }
            if !self.contacts[sender.index()].contains(&r) {
                self.contacts[sender.index()].push(r);
            }
            return (sender, r);
        }
    }

    /// Draws `count` pairs.
    pub fn pairs(&mut self, count: usize) -> Vec<(NodeId, NodeId)> {
        (0..count).map(|_| self.next_pair()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{HashMap, HashSet};

    #[test]
    fn pairs_are_valid() {
        let mut g = PairGenerator::new(50, RecurrenceConfig::default(), 1);
        for (s, r) in g.pairs(1000) {
            assert_ne!(s, r);
            assert!(s.index() < 50 && r.index() < 50);
        }
    }

    #[test]
    fn recurrence_fraction_near_configured() {
        let mut g = PairGenerator::new(200, RecurrenceConfig::default(), 2);
        let pairs = g.pairs(20_000);
        let mut seen: HashSet<(NodeId, NodeId)> = HashSet::new();
        let mut recurring = 0usize;
        for p in &pairs {
            if !seen.insert(*p) {
                recurring += 1;
            }
        }
        let frac = recurring as f64 / pairs.len() as f64;
        // Early payments can't recur (pulling the fraction down); the
        // uniform new-receiver draw occasionally lands on a known
        // contact (pulling it up) — so a band around recur_prob.
        assert!(
            (0.8..=0.97).contains(&frac),
            "recurring fraction {frac} should be ≈ recur_prob (0.92)"
        );
    }

    #[test]
    fn top5_contacts_dominate() {
        let mut g = PairGenerator::new(300, RecurrenceConfig::default(), 3);
        let pairs = g.pairs(30_000);
        // Per-sender receiver histogram.
        let mut hist: HashMap<NodeId, HashMap<NodeId, usize>> = HashMap::new();
        for (s, r) in &pairs {
            *hist.entry(*s).or_default().entry(*r).or_insert(0) += 1;
        }
        // Average top-5 share among senders with enough transactions.
        // Fold in sorted sender order: the f64 mean must not depend on
        // hash iteration order.
        let mut per_sender: Vec<(NodeId, HashMap<NodeId, usize>)> = hist.into_iter().collect();
        per_sender.sort_unstable_by_key(|&(s, _)| s);
        let mut shares = Vec::new();
        // det-lint: allow(hash-order) — per_sender is a Vec sorted by sender just above
        for (_, recv) in per_sender {
            let total: usize = recv.values().sum();
            if total < 50 {
                continue;
            }
            let mut counts: Vec<usize> = recv.values().copied().collect();
            counts.sort_unstable_by(|a, b| b.cmp(a));
            let top5: usize = counts.iter().take(5).sum();
            shares.push(top5 as f64 / total as f64);
        }
        assert!(!shares.is_empty());
        let mean = shares.iter().sum::<f64>() / shares.len() as f64;
        assert!(
            (0.6..=0.95).contains(&mean),
            "mean top-5 share {mean} should be ≈ 0.7+"
        );
    }

    #[test]
    fn sender_activity_is_skewed() {
        let mut g = PairGenerator::new(100, RecurrenceConfig::default(), 4);
        let pairs = g.pairs(10_000);
        let mut counts = vec![0usize; 100];
        for (s, _) in pairs {
            counts[s.index()] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let avg = 10_000 / 100;
        assert!(max > 3 * avg, "most active sender should be ≫ average");
    }

    #[test]
    fn deterministic_with_seed() {
        let run = |seed| PairGenerator::new(40, RecurrenceConfig::default(), seed).pairs(500);
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    #[should_panic(expected = "at least two nodes")]
    fn rejects_tiny_population() {
        PairGenerator::new(1, RecurrenceConfig::default(), 0);
    }
}
