//! End-to-end trace generation and (de)serialization.
//!
//! A trace is an ordered list of [`Payment`]s ("Payments arrive at
//! senders sequentially", §4.1) produced by combining a size model
//! (Figure 3) with the recurrence pair generator (Figure 4), restricted
//! to sender–receiver pairs that are actually connected in the topology
//! ("We ensure there exists at least one path from sender to receiver",
//! §5.2).

use crate::recurrence::{PairGenerator, RecurrenceConfig};
use crate::size::SizeModel;
use pcn_graph::DiGraph;
use pcn_sim::SimTime;
use pcn_types::{Amount, Payment, PcnError, Result, TxId};
use serde::{Deserialize, Serialize};

/// Trace-generation parameters.
#[derive(Clone, Debug)]
pub struct TraceConfig {
    /// Number of payments to generate.
    pub num_payments: usize,
    /// Payment-size distribution.
    pub size_model: SizeModel,
    /// Pair recurrence model.
    pub recurrence: RecurrenceConfig,
    /// RNG seed (sizes and pairs derive independent streams from it).
    pub seed: u64,
    /// Require a directed path sender → receiver in the topology.
    pub require_connectivity: bool,
}

impl TraceConfig {
    /// A Ripple-style trace of `n` payments.
    pub fn ripple(n: usize, seed: u64) -> Self {
        TraceConfig {
            num_payments: n,
            size_model: SizeModel::RippleUsd,
            recurrence: RecurrenceConfig::default(),
            seed,
            require_connectivity: true,
        }
    }

    /// A Lightning-style trace (Bitcoin sizes, Ripple-like pair
    /// structure, exactly as §4.1 constructs it: "we randomly sample the
    /// Bitcoin trace for transaction volumes, and sample a sender-
    /// receiver pair from the Ripple trace and map it to nodes in the
    /// Lightning topology").
    pub fn lightning(n: usize, seed: u64) -> Self {
        TraceConfig {
            num_payments: n,
            size_model: SizeModel::BitcoinSatoshi,
            recurrence: RecurrenceConfig::default(),
            seed,
            require_connectivity: true,
        }
    }
}

/// Generates a trace against a topology.
pub fn generate_trace(graph: &DiGraph, config: &TraceConfig) -> Vec<Payment> {
    let n = graph.node_count();
    let mut pairs = PairGenerator::new(n, config.recurrence.clone(), config.seed);
    let sizes = config
        .size_model
        .sample_many(config.num_payments, config.seed.wrapping_add(1));
    // Reachability cache: per-sender reachable set, computed lazily.
    let mut reach: Vec<Option<Vec<bool>>> = vec![None; n];
    let mut out = Vec::with_capacity(config.num_payments);
    let mut i = 0usize;
    let mut guard = 0usize;
    while out.len() < config.num_payments {
        guard += 1;
        assert!(
            guard < 100 * config.num_payments + 1000,
            "could not find enough connected pairs; topology too fragmented"
        );
        let (s, r) = pairs.next_pair();
        if config.require_connectivity {
            let rs = reach[s.index()].get_or_insert_with(|| graph.reachable_from(s));
            if !rs[r.index()] {
                continue;
            }
        }
        out.push(Payment::new(TxId(i as u64), s, r, sizes[out.len()]));
        i += 1;
    }
    out
}

/// One untimed JSON-lines record — the original wire format (sender,
/// receiver, volume), byte-identical to what this crate always wrote.
#[derive(Serialize)]
struct TraceRecord {
    id: u64,
    sender: u32,
    receiver: u32,
    amount_micros: u64,
}

/// One timed JSON-lines record (mirrors the open-sourced trace format
/// of the paper's artifact: sender, receiver, volume, time).
/// `time_micros` is the arrival timestamp in virtual microseconds;
/// parsing accepts untimed records too (the field defaults to absent).
#[derive(Serialize, Deserialize)]
struct TimedTraceRecord {
    id: u64,
    sender: u32,
    receiver: u32,
    amount_micros: u64,
    #[serde(default)]
    time_micros: Option<u64>,
}

impl TimedTraceRecord {
    fn payment(&self) -> Payment {
        Payment::new(
            TxId(self.id),
            pcn_types::NodeId(self.sender),
            pcn_types::NodeId(self.receiver),
            Amount::from_micros(self.amount_micros),
        )
    }
}

fn records_from_jsonl(text: &str) -> Result<Vec<TimedTraceRecord>> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let rec: TimedTraceRecord = serde_json::from_str(line)
            .map_err(|e| PcnError::InvalidConfig(format!("trace line {}: {e}", lineno + 1)))?;
        out.push(rec);
    }
    Ok(out)
}

fn push_record(out: &mut String, rec: &impl Serialize) {
    // pcn-lint: allow(panic) — trace records are plain structs; serialization cannot fail
    out.push_str(&serde_json::to_string(rec).expect("record serializes"));
    out.push('\n');
}

/// Serializes an untimed trace as JSON lines (no `time_micros` field —
/// the pre-DES format, unchanged).
pub fn to_jsonl(trace: &[Payment]) -> String {
    let mut out = String::new();
    for p in trace {
        push_record(
            &mut out,
            &TraceRecord {
                id: p.id.0,
                sender: p.sender.0,
                receiver: p.receiver.0,
                amount_micros: p.amount.micros(),
            },
        );
    }
    out
}

/// Parses a JSON-lines trace (timed or untimed), ignoring any arrival
/// timestamps (use [`from_jsonl_timed`] to consume them).
pub fn from_jsonl(text: &str) -> Result<Vec<Payment>> {
    Ok(records_from_jsonl(text)?
        .iter()
        .map(TimedTraceRecord::payment)
        .collect())
}

/// Serializes a timed workload (the `pcn_sim::des` engine's shape) as
/// JSON lines with `time_micros` stamps.
pub fn to_jsonl_timed(workload: &[(SimTime, Payment)]) -> String {
    let mut out = String::new();
    for (t, p) in workload {
        push_record(
            &mut out,
            &TimedTraceRecord {
                id: p.id.0,
                sender: p.sender.0,
                receiver: p.receiver.0,
                amount_micros: p.amount.micros(),
                time_micros: Some(t.micros()),
            },
        );
    }
    out
}

/// Parses a JSON-lines trace into a timed workload, replaying each
/// record's `time_micros` stamp — the trace-driven arrival process.
/// Records without a stamp arrive at virtual time zero.
pub fn from_jsonl_timed(text: &str) -> Result<Vec<(SimTime, Payment)>> {
    Ok(records_from_jsonl(text)?
        .iter()
        .map(|rec| {
            (
                SimTime::from_micros(rec.time_micros.unwrap_or(0)),
                rec.payment(),
            )
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcn_graph::generators;

    #[test]
    fn generates_requested_count_with_connectivity() {
        let g = generators::watts_strogatz(40, 4, 0.2, 3);
        let trace = generate_trace(&g, &TraceConfig::ripple(500, 7));
        assert_eq!(trace.len(), 500);
        for p in &trace {
            assert_ne!(p.sender, p.receiver);
            let reach = g.reachable_from(p.sender);
            assert!(reach[p.receiver.index()]);
        }
    }

    #[test]
    fn trace_is_deterministic() {
        let g = generators::watts_strogatz(40, 4, 0.2, 3);
        let a = generate_trace(&g, &TraceConfig::ripple(100, 5));
        let b = generate_trace(&g, &TraceConfig::ripple(100, 5));
        assert_eq!(a, b);
        let c = generate_trace(&g, &TraceConfig::ripple(100, 6));
        assert_ne!(a, c);
    }

    #[test]
    fn sizes_follow_the_model() {
        let g = generators::watts_strogatz(60, 4, 0.2, 3);
        let trace = generate_trace(&g, &TraceConfig::ripple(4000, 9));
        let mut sizes: Vec<f64> = trace.iter().map(|p| p.amount.as_units_f64()).collect();
        sizes.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sizes[sizes.len() / 2];
        assert!((1.0..25.0).contains(&median), "median {median} ≈ $4.8");
    }

    #[test]
    fn jsonl_round_trip() {
        let g = generators::watts_strogatz(30, 4, 0.2, 3);
        let trace = generate_trace(&g, &TraceConfig::lightning(50, 11));
        let text = to_jsonl(&trace);
        let back = from_jsonl(&text).unwrap();
        assert_eq!(trace, back);
    }

    #[test]
    fn jsonl_rejects_garbage() {
        assert!(from_jsonl("not json\n").is_err());
        assert!(from_jsonl("{\"id\":0}\n").is_err());
        assert!(from_jsonl("").unwrap().is_empty());
    }

    #[test]
    fn timed_jsonl_round_trip() {
        let g = generators::watts_strogatz(30, 4, 0.2, 3);
        let trace = generate_trace(&g, &TraceConfig::ripple(40, 11));
        let times = crate::arrivals::poisson_times(40, 100.0, 5);
        let workload = crate::arrivals::stamp(&trace, &times);
        let text = to_jsonl_timed(&workload);
        assert!(text.contains("time_micros"));
        let back = from_jsonl_timed(&text).unwrap();
        assert_eq!(workload, back);
        // The untimed reader accepts the same file and drops the stamps.
        assert_eq!(from_jsonl(&text).unwrap(), trace);
        // The untimed writer keeps the original format: no time field.
        assert!(!to_jsonl(&trace).contains("time_micros"));
    }

    #[test]
    fn untimed_lines_replay_at_time_zero() {
        let line = "{\"id\":3,\"sender\":0,\"receiver\":1,\"amount_micros\":2000000}\n";
        let timed = from_jsonl_timed(line).unwrap();
        assert_eq!(timed.len(), 1);
        assert_eq!(timed[0].0, SimTime::ZERO);
        assert_eq!(timed[0].1.amount, Amount::from_units(2));
    }
}
