//! Topology synthesis with channel-fund assignment.
//!
//! See DESIGN.md substitution #2: the crawled Ripple/Lightning
//! topologies are replaced by scale-free graphs at the paper's exact
//! node/channel scale, with skewed fund distributions matching the
//! published medians.

use pcn_graph::{generators, DiGraph};
use pcn_sim::Network;
use pcn_types::{Amount, FeePolicy};
use rand::prelude::*;
use rand::rngs::StdRng;
use rand_distr::{Distribution, LogNormal};

/// Nodes in the processed Ripple topology (§4.1).
pub const RIPPLE_NODES: usize = 1870;
/// Directed edges in the processed Ripple topology (§4.1); every channel
/// contributes two, so 8,708 channels.
pub const RIPPLE_EDGES: usize = 17_416;
/// Median per-direction channel capacity in Ripple: "the medium channel
/// capacity ... in Ripple is 250 USD" (§4.2).
pub const RIPPLE_MEDIAN_CAPACITY_USD: f64 = 250.0;

/// Nodes in the Lightning snapshot (§4.1).
pub const LIGHTNING_NODES: usize = 2511;
/// Channels in the Lightning snapshot (§4.1).
pub const LIGHTNING_CHANNELS: usize = 36_016;
/// Median channel capacity in Lightning: "around 500,000 Satoshi" (§4.2).
pub const LIGHTNING_MEDIAN_CAPACITY_SAT: f64 = 500_000.0;

/// Builds the Ripple-scale network: 1,870 nodes, 8,708 bidirectional
/// channels (17,416 directed edges). Channel funds are log-normally
/// distributed with median $250 and "evenly assign\[ed\] ... over both
/// directions of a channel" exactly as the paper post-processes its
/// crawl (both directions get the same balance).
pub fn ripple_topology(seed: u64) -> Network {
    let graph = generators::scale_free_with_channels(RIPPLE_NODES, RIPPLE_EDGES / 2, seed);
    assign_lognormal_funds(graph, RIPPLE_MEDIAN_CAPACITY_USD, 1.2, true, seed ^ 0xA5A5)
}

/// Builds the Lightning-scale network: 2,511 nodes, 36,016 channels.
/// Lightning funds sit on one side at channel open, and the paper uses
/// "the crawled distribution of funds on channels directly" — synthesized
/// here as a wider log-normal (σ = 1.6) with median 500,000 satoshi,
/// split *unevenly* between the two directions (a random cut), matching
/// how real Lightning balances look mid-life.
pub fn lightning_topology(seed: u64) -> Network {
    let graph = generators::scale_free_with_channels(LIGHTNING_NODES, LIGHTNING_CHANNELS, seed);
    assign_lognormal_funds(
        graph,
        LIGHTNING_MEDIAN_CAPACITY_SAT,
        1.6,
        false,
        seed ^ 0x5A5A,
    )
}

/// Builds a §5.2 testbed network: a Watts–Strogatz graph of `n` nodes
/// (degree 4, rewiring 0.3) with per-direction capacities drawn
/// uniformly from `[lo, hi)` USD.
pub fn testbed_topology(n: usize, lo: u64, hi: u64, seed: u64) -> Network {
    assert!(lo < hi, "capacity interval must be non-empty");
    let graph = generators::watts_strogatz(n, 4, 0.3, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xBEEF);
    let balances: Vec<Amount> = (0..graph.edge_count())
        .map(|_| Amount::from_units(rng.random_range(lo..hi)))
        .collect();
    let fees = vec![FeePolicy::FREE; graph.edge_count()];
    // pcn-lint: allow(panic) — both tables are built with len == edge_count just above
    Network::new(graph, balances, fees).expect("tables sized from graph")
}

/// Assigns log-normal channel funds with the given median (native
/// units). With `symmetric`, both directions of a channel get the same
/// balance; otherwise the channel total is split by a uniform random
/// fraction.
fn assign_lognormal_funds(
    graph: DiGraph,
    median: f64,
    sigma: f64,
    symmetric: bool,
    seed: u64,
) -> Network {
    let mut rng = StdRng::seed_from_u64(seed);
    // pcn-lint: allow(panic) — callers pass fixed, finite (median, sigma) model constants
    let dist = LogNormal::new(median.ln(), sigma).expect("valid log-normal parameters");
    let mut balances = vec![Amount::ZERO; graph.edge_count()];
    let edges: Vec<_> = graph.edges().collect();
    for (e, _, _) in &edges {
        if balances[e.index()] != Amount::ZERO {
            continue; // already set via its reverse partner
        }
        let rev = graph.reverse_edge(*e);
        let side = dist.sample(&mut rng).max(1e-6);
        if symmetric {
            balances[e.index()] = Amount::from_units_f64(side);
            if let Some(r) = rev {
                balances[r.index()] = Amount::from_units_f64(side);
            }
        } else {
            // `side` is the per-side median scale; the channel total is
            // twice that, split at a random point.
            let total = 2.0 * side;
            let cut = rng.random::<f64>();
            balances[e.index()] = Amount::from_units_f64(total * cut);
            if let Some(r) = rev {
                balances[r.index()] = Amount::from_units_f64(total * (1.0 - cut));
            }
        }
    }
    let fees = vec![FeePolicy::FREE; graph.edge_count()];
    // pcn-lint: allow(panic) — both tables are built with len == edge_count just above
    Network::new(graph, balances, fees).expect("tables sized from graph")
}

/// Assigns the Figure 9 fee distribution: "We set 90% channels with a
/// random fees from 0.1% to 1% and 10% channels from 1% to 10% of the
/// volume." Both directions of a channel share one policy.
pub fn assign_paper_fees(net: &mut Network, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let edges: Vec<_> = net.graph().edges().map(|(e, _, _)| e).collect();
    let graph = net.graph().clone();
    let mut done = vec![false; edges.len()];
    for e in edges {
        if done[e.index()] {
            continue;
        }
        let ppm = if rng.random::<f64>() < 0.9 {
            rng.random_range(1_000..10_000) // 0.1%–1%
        } else {
            rng.random_range(10_000..100_000) // 1%–10%
        };
        let policy = FeePolicy::proportional(ppm);
        net.set_fee_policy(e, policy);
        done[e.index()] = true;
        if let Some(r) = graph.reverse_edge(e) {
            net.set_fee_policy(r, policy);
            done[r.index()] = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ripple_scale_matches_paper() {
        let net = ripple_topology(1);
        assert_eq!(net.graph().node_count(), RIPPLE_NODES);
        assert_eq!(net.graph().edge_count(), RIPPLE_EDGES);
    }

    #[test]
    fn ripple_funds_are_symmetric_with_sane_median() {
        let net = ripple_topology(2);
        let g = net.graph();
        let mut balances = Vec::new();
        for (e, _, _) in g.edges() {
            let r = g.reverse_edge(e).expect("channels are bidirectional");
            assert_eq!(net.balance(e), net.balance(r), "even split per direction");
            balances.push(net.balance(e).as_units_f64());
        }
        balances.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = balances[balances.len() / 2];
        assert!(
            (100.0..600.0).contains(&median),
            "median per-direction capacity {median} should be ≈ $250"
        );
    }

    // Lightning-scale construction is exercised (slowly) in the
    // integration tests; here a reduced-scale smoke check of the
    // asymmetric-split path.
    #[test]
    fn asymmetric_split_conserves_channel_total() {
        let graph = generators::scale_free_with_channels(60, 150, 3);
        let net = assign_lognormal_funds(graph, 1000.0, 1.0, false, 77);
        let g = net.graph();
        for (e, _, _) in g.edges() {
            let r = g.reverse_edge(e).unwrap();
            let total = net.balance(e).saturating_add(net.balance(r));
            assert!(total > Amount::ZERO);
        }
    }

    #[test]
    fn testbed_capacities_in_interval() {
        let net = testbed_topology(50, 1000, 1500, 4);
        assert_eq!(net.graph().node_count(), 50);
        for (e, _, _) in net.graph().edges() {
            let b = net.balance(e).as_units_f64();
            assert!((1000.0..1500.0).contains(&b), "capacity {b} out of range");
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn testbed_rejects_empty_interval() {
        testbed_topology(50, 1500, 1500, 4);
    }

    #[test]
    fn paper_fees_hit_both_bands() {
        let mut net = testbed_topology(100, 1000, 1500, 5);
        assign_paper_fees(&mut net, 9);
        let mut low = 0usize;
        let mut high = 0usize;
        let g = net.graph().clone();
        for (e, _, _) in g.edges() {
            let ppm = net.fee_policy(e).rate_ppm;
            assert!((1_000..100_000).contains(&ppm));
            if ppm < 10_000 {
                low += 1;
            } else {
                high += 1;
            }
            // Both directions share a policy.
            let r = g.reverse_edge(e).unwrap();
            assert_eq!(net.fee_policy(e), net.fee_policy(r));
        }
        let frac_low = low as f64 / (low + high) as f64;
        assert!(
            (0.8..=0.97).contains(&frac_low),
            "≈90% of channels should be in the low band, got {frac_low}"
        );
    }

    #[test]
    fn topologies_are_deterministic() {
        let a = testbed_topology(30, 1000, 1500, 11);
        let b = testbed_topology(30, 1000, 1500, 11);
        let ea: Vec<_> = a.graph().edges().collect();
        let eb: Vec<_> = b.graph().edges().collect();
        assert_eq!(ea, eb);
        for (e, _, _) in a.graph().edges() {
            assert_eq!(a.balance(e), b.balance(e));
        }
    }
}
