//! # pcn-workload
//!
//! Workload synthesis for the Flash reproduction. The paper's evaluation
//! drives everything from two proprietary-ish data sets — a Ripple
//! transaction trace (2.6 M payments, 2013–2016) and a crawled Bitcoin
//! trace (103 M payments) — plus crawled Ripple/Lightning topologies.
//! None are redistributable here, so this crate synthesizes equivalents
//! calibrated to **every statistic the paper publishes about them**:
//!
//! * [`size`] — heavy-tailed payment-size samplers anchored to Figure 3:
//!   Ripple median $4.8 / p90 $1,740 / top-10% ≈ 94.5% of volume;
//!   Bitcoin median 1.293e6 sat / p90 8.9e7 sat / top-10% ≈ 94.7%.
//! * [`recurrence`] — sender–receiver pair generation reproducing
//!   Figure 4: ≈86% of a day's transactions recur within 24 h, and a
//!   sender's top-5 receivers carry ≈70% of its recurring payments.
//! * [`topology`] — scale-free topologies at the paper's exact scale
//!   (Ripple: 1,870 nodes / 17,416 directed edges; Lightning: 2,511
//!   nodes / 36,016 channels) with skewed channel funds (medians $250
//!   and 500,000 satoshi respectively), plus the Watts–Strogatz testbed
//!   topologies of §5.2 with U[lo, hi) capacities.
//! * [`arrivals`] — arrival processes for the discrete-event engine:
//!   seeded Poisson offered load and fixed-gap controls, plus helpers
//!   stamping traces into timed workloads.
//! * [`churn`] — seeded topology-churn schedules (channel closes, node
//!   crashes, balance drains) for `pcn_sim::des`, generated from
//!   Poisson intensities the same way arrivals are.
//! * [`trace`] — end-to-end trace generation and JSON-lines I/O
//!   (timed and untimed; `time_micros` stamps replay through
//!   `pcn_sim::des`).
//! * [`stats`] — CDF/quantile/volume-share/recurrence statistics used to
//!   validate calibration and to regenerate Figures 3 and 4.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Library code reports through returned values and serialized artifacts,
// never ad-hoc stdout; the experiment/bench binaries print, libraries do not.
#![deny(clippy::dbg_macro, clippy::print_stdout)]

pub mod arrivals;
pub mod churn;
pub mod recurrence;
pub mod size;
pub mod stats;
pub mod topology;
pub mod trace;

pub use churn::churn_schedule;
pub use size::SizeModel;
pub use topology::{lightning_topology, ripple_topology, testbed_topology};
pub use trace::{generate_trace, TraceConfig};
