//! Workload statistics — the quantities plotted in Figures 3 and 4.

use pcn_types::{NodeId, Payment};
use std::collections::HashMap;

/// Empirical CDF points `(value, F(value))` over a set of samples,
/// downsampled to at most `points` entries (enough to plot Figure 3).
pub fn empirical_cdf(samples: &[f64], points: usize) -> Vec<(f64, f64)> {
    if samples.is_empty() || points == 0 {
        return Vec::new();
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len();
    let step = (n / points).max(1);
    let mut out = Vec::new();
    let mut i = step - 1;
    while i < n {
        out.push((sorted[i], (i + 1) as f64 / n as f64));
        i += step;
    }
    if out.last().map(|&(_, f)| f) != Some(1.0) {
        out.push((sorted[n - 1], 1.0));
    }
    out
}

/// The `q`-quantile (0 ≤ q ≤ 1) of a sample set.
pub fn quantile(samples: &[f64], q: f64) -> f64 {
    assert!(!samples.is_empty(), "quantile of empty sample set");
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let idx = ((q.clamp(0.0, 1.0)) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx]
}

/// Fraction of total volume carried by the largest `top_fraction` of
/// samples (Figure 3's "10% of payments contribute 94.5% of volume").
pub fn top_fraction_volume_share(samples: &[f64], top_fraction: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let total: f64 = sorted.iter().sum();
    if total == 0.0 {
        return 0.0;
    }
    let cut = ((1.0 - top_fraction.clamp(0.0, 1.0)) * sorted.len() as f64).floor() as usize;
    sorted[cut.min(sorted.len() - 1)..].iter().sum::<f64>() / total
}

/// Per-day recurrence statistics (Figure 4).
#[derive(Clone, Debug, PartialEq)]
pub struct DayRecurrence {
    /// Fraction of the day's transactions whose (sender, receiver) pair
    /// already appeared earlier the same day (Figure 4a).
    pub recurring_fraction: f64,
    /// Among recurring transactions, the average per-sender share
    /// carried by that sender's top-5 receivers (Figure 4b).
    pub top5_share: f64,
}

/// Splits a trace into consecutive days of `per_day` payments and
/// computes the recurrence statistics of each day.
pub fn daily_recurrence(trace: &[Payment], per_day: usize) -> Vec<DayRecurrence> {
    assert!(per_day > 0, "per_day must be positive");
    trace
        .chunks(per_day)
        .filter(|day| day.len() >= 2)
        .map(one_day_recurrence)
        .collect()
}

fn one_day_recurrence(day: &[Payment]) -> DayRecurrence {
    // The paper "identif[ies] the recurring transactions as those with
    // the same sender-receiver pairs within a 24-hour period": a
    // transaction is recurring iff its pair occurs at least twice that
    // day (the first occurrence included).
    let mut pair_counts: HashMap<(NodeId, NodeId), usize> = HashMap::new();
    for p in day {
        *pair_counts.entry((p.sender, p.receiver)).or_insert(0) += 1;
    }
    // det-lint: allow(hash-order) — integer sum over values, order-insensitive
    let recurring: usize = pair_counts.values().filter(|&&c| c >= 2).sum();
    // Histogram over recurring transactions, per sender.
    let mut recur_hist: HashMap<NodeId, HashMap<NodeId, usize>> = HashMap::new();
    // det-lint: allow(hash-order) — builds a keyed map; each pair inserts under its own key
    for ((s, r), c) in &pair_counts {
        if *c >= 2 {
            recur_hist.entry(*s).or_default().insert(*r, *c);
        }
    }
    let recurring_fraction = recurring as f64 / day.len() as f64;
    // f64 addition is non-associative, so the mean below must fold the
    // per-sender shares in a fixed order: key each share by sender and
    // sort before summing.
    let mut shares: Vec<(NodeId, f64)> = recur_hist
        .into_iter()
        .filter_map(|(s, recv)| {
            // Per-sender work is order-insensitive: integer sums plus a
            // descending sort of the counts.
            let total: usize = recv.values().sum();
            (total > 0).then(|| {
                let mut counts: Vec<usize> = recv.values().copied().collect();
                counts.sort_unstable_by(|a, b| b.cmp(a));
                let top5: usize = counts.iter().take(5).sum();
                (s, top5 as f64 / total as f64)
            })
        })
        .collect();
    shares.sort_unstable_by_key(|&(s, _)| s);
    let top5_share = if shares.is_empty() {
        0.0
    } else {
        shares.iter().map(|(_, share)| share).sum::<f64>() / shares.len() as f64
    };
    DayRecurrence {
        recurring_fraction,
        top5_share,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcn_types::{Amount, TxId};

    fn pay(id: u64, s: u32, r: u32) -> Payment {
        Payment::new(TxId(id), NodeId(s), NodeId(r), Amount::from_units(1))
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let cdf = empirical_cdf(&[3.0, 1.0, 2.0, 5.0, 4.0], 10);
        for w in cdf.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
        assert_eq!(cdf.last().unwrap().1, 1.0);
    }

    #[test]
    fn cdf_downsamples() {
        let samples: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let cdf = empirical_cdf(&samples, 10);
        assert!(cdf.len() <= 11);
    }

    #[test]
    fn quantile_basics() {
        let s = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(quantile(&s, 0.0), 1.0);
        assert_eq!(quantile(&s, 0.5), 3.0);
        assert_eq!(quantile(&s, 1.0), 5.0);
    }

    #[test]
    fn volume_share_of_uniform_is_proportional() {
        let s = vec![1.0; 100];
        let share = top_fraction_volume_share(&s, 0.1);
        assert!((share - 0.1).abs() < 0.011);
    }

    #[test]
    fn volume_share_of_skewed_is_concentrated() {
        let mut s = vec![1.0; 90];
        s.extend(vec![1000.0; 10]);
        let share = top_fraction_volume_share(&s, 0.1);
        assert!(share > 0.99);
    }

    #[test]
    fn day_recurrence_counts_repeats() {
        // Day: (0→1) ×3, (0→2) ×1 → the pair (0,1) occurs ≥ 2 times, so
        // its 3 transactions are recurring: 3 of 4.
        let day = vec![pay(0, 0, 1), pay(1, 0, 1), pay(2, 0, 2), pay(3, 0, 1)];
        let r = one_day_recurrence(&day);
        assert!((r.recurring_fraction - 0.75).abs() < 1e-9);
        // All recurring go to receiver 1 → top-5 share = 1.
        assert_eq!(r.top5_share, 1.0);
    }

    #[test]
    fn daily_chunks() {
        let trace: Vec<Payment> = (0..10).map(|i| pay(i, 0, 1)).collect();
        let days = daily_recurrence(&trace, 4);
        assert_eq!(days.len(), 3); // 4 + 4 + 2
    }

    #[test]
    #[should_panic(expected = "per_day")]
    fn zero_day_size_rejected() {
        daily_recurrence(&[], 0);
    }
}
