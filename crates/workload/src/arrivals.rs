//! Payment arrival processes.
//!
//! The discrete-event engine (`pcn_sim::des`) consumes *timed*
//! workloads: `(SimTime, Payment)` pairs. This module builds the two
//! arrival processes the evaluation needs:
//!
//! * [`poisson_times`] — a seeded Poisson process at a given offered
//!   load (payments per virtual second), the standard open-loop arrival
//!   model (Spider's evaluation and the Credit Network literature both
//!   drive load this way). Inter-arrival gaps are exponential,
//!   deterministic per seed.
//! * [`trace::from_jsonl_timed`](crate::trace::from_jsonl_timed) — the
//!   replay adapter: a trace's own `time_micros` stamps, finally
//!   consumed instead of parsed-and-dropped.
//! * [`uniform_times`] — a fixed-gap process for controlled
//!   experiments (exact offered load, no burstiness).
//!
//! [`stamp`] zips a generated trace with arrival times into the
//! workload shape the engine takes.

use pcn_sim::SimTime;
use pcn_types::Payment;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rand_distr::{Distribution, Exp};

/// Arrival times of a Poisson process with rate `rate_per_sec`
/// (payments per virtual second), starting at the first inter-arrival
/// gap after time zero. Deterministic per seed; times are
/// non-decreasing.
///
/// # Panics
/// Panics if `rate_per_sec` is not finite and positive.
pub fn poisson_times(n: usize, rate_per_sec: f64, seed: u64) -> Vec<SimTime> {
    // pcn-lint: allow(panic) — documented contract: the offered load must be positive
    let gap_us = Exp::new(rate_per_sec / 1_000_000.0).expect("rate must be finite and positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = 0u64;
    (0..n)
        .map(|_| {
            // Round each gap instead of flooring so the realized rate
            // is unbiased; saturate rather than wrap on absurd rates.
            let gap = gap_us.sample(&mut rng).round();
            let gap = if gap >= u64::MAX as f64 {
                u64::MAX
            } else {
                gap as u64
            };
            t = t.saturating_add(gap);
            SimTime::from_micros(t)
        })
        .collect()
}

/// Arrival times with a fixed gap between consecutive payments: the
/// `i`-th payment arrives at `(i + 1) × gap`.
pub fn uniform_times(n: usize, gap: SimTime) -> Vec<SimTime> {
    let mut t = SimTime::ZERO;
    (0..n)
        .map(|_| {
            t += gap;
            t
        })
        .collect()
}

/// Zips a trace with arrival times into the engine's workload shape.
///
/// # Panics
/// Panics if the lengths differ — a mismatch means the arrival plan was
/// built for a different trace.
pub fn stamp(trace: &[Payment], times: &[SimTime]) -> Vec<(SimTime, Payment)> {
    assert_eq!(
        trace.len(),
        times.len(),
        "arrival plan has {} times for {} payments",
        times.len(),
        trace.len()
    );
    times.iter().copied().zip(trace.iter().copied()).collect()
}

/// Convenience: a trace under Poisson arrivals at `rate_per_sec`.
pub fn poisson_workload(
    trace: &[Payment],
    rate_per_sec: f64,
    seed: u64,
) -> Vec<(SimTime, Payment)> {
    stamp(trace, &poisson_times(trace.len(), rate_per_sec, seed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcn_types::{Amount, NodeId, TxId};
    use proptest::prelude::*;

    #[test]
    fn poisson_times_are_sorted_and_positive() {
        let times = poisson_times(500, 100.0, 7);
        assert_eq!(times.len(), 500);
        for w in times.windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert!(*times.last().unwrap() > SimTime::ZERO);
    }

    #[test]
    fn poisson_is_deterministic_per_seed() {
        assert_eq!(poisson_times(200, 50.0, 3), poisson_times(200, 50.0, 3));
        assert_ne!(poisson_times(200, 50.0, 3), poisson_times(200, 50.0, 4));
    }

    #[test]
    fn uniform_times_have_exact_gaps() {
        let times = uniform_times(4, SimTime::from_millis(250));
        let expect: Vec<SimTime> = (1..=4).map(|i| SimTime::from_millis(250 * i)).collect();
        assert_eq!(times, expect);
    }

    #[test]
    fn stamp_pairs_in_order() {
        let trace: Vec<Payment> = (0..3)
            .map(|i| Payment::new(TxId(i), NodeId(0), NodeId(1), Amount::from_units(i + 1)))
            .collect();
        let times = uniform_times(3, SimTime::from_millis(10));
        let w = stamp(&trace, &times);
        assert_eq!(w.len(), 3);
        assert_eq!(w[1].0, SimTime::from_millis(20));
        assert_eq!(w[2].1.amount, Amount::from_units(3));
    }

    #[test]
    #[should_panic(expected = "arrival plan")]
    fn stamp_rejects_mismatched_lengths() {
        let trace = vec![Payment::new(TxId(0), NodeId(0), NodeId(1), Amount::UNIT)];
        stamp(&trace, &uniform_times(2, SimTime::from_millis(1)));
    }

    proptest! {
        /// Inter-arrival gaps of the Poisson process are exponential-ish:
        /// the sample mean lands near `1/rate` and the gaps are bursty
        /// (CoV near 1), both within loose tolerances.
        #[test]
        fn poisson_gaps_are_exponential_ish(
            seed in 0u64..64,
            rate_idx in 0usize..3,
        ) {
            let rate = [20.0f64, 100.0, 400.0][rate_idx];
            let n = 4000;
            let times = poisson_times(n, rate, seed);
            let mut prev = 0u64;
            let gaps: Vec<f64> = times
                .iter()
                .map(|t| {
                    let g = (t.micros() - prev) as f64 / 1e6;
                    prev = t.micros();
                    g
                })
                .collect();
            let mean = gaps.iter().sum::<f64>() / n as f64;
            let expect = 1.0 / rate;
            prop_assert!(
                (mean - expect).abs() / expect < 0.1,
                "mean gap {mean} vs expected {expect}"
            );
            // Exponential gaps have standard deviation ≈ mean.
            let var = gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / n as f64;
            let cov = var.sqrt() / mean;
            prop_assert!((cov - 1.0).abs() < 0.15, "CoV {cov} not exponential-like");
        }

        /// The realized offered load matches the configured rate.
        #[test]
        fn poisson_realizes_the_offered_load(seed in 0u64..32) {
            let rate = 200.0;
            let n = 2000;
            let times = poisson_times(n, rate, seed);
            let span = times.last().unwrap().as_secs_f64();
            let realized = n as f64 / span;
            prop_assert!(
                (realized - rate).abs() / rate < 0.1,
                "realized {realized} pps vs configured {rate}"
            );
        }
    }
}
