//! Seeded churn-schedule generation.
//!
//! Turns a [`ChurnRate`] (Poisson intensities for channel closes, node
//! crashes, and balance drains) into a concrete
//! [`ChurnSchedule`] over a topology and a virtual horizon. Each
//! process draws exponential inter-event gaps exactly like
//! [`poisson_times`](crate::arrivals::poisson_times) draws payment
//! arrivals, from a single `StdRng::seed_from_u64(seed)` stream in a
//! fixed order (closes, then crashes, then drains) — so a schedule is
//! a pure function of `(graph shape, horizon, rate, seed)` and a zero
//! rate yields the *empty* schedule without touching the RNG, keeping
//! the zero-churn bit-identity invariant of
//! [`pcn_sim::des::churn`](pcn_sim::ChurnSchedule).

use pcn_graph::{DiGraph, EdgeId};
use pcn_sim::{ChurnAction, ChurnRate, ChurnSchedule, SimTime};
use pcn_types::{Amount, NodeId};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rand_distr::{Distribution, Exp};

/// Generates a churn schedule over `[0, horizon]`.
///
/// * Every close (resp. crash) picks a uniformly random channel
///   direction (resp. node) and schedules the matching reopen (resp.
///   up) at `t + rate.downtime` — possibly past the horizon, which is
///   harmless: trailing events fire during the engine's final drain
///   without extending the makespan.
/// * Every drain picks a uniformly random channel direction and
///   depletes it completely (the drain amount clamps to the live
///   balance when applied).
/// * A [`ChurnRate::is_zero`] rate, an empty graph, or a zero horizon
///   yields the empty schedule.
pub fn churn_schedule(g: &DiGraph, horizon: SimTime, rate: &ChurnRate, seed: u64) -> ChurnSchedule {
    let mut schedule = ChurnSchedule::none();
    if rate.is_zero() || g.edge_count() == 0 || horizon == SimTime::ZERO {
        return schedule;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let edges = g.edge_count();
    let nodes = g.node_count();

    for t in poisson_until(rate.closes_per_sec, horizon, &mut rng) {
        let edge = EdgeId(rng.random_range(0..edges) as u32);
        schedule.push(t, ChurnAction::ChannelClose(edge));
        schedule.push(
            t.saturating_add(rate.downtime),
            ChurnAction::ChannelReopen(edge),
        );
    }
    if nodes > 0 {
        for t in poisson_until(rate.node_downs_per_sec, horizon, &mut rng) {
            let node = NodeId(rng.random_range(0..nodes) as u32);
            schedule.push(t, ChurnAction::NodeDown(node));
            schedule.push(t.saturating_add(rate.downtime), ChurnAction::NodeUp(node));
        }
    }
    for t in poisson_until(rate.drains_per_sec, horizon, &mut rng) {
        let edge = EdgeId(rng.random_range(0..edges) as u32);
        schedule.push(
            t,
            ChurnAction::BalanceDrain {
                edge,
                amount: Amount::MAX,
            },
        );
    }
    schedule
}

/// Event times of one Poisson process with intensity `rate_per_sec`,
/// truncated at `horizon`. Empty (and RNG-untouched) for non-positive
/// rates.
fn poisson_until(rate_per_sec: f64, horizon: SimTime, rng: &mut StdRng) -> Vec<SimTime> {
    let mut times = Vec::new();
    if rate_per_sec <= 0.0 {
        return times;
    }
    // pcn-lint: allow(panic) — the rate was just checked finite-positive
    let gap_us = Exp::new(rate_per_sec / 1_000_000.0).expect("rate must be finite and positive");
    let mut t = 0u64;
    loop {
        // Round like `arrivals::poisson_times` so the realized
        // intensity is unbiased; saturate on absurd draws.
        let gap = gap_us.sample(rng).round();
        let gap = if gap >= u64::MAX as f64 {
            u64::MAX
        } else {
            gap as u64
        };
        t = t.saturating_add(gap);
        if SimTime::from_micros(t) > horizon {
            return times;
        }
        times.push(SimTime::from_micros(t));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcn_graph::generators;

    fn testbed() -> DiGraph {
        generators::watts_strogatz(30, 4, 0.2, 11)
    }

    #[test]
    fn zero_rate_yields_the_empty_schedule() {
        let g = testbed();
        let s = churn_schedule(&g, SimTime::from_secs(100), &ChurnRate::zero(), 7);
        assert!(s.is_empty(), "zero rate must not generate any event");
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let g = testbed();
        let rate = ChurnRate::closes(2.0, SimTime::from_secs(5));
        let a = churn_schedule(&g, SimTime::from_secs(60), &rate, 3);
        let b = churn_schedule(&g, SimTime::from_secs(60), &rate, 3);
        assert_eq!(a, b);
        let c = churn_schedule(&g, SimTime::from_secs(60), &rate, 4);
        assert_ne!(a, c, "different seeds must give different schedules");
    }

    #[test]
    fn closes_pair_with_reopens_after_downtime() {
        let g = testbed();
        let downtime = SimTime::from_secs(5);
        let rate = ChurnRate::closes(1.0, downtime);
        let s = churn_schedule(&g, SimTime::from_secs(120), &rate, 9);
        assert!(!s.is_empty());
        assert_eq!(s.len() % 2, 0, "every close has a matching reopen");
        for pair in s.events().chunks(2) {
            let (close, reopen) = (pair[0], pair[1]);
            match (close.action, reopen.action) {
                (ChurnAction::ChannelClose(a), ChurnAction::ChannelReopen(b)) => {
                    assert_eq!(a, b, "reopen targets the closed channel");
                }
                other => panic!("unexpected action pair {other:?}"),
            }
            assert_eq!(reopen.at, close.at.saturating_add(downtime));
            assert!(close.at <= SimTime::from_secs(120));
        }
    }

    #[test]
    fn realized_intensity_tracks_the_rate() {
        let g = testbed();
        let rate = ChurnRate::closes(4.0, SimTime::from_secs(1));
        let horizon = SimTime::from_secs(500);
        let s = churn_schedule(&g, horizon, &rate, 21);
        // Two events (close + reopen) per arrival of the close process.
        let arrivals = s.len() as f64 / 2.0;
        let expect = 4.0 * 500.0;
        assert!(
            (arrivals - expect).abs() / expect < 0.15,
            "{arrivals} arrivals vs ~{expect} expected"
        );
    }

    #[test]
    fn mixed_rates_generate_all_action_kinds() {
        let g = testbed();
        let rate = ChurnRate {
            closes_per_sec: 1.0,
            node_downs_per_sec: 1.0,
            drains_per_sec: 1.0,
            downtime: SimTime::from_secs(2),
        };
        let s = churn_schedule(&g, SimTime::from_secs(200), &rate, 5);
        let mut closes = 0;
        let mut downs = 0;
        let mut drains = 0;
        for ev in s.events() {
            match ev.action {
                ChurnAction::ChannelClose(_) => closes += 1,
                ChurnAction::NodeDown(_) => downs += 1,
                ChurnAction::BalanceDrain { amount, .. } => {
                    assert_eq!(amount, Amount::MAX, "drains deplete completely");
                    drains += 1;
                }
                _ => {}
            }
        }
        assert!(closes > 0 && downs > 0 && drains > 0);
    }
}
