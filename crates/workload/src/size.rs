//! Heavy-tailed payment-size models (Figure 3).
//!
//! Sizes are drawn from a piecewise log-linear CDF: anchor points
//! `(value, F(value))` connected by segments that are uniform in
//! `log(value)`. This matches how the paper presents the distributions
//! (CDFs on a log axis) and lets us pin the published statistics
//! exactly: the median and 90th percentile are anchors, and the anchor
//! masses above p90 are tuned so the top decile carries ≈94.5% (Ripple)
//! / ≈94.7% (Bitcoin) of total volume. The calibration tests in this
//! module verify all three properties by sampling.

use pcn_types::Amount;
use rand::prelude::*;
use rand::rngs::StdRng;

/// A payment-size distribution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SizeModel {
    /// Ripple-like sizes in USD (Figure 3a): median $4.8, p90 $1,740,
    /// top-10% ≈ 94.5% of volume.
    RippleUsd,
    /// Bitcoin-like sizes in satoshi (Figure 3b): median 1.293e6, p90
    /// 8.9e7, top-10% ≈ 94.7% of volume.
    BitcoinSatoshi,
}

/// CDF anchors for the Ripple USD model: `(value_in_usd, cumulative
/// probability)`. Between anchors the distribution is log-uniform.
const RIPPLE_ANCHORS: &[(f64, f64)] = &[
    (1e-6, 0.00),
    (1e-3, 0.02),
    (0.1, 0.15),
    (1.0, 0.33),
    (4.8, 0.50), // median ($4.8, §2.2)
    (50.0, 0.70),
    (300.0, 0.82),
    (1740.0, 0.90), // p90 ($1,740, §2.2)
    (10_000.0, 0.97),
    (50_000.0, 0.998),
    (1_000_000.0, 1.00),
];

/// CDF anchors for the Bitcoin satoshi model.
const BITCOIN_ANCHORS: &[(f64, f64)] = &[
    (1e2, 0.00),
    (1e4, 0.05),
    (1e5, 0.15),
    (1.293e6, 0.50), // median (1.293e6 satoshi, §2.2)
    (1e7, 0.75),
    (8.9e7, 0.90), // p90 (8.9e7 satoshi, §2.2)
    (5e8, 0.97),
    (5e9, 0.998),
    (2e10, 1.00),
];

impl SizeModel {
    fn anchors(self) -> &'static [(f64, f64)] {
        match self {
            SizeModel::RippleUsd => RIPPLE_ANCHORS,
            SizeModel::BitcoinSatoshi => BITCOIN_ANCHORS,
        }
    }

    /// Inverse-CDF lookup: the size at cumulative probability `q`.
    pub fn quantile(self, q: f64) -> f64 {
        let anchors = self.anchors();
        let q = q.clamp(0.0, 1.0);
        for w in anchors.windows(2) {
            let (v0, f0) = w[0];
            let (v1, f1) = w[1];
            if q <= f1 {
                if (f1 - f0).abs() < f64::EPSILON {
                    return v0;
                }
                let t = (q - f0) / (f1 - f0);
                // Log-linear interpolation.
                return (v0.ln() + t * (v1.ln() - v0.ln())).exp();
            }
        }
        anchors.last().unwrap().0 // pcn-lint: allow(panic) — the anchor tables are non-empty consts
    }

    /// Draws one size in native units (USD or satoshi).
    pub fn sample_units(self, rng: &mut StdRng) -> f64 {
        self.quantile(rng.random::<f64>())
    }

    /// Draws one size as an [`Amount`].
    pub fn sample(self, rng: &mut StdRng) -> Amount {
        Amount::from_units_f64(self.sample_units(rng))
    }

    /// Draws `n` sizes.
    pub fn sample_many(self, n: usize, seed: u64) -> Vec<Amount> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| self.sample(&mut rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sorted_samples(model: SizeModel, n: usize) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(42);
        let mut v: Vec<f64> = (0..n).map(|_| model.sample_units(&mut rng)).collect();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v
    }

    fn top_decile_volume_share(sorted: &[f64]) -> f64 {
        let total: f64 = sorted.iter().sum();
        let cut = sorted.len() * 9 / 10;
        let top: f64 = sorted[cut..].iter().sum();
        top / total
    }

    #[test]
    fn ripple_median_matches_paper() {
        let s = sorted_samples(SizeModel::RippleUsd, 40_000);
        let median = s[s.len() / 2];
        assert!(
            (median / 4.8 - 1.0).abs() < 0.15,
            "median {median} should be ≈ $4.8"
        );
    }

    #[test]
    fn ripple_p90_matches_paper() {
        let s = sorted_samples(SizeModel::RippleUsd, 40_000);
        let p90 = s[s.len() * 9 / 10];
        assert!(
            (p90 / 1740.0 - 1.0).abs() < 0.2,
            "p90 {p90} should be ≈ $1,740"
        );
    }

    #[test]
    fn ripple_top_decile_dominates_volume() {
        let s = sorted_samples(SizeModel::RippleUsd, 40_000);
        let share = top_decile_volume_share(&s);
        assert!(
            (0.90..=0.98).contains(&share),
            "top-10% share {share} should be ≈ 94.5%"
        );
    }

    #[test]
    fn bitcoin_median_matches_paper() {
        let s = sorted_samples(SizeModel::BitcoinSatoshi, 40_000);
        let median = s[s.len() / 2];
        assert!(
            (median / 1.293e6 - 1.0).abs() < 0.15,
            "median {median} should be ≈ 1.293e6 sat"
        );
    }

    #[test]
    fn bitcoin_p90_matches_paper() {
        let s = sorted_samples(SizeModel::BitcoinSatoshi, 40_000);
        let p90 = s[s.len() * 9 / 10];
        assert!(
            (p90 / 8.9e7 - 1.0).abs() < 0.2,
            "p90 {p90} should be ≈ 8.9e7 sat"
        );
    }

    #[test]
    fn bitcoin_top_decile_dominates_volume() {
        let s = sorted_samples(SizeModel::BitcoinSatoshi, 40_000);
        let share = top_decile_volume_share(&s);
        assert!(
            (0.90..=0.98).contains(&share),
            "top-10% share {share} should be ≈ 94.7%"
        );
    }

    #[test]
    fn quantile_is_monotone() {
        for model in [SizeModel::RippleUsd, SizeModel::BitcoinSatoshi] {
            let mut prev = 0.0;
            for i in 0..=100 {
                let q = i as f64 / 100.0;
                let v = model.quantile(q);
                assert!(v >= prev, "quantile not monotone at {q}");
                prev = v;
            }
        }
    }

    #[test]
    fn quantile_endpoints() {
        assert!((SizeModel::RippleUsd.quantile(0.0) / 1e-6 - 1.0).abs() < 1e-9);
        assert!((SizeModel::RippleUsd.quantile(1.0) / 1_000_000.0 - 1.0).abs() < 1e-9);
        assert!((SizeModel::RippleUsd.quantile(2.0) / 1_000_000.0 - 1.0).abs() < 1e-9);
        // clamped
    }

    #[test]
    fn median_anchor_is_exact() {
        assert!((SizeModel::RippleUsd.quantile(0.5) - 4.8).abs() < 1e-9);
        assert!((SizeModel::BitcoinSatoshi.quantile(0.5) - 1.293e6).abs() < 1e-3);
        assert!((SizeModel::RippleUsd.quantile(0.9) - 1740.0).abs() < 1e-9);
    }

    #[test]
    fn sampling_is_deterministic() {
        let a = SizeModel::RippleUsd.sample_many(100, 7);
        let b = SizeModel::RippleUsd.sample_many(100, 7);
        assert_eq!(a, b);
        let c = SizeModel::RippleUsd.sample_many(100, 8);
        assert_ne!(a, c);
    }
}
