//! Same-seed topology builders must be fully reproducible across
//! invocations — wiring *and* per-edge balances — since every figure
//! and differential test keys off a seeded topology.

use pcn_graph::io::to_edge_list;
use pcn_graph::EdgeId;
use pcn_sim::Network;
use pcn_workload::{lightning_topology, ripple_topology, testbed_topology};
use proptest::prelude::*;

/// Serializes wiring plus the balance of every directed edge, so two
/// equal strings mean the networks are observably identical.
fn fingerprint(net: &Network) -> String {
    let mut out = to_edge_list(net.graph());
    for e in 0..net.graph().edge_count() {
        let id = EdgeId(u32::try_from(e).expect("edge count fits u32"));
        out.push_str(&format!("bal {} {}\n", e, net.balance(id).micros()));
    }
    out
}

proptest! {
    #[test]
    fn testbed_topology_is_seed_deterministic(seed in 0u64..1_000_000) {
        let a = fingerprint(&testbed_topology(40, 1000, 1500, seed));
        let b = fingerprint(&testbed_topology(40, 1000, 1500, seed));
        prop_assert_eq!(a, b);
    }
}

#[test]
fn ripple_topology_is_seed_deterministic() {
    assert_eq!(
        fingerprint(&ripple_topology(7)),
        fingerprint(&ripple_topology(7))
    );
}

#[test]
fn lightning_topology_is_seed_deterministic() {
    assert_eq!(
        fingerprint(&lightning_topology(7)),
        fingerprint(&lightning_topology(7))
    );
}
