// Known-bad fixture: the panic shapes P2 rejects in non-test library
// code — hidden unwraps/expects and unconditional panic macros. Each
// must become error propagation, a `debug_assert!`, or carry an
// invariant-carrying `// pcn-lint: allow(panic) — <why>`.

pub fn pop_amount(stack: &mut Vec<u64>) -> u64 {
    stack.pop().unwrap()
}

pub fn lookup(table: &[(u32, u64)], key: u32) -> u64 {
    table.iter().find(|(k, _)| *k == key).map(|(_, v)| *v).expect("key present")
}

pub fn dispatch(op: u8) -> u64 {
    match op {
        0 => 1,
        _ => unreachable!("ops are validated upstream"),
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
