// Known-bad fixture: replays the pre-PR-7 DES hot loop, which cloned
// the whole channel graph once per run and the Metrics struct once per
// report. Both clones sit in functions reachable from the
// `// pcn-lint: hot` root, so P1 must flag each at its exact line.

// pcn-lint: hot — the event executor; everything it reaches is per-event
pub fn run(net: &mut DesNetwork) -> Metrics {
    step(net);
    report(net)
}

fn step(net: &mut DesNetwork) {
    let snapshot = net.graph().clone();
    net.apply(&snapshot);
}

fn report(net: &mut DesNetwork) -> Metrics {
    net.metrics().clone()
}
