// Known-bad fixture for D1: wall-clock reads inside a deterministic
// crate. Both the fully-qualified call and the import must be flagged.
use std::time::Instant;

pub fn route_latency() -> std::time::Duration {
    let start = std::time::Instant::now();
    do_route();
    start.elapsed()
}

fn do_route() {}
