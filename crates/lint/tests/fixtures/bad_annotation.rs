// Known-bad fixture: an `allow` with no written justification must not
// suppress the finding, and must itself be reported.
use std::collections::HashMap;

pub fn total_fees(fees: &HashMap<u32, u64>) -> u64 {
    // det-lint: allow(hash-order)
    fees.values().sum()
}
