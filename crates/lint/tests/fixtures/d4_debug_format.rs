// Known-bad fixture for D4: `{:?}` of a hash collection into a report
// string leaks iteration order into output.
use std::collections::HashMap;

pub fn balances_report(balances: &HashMap<u32, u64>) -> String {
    format!("final balances: {balances:?}")
}

pub fn print_seen(seen: &HashMap<u32, u64>) {
    println!("seen = {:?}", seen);
}
