// Known-bad fixture: replays the PR-3 `barabasi_albert` bug. The
// preferential-attachment list was grown by iterating a `HashSet`, so
// the generated topology differed per process and a figure test went
// flaky. det_lint must flag the `for … in channels` loop (D2).
use std::collections::HashSet;

pub fn preferential_ends(channels: &HashSet<(usize, usize)>) -> Vec<usize> {
    let mut ends: Vec<usize> = Vec::new();
    for &(a, b) in channels {
        ends.push(a);
        ends.push(b);
    }
    ends
}
