// Known-bad fixture: raw arithmetic on Amount-typed bindings. Balance
// math must go through the saturating/checked helpers so overflow can
// never panic or wrap mid-settlement. The u64 histogram arithmetic at
// the bottom is NOT Amount-tainted and must stay clean.

pub fn debit(bal: Amount, amount: Amount) -> Amount {
    bal - amount
}

pub fn fee_total(base: Amount, per_hop: Amount, hops: u64) -> Amount {
    base + per_hop * hops
}

pub fn histogram_width(count: u64, width: u64) -> u64 {
    count * width
}
