// Known-bad fixture: a `pcn-lint:` allow with no written justification
// suppresses nothing — the P2 finding survives AND the annotation
// itself is flagged as malformed.

pub fn head(stack: &[u64]) -> u64 {
    // pcn-lint: allow(panic)
    *stack.first().unwrap()
}
