// Known-good fixture: hash iteration that is either justified by an
// annotation or feeds an immediate sort. Must lint clean under the
// deterministic policy.
use std::collections::HashMap;

pub fn total_fees(fees: &HashMap<u32, u64>) -> u64 {
    // det-lint: allow(hash-order) — integer sum over values, order-insensitive
    fees.values().sum()
}

pub fn sorted_keys(fees: &HashMap<u32, u64>) -> Vec<u32> {
    let mut keys: Vec<u32> = fees.keys().copied().collect();
    keys.sort_unstable();
    keys
}
