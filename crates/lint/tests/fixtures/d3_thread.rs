// Known-bad fixture for D3: threads and sync primitives inside the DES
// crate. The engine is single-threaded by contract; all three tokens
// below must be flagged under the pcn-sim policy.
use std::sync::Mutex;

pub fn spawn_worker() {
    let shared = Mutex::new(0u64);
    std::thread::spawn(move || {
        if let Ok(mut v) = shared.lock() {
            *v += 1;
        }
    });
}
