// Known-good fixture: the same hot-path shapes as the bad P fixtures,
// each either using the checked helpers or carrying a justified
// annotation — lint finds nothing, audit reports only justified
// suppressions (one per P rule).

// pcn-lint: hot — per-event executor for this fixture
pub fn run(net: &mut Net) -> u64 {
    // pcn-lint: allow(hot-alloc) — one order Vec per run, not per event
    let order: Vec<usize> = (0..net.len()).collect();
    settle(net, &order)
}

fn settle(net: &mut Net, order: &[usize]) -> u64 {
    let first = head(order);
    let bal = net.balance(first);
    let spent = net.spent(first);
    bal.saturating_sub(spent).micros()
}

fn head(order: &[usize]) -> usize {
    // pcn-lint: allow(panic) — run() always passes a non-empty order
    order.first().copied().expect("order is non-empty")
}

fn rescale(unit: Amount, k: u64) -> u64 {
    // pcn-lint: allow(amount-math) — unit is ≤ 1000 micros by construction; the product fits u64
    let wide = unit * k;
    wide.micros()
}
