//! Fixture tests: every rule D1–D4 must reject its known-bad fixture
//! (including a replay of the PR-3 `barabasi_albert` HashSet bug),
//! annotated/sorted code must pass, and the real workspace must scan
//! clean.

use pcn_lint::rules::{lint_source, Rule};
use pcn_lint::Policy;
use std::path::Path;

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path:?}: {e}"))
}

fn det() -> Policy {
    Policy::deterministic(false)
}

#[test]
fn d1_wall_clock_fixture_is_rejected() {
    let f = lint_source("d1_wall_clock.rs", &fixture("d1_wall_clock.rs"), &det());
    assert!(!f.is_empty());
    assert!(f.iter().all(|f| f.rule == Rule::WallClock), "{f:?}");
    // Both the import and the call site are caught.
    assert!(f.len() >= 2, "{f:?}");
}

#[test]
fn d2_pr3_hashset_bug_is_rejected() {
    // The exact shape that shipped in PR 3: topologies differed per
    // process because the attachment list grew in HashSet order.
    let f = lint_source(
        "d2_hash_order_pr3.rs",
        &fixture("d2_hash_order_pr3.rs"),
        &det(),
    );
    assert_eq!(f.len(), 1, "{f:?}");
    assert_eq!(f[0].rule, Rule::HashOrder);
    assert_eq!(f[0].line, 9, "must point at the `for … in channels` loop");
}

#[test]
fn d3_thread_fixture_is_rejected_under_sim_policy_only() {
    let src = fixture("d3_thread.rs");
    let f = lint_source("d3_thread.rs", &src, &Policy::deterministic(true));
    assert!(
        f.len() >= 3,
        "Mutex import, Mutex::new, thread::spawn: {f:?}"
    );
    assert!(f.iter().all(|f| f.rule == Rule::Thread));
    // The same tokens are fine outside pcn-sim (flash-core may not use
    // them either, but D3 is a sim-only contract).
    assert!(lint_source("d3_thread.rs", &src, &det()).is_empty());
}

#[test]
fn d4_debug_format_fixture_is_rejected() {
    let f = lint_source("d4_debug_format.rs", &fixture("d4_debug_format.rs"), &det());
    assert_eq!(f.len(), 2, "one per format site: {f:?}");
    assert!(f.iter().all(|f| f.rule == Rule::DebugFormat));
}

#[test]
fn annotated_and_sorted_code_passes() {
    let f = lint_source("good_annotated.rs", &fixture("good_annotated.rs"), &det());
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn unjustified_allow_suppresses_nothing() {
    let f = lint_source("bad_annotation.rs", &fixture("bad_annotation.rs"), &det());
    assert!(f.iter().any(|f| f.rule == Rule::HashOrder), "{f:?}");
    assert!(f.iter().any(|f| f.rule == Rule::Annotation), "{f:?}");
}

#[test]
fn real_workspace_scans_clean() {
    // The acceptance bar for every PR: the tree this test runs in has
    // zero unjustified nondeterminism.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint has a workspace two levels up")
        .to_path_buf();
    assert!(root.join("Cargo.toml").is_file());
    let findings = pcn_lint::lint_workspace(&root).expect("workspace scan");
    assert!(
        findings.is_empty(),
        "det-lint findings in the workspace:\n{}",
        findings
            .iter()
            .map(|f| format!("{}:{}: [{}] {}", f.file, f.line, f.rule.name(), f.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
}
