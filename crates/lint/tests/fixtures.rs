//! Fixture tests: every rule D1–D4 and P1–P3 must reject its known-bad
//! fixture (including replays of the PR-3 `barabasi_albert` HashSet bug
//! and the pre-PR-7 graph/metrics clones in the DES hot loop),
//! annotated code must pass, and the real workspace must scan clean
//! with the P rules demonstrably live.

use pcn_lint::rules::{audit_source, lint_source, Rule};
use pcn_lint::Policy;
use std::path::Path;

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path:?}: {e}"))
}

fn det() -> Policy {
    Policy::deterministic(false)
}

#[test]
fn d1_wall_clock_fixture_is_rejected() {
    let f = lint_source("d1_wall_clock.rs", &fixture("d1_wall_clock.rs"), &det());
    assert!(!f.is_empty());
    assert!(f.iter().all(|f| f.rule == Rule::WallClock), "{f:?}");
    // Both the import and the call site are caught.
    assert!(f.len() >= 2, "{f:?}");
}

#[test]
fn d2_pr3_hashset_bug_is_rejected() {
    // The exact shape that shipped in PR 3: topologies differed per
    // process because the attachment list grew in HashSet order.
    let f = lint_source(
        "d2_hash_order_pr3.rs",
        &fixture("d2_hash_order_pr3.rs"),
        &det(),
    );
    assert_eq!(f.len(), 1, "{f:?}");
    assert_eq!(f[0].rule, Rule::HashOrder);
    assert_eq!(f[0].line, 9, "must point at the `for … in channels` loop");
}

#[test]
fn d3_thread_fixture_is_rejected_under_sim_policy_only() {
    let src = fixture("d3_thread.rs");
    let f = lint_source("d3_thread.rs", &src, &Policy::deterministic(true));
    assert!(
        f.len() >= 3,
        "Mutex import, Mutex::new, thread::spawn: {f:?}"
    );
    assert!(f.iter().all(|f| f.rule == Rule::Thread));
    // The same tokens are fine outside pcn-sim (flash-core may not use
    // them either, but D3 is a sim-only contract).
    assert!(lint_source("d3_thread.rs", &src, &det()).is_empty());
}

#[test]
fn d4_debug_format_fixture_is_rejected() {
    let f = lint_source("d4_debug_format.rs", &fixture("d4_debug_format.rs"), &det());
    assert_eq!(f.len(), 2, "one per format site: {f:?}");
    assert!(f.iter().all(|f| f.rule == Rule::DebugFormat));
}

#[test]
fn annotated_and_sorted_code_passes() {
    let f = lint_source("good_annotated.rs", &fixture("good_annotated.rs"), &det());
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn unjustified_allow_suppresses_nothing() {
    let f = lint_source("bad_annotation.rs", &fixture("bad_annotation.rs"), &det());
    assert!(f.iter().any(|f| f.rule == Rule::HashOrder), "{f:?}");
    assert!(f.iter().any(|f| f.rule == Rule::Annotation), "{f:?}");
}

#[test]
fn p1_pre_pr7_graph_and_metrics_clones_are_rejected() {
    // The exact churn this rule was built to catch: the DES hot loop
    // used to `graph().clone()` per run and `metrics().clone()` per
    // report. Both sit two calls below the hot root in the fixture.
    let f = lint_source(
        "p1_hot_graph_clone.rs",
        &fixture("p1_hot_graph_clone.rs"),
        &det(),
    );
    assert_eq!(f.len(), 2, "{f:?}");
    assert!(f.iter().all(|f| f.rule == Rule::HotAlloc));
    assert_eq!(f[0].line, 13, "must point at `net.graph().clone()`");
    assert!(f[0].message.contains("step"), "{}", f[0].message);
    assert_eq!(f[1].line, 18, "must point at `net.metrics().clone()`");
    assert!(f[1].message.contains("report"), "{}", f[1].message);
}

#[test]
fn p2_panic_paths_fixture_is_rejected_outside_tests() {
    let f = lint_source("p2_panic_paths.rs", &fixture("p2_panic_paths.rs"), &det());
    assert_eq!(f.len(), 3, "unwrap, expect, unreachable!: {f:?}");
    assert!(f.iter().all(|f| f.rule == Rule::NoPanic));
    // The unwrap inside `#[cfg(test)]` must NOT be among them.
    assert!(f.iter().all(|f| f.line < 20), "{f:?}");
}

#[test]
fn p3_amount_math_fixture_is_rejected() {
    let f = lint_source("p3_amount_math.rs", &fixture("p3_amount_math.rs"), &det());
    assert_eq!(f.len(), 2, "{f:?}");
    assert!(f.iter().all(|f| f.rule == Rule::AmountMath));
    assert_eq!(f[0].line, 7, "must point at `bal - amount`");
    assert_eq!(f[1].line, 11, "must point at the fee expression");
}

#[test]
fn p_good_annotated_passes_lint_and_audits_as_justified() {
    let src = fixture("p_good_annotated.rs");
    let f = lint_source("p_good_annotated.rs", &src, &det());
    assert!(f.is_empty(), "{f:?}");
    // The audit keeps exactly one justified suppression per P rule.
    let audit = audit_source("p_good_annotated.rs", &src, &det());
    assert_eq!(audit.len(), 3, "{audit:?}");
    for rule in [Rule::HotAlloc, Rule::NoPanic, Rule::AmountMath] {
        assert!(
            audit
                .iter()
                .any(|f| f.rule == rule && f.justification.is_some()),
            "missing justified {} suppression: {audit:?}",
            rule.name()
        );
    }
}

#[test]
fn p_unjustified_allow_suppresses_nothing() {
    let f = lint_source(
        "p_bad_annotation.rs",
        &fixture("p_bad_annotation.rs"),
        &det(),
    );
    assert!(f.iter().any(|f| f.rule == Rule::NoPanic), "{f:?}");
    assert!(f.iter().any(|f| f.rule == Rule::Annotation), "{f:?}");
}

#[test]
fn real_workspace_scans_clean() {
    // The acceptance bar for every PR: the tree this test runs in has
    // zero unjustified nondeterminism.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint has a workspace two levels up")
        .to_path_buf();
    assert!(root.join("Cargo.toml").is_file());
    let findings = pcn_lint::lint_workspace(&root).expect("workspace scan");
    assert!(
        findings.is_empty(),
        "lint-audit findings in the workspace:\n{}",
        findings
            .iter()
            .map(|f| format!("{}:{}: [{}] {}", f.file, f.line, f.rule.name(), f.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
    // …and the hot-path rules are demonstrably *live* on this tree, not
    // vacuously clean: the audit must report justified P1/P2
    // suppressions (the DES hot loop carries per-run allow(hot-alloc)s;
    // invariant-carrying allow(panic)s pepper the graph kernels). P3
    // has no justified sites — every raw Amount op was converted to the
    // saturating helpers — so for it "clean" alone is the contract,
    // exercised by the known-bad fixture above.
    let audit = pcn_lint::audit_workspace(&root).expect("workspace audit");
    for rule in [Rule::HotAlloc, Rule::NoPanic] {
        assert!(
            audit
                .iter()
                .any(|f| f.rule == rule && f.justification.is_some()),
            "no justified {} suppression anywhere in the workspace — is the rule inert?",
            rule.name()
        );
    }
}
