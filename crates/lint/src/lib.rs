//! # pcn-lint
//!
//! The workspace determinism auditor: a static-analysis pass that
//! catches hash-order, wall-clock, and stray-thread nondeterminism
//! before the differential tests do.
//!
//! ## Why this exists
//!
//! PR 3 shipped exactly the bug this tool exists to catch:
//! `barabasi_albert` iterated a `HashSet` while growing the
//! preferential-attachment list, so generated topologies differed *per
//! process* and a figure test went flaky. It was found by luck. With
//! ~20 hash-collection sites in the deterministic crates and a
//! parallel DES on the roadmap, the invariants behind every
//! differential test (same-seed bit-identical `DesReport`s,
//! zero-latency DES ≡ instantaneous simulator, svc=0 ≡ committed
//! bench) need enforcement on every PR — the same way `bench_gate`
//! enforces bench shapes.
//!
//! ## What it does
//!
//! [`lint_workspace`] lexes every `.rs` file (a hand-rolled scanner in
//! [`lexer`]; the build environment has no registry access, so no
//! syn/proc-macro), builds a conservative per-crate call graph
//! ([`callgraph`]), and applies the D1–D4 determinism rules and the
//! P1–P3 hot-path rules in [`rules`] with a per-crate [`Policy`]:
//!
//! | crates | D1 wall-clock | D2 hash-order | D3 thread | D4 debug-format | P1–P3 |
//! |---|---|---|---|---|---|
//! | `pcn-types`, `pcn-graph`, `pcn-lp`, `flash-core`, `pcn-workload` | forbid | ✓ | – | ✓ | ✓ (src only) |
//! | `pcn-sim` | forbid | ✓ | ✓ | ✓ | ✓ (src only) |
//! | `pcn-proto`, `pcn-scenario`, `pcn-experiments`, `flash-bench`, umbrella | helper only | – | – | – | – |
//! | `shims/`, fixtures | skipped | | | | |
//!
//! "src only": the deterministic crates' integration tests, benches,
//! and examples are exempt from P1–P3 (assertions and setup
//! allocations are the point there), as is `#[cfg(test)]` code inside
//! src files. `crates/types/src/amount.rs` is exempt from P3 — it
//! *defines* the raw operators the saturating/checked helpers wrap.
//!
//! "Helper only" means wall time flows through exactly one entry
//! point — `pcn_proto::wall_now()` (defined in the allowlisted
//! `crates/proto/src/wall.rs`) — and must land in `wall_*`-prefixed
//! bindings.
//!
//! Violations that are provably exempt carry a written justification:
//! `// det-lint: allow(hash-order) — <why>` for D rules,
//! `// pcn-lint: allow(hot-alloc|panic|amount-math) — <why>` for P
//! rules. [`audit_workspace`] keeps the justified findings (for the
//! `--json` report); [`lint_workspace`] returns violations only.
//!
//! Run it locally with `cargo run -p pcn-lint --bin det_lint -- --workspace`;
//! CI runs the same command and surfaces findings as inline
//! `::error file=…,line=…` PR annotations plus a JSONL artifact.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Library code reports through returned values and serialized artifacts,
// never ad-hoc stdout; the `det_lint` binary prints, the library does not.
#![deny(clippy::dbg_macro, clippy::print_stdout)]

pub mod callgraph;
pub mod lexer;
pub mod rules;

pub use rules::{Finding, Policy, Rule, WallPolicy};

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// The deterministic crates: same-seed runs must be bit-identical.
const DETERMINISTIC_CRATES: &[&str] = &[
    "crates/types",
    "crates/graph",
    "crates/lp",
    "crates/sim",
    "crates/core",
    "crates/workload",
];

/// The one file allowed to touch `std::time::Instant` directly.
pub const WALL_HELPER_FILE: &str = "crates/proto/src/wall.rs";

/// Returns the policy for a workspace-relative path, or `None` when
/// the file is out of scope (shims, vendored code, lint fixtures,
/// build output).
pub fn policy_for(rel: &str) -> Option<Policy> {
    let rel = rel.replace('\\', "/");
    if !rel.ends_with(".rs") {
        return None;
    }
    if rel.starts_with("shims/") || rel.starts_with("target/") || rel.contains("/target/") {
        return None;
    }
    // Known-bad lint fixtures are linted by the fixture tests, not the
    // workspace scan.
    if rel.contains("tests/fixtures/") {
        return None;
    }
    if rel == WALL_HELPER_FILE {
        return Some(Policy {
            wall: WallPolicy::Free,
            hash_order: false,
            threads: false,
            debug_format: false,
            hot_alloc: false,
            panics: false,
            amount_math: false,
        });
    }
    for krate in DETERMINISTIC_CRATES {
        if rel.starts_with(&format!("{krate}/")) {
            let mut p = Policy::deterministic(*krate == "crates/sim");
            // P1–P3 audit library code only: integration tests,
            // benches, and examples assert and allocate freely and are
            // never on the engine's hot path.
            if rel.contains("/tests/") || rel.contains("/benches/") || rel.contains("/examples/") {
                p.hot_alloc = false;
                p.panics = false;
                p.amount_math = false;
            }
            // The Amount implementation defines the raw operators that
            // the saturating/checked helpers wrap.
            if rel == "crates/types/src/amount.rs" {
                p.amount_math = false;
            }
            return Some(p);
        }
    }
    // Everything else — proto, scenario, experiments, bench, the lint
    // itself, the umbrella crate's src/tests/examples — may read wall
    // time through the helper only.
    Some(Policy::wall_allowed())
}

/// The crate-grouping key for hash-name collection: identifiers are
/// tainted crate-wide (a field declared in one file is iterated in
/// another), but not across crates (different namespaces).
fn crate_key(rel: &str) -> String {
    let parts: Vec<&str> = rel.split('/').collect();
    if parts.len() >= 2 && (parts[0] == "crates" || parts[0] == "shims") {
        format!("{}/{}", parts[0], parts[1])
    } else {
        "workspace-root".to_string()
    }
}

/// Recursively collects `.rs` files under `dir`, skipping `.git`,
/// `target`, and `shims`.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if matches!(name, ".git" | "target" | "shims" | "node_modules") {
                continue;
            }
            collect_rs_files(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// Audits every in-scope source file under the workspace `root`,
/// keeping justified findings (`justification: Some(…)`) alongside
/// violations. Findings come back sorted by (file, line) —
/// deterministically, as one would hope for a determinism linter.
pub fn audit_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    collect_rs_files(root, &mut files);

    // Pass 1: lex everything in scope, group by crate.
    struct FileEntry {
        rel: String,
        policy: Policy,
        lexed: lexer::Lexed,
    }
    let mut by_crate: BTreeMap<String, Vec<FileEntry>> = BTreeMap::new();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let Some(policy) = policy_for(&rel) else {
            continue;
        };
        let src = std::fs::read_to_string(&path)?;
        by_crate
            .entry(crate_key(&rel))
            .or_default()
            .push(FileEntry {
                rel,
                policy,
                lexed: lexer::lex(&src),
            });
    }

    // Pass 2: per-crate taint sets and call graph, then audit each
    // file. Hot reachability is intra-crate by construction (see the
    // `callgraph` module docs on cross-crate false negatives).
    let mut findings = Vec::new();
    for entries in by_crate.values() {
        let streams: Vec<&lexer::Lexed> = entries.iter().map(|e| &e.lexed).collect();
        let hash_names = rules::collect_hash_names(&streams);
        let amount_names = rules::collect_amount_names(&streams);
        let analyses = callgraph::analyze(&streams);
        for (e, analysis) in entries.iter().zip(&analyses) {
            let ctx = rules::CrateCtx {
                hash_names: &hash_names,
                amount_names: &amount_names,
                analysis,
            };
            findings.extend(rules::audit_tokens(&e.rel, &e.lexed, &e.policy, &ctx));
        }
    }
    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(findings)
}

/// Lints every in-scope source file under the workspace `root`:
/// [`audit_workspace`] filtered down to the actual violations.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    Ok(audit_workspace(root)?
        .into_iter()
        .filter(|f| f.justification.is_none())
        .collect())
}

/// Serializes audit findings as JSONL (one object per line:
/// `file`, `line`, `rule`, `justified`, `justification`, `message`) —
/// the machine-readable artifact CI uploads next to the `::error`
/// annotations. Hand-rolled emission: the lint crate stays
/// zero-dependency.
pub fn jsonl(findings: &[Finding]) -> String {
    fn esc(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }
    let mut out = String::new();
    for f in findings {
        let justification = match &f.justification {
            Some(j) => format!("\"{}\"", esc(j)),
            None => "null".to_string(),
        };
        out.push_str(&format!(
            "{{\"file\":\"{}\",\"line\":{},\"rule\":\"{}\",\"justified\":{},\
             \"justification\":{},\"message\":\"{}\"}}\n",
            esc(&f.file),
            f.line,
            f.rule.name(),
            f.justification.is_some(),
            justification,
            esc(&f.message),
        ));
    }
    out
}

/// Formats findings as GitHub Actions workflow commands, one per line
/// (`::error file=…,line=…::…`), so they render as inline PR
/// annotations.
pub fn github_annotations(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        // Workflow-command values must escape newlines and percents.
        let msg = f
            .message
            .replace('%', "%25")
            .replace('\n', "%0A")
            .replace('\r', "");
        out.push_str(&format!(
            "::error file={},line={},title=det-lint {}::{}\n",
            f.file,
            f.line,
            f.rule.name(),
            msg
        ));
    }
    out
}

/// Locates the workspace root: walks up from `start` to the first
/// directory whose `Cargo.toml` contains a `[workspace]` table.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policies_match_the_crate_map() {
        assert!(policy_for("crates/sim/src/des/engine.rs").unwrap().threads);
        assert!(
            policy_for("crates/sim/src/des/engine.rs")
                .unwrap()
                .hot_alloc
        );
        assert!(policy_for("crates/sim/src/des/engine.rs").unwrap().panics);
        // Integration tests / benches of deterministic crates keep the
        // D rules but drop the P rules.
        let t = policy_for("crates/sim/tests/des.rs").unwrap();
        assert!(t.hash_order && !t.panics && !t.hot_alloc && !t.amount_math);
        let b = policy_for("crates/graph/benches/maxflow.rs").unwrap();
        assert!(!b.panics && !b.hot_alloc);
        // The Amount implementation is exempt from P3 only.
        let a = policy_for("crates/types/src/amount.rs").unwrap();
        assert!(a.panics && a.hot_alloc && !a.amount_math);
        assert!(!policy_for("crates/proto/src/cluster.rs").unwrap().panics);
        assert!(
            !policy_for("crates/graph/src/generators.rs")
                .unwrap()
                .threads
        );
        assert!(
            policy_for("crates/graph/src/generators.rs")
                .unwrap()
                .hash_order
        );
        assert_eq!(
            policy_for("crates/proto/src/cluster.rs").unwrap().wall,
            WallPolicy::HelperOnly
        );
        // The scenario crate measures wall time on purpose (delays,
        // events/sec) — deliberately helper-only, not deterministic.
        let s = policy_for("crates/scenario/src/builder.rs").unwrap();
        assert_eq!(s.wall, WallPolicy::HelperOnly);
        assert!(!s.hash_order && !s.panics);
        assert_eq!(policy_for(WALL_HELPER_FILE).unwrap().wall, WallPolicy::Free);
        assert!(policy_for("shims/rand/src/lib.rs").is_none());
        assert!(policy_for("crates/lint/tests/fixtures/d1_wall_clock.rs").is_none());
        assert!(policy_for("README.md").is_none());
    }

    #[test]
    fn crate_keys_group_by_crate() {
        assert_eq!(crate_key("crates/sim/src/lib.rs"), "crates/sim");
        assert_eq!(crate_key("crates/sim/tests/des.rs"), "crates/sim");
        assert_eq!(crate_key("tests/atomicity.rs"), "workspace-root");
        assert_eq!(crate_key("src/lib.rs"), "workspace-root");
    }

    #[test]
    fn github_annotations_escape_and_point_at_lines() {
        let f = vec![Finding {
            rule: Rule::HashOrder,
            file: "crates/sim/src/x.rs".into(),
            line: 7,
            message: "100% bad\nnewline".into(),
            justification: None,
        }];
        let s = github_annotations(&f);
        assert_eq!(
            s,
            "::error file=crates/sim/src/x.rs,line=7,title=det-lint hash-order::100%25 bad%0Anewline\n"
        );
    }

    #[test]
    fn jsonl_escapes_and_reports_justification_status() {
        let f = vec![
            Finding {
                rule: Rule::HotAlloc,
                file: "crates/sim/src/x.rs".into(),
                line: 3,
                message: "a \"quoted\"\tthing".into(),
                justification: None,
            },
            Finding {
                rule: Rule::NoPanic,
                file: "crates/graph/src/y.rs".into(),
                line: 9,
                message: "m".into(),
                justification: Some("invariant: tables sized from the graph".into()),
            },
        ];
        let s = jsonl(&f);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"file\":\"crates/sim/src/x.rs\",\"line\":3,\"rule\":\"hot-alloc\",\
             \"justified\":false,\"justification\":null,\
             \"message\":\"a \\\"quoted\\\"\\tthing\"}"
        );
        assert!(lines[1].contains("\"justified\":true"));
        assert!(lines[1].contains("\"rule\":\"panic\""));
    }
}
