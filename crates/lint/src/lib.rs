//! # pcn-lint
//!
//! The workspace determinism auditor: a static-analysis pass that
//! catches hash-order, wall-clock, and stray-thread nondeterminism
//! before the differential tests do.
//!
//! ## Why this exists
//!
//! PR 3 shipped exactly the bug this tool exists to catch:
//! `barabasi_albert` iterated a `HashSet` while growing the
//! preferential-attachment list, so generated topologies differed *per
//! process* and a figure test went flaky. It was found by luck. With
//! ~20 hash-collection sites in the deterministic crates and a
//! parallel DES on the roadmap, the invariants behind every
//! differential test (same-seed bit-identical `DesReport`s,
//! zero-latency DES ≡ instantaneous simulator, svc=0 ≡ committed
//! bench) need enforcement on every PR — the same way `bench_gate`
//! enforces bench shapes.
//!
//! ## What it does
//!
//! [`lint_workspace`] lexes every `.rs` file (a hand-rolled scanner in
//! [`lexer`]; the build environment has no registry access, so no
//! syn/proc-macro) and applies the D1–D4 rules in [`rules`] with a
//! per-crate [`Policy`]:
//!
//! | crates | D1 wall-clock | D2 hash-order | D3 thread | D4 debug-format |
//! |---|---|---|---|---|
//! | `pcn-types`, `pcn-graph`, `pcn-lp`, `flash-core`, `pcn-workload` | forbid | ✓ | – | ✓ |
//! | `pcn-sim` | forbid | ✓ | ✓ | ✓ |
//! | `pcn-proto`, `pcn-experiments`, `flash-bench`, umbrella | helper only | – | – | – |
//! | `shims/`, fixtures | skipped | | | |
//!
//! "Helper only" means wall time flows through exactly one entry
//! point — `pcn_proto::wall_now()` (defined in the allowlisted
//! `crates/proto/src/wall.rs`) — and must land in `wall_*`-prefixed
//! bindings.
//!
//! Violations that are provably order-insensitive carry a written
//! justification: `// det-lint: allow(hash-order) — <why>`.
//!
//! Run it locally with `cargo run -p pcn-lint --bin det_lint -- --workspace`;
//! CI runs the same command and surfaces findings as inline
//! `::error file=…,line=…` PR annotations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Library code reports through returned values and serialized artifacts,
// never ad-hoc stdout; the `det_lint` binary prints, the library does not.
#![deny(clippy::dbg_macro, clippy::print_stdout)]

pub mod lexer;
pub mod rules;

pub use rules::{Finding, Policy, Rule, WallPolicy};

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// The deterministic crates: same-seed runs must be bit-identical.
const DETERMINISTIC_CRATES: &[&str] = &[
    "crates/types",
    "crates/graph",
    "crates/lp",
    "crates/sim",
    "crates/core",
    "crates/workload",
];

/// The one file allowed to touch `std::time::Instant` directly.
pub const WALL_HELPER_FILE: &str = "crates/proto/src/wall.rs";

/// Returns the policy for a workspace-relative path, or `None` when
/// the file is out of scope (shims, vendored code, lint fixtures,
/// build output).
pub fn policy_for(rel: &str) -> Option<Policy> {
    let rel = rel.replace('\\', "/");
    if !rel.ends_with(".rs") {
        return None;
    }
    if rel.starts_with("shims/") || rel.starts_with("target/") || rel.contains("/target/") {
        return None;
    }
    // Known-bad lint fixtures are linted by the fixture tests, not the
    // workspace scan.
    if rel.contains("tests/fixtures/") {
        return None;
    }
    if rel == WALL_HELPER_FILE {
        return Some(Policy {
            wall: WallPolicy::Free,
            hash_order: false,
            threads: false,
            debug_format: false,
        });
    }
    for krate in DETERMINISTIC_CRATES {
        if rel.starts_with(&format!("{krate}/")) {
            return Some(Policy::deterministic(*krate == "crates/sim"));
        }
    }
    // Everything else — proto, experiments, bench, the lint itself,
    // the umbrella crate's src/tests/examples — may read wall time
    // through the helper only.
    Some(Policy::wall_allowed())
}

/// The crate-grouping key for hash-name collection: identifiers are
/// tainted crate-wide (a field declared in one file is iterated in
/// another), but not across crates (different namespaces).
fn crate_key(rel: &str) -> String {
    let parts: Vec<&str> = rel.split('/').collect();
    if parts.len() >= 2 && (parts[0] == "crates" || parts[0] == "shims") {
        format!("{}/{}", parts[0], parts[1])
    } else {
        "workspace-root".to_string()
    }
}

/// Recursively collects `.rs` files under `dir`, skipping `.git`,
/// `target`, and `shims`.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if matches!(name, ".git" | "target" | "shims" | "node_modules") {
                continue;
            }
            collect_rs_files(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// Lints every in-scope source file under the workspace `root`.
/// Findings come back sorted by (file, line) — deterministically, as
/// one would hope for a determinism linter.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    collect_rs_files(root, &mut files);

    // Pass 1: lex everything in scope, group by crate.
    struct FileEntry {
        rel: String,
        policy: Policy,
        lexed: lexer::Lexed,
    }
    let mut by_crate: BTreeMap<String, Vec<FileEntry>> = BTreeMap::new();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let Some(policy) = policy_for(&rel) else {
            continue;
        };
        let src = std::fs::read_to_string(&path)?;
        by_crate
            .entry(crate_key(&rel))
            .or_default()
            .push(FileEntry {
                rel,
                policy,
                lexed: lexer::lex(&src),
            });
    }

    // Pass 2: per-crate hash-name sets, then lint each file.
    let mut findings = Vec::new();
    for entries in by_crate.values() {
        let streams: Vec<&lexer::Lexed> = entries.iter().map(|e| &e.lexed).collect();
        let names = rules::collect_hash_names(&streams);
        for e in entries {
            findings.extend(rules::lint_tokens(&e.rel, &e.lexed, &e.policy, &names));
        }
    }
    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(findings)
}

/// Formats findings as GitHub Actions workflow commands, one per line
/// (`::error file=…,line=…::…`), so they render as inline PR
/// annotations.
pub fn github_annotations(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        // Workflow-command values must escape newlines and percents.
        let msg = f
            .message
            .replace('%', "%25")
            .replace('\n', "%0A")
            .replace('\r', "");
        out.push_str(&format!(
            "::error file={},line={},title=det-lint {}::{}\n",
            f.file,
            f.line,
            f.rule.name(),
            msg
        ));
    }
    out
}

/// Locates the workspace root: walks up from `start` to the first
/// directory whose `Cargo.toml` contains a `[workspace]` table.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policies_match_the_crate_map() {
        assert!(policy_for("crates/sim/src/des/engine.rs").unwrap().threads);
        assert!(
            !policy_for("crates/graph/src/generators.rs")
                .unwrap()
                .threads
        );
        assert!(
            policy_for("crates/graph/src/generators.rs")
                .unwrap()
                .hash_order
        );
        assert_eq!(
            policy_for("crates/proto/src/cluster.rs").unwrap().wall,
            WallPolicy::HelperOnly
        );
        assert_eq!(policy_for(WALL_HELPER_FILE).unwrap().wall, WallPolicy::Free);
        assert!(policy_for("shims/rand/src/lib.rs").is_none());
        assert!(policy_for("crates/lint/tests/fixtures/d1_wall_clock.rs").is_none());
        assert!(policy_for("README.md").is_none());
    }

    #[test]
    fn crate_keys_group_by_crate() {
        assert_eq!(crate_key("crates/sim/src/lib.rs"), "crates/sim");
        assert_eq!(crate_key("crates/sim/tests/des.rs"), "crates/sim");
        assert_eq!(crate_key("tests/atomicity.rs"), "workspace-root");
        assert_eq!(crate_key("src/lib.rs"), "workspace-root");
    }

    #[test]
    fn github_annotations_escape_and_point_at_lines() {
        let f = vec![Finding {
            rule: Rule::HashOrder,
            file: "crates/sim/src/x.rs".into(),
            line: 7,
            message: "100% bad\nnewline".into(),
        }];
        let s = github_annotations(&f);
        assert_eq!(
            s,
            "::error file=crates/sim/src/x.rs,line=7,title=det-lint hash-order::100%25 bad%0Anewline\n"
        );
    }
}
