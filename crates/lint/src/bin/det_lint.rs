//! `det_lint` — run the workspace determinism audit from the CLI.
//!
//! ```text
//! det_lint --workspace            # lint the whole workspace (CI entry point)
//! det_lint path/to/file.rs …     # lint specific files
//! det_lint --workspace --github  # also emit ::error annotations (auto on CI)
//! ```
//!
//! Exit code 0 = clean, 1 = findings, 2 = usage/IO error.

use pcn_lint::{find_workspace_root, github_annotations, lint_workspace, policy_for, rules};
use std::path::Path;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut workspace = false;
    let mut github = std::env::var_os("GITHUB_ACTIONS").is_some();
    let mut files: Vec<String> = Vec::new();
    for a in &args {
        match a.as_str() {
            "--workspace" => workspace = true,
            "--github" => github = true,
            "--help" | "-h" => {
                eprintln!("usage: det_lint [--workspace] [--github] [FILE.rs …]");
                return;
            }
            other if other.starts_with('-') => {
                eprintln!("det_lint: unknown flag `{other}`");
                std::process::exit(2);
            }
            file => files.push(file.to_string()),
        }
    }
    if !workspace && files.is_empty() {
        workspace = true; // the common case: audit everything
    }

    let cwd = std::env::current_dir().unwrap_or_else(|_| Path::new(".").to_path_buf());
    let Some(root) = find_workspace_root(&cwd) else {
        eprintln!("det_lint: no workspace root ([workspace] in Cargo.toml) above {cwd:?}");
        std::process::exit(2);
    };

    let mut findings = Vec::new();
    if workspace {
        match lint_workspace(&root) {
            Ok(f) => findings.extend(f),
            Err(e) => {
                eprintln!("det_lint: {e}");
                std::process::exit(2);
            }
        }
    }
    for file in &files {
        let rel = Path::new(file)
            .strip_prefix(&root)
            .map(|p| p.to_string_lossy().into_owned())
            .unwrap_or_else(|_| file.clone());
        let Some(policy) = policy_for(&rel) else {
            eprintln!("det_lint: {rel}: out of scope (shim/fixture/non-Rust), skipping");
            continue;
        };
        match std::fs::read_to_string(file) {
            Ok(src) => findings.extend(rules::lint_source(&rel, &src, &policy)),
            Err(e) => {
                eprintln!("det_lint: {file}: {e}");
                std::process::exit(2);
            }
        }
    }

    for f in &findings {
        println!(
            "{}:{}: error[{}] {}",
            f.file,
            f.line,
            f.rule.name(),
            f.message
        );
    }
    if github && !findings.is_empty() {
        print!("{}", github_annotations(&findings));
    }
    if findings.is_empty() {
        let scope = if workspace { "workspace" } else { "files" };
        println!(
            "det-lint: {scope} clean (rules D1 wall-clock, D2 hash-order, D3 thread, D4 debug-format)"
        );
    } else {
        println!("det-lint: {} finding(s)", findings.len());
        std::process::exit(1);
    }
}
