//! `det_lint` — run the workspace determinism + hot-path audit from
//! the CLI.
//!
//! ```text
//! det_lint --workspace            # lint the whole workspace (CI entry point)
//! det_lint path/to/file.rs …     # lint specific files
//! det_lint --workspace --github  # also emit ::error annotations (auto on CI)
//! det_lint --workspace --json    # JSONL audit (incl. justified sites) on stdout
//! ```
//!
//! With `--json`, stdout carries one JSON object per finding —
//! including justified (annotated) sites, with their justification
//! text — and the human-readable lines move to stderr, so
//! `det_lint --json > audit.jsonl` produces a clean artifact.
//!
//! Exit code 0 = clean, 1 = unjustified findings, 2 = usage/IO error.

use pcn_lint::{find_workspace_root, github_annotations, policy_for, rules, Finding};
use std::path::Path;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut workspace = false;
    let mut github = std::env::var_os("GITHUB_ACTIONS").is_some();
    let mut json = false;
    let mut files: Vec<String> = Vec::new();
    for a in &args {
        match a.as_str() {
            "--workspace" => workspace = true,
            "--github" => github = true,
            "--json" => json = true,
            "--help" | "-h" => {
                eprintln!("usage: det_lint [--workspace] [--github] [--json] [FILE.rs …]");
                return;
            }
            other if other.starts_with('-') => {
                eprintln!("det_lint: unknown flag `{other}`");
                std::process::exit(2);
            }
            file => files.push(file.to_string()),
        }
    }
    if !workspace && files.is_empty() {
        workspace = true; // the common case: audit everything
    }

    let cwd = std::env::current_dir().unwrap_or_else(|_| Path::new(".").to_path_buf());
    let Some(root) = find_workspace_root(&cwd) else {
        eprintln!("det_lint: no workspace root ([workspace] in Cargo.toml) above {cwd:?}");
        std::process::exit(2);
    };

    // The audit keeps justified findings; violations are the subset
    // without a justification.
    let mut audit: Vec<Finding> = Vec::new();
    if workspace {
        match pcn_lint::audit_workspace(&root) {
            Ok(f) => audit.extend(f),
            Err(e) => {
                eprintln!("det_lint: {e}");
                std::process::exit(2);
            }
        }
    }
    for file in &files {
        let rel = Path::new(file)
            .strip_prefix(&root)
            .map(|p| p.to_string_lossy().into_owned())
            .unwrap_or_else(|_| file.clone());
        let Some(policy) = policy_for(&rel) else {
            eprintln!("det_lint: {rel}: out of scope (shim/fixture/non-Rust), skipping");
            continue;
        };
        match std::fs::read_to_string(file) {
            Ok(src) => audit.extend(rules::audit_source(&rel, &src, &policy)),
            Err(e) => {
                eprintln!("det_lint: {file}: {e}");
                std::process::exit(2);
            }
        }
    }
    let findings: Vec<Finding> = audit
        .iter()
        .filter(|f| f.justification.is_none())
        .cloned()
        .collect();

    if json {
        print!("{}", pcn_lint::jsonl(&audit));
    }
    for f in &findings {
        let line = format!(
            "{}:{}: error[{}] {}",
            f.file,
            f.line,
            f.rule.name(),
            f.message
        );
        if json {
            eprintln!("{line}");
        } else {
            println!("{line}");
        }
    }
    if github && !findings.is_empty() && !json {
        print!("{}", github_annotations(&findings));
    }
    let scope = if workspace { "workspace" } else { "files" };
    let summary = if findings.is_empty() {
        format!(
            "lint-audit: {scope} clean (rules D1 wall-clock, D2 hash-order, D3 thread, \
             D4 debug-format, P1 hot-alloc, P2 panic, P3 amount-math; \
             {} justified suppression(s))",
            audit.len() - findings.len()
        )
    } else {
        format!("lint-audit: {} finding(s)", findings.len())
    };
    if json {
        eprintln!("{summary}");
    } else {
        println!("{summary}");
    }
    if !findings.is_empty() {
        std::process::exit(1);
    }
}
