//! The determinism rules (D1–D4) and hot-path rules (P1–P3) over the
//! token stream.
//!
//! Every correctness claim in this reproduction — same-seed
//! bit-identical `DesReport`s, the zero-latency DES ≡ instantaneous
//! simulator differential, the svc=0 ≡ bench replay — rests on the
//! codebase never letting unordered state leak into event order or
//! serialized output. These rules encode the project's invariants:
//!
//! * **D1 `wall-clock`** — no `Instant::now` / `SystemTime` in the
//!   deterministic crates. Bench/experiment binaries and `pcn-proto`
//!   may read wall time, but only through the single
//!   `pcn_proto::wall_now` helper, and only into `wall_*`-prefixed
//!   bindings, so wall metrics stay visibly segregated from virtual
//!   ones.
//! * **D2 `hash-order`** — no order-sensitive iteration over
//!   `HashMap` / `HashSet` in deterministic crates (`for … in &map`,
//!   `.iter()`, `.keys()`, `.values()`, `.drain()`, `.into_iter()`, …)
//!   unless the site feeds an immediate sort or carries a
//!   `// det-lint: allow(hash-order) — <why>` annotation.
//! * **D3 `thread`** — no `thread::spawn` or `std::sync` primitives
//!   inside `pcn-sim`: the DES stays single-threaded until the
//!   conservative parallel engine lands with its own merge rules.
//! * **D4 `debug-format`** — no `{:?}` formatting of hash collections
//!   into strings/reports: `Debug` on a hash map leaks iteration
//!   order into output.
//!
//! The P rules ride the conservative call graph in
//! [`crate::callgraph`] (P1) and the same per-crate taint machinery as
//! D2 (P3):
//!
//! * **P1 `hot-alloc`** — functions reachable from a
//!   `// pcn-lint: hot` root must not allocate per event:
//!   `Vec::new`/`with_capacity`, `.collect()`, `.clone()`,
//!   `format!`/`vec!`, `String` ops, `Box::new`, `HashMap::new` … are
//!   errors unless carrying a justified
//!   `// pcn-lint: allow(hot-alloc) — <why>` (typically: the
//!   allocation is per-run, not per-event).
//! * **P2 `panic`** — no `.unwrap()` / `.expect()` / `panic!` /
//!   `unreachable!` / `todo!` / `unimplemented!` in non-test code of
//!   the deterministic library crates: a panic aborts a million-payment
//!   run hours in. Each site becomes error propagation, a
//!   `debug_assert!`, or an invariant-carrying
//!   `// pcn-lint: allow(panic) — <why>`. `assert!` family macros stay
//!   legal: they *state* invariants rather than hide them.
//! * **P3 `amount-math`** — raw binary `+`/`-`/`*` with an
//!   `Amount`-tainted operand must go through the
//!   saturating/checked helpers on `Amount`. Compound assignment
//!   (`+=`) and index/`.micros()` chains are documented false
//!   negatives; the taint refinement (latest declaration wins) keeps
//!   same-named `u64` locals out.
//!
//! Detection is deliberately *over*-approximate (an identifier that is
//! hash-typed anywhere in the crate taints every same-named
//! identifier; a method call reaches every same-named method): a false
//! positive costs one justified annotation, while a false negative
//! costs a flaky differential test — or an aborted overnight run —
//! three PRs later.

use crate::callgraph::FileAnalysis;
use crate::lexer::{lex, AnnNs, Lexed, Tok, TokKind};
use std::collections::BTreeSet;

/// Which rule produced a finding.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// D1: wall-clock access.
    WallClock,
    /// D2: order-sensitive hash iteration.
    HashOrder,
    /// D3: threads / sync primitives in the DES crate.
    Thread,
    /// D4: `{:?}` of a hash collection into output.
    DebugFormat,
    /// P1: allocation in a hot-reachable function.
    HotAlloc,
    /// P2: panic path in non-test library code.
    NoPanic,
    /// P3: raw arithmetic on `Amount`-tainted bindings.
    AmountMath,
    /// Malformed or unjustified `det-lint:` / `pcn-lint:` annotation.
    Annotation,
}

impl Rule {
    /// The rule name as written inside `…-lint: allow(…)`.
    pub fn name(self) -> &'static str {
        match self {
            Rule::WallClock => "wall-clock",
            Rule::HashOrder => "hash-order",
            Rule::Thread => "thread",
            Rule::DebugFormat => "debug-format",
            Rule::HotAlloc => "hot-alloc",
            Rule::NoPanic => "panic",
            Rule::AmountMath => "amount-math",
            Rule::Annotation => "annotation",
        }
    }

    /// Which annotation namespace suppresses this rule.
    pub fn namespace(self) -> AnnNs {
        match self {
            Rule::HotAlloc | Rule::NoPanic | Rule::AmountMath => AnnNs::Pcn,
            _ => AnnNs::Det,
        }
    }
}

/// One lint finding. A finding with a `justification` was matched by a
/// well-formed `allow(…)` annotation: it is not a violation, but the
/// audit keeps it so `--json` can report the justified suppressions
/// alongside the failures.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Rule that fired.
    pub rule: Rule,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable description with the suggested fix.
    pub message: String,
    /// The annotation's justification text, when the site carries one.
    /// `None` means the finding is an unjustified violation.
    pub justification: Option<String>,
}

/// How rule D1 applies to a file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WallPolicy {
    /// Deterministic crate: any wall-clock token is an error.
    Forbid,
    /// Wall-allowed crate (proto / experiments / bench binaries): raw
    /// `Instant::now` is an error — call `pcn_proto::wall_now()` — and
    /// `wall_now()` results must land in `wall_*`-prefixed bindings.
    HelperOnly,
    /// The single allowlisted helper file itself.
    Free,
}

/// Per-file rule configuration, derived from the crate the file
/// belongs to (see [`crate::policy_for`]).
#[derive(Clone, Copy, Debug)]
pub struct Policy {
    /// D1 mode.
    pub wall: WallPolicy,
    /// Whether D2 applies (deterministic crates).
    pub hash_order: bool,
    /// Whether D3 applies (`pcn-sim` only).
    pub threads: bool,
    /// Whether D4 applies (deterministic crates).
    pub debug_format: bool,
    /// Whether P1 applies (deterministic crates' library code).
    pub hot_alloc: bool,
    /// Whether P2 applies (deterministic crates' library code).
    pub panics: bool,
    /// Whether P3 applies (deterministic crates' library code, minus
    /// the `Amount` implementation itself).
    pub amount_math: bool,
}

impl Policy {
    /// Policy for the deterministic crates.
    pub fn deterministic(is_sim: bool) -> Self {
        Policy {
            wall: WallPolicy::Forbid,
            hash_order: true,
            threads: is_sim,
            debug_format: true,
            hot_alloc: true,
            panics: true,
            amount_math: true,
        }
    }

    /// Policy for wall-allowed crates (testbed, experiments, benches).
    pub fn wall_allowed() -> Self {
        Policy {
            wall: WallPolicy::HelperOnly,
            hash_order: false,
            threads: false,
            debug_format: false,
            hot_alloc: false,
            panics: false,
            amount_math: false,
        }
    }
}

/// Hash-iteration method names that expose iteration order (D2).
const ORDER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// Sort-family identifiers that make an iteration order-insensitive
/// when they appear in the same or the immediately following
/// statements ("feeds an immediate sort").
fn is_reordering_ident(text: &str) -> bool {
    text.starts_with("sort") || text == "BTreeMap" || text == "BTreeSet" || text == "BinaryHeap"
}

/// Format-like macros whose output reaches strings / reports (D4).
/// Assert/panic macros are excluded: their output is for humans on the
/// failure path, not for serialized artifacts.
const FORMAT_MACROS: &[&str] = &[
    "format", "print", "println", "eprint", "eprintln", "write", "writeln",
];

/// Sync primitives banned in `pcn-sim` (D3).
const SYNC_IDENTS: &[&str] = &[
    "Mutex",
    "RwLock",
    "Condvar",
    "Barrier",
    "mpsc",
    "rayon",
    "crossbeam",
    "parking_lot",
];

/// Heap-owning types whose constructors P1 flags in hot code.
const ALLOC_TYPES: &[&str] = &[
    "Vec",
    "VecDeque",
    "String",
    "Box",
    "HashMap",
    "HashSet",
    "BTreeMap",
    "BTreeSet",
    "BinaryHeap",
    "Rc",
    "Arc",
];

/// Constructor names that allocate on the listed types (`Type::new`,
/// `Type::with_capacity`, `Type::from`).
const ALLOC_CTORS: &[&str] = &["new", "with_capacity", "from"];

/// Method calls that allocate a fresh heap object. `.push` /
/// `.insert` / `.extend` on a *pre-sized* buffer are deliberately NOT
/// listed: amortized growth of a reused buffer is the pattern P1
/// pushes code toward.
const ALLOC_METHODS: &[&str] = &[
    "collect",
    "clone",
    "to_vec",
    "to_owned",
    "to_string",
    "push_str",
];

/// Macros that allocate (`format!` builds a String, `vec!` a Vec).
const ALLOC_MACROS: &[&str] = &["format", "vec"];

/// Unconditional panic macros (P2). The `assert!` family is excluded:
/// stated invariants are the *alternative* to hidden unwraps, and
/// `debug_assert!` is one of P2's suggested fixes.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Identifiers that can precede a binary `-`/`*` without being an
/// operand (`return x`, `&mut x`, `match x`…): these make the
/// operator unary/deref, not Amount arithmetic (P3).
const NON_OPERAND_KEYWORDS: &[&str] = &[
    "return", "in", "as", "mut", "if", "while", "match", "else", "move", "break", "continue",
    "let", "yield",
];

/// Collects identifiers that are hash-typed somewhere in the given
/// token streams: `name: …HashMap<…>` (let/field/param type
/// annotations) and `let name = HashMap::new()`-style initializations.
///
/// The returned set deliberately spans the whole crate: a struct field
/// declared `capacities: HashMap<…>` in one file taints
/// `plan.capacities` iteration in every other file of that crate.
pub fn collect_hash_names(streams: &[&Lexed]) -> BTreeSet<String> {
    collect_typed_names(streams, &|t| t == "HashMap" || t == "HashSet")
}

/// Collects identifiers that are `Amount`-typed somewhere in the given
/// token streams, for rule P3 — same crate-wide taint mechanics as
/// [`collect_hash_names`].
pub fn collect_amount_names(streams: &[&Lexed]) -> BTreeSet<String> {
    collect_typed_names(streams, &|t| t == "Amount")
}

/// The shared walk behind [`collect_hash_names`] /
/// [`collect_amount_names`]: `is_type` decides which type identifiers
/// taint a binding.
fn collect_typed_names(streams: &[&Lexed], is_type: &dyn Fn(&str) -> bool) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for lexed in streams {
        let toks = &lexed.toks;
        for (i, t) in toks.iter().enumerate() {
            if t.kind != TokKind::Ident || !is_type(&t.text) {
                continue;
            }
            // Walk left over the path prefix (`std :: collections ::`).
            let mut j = i;
            while j >= 2 && toks[j - 1].text == "::" && toks[j - 2].kind == TokKind::Ident {
                j -= 2;
            }
            // Case b: `let (mut)? NAME (: _)? = HashMap :: new`.
            if j >= 2 && toks[j - 1].text == "=" {
                if let Some(name) = binding_left_of_eq(toks, j - 1) {
                    names.insert(name);
                    continue;
                }
            }
            // Case a: `NAME : …HashMap…` — walk left over type tokens
            // until the single `:` that starts the annotation.
            let mut k = j;
            while k > 0 {
                let p = &toks[k - 1];
                let is_type_tok = p.kind == TokKind::Ident
                    || p.kind == TokKind::Lifetime
                    || matches!(p.text.as_str(), "::" | "<" | ">" | "," | "&" | "[" | "]");
                if p.text == ":" {
                    if k >= 2 && toks[k - 2].kind == TokKind::Ident {
                        names.insert(toks[k - 2].text.clone());
                    }
                    break;
                }
                if !is_type_tok {
                    break;
                }
                k -= 1;
            }
        }
    }
    names
}

/// One identifier declaration seen in a file: a `name: Type`
/// annotation (let/param/field/struct-literal) or an untyped
/// `let name = expr` binding, with whether it is hash-typed.
///
/// Declarations refine the crate-wide taint set: `caps: &[Amount]` in
/// one function must not inherit hash-ness from a `caps: &HashMap<…>`
/// parameter elsewhere in the crate. Resolution is
/// "latest declaration of the name before the site in this file,
/// else the crate-wide taint set".
#[derive(Debug)]
pub struct Decl {
    name: String,
    /// Token index of the declared name.
    pos: usize,
    is_hash: bool,
    is_amount: bool,
}

/// Collects per-file declarations. `taint` is the crate-wide hash-name
/// set and `amount_taint` the crate-wide Amount-name set: an untyped
/// initializer mentioning a tainted name (e.g. `let merged =
/// caps.clone()`) propagates taint.
pub fn collect_decls(
    lexed: &Lexed,
    taint: &BTreeSet<String>,
    amount_taint: &BTreeSet<String>,
) -> Vec<Decl> {
    let toks = &lexed.toks;
    let mut out = Vec::new();
    let hashy = |t: &Tok| {
        t.kind == TokKind::Ident
            && (t.text == "HashMap" || t.text == "HashSet" || taint.contains(&t.text))
    };
    let amounty = |t: &Tok| {
        t.kind == TokKind::Ident && (t.text == "Amount" || amount_taint.contains(&t.text))
    };
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        // `name : …` — type annotation or struct-literal field value.
        if toks.get(i + 1).is_some_and(|n| n.text == ":") {
            let mut depth = 0i32;
            let mut j = i + 2;
            let mut is_hash = false;
            let mut is_amount = false;
            while j < toks.len() && j < i + 60 {
                let p = &toks[j];
                match p.text.as_str() {
                    "<" | "(" | "[" => depth += 1,
                    ">" | ")" | "]" => {
                        if depth == 0 {
                            break;
                        }
                        depth -= 1;
                    }
                    "," | ";" | "=" | "{" | "}" if depth == 0 => break,
                    _ => {}
                }
                is_hash |= hashy(p);
                is_amount |= amounty(p);
                j += 1;
            }
            out.push(Decl {
                name: t.text.clone(),
                pos: i,
                is_hash,
                is_amount,
            });
        }
        // Untyped `let (mut)? name = expr ;` (typed lets hit the arm above).
        // Hash-ness holds only when the initializer mentions
        // HashMap/HashSet directly, or is a plain alias / clone of a
        // tainted binding (`let m = caps;`, `let m = caps.clone();`).
        // A mere *mention* of a tainted name (`let j = caps.len();`)
        // must not taint: most methods on a hash map return scalars or
        // already-flagged iterators.
        if t.text == "let" {
            let mut m = i + 1;
            if toks.get(m).is_some_and(|n| n.text == "mut") {
                m += 1;
            }
            let (Some(name), Some(eq)) = (toks.get(m), toks.get(m + 1)) else {
                continue;
            };
            if name.kind != TokKind::Ident || eq.text != "=" {
                continue;
            }
            let mut expr: Vec<&Tok> = Vec::new();
            let mut j = m + 2;
            while j < toks.len() && j < m + 80 && toks[j].text != ";" {
                expr.push(&toks[j]);
                j += 1;
            }
            let literal_hash = expr
                .iter()
                .any(|p| p.kind == TokKind::Ident && (p.text == "HashMap" || p.text == "HashSet"));
            // `let x = Amount::…` / `let x = amount` / `let x =
            // amount.clone()` propagate Amount-ness; `let n =
            // amount.micros()` (a u64) must not, so the same strict
            // alias shapes apply, plus a direct `Amount::ctor(…)` head.
            let literal_amount = expr
                .first()
                .is_some_and(|p| p.kind == TokKind::Ident && p.text == "Amount");
            out.push(Decl {
                name: name.text.clone(),
                pos: m,
                is_hash: literal_hash || is_tainted_alias(&expr, taint),
                is_amount: literal_amount || is_tainted_alias(&expr, amount_taint),
            });
        }
    }
    out
}

/// True when `expr` is (a reference to) a tainted binding, optionally
/// `.clone()`d / `.to_owned()`d — the initializer shapes that hand the
/// whole hash collection to a new name.
fn is_tainted_alias(expr: &[&Tok], taint: &BTreeSet<String>) -> bool {
    let mut k = 0usize;
    while k < expr.len() && matches!(expr[k].text.as_str(), "&" | "mut") {
        k += 1;
    }
    let Some(head) = expr.get(k) else {
        return false;
    };
    if head.kind != TokKind::Ident || !taint.contains(&head.text) {
        return false;
    }
    let rest: Vec<&str> = expr[k + 1..].iter().map(|t| t.text.as_str()).collect();
    rest.is_empty() || rest == [".", "clone", "(", ")"] || rest == [".", "to_owned", "(", ")"]
}

/// Is the identifier `name` hash-typed at token position `site`?
fn resolve_hash(name: &str, site: usize, decls: &[Decl], taint: &BTreeSet<String>) -> bool {
    decls
        .iter()
        .rfind(|d| d.name == name && d.pos < site)
        .map_or_else(|| taint.contains(name), |d| d.is_hash)
}

/// Is the identifier `name` `Amount`-typed at token position `site`?
/// Same "latest declaration before the site wins, else crate-wide
/// taint" resolution as [`resolve_hash`].
fn resolve_amount(name: &str, site: usize, decls: &[Decl], taint: &BTreeSet<String>) -> bool {
    decls
        .iter()
        .rfind(|d| d.name == name && d.pos < site)
        .map_or_else(|| taint.contains(name), |d| d.is_amount)
}

/// For `= HashMap…` at `eq`, returns the binding name to the left of
/// the `=`: scans back to the statement's `let` and reads
/// `let (mut)? NAME` forward, which skips any `: Type` annotation in
/// between without mis-reading a type ident as the binding.
fn binding_left_of_eq(toks: &[Tok], eq: usize) -> Option<String> {
    let floor = eq.saturating_sub(40);
    let mut k = eq;
    while k > floor {
        k -= 1;
        match toks[k].text.as_str() {
            ";" | "{" | "}" => return None,
            "let" => {
                let mut m = k + 1;
                if toks.get(m).map(|t| t.text.as_str()) == Some("mut") {
                    m += 1;
                }
                let name = toks.get(m)?;
                return (name.kind == TokKind::Ident).then(|| name.text.clone());
            }
            _ => {}
        }
    }
    None
}

/// Resolves the receiver identifier of a method call: for
/// `base . method (`, `base` may be a plain ident or an index
/// expression `name [ … ]`.
fn receiver_ident(toks: &[Tok], dot: usize) -> Option<String> {
    if dot == 0 {
        return None;
    }
    let prev = &toks[dot - 1];
    if prev.kind == TokKind::Ident {
        return Some(prev.text.clone());
    }
    if prev.text == "]" {
        // Scan back to the matching `[` and take the ident before it.
        let mut depth = 0i32;
        let mut k = dot - 1;
        loop {
            match toks[k].text.as_str() {
                "]" => depth += 1,
                "[" => {
                    depth -= 1;
                    if depth == 0 {
                        if k >= 1 && toks[k - 1].kind == TokKind::Ident {
                            return Some(toks[k - 1].text.clone());
                        }
                        return None;
                    }
                }
                _ => {}
            }
            if k == 0 {
                return None;
            }
            k -= 1;
        }
    }
    None
}

/// True when the statement containing token `pos`, or one of the two
/// statements after it, re-orders the data (sort / BTree collect) —
/// the "feeds an immediate sort" exemption of D2.
fn feeds_immediate_sort(toks: &[Tok], pos: usize) -> bool {
    let mut semis = 0;
    let mut j = pos;
    while j < toks.len() && semis < 3 {
        let t = &toks[j];
        if t.kind == TokKind::Ident && is_reordering_ident(&t.text) {
            return true;
        }
        if t.text == ";" {
            semis += 1;
        }
        j += 1;
    }
    false
}

/// Per-crate context shared by every file audit: the crate-wide taint
/// sets (D2 / P3) and this file's call-graph analysis (P1, test
/// spans).
pub struct CrateCtx<'a> {
    /// Crate-wide hash-typed identifiers, from [`collect_hash_names`].
    pub hash_names: &'a BTreeSet<String>,
    /// Crate-wide `Amount`-typed identifiers, from
    /// [`collect_amount_names`].
    pub amount_names: &'a BTreeSet<String>,
    /// This file's hot spans / test spans, from
    /// [`crate::callgraph::analyze`].
    pub analysis: &'a FileAnalysis,
}

/// Audits one lexed file under `policy`: like [`lint_tokens`] but the
/// result also keeps findings whose site carries a justified
/// annotation (`justification: Some(…)`), so `--json` can report the
/// suppressions.
pub fn audit_tokens(file: &str, lexed: &Lexed, policy: &Policy, ctx: &CrateCtx) -> Vec<Finding> {
    let toks = &lexed.toks;
    let hash_names = ctx.hash_names;
    let analysis = ctx.analysis;
    let decls = collect_decls(lexed, hash_names, ctx.amount_names);
    let mut raw: Vec<Finding> = Vec::new();

    // --- D1: wall clock -------------------------------------------------
    if policy.wall != WallPolicy::Free {
        for (i, t) in toks.iter().enumerate() {
            if t.kind != TokKind::Ident {
                continue;
            }
            // `Instant :: now` / `SystemTime :: now` and the import /
            // fully-qualified forms `time :: Instant`, `time :: SystemTime`.
            // (`Instant` alone is NOT flagged: `ServiceModel::Instant` is a
            // legitimate virtual-time variant in pcn-sim.)
            // Any `SystemTime` mention is a hit; `Instant` needs the
            // `::now` or `time::` context (see doc above).
            let wall_hit = t.text == "SystemTime"
                || t.text == "Instant"
                    && toks.get(i + 1).is_some_and(|n| n.text == "::")
                    && toks.get(i + 2).is_some_and(|n| n.text == "now")
                || t.text == "time"
                    && toks.get(i + 1).is_some_and(|n| n.text == "::")
                    && toks
                        .get(i + 2)
                        .is_some_and(|n| n.text == "Instant" || n.text == "SystemTime");
            if wall_hit {
                let msg = match policy.wall {
                    WallPolicy::Forbid => format!(
                        "[D1 wall-clock] `{}` in a deterministic crate: virtual time only — \
                         use `pcn_sim::des::SimTime`; wall metrics belong in bench/testbed \
                         crates behind `pcn_proto::wall_now()`",
                        t.text
                    ),
                    _ => format!(
                        "[D1 wall-clock] raw `{}` outside the allowlisted helper: call \
                         `pcn_proto::wall_now()` so wall time has exactly one entry point",
                        t.text
                    ),
                };
                raw.push(Finding {
                    rule: Rule::WallClock,
                    file: file.into(),
                    line: t.line,
                    message: msg,
                    justification: None,
                });
            }
            // Helper call sites must bind into `wall_*` names so wall
            // metrics stay visibly segregated from virtual ones.
            if t.text == "wall_now" && toks.get(i + 1).is_some_and(|n| n.text == "(") {
                if let Some((name, line)) = assigned_binding(toks, i) {
                    if !name.starts_with("wall") {
                        raw.push(Finding {
                            rule: Rule::WallClock,
                            file: file.into(),
                            line,
                            message: format!(
                                "[D1 wall-clock] `wall_now()` result bound to `{name}`: \
                                 wall-time bindings must be `wall_*`-prefixed"
                            ),
                            justification: None,
                        });
                    }
                }
            }
        }
    }

    // --- D2: hash-order iteration ---------------------------------------
    if policy.hash_order {
        for (i, t) in toks.iter().enumerate() {
            // Method-call sites: `name.iter()`, `nbrs[u].keys()` …
            if t.kind == TokKind::Ident
                && ORDER_METHODS.contains(&t.text.as_str())
                && toks.get(i + 1).is_some_and(|n| n.text == "(")
                && i >= 1
                && toks[i - 1].text == "."
            {
                if let Some(base) = receiver_ident(toks, i - 1) {
                    if resolve_hash(&base, i, &decls, hash_names) && !feeds_immediate_sort(toks, i)
                    {
                        raw.push(Finding {
                            rule: Rule::HashOrder,
                            file: file.into(),
                            line: t.line,
                            message: format!(
                                "[D2 hash-order] `{base}.{}()` iterates a hash collection in \
                                 arbitrary order: sort first / use BTreeMap, or annotate \
                                 `// det-lint: allow(hash-order) — <why order cannot matter>`",
                                t.text
                            ),
                            justification: None,
                        });
                    }
                }
            }
            // `for PAT in EXPR {` sites where EXPR names a hash
            // collection directly (not a same-named method call).
            if t.kind == TokKind::Ident && t.text == "for" {
                // Find the `in` at paren depth 0, then the loop `{`.
                let mut depth = 0i32;
                let mut j = i + 1;
                let mut in_pos = None;
                while j < toks.len() && j < i + 80 {
                    match toks[j].text.as_str() {
                        "(" | "[" => depth += 1,
                        ")" | "]" => depth -= 1,
                        "in" if depth == 0 && toks[j].kind == TokKind::Ident => {
                            in_pos = Some(j);
                            break;
                        }
                        "{" | ";" => break,
                        _ => {}
                    }
                    j += 1;
                }
                if let Some(inp) = in_pos {
                    let mut k = inp + 1;
                    while k < toks.len() && toks[k].text != "{" && k < inp + 60 {
                        let e = &toks[k];
                        // Skip method calls and field/method bases
                        // (`caps.len()` iterates a range, not `caps`;
                        // `.iter()` chains hit the method rule above).
                        let next = toks.get(k + 1).map(|n| n.text.as_str());
                        if e.kind == TokKind::Ident
                            && next != Some("(")
                            && next != Some(".")
                            && resolve_hash(&e.text, k, &decls, hash_names)
                            && !feeds_immediate_sort(toks, k)
                        {
                            raw.push(Finding {
                                rule: Rule::HashOrder,
                                file: file.into(),
                                line: e.line,
                                message: format!(
                                    "[D2 hash-order] `for … in {}` iterates a hash collection \
                                     in arbitrary order: sort keys first / switch to BTreeMap, \
                                     or annotate `// det-lint: allow(hash-order) — <why>`",
                                    e.text
                                ),
                                justification: None,
                            });
                            break;
                        }
                        k += 1;
                    }
                }
            }
        }
    }

    // --- D3: threads / sync in the DES crate ----------------------------
    if policy.threads {
        for (i, t) in toks.iter().enumerate() {
            if t.kind != TokKind::Ident {
                continue;
            }
            let hit = t.text == "thread"
                && toks.get(i + 1).is_some_and(|n| n.text == "::")
                && toks.get(i + 2).is_some_and(|n| n.text == "spawn")
                || t.text == "sync"
                    && i >= 2
                    && toks[i - 1].text == "::"
                    && toks[i - 2].text == "std"
                || t.text.starts_with("Atomic") && t.text.len() > "Atomic".len()
                || SYNC_IDENTS.contains(&t.text.as_str());
            if hit {
                raw.push(Finding {
                    rule: Rule::Thread,
                    file: file.into(),
                    line: t.line,
                    message: format!(
                        "[D3 thread] `{}` in pcn-sim: the DES is single-threaded by contract \
                         (event order = (time, seq) only) until the conservative parallel \
                         engine lands with deterministic merge rules",
                        t.text
                    ),
                    justification: None,
                });
            }
        }
    }

    // --- D4: {:?} of hash collections into output -----------------------
    if policy.debug_format {
        for (i, t) in toks.iter().enumerate() {
            if t.kind != TokKind::Ident
                || !FORMAT_MACROS.contains(&t.text.as_str())
                || toks.get(i + 1).map(|n| n.text.as_str()) != Some("!")
            {
                continue;
            }
            // Scan the macro's parenthesized args.
            let Some(open) = toks.get(i + 2).filter(|n| n.text == "(") else {
                continue;
            };
            let _ = open;
            let mut depth = 0i32;
            let mut j = i + 2;
            let mut has_debug_spec = false;
            let mut debug_names: Vec<String> = Vec::new();
            let mut arg_hash = false;
            while j < toks.len() {
                let a = &toks[j];
                match a.text.as_str() {
                    "(" => depth += 1,
                    ")" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                if a.kind == TokKind::Str {
                    for name in debug_specs(&a.text) {
                        has_debug_spec = true;
                        if !name.is_empty() {
                            debug_names.push(name);
                        }
                    }
                } else if a.kind == TokKind::Ident && resolve_hash(&a.text, j, &decls, hash_names) {
                    arg_hash = true;
                }
                j += 1;
            }
            let named_hash = debug_names
                .iter()
                .any(|n| resolve_hash(n, i, &decls, hash_names));
            if has_debug_spec && (arg_hash || named_hash) {
                raw.push(Finding {
                    rule: Rule::DebugFormat,
                    file: file.into(),
                    line: t.line,
                    message: format!(
                        "[D4 debug-format] `{}!` debug-formats a hash collection: `Debug` \
                         leaks iteration order into output — sort into a Vec/BTreeMap first \
                         or emit a stable serialization",
                        t.text
                    ),
                    justification: None,
                });
            }
        }
    }

    // --- P1: allocation in hot-reachable functions ----------------------
    if policy.hot_alloc {
        for (i, t) in toks.iter().enumerate() {
            if t.kind != TokKind::Ident || analysis.in_test(i) {
                continue;
            }
            let Some(hot) = analysis.hot_fn(i) else {
                continue;
            };
            let next = toks.get(i + 1).map(|n| n.text.as_str());
            let construct = if ALLOC_TYPES.contains(&t.text.as_str())
                && next == Some("::")
                && toks
                    .get(i + 2)
                    .is_some_and(|c| ALLOC_CTORS.contains(&c.text.as_str()))
            {
                Some(format!("{}::{}", t.text, toks[i + 2].text))
            } else if ALLOC_MACROS.contains(&t.text.as_str()) && next == Some("!") {
                Some(format!("{}!", t.text))
            } else if ALLOC_METHODS.contains(&t.text.as_str())
                && next == Some("(")
                && i >= 1
                && toks[i - 1].text == "."
            {
                Some(format!(".{}()", t.text))
            } else {
                None
            };
            if let Some(c) = construct {
                raw.push(Finding {
                    rule: Rule::HotAlloc,
                    file: file.into(),
                    line: t.line,
                    message: format!(
                        "[P1 hot-alloc] `{c}` in `{}`, reachable from a `// pcn-lint: hot` \
                         root: preallocate / reuse a scratch buffer, or annotate \
                         `// pcn-lint: allow(hot-alloc) — <why this is per-run, not per-event>`",
                        hot.name
                    ),
                    justification: None,
                });
            }
        }
    }

    // --- P2: panic paths in non-test library code ------------------------
    if policy.panics {
        for (i, t) in toks.iter().enumerate() {
            if t.kind != TokKind::Ident || analysis.in_test(i) {
                continue;
            }
            let next = toks.get(i + 1).map(|n| n.text.as_str());
            let site = if (t.text == "unwrap" || t.text == "expect")
                && next == Some("(")
                && i >= 1
                && toks[i - 1].text == "."
            {
                Some(format!(".{}()", t.text))
            } else if PANIC_MACROS.contains(&t.text.as_str()) && next == Some("!") {
                Some(format!("{}!", t.text))
            } else {
                None
            };
            if let Some(s) = site {
                raw.push(Finding {
                    rule: Rule::NoPanic,
                    file: file.into(),
                    line: t.line,
                    message: format!(
                        "[P2 panic] `{s}` in non-test library code would abort a \
                         million-payment run: propagate the error, downgrade to \
                         `debug_assert!`, or annotate \
                         `// pcn-lint: allow(panic) — <the invariant making this unreachable>`"
                    ),
                    justification: None,
                });
            }
        }
    }

    // --- P3: raw arithmetic on Amount-tainted bindings -------------------
    if policy.amount_math {
        for (i, t) in toks.iter().enumerate() {
            if t.kind != TokKind::Punct
                || !matches!(t.text.as_str(), "+" | "-" | "*")
                || analysis.in_test(i)
                || i == 0
            {
                continue;
            }
            let Some(next) = toks.get(i + 1) else {
                continue;
            };
            let prev = &toks[i - 1];
            // Binary-operator position only: an operand on both sides.
            // (`+=` etc. lex as single tokens and are not matched —
            // a documented false negative; unary `-`/`*`/`&` have a
            // non-operand on the left.)
            let prev_is_operand = (prev.kind == TokKind::Ident
                && !NON_OPERAND_KEYWORDS.contains(&prev.text.as_str()))
                || prev.kind == TokKind::Num
                || prev.text == ")"
                || prev.text == "]";
            let next_is_operand = next.kind == TokKind::Ident || next.kind == TokKind::Num;
            if !prev_is_operand || !next_is_operand {
                continue;
            }
            let tainted = [prev, next].into_iter().find(|o| {
                o.kind == TokKind::Ident
                    && (o.text == "Amount" || resolve_amount(&o.text, i, &decls, ctx.amount_names))
            });
            if let Some(op) = tainted {
                raw.push(Finding {
                    rule: Rule::AmountMath,
                    file: file.into(),
                    line: t.line,
                    message: format!(
                        "[P3 amount-math] raw `{}` with Amount-typed `{}`: balances use \
                         `saturating_add`/`saturating_sub`/`checked_*` helpers so overflow \
                         can never panic or wrap mid-settlement — or annotate \
                         `// pcn-lint: allow(amount-math) — <why overflow is impossible>`",
                        t.text, op.text
                    ),
                    justification: None,
                });
            }
        }
    }

    // --- Annotations: attach justifications, flag bad ones ---------------
    let mut out: Vec<Finding> = Vec::new();
    for mut f in raw {
        let matched = lexed.annotations.iter().find(|a| {
            a.ns == f.rule.namespace()
                && a.rule == f.rule.name()
                && (a.line == f.line || a.line + 1 == f.line)
        });
        if let Some(a) = matched {
            f.justification = Some(a.justification.clone());
        }
        out.push(f);
    }
    for bad in &lexed.bad_annotations {
        out.push(Finding {
            rule: Rule::Annotation,
            file: file.into(),
            line: bad.line,
            message: format!("[annotation] {}", bad.reason),
            justification: None,
        });
    }
    for a in &lexed.annotations {
        let known = match a.ns {
            AnnNs::Det => matches!(
                a.rule.as_str(),
                "wall-clock" | "hash-order" | "thread" | "debug-format"
            ),
            AnnNs::Pcn => matches!(a.rule.as_str(), "hot-alloc" | "panic" | "amount-math"),
        };
        if !known {
            let expected = match a.ns {
                AnnNs::Det => "wall-clock, hash-order, thread, or debug-format",
                AnnNs::Pcn => "hot-alloc, panic, or amount-math",
            };
            out.push(Finding {
                rule: Rule::Annotation,
                file: file.into(),
                line: a.line,
                message: format!(
                    "[annotation] unknown rule `{}` in {} allow (expected {expected})",
                    a.rule,
                    a.ns.marker()
                ),
                justification: None,
            });
        }
    }
    for &mark in &analysis.unmatched_hot_marks {
        out.push(Finding {
            rule: Rule::Annotation,
            file: file.into(),
            line: mark,
            message: "[annotation] `pcn-lint: hot` mark does not precede a function item \
                      (it must sit directly above — or trail — the `fn` it roots)"
                .into(),
            justification: None,
        });
    }

    out.sort_by_key(|a| (a.line, a.rule));
    out.dedup_by(|a, b| a.line == b.line && a.rule == b.rule);
    out
}

/// Lints one lexed file under `policy`: [`audit_tokens`] filtered down
/// to the actual violations (justified findings dropped).
pub fn lint_tokens(file: &str, lexed: &Lexed, policy: &Policy, ctx: &CrateCtx) -> Vec<Finding> {
    audit_tokens(file, lexed, policy, ctx)
        .into_iter()
        .filter(|f| f.justification.is_none())
        .collect()
}

/// For a call token at `pos` (e.g. `wall_now`), finds the binding the
/// result is assigned to, searching back a few tokens for
/// `let (mut)? NAME =` or `NAME =`. Returns `(name, line)`.
fn assigned_binding(toks: &[Tok], pos: usize) -> Option<(String, u32)> {
    let mut k = pos;
    let floor = pos.saturating_sub(10);
    while k > floor {
        k -= 1;
        if toks[k].text == ";" || toks[k].text == "{" {
            return None;
        }
        if toks[k].text == "=" && k >= 1 && toks[k - 1].kind == TokKind::Ident {
            let name = &toks[k - 1];
            if name.text == "mut" {
                continue;
            }
            return Some((name.text.clone(), name.line));
        }
    }
    None
}

/// Extracts debug format specs from a format-string literal: returns
/// one entry per `{…:?}` / `{…:#?}` hole; the entry is the inline name
/// (`{name:?}` → `"name"`) or empty for positional holes.
fn debug_specs(fmt: &str) -> Vec<String> {
    let mut out = Vec::new();
    let b = fmt.as_bytes();
    let mut i = 0usize;
    while i < b.len() {
        if b[i] == b'{' {
            if b.get(i + 1) == Some(&b'{') {
                i += 2;
                continue;
            }
            if let Some(close) = fmt[i..].find('}') {
                let hole = &fmt[i + 1..i + close];
                if let Some((name, spec)) = hole.split_once(':') {
                    if spec.contains('?') {
                        out.push(name.trim().to_string());
                    }
                }
                i += close + 1;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// Convenience for fixtures and tests: lexes `src` and audits it as a
/// standalone file (taint sets and call graph from the file itself),
/// keeping justified findings.
pub fn audit_source(file: &str, src: &str, policy: &Policy) -> Vec<Finding> {
    let lexed = lex(src);
    let hash_names = collect_hash_names(&[&lexed]);
    let amount_names = collect_amount_names(&[&lexed]);
    let analysis = crate::callgraph::analyze_file(&lexed);
    audit_tokens(
        file,
        &lexed,
        policy,
        &CrateCtx {
            hash_names: &hash_names,
            amount_names: &amount_names,
            analysis: &analysis,
        },
    )
}

/// Convenience for fixtures and tests: lexes `src` and lints it as a
/// standalone file, returning violations only.
pub fn lint_source(file: &str, src: &str, policy: &Policy) -> Vec<Finding> {
    audit_source(file, src, policy)
        .into_iter()
        .filter(|f| f.justification.is_none())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn det() -> Policy {
        Policy::deterministic(false)
    }

    #[test]
    fn hash_names_from_type_annotations_and_initializers() {
        let l = lex("struct S { caps: HashMap<EdgeId, Amount> }\n\
             fn f(flow: &std::collections::HashMap<u32, u64>) {\n\
                 let mut seen = HashSet::new();\n\
                 let nbrs: Vec<std::collections::HashSet<u32>> = vec![];\n\
                 let plain: Vec<u32> = vec![];\n\
             }");
        let names = collect_hash_names(&[&l]);
        assert!(names.contains("caps"));
        assert!(names.contains("flow"));
        assert!(names.contains("seen"));
        assert!(names.contains("nbrs"));
        assert!(!names.contains("plain"));
    }

    #[test]
    fn for_over_hash_map_is_flagged() {
        let src = "fn f() { let mut m = HashMap::new(); for (k, v) in &m { use_it(k, v); } }";
        let f = lint_source("x.rs", src, &det());
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::HashOrder);
    }

    #[test]
    fn sorted_iteration_is_exempt() {
        let src = "fn f() { let mut m = HashSet::new(); \
                   let mut v: Vec<u32> = m.into_iter().collect(); v.sort_unstable(); }";
        assert!(lint_source("x.rs", src, &det()).is_empty());
    }

    #[test]
    fn annotated_site_is_suppressed_and_needs_justification() {
        let good = "fn f() { let m = HashMap::new();\n\
                    // det-lint: allow(hash-order) — sum fold, order-insensitive\n\
                    let s: u64 = m.values().sum(); }";
        assert!(lint_source("x.rs", good, &det()).is_empty());
        let bare = "fn f() { let m = HashMap::new();\n\
                    // det-lint: allow(hash-order)\n\
                    let s: u64 = m.values().sum(); }";
        let f = lint_source("x.rs", bare, &det());
        assert!(f.iter().any(|f| f.rule == Rule::HashOrder));
        assert!(f.iter().any(|f| f.rule == Rule::Annotation));
    }

    #[test]
    fn local_declarations_override_crate_taint() {
        // `caps` is hash-typed in one function, a slice in another: the
        // slice function's sites must not inherit the taint.
        let src = "fn g(caps: &HashMap<u32, u64>) { let _ = caps.get(&1); }\n\
                   fn waterfill(caps: &[u64]) -> u64 {\n\
                       let mut tot = 0;\n\
                       for c in caps.iter() { tot += c; }\n\
                       for k in 1..=caps.len() { tot += k as u64; }\n\
                       tot\n\
                   }";
        let f = lint_source("x.rs", src, &det());
        assert!(f.is_empty(), "{f:?}");
        // …and a Vec rebinding of a hash name is clean after the `let`.
        let shadow = "fn f(m: HashSet<u32>) { \
                      let m: Vec<u32> = m.into_iter().collect(); m.sort(); \
                      for x in m { use_it(x); } }";
        assert!(lint_source("x.rs", shadow, &det()).is_empty());
        // The cross-file taint fallback still fires for undeclared names.
        let l1 = lex("struct S { caps: HashMap<u32, u64> }");
        let l2 = lex("fn f(s: &S) { for (k, v) in &s.caps { use_it(k, v); } }");
        let names = collect_hash_names(&[&l1, &l2]);
        let amounts = collect_amount_names(&[&l1, &l2]);
        let analyses = crate::callgraph::analyze(&[&l1, &l2]);
        let f = lint_tokens(
            "y.rs",
            &l2,
            &det(),
            &CrateCtx {
                hash_names: &names,
                amount_names: &amounts,
                analysis: &analyses[1],
            },
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::HashOrder);
    }

    #[test]
    fn wall_clock_forbidden_in_det_crates() {
        let f = lint_source("x.rs", "fn f() { let t = Instant::now(); }", &det());
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::WallClock);
        // …but the DES's virtual `ServiceModel::Instant` variant is fine.
        assert!(lint_source("x.rs", "let m = ServiceModel::Instant;", &det()).is_empty());
    }

    #[test]
    fn helper_crates_need_wall_prefixed_bindings() {
        let p = Policy::wall_allowed();
        let f = lint_source("x.rs", "fn f() { let start = wall_now(); }", &p);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("wall_*"));
        assert!(lint_source("x.rs", "fn f() { let wall_start = wall_now(); }", &p).is_empty());
        let raw = lint_source("x.rs", "fn f() { let wall_t = Instant::now(); }", &p);
        assert_eq!(raw.len(), 1);
    }

    #[test]
    fn threads_flagged_only_in_sim_policy() {
        let src = "fn f() { std::thread::spawn(|| {}); let m = std::sync::Mutex::new(0); }";
        assert!(!lint_source("x.rs", src, &Policy::deterministic(true)).is_empty());
        assert!(lint_source("x.rs", src, &det()).is_empty());
    }

    #[test]
    fn p1_flags_allocations_only_in_hot_reachable_code() {
        let src = "\
// pcn-lint: hot
fn run(q: &mut Q) { q.step(); }
impl Q {
    fn step(&mut self) { let v: Vec<u32> = (0..4).collect(); self.scratch = v; }
}
fn cold() -> Vec<u32> { Vec::new() }
";
        let f = lint_source("x.rs", src, &det());
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::HotAlloc);
        assert_eq!(f[0].line, 4, "points at the collect inside Q::step");
        assert!(f[0].message.contains("Q::step"));
    }

    #[test]
    fn p1_justified_allow_is_kept_by_audit_dropped_by_lint() {
        let src = "\
// pcn-lint: hot
fn run() {
    // pcn-lint: allow(hot-alloc) — one order Vec per run, not per event
    let order: Vec<usize> = (0..9).collect();
    let _ = order;
}
";
        assert!(lint_source("x.rs", src, &det()).is_empty());
        let audit = audit_source("x.rs", src, &det());
        assert_eq!(audit.len(), 1, "{audit:?}");
        assert!(audit[0]
            .justification
            .as_deref()
            .unwrap()
            .contains("per run"));
    }

    #[test]
    fn p2_flags_panics_outside_tests_only() {
        let src = "\
fn f(x: Option<u32>) -> u32 { x.unwrap() }
fn g() { panic!(\"boom\"); }
fn h(x: Option<u32>) -> u32 { x.unwrap_or(0) }
#[cfg(test)]
mod tests {
    #[test]
    fn t() { assert_eq!(super::f(None), 0); let v: Option<u32> = None; v.unwrap(); }
}
";
        let f = lint_source("x.rs", src, &det());
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|f| f.rule == Rule::NoPanic));
        assert_eq!(f[0].line, 1);
        assert_eq!(f[1].line, 2);
    }

    #[test]
    fn p2_det_namespace_cannot_silence_pcn_rules() {
        let src = "\
fn f(x: Option<u32>) -> u32 {
    // det-lint: allow(panic) — wrong namespace on purpose
    x.unwrap()
}
";
        let f = lint_source("x.rs", src, &det());
        assert!(f.iter().any(|f| f.rule == Rule::NoPanic), "{f:?}");
        // …and the det-side annotation is flagged as unknown there.
        assert!(f.iter().any(|f| f.rule == Rule::Annotation), "{f:?}");
    }

    #[test]
    fn p3_flags_raw_amount_math_with_taint_refinement() {
        let src = "\
fn settle(bal: Amount, amount: Amount) -> Amount { bal - amount }
fn histogram(count: u64, width: u64) -> u64 { count * width }
";
        let f = lint_source("x.rs", src, &det());
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::AmountMath);
        assert_eq!(f[0].line, 1);
        // A same-named u64 redeclaration un-taints (D2-style refinement).
        let refined = "\
fn a(amount: Amount) -> Amount { amount }
fn b(amount: u64) -> u64 { amount * 2 }
";
        assert!(lint_source("x.rs", refined, &det()).is_empty());
    }

    #[test]
    fn p3_amount_literal_operand_is_flagged() {
        let src = "fn f(x: u64) -> u64 { x + Amount::UNIT }";
        let f = lint_source("x.rs", src, &det());
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::AmountMath);
    }

    #[test]
    fn p_rules_respect_policy_gates() {
        let mut p = det();
        p.hot_alloc = false;
        p.panics = false;
        p.amount_math = false;
        let src = "\
// pcn-lint: hot
fn run(bal: Amount, x: Amount) -> Amount { let v = vec![1]; v.first().unwrap(); bal - x }
";
        assert!(lint_source("x.rs", src, &p).is_empty());
    }

    #[test]
    fn debug_format_of_hash_collection_flagged() {
        let src = "fn f() { let m = HashMap::new(); let s = format!(\"{:?}\", m); }";
        let f = lint_source("x.rs", src, &det());
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::DebugFormat);
        // Inline-named holes resolve too.
        let inline = "fn f() { let m = HashMap::new(); let s = format!(\"{m:?}\"); }";
        assert_eq!(lint_source("x.rs", inline, &det()).len(), 1);
        // Debug of a non-hash value is fine.
        let ok = "fn f() { let v = vec![1]; let s = format!(\"{v:?}\"); }";
        assert!(lint_source("x.rs", ok, &det()).is_empty());
    }
}
