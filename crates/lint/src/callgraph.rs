//! A conservative intra-crate call graph over the token stream, for
//! the hot-path rule P1.
//!
//! ## What it builds
//!
//! From each crate's lexed files this module extracts function items
//! (name, owning `impl` type, body token span), attaches
//! `// pcn-lint: hot` root markers to the function they precede, and
//! resolves call sites inside function bodies to other functions *of
//! the same crate*. A BFS from the hot roots then yields the set of
//! hot-reachable functions; rule P1 scans exactly those body spans for
//! allocating constructs.
//!
//! ## The approximation, stated honestly
//!
//! There is no type information — this is a lexer, not rustc — so
//! resolution is name-based and deliberately asymmetric:
//!
//! * **Method calls** (`recv.name(…)`) are **over-approximated**: the
//!   edge goes to *every* function named `name` in the crate,
//!   whatever its `impl` owner. Trait dispatch thus stays inside the
//!   net (any impl of a trait method is reachable), at the cost of
//!   false-positive edges between unrelated same-named methods — a
//!   false positive costs one justified `allow(hot-alloc)`.
//! * **Qualified calls** (`Type::name(…)`, `Self::name(…)`) resolve
//!   **only** against a matching `impl Type` owner in the crate
//!   (`Self` is substituted with the enclosing impl's type). An
//!   unknown owner produces *no* edge — otherwise every `X::new(…)`
//!   would mark all `new` functions in the crate hot.
//! * **Plain calls** (`name(…)`) resolve to free functions only; a
//!   method cannot be called bare in Rust.
//!
//! ## Known false-negative edges
//!
//! * **Cross-crate calls**: resolution is per-crate, so
//!   `DesEngine::run → Router::route` (pcn-sim → flash-core) is
//!   invisible. Hot roots must therefore be marked per crate — the
//!   DES session/network entry points and the Dinic kernel each carry
//!   their own `// pcn-lint: hot`.
//! * **Function-pointer / closure indirection**: `(self.make)(…)` and
//!   values passed as `fn` arguments (`schedule(Settle::commit)`)
//!   produce no edge.
//! * **Macro-generated calls**: the lexer sees macro *invocations*,
//!   not expansions.
//!
//! ## Known false-positive edges
//!
//! * Same-named methods on unrelated types (see above).
//! * `#[cfg]`-disabled code still contributes items and edges (only
//!   `test` cfgs are excluded).
//!
//! Test code — `#[cfg(test)]` modules and `#[test]` functions — is
//! excluded from both the graph and the P1–P3 scans: the rules guard
//! library code on the hot path, not assertions.

use crate::lexer::{Lexed, TokKind};

/// One hot-reachable function's body span in a file, for rule P1.
#[derive(Clone, Debug)]
pub struct HotFn {
    /// `Owner::name` (or bare `name` for free functions), for
    /// messages.
    pub name: String,
    /// Inclusive token-index span of the body (`{` … `}`).
    pub body: (usize, usize),
}

/// Per-file output of [`analyze`]: which token spans are hot, which
/// are test code, and which `hot` marks failed to attach.
#[derive(Clone, Debug, Default)]
pub struct FileAnalysis {
    /// Bodies of functions reachable from a `// pcn-lint: hot` root.
    pub hot: Vec<HotFn>,
    /// Inclusive token-index spans of `#[test]` / `#[cfg(test)]`
    /// items.
    pub tests: Vec<(usize, usize)>,
    /// Lines of `// pcn-lint: hot` marks with no function item on the
    /// next few lines — always a lint error.
    pub unmatched_hot_marks: Vec<u32>,
}

impl FileAnalysis {
    /// Is token index `idx` inside a test item?
    pub fn in_test(&self, idx: usize) -> bool {
        self.tests.iter().any(|&(a, b)| idx >= a && idx <= b)
    }

    /// The hot function whose body contains token index `idx`, if any.
    pub fn hot_fn(&self, idx: usize) -> Option<&HotFn> {
        self.hot.iter().find(|h| idx >= h.body.0 && idx <= h.body.1)
    }
}

/// One extracted function item.
struct FnItem {
    name: String,
    owner: Option<String>,
    line: u32,
    body: Option<(usize, usize)>,
    hot: bool,
    is_test: bool,
}

impl FnItem {
    fn qualified(&self) -> String {
        match &self.owner {
            Some(o) => format!("{o}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// Control-flow keywords that look like `ident (` but are not calls.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "in", "let", "move", "as", "break",
    "continue", "else", "unsafe", "await", "fn",
];

/// Finds the index of the `}` matching the `{` at `open`.
fn match_brace(lexed: &Lexed, open: usize) -> usize {
    let mut depth = 0i32;
    for (j, t) in lexed.toks.iter().enumerate().skip(open) {
        match t.text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
    }
    lexed.toks.len().saturating_sub(1)
}

/// Collects token spans of `#[test]` functions and `#[cfg(test)]`
/// items (modules, functions). A `#[cfg(not(test))]` is real code.
fn test_spans(lexed: &Lexed) -> Vec<(usize, usize)> {
    let toks = &lexed.toks;
    let mut spans: Vec<(usize, usize)> = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].text != "#" || toks.get(i + 1).map(|t| t.text.as_str()) != Some("[") {
            i += 1;
            continue;
        }
        // Scan the attribute's bracket group.
        let mut depth = 0i32;
        let mut j = i + 1;
        let mut idents: Vec<&str> = Vec::new();
        while j < toks.len() {
            match toks[j].text.as_str() {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {
                    if toks[j].kind == TokKind::Ident {
                        idents.push(toks[j].text.as_str());
                    }
                }
            }
            j += 1;
        }
        let is_test = idents == ["test"]
            || (idents.contains(&"cfg") && idents.contains(&"test") && !idents.contains(&"not"));
        if !is_test {
            i = j + 1;
            continue;
        }
        // Find the attributed item's body `{` (skipping stacked
        // attributes and the signature); a `;` first means no body.
        let mut pd = 0i32;
        let mut k = j + 1;
        let mut open = None;
        while k < toks.len() {
            match toks[k].text.as_str() {
                "#" if pd == 0 && toks.get(k + 1).map(|t| t.text.as_str()) == Some("[") => {
                    let mut ad = 0i32;
                    k += 1;
                    while k < toks.len() {
                        match toks[k].text.as_str() {
                            "[" => ad += 1,
                            "]" => {
                                ad -= 1;
                                if ad == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                }
                "(" | "[" => pd += 1,
                ")" | "]" => pd -= 1,
                "{" if pd == 0 => {
                    open = Some(k);
                    break;
                }
                ";" if pd == 0 => break,
                _ => {}
            }
            k += 1;
        }
        if let Some(open) = open {
            spans.push((i, match_brace(lexed, open)));
        }
        i = j + 1;
    }
    spans
}

/// Extracts all function items from one file, attaching impl owners,
/// test membership, and `// pcn-lint: hot` marks. Returns the items
/// plus any unattached hot-mark lines.
fn extract_fns(lexed: &Lexed, tests: &[(usize, usize)]) -> (Vec<FnItem>, Vec<u32>) {
    let toks = &lexed.toks;
    let mut fns: Vec<FnItem> = Vec::new();
    let mut depth = 0i32;
    // (brace depth of the impl body, owning type name)
    let mut impl_stack: Vec<(i32, Option<String>)> = Vec::new();
    let mut pending_impl: Option<Option<String>> = None;
    let mut i = 0usize;
    while i < toks.len() {
        let tx = toks[i].text.as_str();
        match tx {
            "{" => {
                depth += 1;
                if let Some(owner) = pending_impl.take() {
                    impl_stack.push((depth, owner));
                }
            }
            "}" => {
                if impl_stack.last().is_some_and(|&(d, _)| d == depth) {
                    impl_stack.pop();
                }
                depth -= 1;
            }
            "impl" if toks[i].kind == TokKind::Ident => {
                // Parse the header up to the body `{`: the owner is
                // the last path ident at angle depth 0 (after `for`,
                // if present — `impl Trait for Type`).
                let mut angle = 0i32;
                let mut owner: Option<String> = None;
                let mut j = i + 1;
                while j < toks.len() {
                    let h = toks[j].text.as_str();
                    match h {
                        "<" => angle += 1,
                        "<<" => angle += 2,
                        ">" => angle -= 1,
                        ">>" => angle -= 2,
                        "{" | ";" if angle <= 0 => break,
                        "for" if angle == 0 => owner = None,
                        "where" if angle == 0 => {
                            while j + 1 < toks.len() && toks[j + 1].text != "{" {
                                j += 1;
                            }
                        }
                        _ if angle == 0 && toks[j].kind == TokKind::Ident => {
                            owner = Some(toks[j].text.clone());
                        }
                        _ => {}
                    }
                    j += 1;
                }
                pending_impl = Some(owner);
                i = j;
                continue;
            }
            "fn" if toks[i].kind == TokKind::Ident => {
                if let Some(name_tok) = toks.get(i + 1).filter(|t| t.kind == TokKind::Ident) {
                    // Find the body `{` at paren depth 0; a `;` first
                    // means a bodyless trait signature.
                    let mut pd = 0i32;
                    let mut j = i + 2;
                    let mut body = None;
                    while j < toks.len() {
                        match toks[j].text.as_str() {
                            "(" | "[" => pd += 1,
                            ")" | "]" => pd -= 1,
                            "{" if pd == 0 => {
                                body = Some((j, match_brace(lexed, j)));
                                break;
                            }
                            ";" if pd == 0 => break,
                            _ => {}
                        }
                        j += 1;
                    }
                    let in_test = tests.iter().any(|&(a, b)| i >= a && i <= b);
                    fns.push(FnItem {
                        name: name_tok.text.clone(),
                        owner: impl_stack.last().and_then(|(_, o)| o.clone()),
                        line: toks[i].line,
                        body,
                        hot: false,
                        is_test: in_test,
                    });
                }
            }
            _ => {}
        }
        i += 1;
    }
    // Attach hot marks: a mark binds to the first function item whose
    // signature starts on the mark's line (trailing comment) or within
    // the next few lines (mark directly above the `fn`).
    let mut unmatched = Vec::new();
    for &mark in &lexed.hot_marks {
        let target = fns
            .iter_mut()
            .filter(|f| f.body.is_some() && f.line >= mark && f.line <= mark + 4)
            .min_by_key(|f| f.line);
        match target {
            Some(f) => f.hot = true,
            None => unmatched.push(mark),
        }
    }
    (fns, unmatched)
}

/// Analyzes one crate's files together: extracts functions, builds the
/// call graph, runs reachability from the `// pcn-lint: hot` roots,
/// and returns one [`FileAnalysis`] per input file, in order.
pub fn analyze(files: &[&Lexed]) -> Vec<FileAnalysis> {
    let per_tests: Vec<Vec<(usize, usize)>> = files.iter().map(|l| test_spans(l)).collect();
    let mut per_fns: Vec<Vec<FnItem>> = Vec::new();
    let mut per_unmatched: Vec<Vec<u32>> = Vec::new();
    for (l, tests) in files.iter().zip(&per_tests) {
        let (fns, unmatched) = extract_fns(l, tests);
        per_fns.push(fns);
        per_unmatched.push(unmatched);
    }

    // Global ids for non-test functions with bodies.
    let mut ids: Vec<(usize, usize)> = Vec::new(); // (file, fn index)
    for (fi, fns) in per_fns.iter().enumerate() {
        for (xi, f) in fns.iter().enumerate() {
            if !f.is_test && f.body.is_some() {
                ids.push((fi, xi));
            }
        }
    }
    use std::collections::BTreeMap;
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut by_owner: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
    let mut free: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (gid, &(fi, xi)) in ids.iter().enumerate() {
        let f = &per_fns[fi][xi];
        by_name.entry(&f.name).or_default().push(gid);
        match &f.owner {
            Some(o) => by_owner.entry((o, &f.name)).or_default().push(gid),
            None => free.entry(&f.name).or_default().push(gid),
        }
    }

    // Call edges, then BFS from the hot roots.
    let mut edges: Vec<Vec<usize>> = vec![Vec::new(); ids.len()];
    for (gid, &(fi, xi)) in ids.iter().enumerate() {
        let f = &per_fns[fi][xi];
        let toks = &files[fi].toks;
        let (b0, b1) = f.body.expect("ids only hold bodied fns");
        for i in b0 + 1..b1 {
            let t = &toks[i];
            if t.kind != TokKind::Ident
                || toks.get(i + 1).map(|n| n.text.as_str()) != Some("(")
                || NON_CALL_KEYWORDS.contains(&t.text.as_str())
            {
                continue;
            }
            let prev = i.checked_sub(1).map(|p| toks[p].text.as_str());
            let targets: Option<&Vec<usize>> = if prev == Some(".") {
                by_name.get(t.text.as_str())
            } else if prev == Some("::") && i >= 2 && toks[i - 2].kind == TokKind::Ident {
                let owner = if toks[i - 2].text == "Self" {
                    f.owner.as_deref()
                } else {
                    Some(toks[i - 2].text.as_str())
                };
                owner.and_then(|o| by_owner.get(&(o, t.text.as_str())))
            } else if prev != Some("fn") {
                free.get(t.text.as_str())
            } else {
                None
            };
            if let Some(ts) = targets {
                edges[gid].extend(ts.iter().copied());
            }
        }
    }
    let mut reachable = vec![false; ids.len()];
    let mut work: Vec<usize> = ids
        .iter()
        .enumerate()
        .filter(|(_, &(fi, xi))| per_fns[fi][xi].hot)
        .map(|(gid, _)| gid)
        .collect();
    for &gid in &work {
        reachable[gid] = true;
    }
    while let Some(gid) = work.pop() {
        for &next in &edges[gid] {
            if !reachable[next] {
                reachable[next] = true;
                work.push(next);
            }
        }
    }

    let mut out: Vec<FileAnalysis> = per_tests
        .into_iter()
        .zip(per_unmatched)
        .map(|(tests, unmatched_hot_marks)| FileAnalysis {
            hot: Vec::new(),
            tests,
            unmatched_hot_marks,
        })
        .collect();
    for (gid, &(fi, xi)) in ids.iter().enumerate() {
        if reachable[gid] {
            let f = &per_fns[fi][xi];
            out[fi].hot.push(HotFn {
                name: f.qualified(),
                body: f.body.expect("ids only hold bodied fns"),
            });
        }
    }
    out
}

/// Single-file convenience for fixtures and CLI single-file mode:
/// the call graph is restricted to this file alone.
pub fn analyze_file(lexed: &Lexed) -> FileAnalysis {
    analyze(&[lexed]).pop().unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn hot_reachability_follows_methods_and_qualified_calls() {
        let src = "\
// pcn-lint: hot
fn run(q: &mut Q) { q.step(); Helper::tick(); cold_free(); }
impl Q { fn step(&mut self) { self.inner(); } fn inner(&mut self) {} }
impl Helper { fn tick() {} fn not_called() {} }
fn cold_free() {}
fn never_called() {}
";
        let l = lex(src);
        let a = analyze_file(&l);
        let names: Vec<&str> = a.hot.iter().map(|h| h.name.as_str()).collect();
        assert!(names.contains(&"run"), "{names:?}");
        assert!(names.contains(&"Q::step"), "{names:?}");
        assert!(names.contains(&"Q::inner"), "{names:?}");
        assert!(names.contains(&"Helper::tick"), "{names:?}");
        assert!(names.contains(&"cold_free"), "{names:?}");
        assert!(!names.contains(&"Helper::not_called"), "{names:?}");
        assert!(!names.contains(&"never_called"), "{names:?}");
    }

    #[test]
    fn unknown_qualified_owner_produces_no_edge() {
        // `Vec::with_capacity` must not mark every `with_capacity` in
        // the crate reachable.
        let src = "\
// pcn-lint: hot
fn run() { let v: Vec<u32> = Vec::with_capacity(4); let _ = v; }
impl Pool { fn with_capacity(n: usize) -> Pool { Pool }";
        let l = lex(&format!("{src} }}"));
        let a = analyze_file(&l);
        assert!(a.hot.iter().all(|h| h.name != "Pool::with_capacity"));
    }

    #[test]
    fn test_code_is_excluded_from_graph_and_spans() {
        let src = "\
// pcn-lint: hot
fn run(x: &X) { x.go(); }
impl X { fn go(&self) {} }
#[cfg(test)]
mod tests {
    fn go() { panic!(\"test helper\") }
    #[test]
    fn t() { go(); }
}
";
        let l = lex(src);
        let a = analyze_file(&l);
        // The test-module `go` must not become hot via the `.go()`
        // over-approximation, and its tokens are inside a test span.
        assert_eq!(a.hot.iter().filter(|h| h.name == "go").count(), 0);
        assert!(a.hot.iter().any(|h| h.name == "X::go"));
        let panic_tok = l
            .toks
            .iter()
            .position(|t| t.text == "panic")
            .expect("panic token present");
        assert!(a.in_test(panic_tok));
    }

    #[test]
    fn trait_impl_owner_is_the_implementing_type() {
        let src = "\
impl Router for LineRouter { fn route(&self) {} }
// pcn-lint: hot
fn drive(r: &dyn Router) { r.route(); }
";
        let l = lex(src);
        let a = analyze_file(&l);
        assert!(a.hot.iter().any(|h| h.name == "LineRouter::route"));
    }

    #[test]
    fn unmatched_hot_mark_is_reported() {
        let l = lex("// pcn-lint: hot\n\n\n\n\n\nconst X: u32 = 1;\n");
        let a = analyze_file(&l);
        assert_eq!(a.unmatched_hot_marks, vec![1]);
        assert!(a.hot.is_empty());
    }
}
