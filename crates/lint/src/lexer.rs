//! A small hand-rolled Rust token scanner.
//!
//! The linter does not need a full parser — every determinism rule in
//! [`crate::rules`] is expressible over a flat token stream plus line
//! numbers — but it *does* need to be exactly right about what is code
//! and what is not: string literals, raw strings, char literals,
//! lifetimes, and (nested) block comments must never leak tokens,
//! otherwise a doc comment mentioning `Instant::now` would fail D1.
//!
//! The scanner also extracts `// det-lint: allow(<rule>) — <why>` and
//! `// pcn-lint: allow(<rule>) — <why>` suppression annotations plus
//! `// pcn-lint: hot` root markers from line comments, because those
//! are the places where comments carry lint-relevant content.

/// What kind of token this is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`let`, `for`, `HashMap`, …).
    Ident,
    /// Punctuation; multi-char operators (`::`, `=>`, `==`, …) are one
    /// token so single-char matches (`=`, `:`) stay unambiguous.
    Punct,
    /// String / char / byte literal. `text` keeps the *contents* of
    /// string literals (without quotes) so rule D4 can inspect format
    /// strings; char literals keep their source form.
    Str,
    /// Numeric literal.
    Num,
    /// Lifetime (`'a`). Kept distinct so it never pollutes ident rules.
    Lifetime,
}

/// One token with its source line (1-based).
#[derive(Clone, Debug)]
pub struct Tok {
    /// 1-based line the token starts on.
    pub line: u32,
    /// Token text (see [`TokKind::Str`] for the literal convention).
    pub text: String,
    /// Token class.
    pub kind: TokKind,
}

/// Which annotation family a comment belongs to. The determinism rules
/// (D1–D4) read `det-lint:` comments; the performance/panic-safety
/// rules (P1–P3) read `pcn-lint:` comments. Keeping the namespaces
/// separate means a `det-lint: allow(hash-order)` can never
/// accidentally silence a hot-path allocation and vice versa.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AnnNs {
    /// `det-lint:` — determinism rules D1–D4.
    Det,
    /// `pcn-lint:` — hot-path/panic/amount rules P1–P3.
    Pcn,
}

impl AnnNs {
    /// The comment marker, without the trailing colon.
    pub fn marker(self) -> &'static str {
        match self {
            AnnNs::Det => "det-lint",
            AnnNs::Pcn => "pcn-lint",
        }
    }
}

/// A parsed `// det-lint: allow(<rule>) — <justification>` (or
/// `pcn-lint:`) annotation.
#[derive(Clone, Debug)]
pub struct Annotation {
    /// Line the annotation comment sits on.
    pub line: u32,
    /// Which marker introduced it (`det-lint:` vs `pcn-lint:`).
    pub ns: AnnNs,
    /// The rule name inside `allow(…)`, e.g. `hash-order`.
    pub rule: String,
    /// The free-text justification after the dash separator.
    pub justification: String,
}

/// A malformed `det-lint:` / `pcn-lint:` comment: the text after the
/// marker plus a reason. Always a lint error — a suppression that does
/// not parse must not silently suppress nothing.
#[derive(Clone, Debug)]
pub struct BadAnnotation {
    /// Line of the malformed annotation.
    pub line: u32,
    /// Why it failed to parse.
    pub reason: String,
}

/// Output of [`lex`].
#[derive(Default)]
pub struct Lexed {
    /// The token stream, comments and whitespace stripped.
    pub toks: Vec<Tok>,
    /// Well-formed suppression annotations, in line order.
    pub annotations: Vec<Annotation>,
    /// Malformed `det-lint:` / `pcn-lint:` comments.
    pub bad_annotations: Vec<BadAnnotation>,
    /// Lines carrying a `// pcn-lint: hot` root marker; the call-graph
    /// pass attaches each to the function item that follows it.
    pub hot_marks: Vec<u32>,
}

/// Multi-char operators that must lex as one token. Longest first.
const MULTI_PUNCT: &[&str] = &[
    "<<=", ">>=", "...", "..=", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=",
    "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>", "..",
];

/// Lexes `src` into tokens + det-lint annotations.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if b.get(i + 1) == Some(&b'/') => {
                let start = i + 2;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                let comment = &src[start..i];
                scan_annotation(comment, line, &mut out);
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                // Block comments nest in Rust.
                let mut depth = 1usize;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            b'"' => {
                let (text, ni, nl) = scan_string(src, i, line);
                out.toks.push(Tok {
                    line,
                    text,
                    kind: TokKind::Str,
                });
                i = ni;
                line = nl;
            }
            b'r' | b'b' if is_raw_or_byte_string(b, i) => {
                let (ni, nl) = scan_raw_or_byte(src, i, line, &mut out);
                i = ni;
                line = nl;
            }
            b'\'' => {
                // Lifetime or char literal. `'a` / `'static` are
                // lifetimes; `'a'`, `'\n'`, `'\u{1F600}'` are chars.
                let (ni, nl) = scan_quote(src, i, line, &mut out);
                i = ni;
                line = nl;
            }
            c if c == b'_' || c.is_ascii_alphabetic() => {
                let start = i;
                while i < b.len() && (b[i] == b'_' || b[i].is_ascii_alphanumeric()) {
                    i += 1;
                }
                out.toks.push(Tok {
                    line,
                    text: src[start..i].to_string(),
                    kind: TokKind::Ident,
                });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < b.len()
                    && (b[i] == b'_'
                        || b[i] == b'.' && b.get(i + 1).is_some_and(|d| d.is_ascii_digit())
                        || b[i].is_ascii_alphanumeric())
                {
                    // Stop `1..2` from consuming the range operator.
                    if b[i] == b'.' && b.get(i + 1) == Some(&b'.') {
                        break;
                    }
                    i += 1;
                }
                out.toks.push(Tok {
                    line,
                    text: src[start..i].to_string(),
                    kind: TokKind::Num,
                });
            }
            _ => {
                let rest = &src[i..];
                // Fall back to the full char width so multi-byte
                // punctuation (stray `…`/`—` in code position) never
                // splits a UTF-8 sequence.
                let mut matched = rest.chars().next().map_or(1, char::len_utf8);
                for op in MULTI_PUNCT {
                    if rest.starts_with(op) {
                        matched = op.len();
                        break;
                    }
                }
                out.toks.push(Tok {
                    line,
                    text: src[i..i + matched].to_string(),
                    kind: TokKind::Punct,
                });
                i += matched;
            }
        }
    }
    out
}

/// `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#` — but NOT the ident `r` or `b`
/// on its own (`b.get(…)`), and not raw identifiers (`r#match`): after
/// the optional `b`, optional `r`, and optional hashes there must be a
/// double quote.
fn is_raw_or_byte_string(b: &[u8], i: usize) -> bool {
    let mut j = i;
    if b.get(j) == Some(&b'b') {
        j += 1;
    }
    if b.get(j) == Some(&b'r') {
        j += 1;
        while b.get(j) == Some(&b'#') {
            j += 1;
        }
    }
    j > i && b.get(j) == Some(&b'"')
}

/// Scans a plain `"…"` string starting at `i`; returns (contents,
/// next index, next line).
fn scan_string(src: &str, i: usize, mut line: u32) -> (String, usize, u32) {
    let b = src.as_bytes();
    let start = i + 1;
    let mut j = start;
    while j < b.len() {
        match b[j] {
            b'\\' => j += 2,
            b'\n' => {
                line += 1;
                j += 1;
            }
            b'"' => {
                return (src[start..j].to_string(), j + 1, line);
            }
            _ => j += 1,
        }
    }
    (src[start..].to_string(), b.len(), line)
}

/// Scans raw / byte strings (`r#"…"#`, `b"…"`, `br"…"` …).
fn scan_raw_or_byte(src: &str, i: usize, mut line: u32, out: &mut Lexed) -> (usize, u32) {
    let b = src.as_bytes();
    let mut j = i;
    let mut raw = false;
    while j < b.len() && (b[j] == b'r' || b[j] == b'b') {
        raw |= b[j] == b'r';
        j += 1;
    }
    let mut hashes = 0usize;
    while j < b.len() && b[j] == b'#' {
        hashes += 1;
        j += 1;
    }
    debug_assert_eq!(b.get(j), Some(&b'"'));
    j += 1;
    let start = j;
    let closer = format!("\"{}", "#".repeat(hashes));
    if raw || hashes > 0 {
        // Raw: no escapes; find the exact closer.
        if let Some(off) = src[j..].find(&closer) {
            let contents = &src[start..j + off];
            line += contents.bytes().filter(|&c| c == b'\n').count() as u32;
            out.toks.push(Tok {
                line,
                text: contents.to_string(),
                kind: TokKind::Str,
            });
            return (j + off + closer.len(), line);
        }
        (b.len(), line)
    } else {
        // Byte string with escapes: same rules as a plain string.
        let (text, ni, nl) = scan_string(src, j - 1, line);
        out.toks.push(Tok {
            line,
            text,
            kind: TokKind::Str,
        });
        (ni, nl)
    }
}

/// Scans from a `'`: lifetime or char literal.
fn scan_quote(src: &str, i: usize, line: u32, out: &mut Lexed) -> (usize, u32) {
    let b = src.as_bytes();
    // `'\…'` is always a char literal.
    if b.get(i + 1) == Some(&b'\\') {
        let mut j = i + 2;
        while j < b.len() && b[j] != b'\'' {
            if b[j] == b'\\' {
                j += 1;
            }
            j += 1;
        }
        out.toks.push(Tok {
            line,
            text: src[i..(j + 1).min(src.len())].to_string(),
            kind: TokKind::Str,
        });
        return ((j + 1).min(src.len()), line);
    }
    // `'x'` (char, possibly multi-byte: `'—'`) vs `'x` / `'ident`
    // (lifetime): a lifetime is a run of ident chars NOT followed by a
    // closing quote.
    if let Some(ch) = src[i + 1..].chars().next() {
        let after = i + 1 + ch.len_utf8();
        if !ch.is_ascii() && b.get(after) == Some(&b'\'') {
            out.toks.push(Tok {
                line,
                text: src[i..after + 1].to_string(),
                kind: TokKind::Str,
            });
            return (after + 1, line);
        }
    }
    let mut j = i + 1;
    while j < b.len() && (b[j] == b'_' || b[j].is_ascii_alphanumeric()) {
        j += 1;
    }
    if j > i + 1 && b.get(j) == Some(&b'\'') {
        out.toks.push(Tok {
            line,
            text: src[i..j + 1].to_string(),
            kind: TokKind::Str,
        });
        (j + 1, line)
    } else {
        out.toks.push(Tok {
            line,
            text: src[i..j].to_string(),
            kind: TokKind::Lifetime,
        });
        (j.max(i + 1), line)
    }
}

/// Parses `det-lint:` / `pcn-lint:` content out of one line comment,
/// if present.
///
/// Only comments that *start* with the marker count (after stripping
/// doc-comment `/`/`!` prefixes): prose that merely mentions the
/// annotation syntax — like this very sentence — must not register.
fn scan_annotation(comment: &str, line: u32, out: &mut Lexed) {
    let trimmed = comment.trim_start_matches(['/', '!']).trim_start();
    if let Some(rest) = trimmed.strip_prefix("det-lint:") {
        scan_directive(AnnNs::Det, rest, line, out);
    } else if let Some(rest) = trimmed.strip_prefix("pcn-lint:") {
        scan_directive(AnnNs::Pcn, rest, line, out);
    }
}

/// Parses the directive body after a `det-lint:` / `pcn-lint:` marker:
/// `allow(<rule>) — <why>` for both namespaces, plus the bare `hot`
/// root marker (optionally followed by prose) for `pcn-lint:`.
fn scan_directive(ns: AnnNs, rest: &str, line: u32, out: &mut Lexed) {
    let rest = rest.trim();
    let marker = ns.marker();
    if ns == AnnNs::Pcn {
        if let Some(tail) = rest.strip_prefix("hot") {
            if tail.is_empty() || tail.starts_with([' ', '—', '-', ':']) {
                out.hot_marks.push(line);
                return;
            }
        }
    }
    let Some(args) = rest.strip_prefix("allow") else {
        let expected = match ns {
            AnnNs::Det => "expected `allow(<rule>)`",
            AnnNs::Pcn => "expected `allow(<rule>)` or `hot`",
        };
        out.bad_annotations.push(BadAnnotation {
            line,
            reason: format!("{expected} after `{marker}:`, found `{rest}`"),
        });
        return;
    };
    let args = args.trim_start();
    let Some(inner) = args.strip_prefix('(').and_then(|a| {
        a.find(')')
            .map(|close| (a[..close].trim().to_string(), a[close + 1..].trim()))
    }) else {
        out.bad_annotations.push(BadAnnotation {
            line,
            reason: format!("unclosed `allow(` in {marker} annotation"),
        });
        return;
    };
    let (rule, tail) = inner;
    if rule.is_empty() {
        out.bad_annotations.push(BadAnnotation {
            line,
            reason: format!("empty rule name in `{marker}: allow()`"),
        });
        return;
    }
    // Justification: everything after an em-dash / double-dash / colon
    // separator. Required — a suppression must say *why* the site is
    // order-insensitive (or otherwise exempt).
    let just = tail
        .trim_start_matches(['—', '-', ':', ' '])
        .trim()
        .to_string();
    if just.len() < 8 {
        out.bad_annotations.push(BadAnnotation {
            line,
            reason: format!("`{marker}: allow({rule})` needs a written justification after `—`"),
        });
        return;
    }
    out.annotations.push(Annotation {
        line,
        ns,
        rule,
        justification: just,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_and_strings_emit_no_code_tokens() {
        let src = r##"
            // Instant::now in a comment
            /* HashMap::iter in /* a nested */ block */
            let s = "Instant::now()";
            let r = r#"HashSet iteration"#;
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"Instant".to_string()));
        assert!(!ids.contains(&"HashMap".to_string()));
        assert!(ids.contains(&"let".to_string()));
    }

    #[test]
    fn string_contents_are_kept_for_format_inspection() {
        let l = lex(r#"format!("{:?}", m)"#);
        let lit: Vec<_> = l.toks.iter().filter(|t| t.kind == TokKind::Str).collect();
        assert_eq!(lit.len(), 1);
        assert_eq!(lit[0].text, "{:?}");
    }

    #[test]
    fn lifetimes_and_chars_disambiguate() {
        let l = lex("fn f<'a>(x: &'a str) { let c = 'x'; let nl = '\\n'; }");
        assert!(l
            .toks
            .iter()
            .any(|t| t.kind == TokKind::Lifetime && t.text == "'a"));
        assert!(l
            .toks
            .iter()
            .any(|t| t.kind == TokKind::Str && t.text == "'x'"));
    }

    #[test]
    fn double_colon_is_one_token() {
        let l = lex("Instant::now()");
        let texts: Vec<_> = l.toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, ["Instant", "::", "now", "(", ")"]);
    }

    #[test]
    fn annotation_with_justification_parses() {
        let l = lex("x.iter() // det-lint: allow(hash-order) — sum fold, order-insensitive\n");
        assert_eq!(l.annotations.len(), 1);
        assert_eq!(l.annotations[0].rule, "hash-order");
        assert!(l.annotations[0].justification.contains("order-insensitive"));
        assert!(l.bad_annotations.is_empty());
    }

    #[test]
    fn annotation_without_justification_is_bad() {
        let l = lex("// det-lint: allow(hash-order)\n");
        assert!(l.annotations.is_empty());
        assert_eq!(l.bad_annotations.len(), 1);
    }

    #[test]
    fn pcn_annotations_carry_their_namespace() {
        let l = lex("x.clone() // pcn-lint: allow(hot-alloc) — one Vec per run, not per event\n");
        assert_eq!(l.annotations.len(), 1);
        assert_eq!(l.annotations[0].ns, AnnNs::Pcn);
        assert_eq!(l.annotations[0].rule, "hot-alloc");
        let d = lex("// det-lint: allow(hash-order) — sum fold, order-insensitive\n");
        assert_eq!(d.annotations[0].ns, AnnNs::Det);
    }

    #[test]
    fn hot_marks_are_collected_with_optional_prose() {
        let l = lex("// pcn-lint: hot\nfn a() {}\n// pcn-lint: hot — DES event loop\nfn b() {}\n");
        assert_eq!(l.hot_marks, vec![1, 3]);
        assert!(l.bad_annotations.is_empty());
        // `hotel`-style prefixes and malformed pcn directives are bad,
        // not silently ignored.
        let bad = lex("// pcn-lint: hotel\n// pcn-lint: deny(x)\n");
        assert!(bad.hot_marks.is_empty());
        assert_eq!(bad.bad_annotations.len(), 2);
    }

    #[test]
    fn lines_are_tracked_through_multiline_strings() {
        let l = lex("let a = \"x\ny\";\nlet b = 1;");
        let b_tok = l.toks.iter().find(|t| t.text == "b").unwrap();
        assert_eq!(b_tok.line, 3);
    }
}
