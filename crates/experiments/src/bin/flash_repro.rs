//! `flash-repro` — regenerates the paper's tables and figures.
//!
//! ```text
//! flash-repro [--quick] [--out DIR] [--fig figN]...
//! ```
//!
//! Without `--fig`, every figure is regenerated. Results are printed as
//! markdown and also written to `DIR/<fig>.md` and `DIR/<fig>.csv`
//! (default `results/`).

use pcn_experiments::{figures, Effort, FigureResult};
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut effort = Effort::Paper;
    let mut out_dir = PathBuf::from("results");
    let mut figs: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => effort = Effort::Quick,
            "--out" => {
                i += 1;
                out_dir = PathBuf::from(args.get(i).expect("--out needs a directory"));
            }
            "--fig" => {
                i += 1;
                figs.push(args.get(i).expect("--fig needs a name").clone());
            }
            "--help" | "-h" => {
                eprintln!("usage: flash-repro [--quick] [--out DIR] [--fig figN]...");
                eprintln!(
                    "figures: fig3 fig4 fig6 fig7 fig8 fig9 fig10 fig11 fig12 fig13 latency churn"
                );
                return;
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if figs.is_empty() {
        figs = [
            "fig3", "fig4", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13",
            "latency", "churn",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }
    std::fs::create_dir_all(&out_dir).expect("create output directory");

    for name in figs {
        let wall_started = pcn_proto::wall_now();
        eprintln!("running {name} ({effort:?})...");
        let results: Vec<FigureResult> = match name.as_str() {
            "fig3" => figures::fig3::run(effort),
            "fig4" => figures::fig4::run(effort),
            "fig6" => figures::fig6::run(effort),
            "fig7" => figures::fig7::run(effort),
            "fig8" => figures::fig8::run(effort),
            "fig9" => figures::fig9::run(effort),
            "fig10" => figures::fig10::run(effort),
            "fig11" => figures::fig11::run(effort),
            "fig12" => figures::fig12::run(effort),
            "fig13" => figures::fig13::run(effort),
            "latency" => figures::latency::run(effort),
            "churn" => figures::churn::run(effort),
            other => {
                eprintln!("unknown figure: {other}");
                std::process::exit(2);
            }
        };
        eprintln!("  done in {:.1?}", wall_started.elapsed());
        for fig in &results {
            println!("{}", fig.to_markdown());
            std::fs::write(out_dir.join(format!("{}.md", fig.id)), fig.to_markdown())
                .expect("write markdown");
            std::fs::write(out_dir.join(format!("{}.csv", fig.id)), fig.to_csv())
                .expect("write csv");
        }
    }
}
