//! Figure 8: probing-message overhead, Flash vs Spider (2,000
//! transactions, capacity scale factor 10). SpeedyMurmurs and SP are
//! static schemes with zero probes and are excluded, as in the paper.

use crate::harness::{run_scheme, Effort, SimScheme, Topo, DEFAULT_MICE_FRACTION};
use crate::report::{FigureResult, Series};

/// Regenerates Figures 8a (Ripple) and 8b (Lightning). X encodes the
/// scheme index (0 = Flash, 1 = Spider) since the paper plots bars.
pub fn run(effort: Effort) -> Vec<FigureResult> {
    let mut out = Vec::new();
    for (topo, id) in [(Topo::Ripple, "fig8a"), (Topo::Lightning, "fig8b")] {
        let mut fig = FigureResult::new(
            id,
            format!("Probing messages, {}", topo.name()),
            "scheme (0=Flash, 1=Spider)",
            "number of probing messages",
        );
        for (x, scheme) in [(0.0, SimScheme::Flash), (1.0, SimScheme::Spider)] {
            let runs = effort.runs();
            let mut acc = 0.0;
            for r in 0..runs {
                let seed = 300 + 1000 * r;
                let mut net = topo.build_network(effort, seed);
                net.scale_balances(10);
                let trace = topo.build_trace(&net, effort.txns(), seed + 41);
                let m = run_scheme(&net, scheme, &trace, DEFAULT_MICE_FRACTION, seed);
                acc += m.probe_messages as f64;
            }
            let mut s = Series::new(scheme.label());
            s.push(x, acc / runs as f64);
            fig.series.push(s);
        }
        out.push(fig);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flash_probes_less_than_spider() {
        let figs = run(Effort::Quick);
        assert_eq!(figs.len(), 2);
        for fig in &figs {
            let flash = fig.series("Flash").unwrap().points[0].1;
            let spider = fig.series("Spider").unwrap().points[0].1;
            // "Flash saves 43% message overhead in Ripple and 37% in
            // Lightning" — assert the direction with slack at quick
            // scale.
            assert!(
                flash < spider,
                "{}: Flash probes {flash} not below Spider {spider}",
                fig.id
            );
        }
    }
}
