//! Figure 3: payment-size CDFs for Ripple (USD) and Bitcoin (satoshi).

use crate::harness::Effort;
use crate::report::{FigureResult, Series};
use pcn_workload::stats::empirical_cdf;
use pcn_workload::SizeModel;

/// Regenerates Figures 3a and 3b.
pub fn run(effort: Effort) -> Vec<FigureResult> {
    let n = match effort {
        Effort::Quick => 5_000,
        Effort::Paper => 200_000,
    };
    let mut out = Vec::new();
    for (id, title, model) in [
        (
            "fig3a",
            "Payment size CDF, Ripple (USD)",
            SizeModel::RippleUsd,
        ),
        (
            "fig3b",
            "Payment size CDF, Bitcoin (satoshi)",
            SizeModel::BitcoinSatoshi,
        ),
    ] {
        let samples: Vec<f64> = model
            .sample_many(n, 3)
            .iter()
            .map(|a| a.as_units_f64())
            .collect();
        let cdf = empirical_cdf(&samples, 40);
        let mut fig = FigureResult::new(id, title, "size", "CDF");
        let mut series = Series::new("CDF");
        for (v, f) in cdf {
            series.push(v, f);
        }
        fig.series.push(series);
        out.push(fig);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_two_monotone_cdfs() {
        let figs = run(Effort::Quick);
        assert_eq!(figs.len(), 2);
        for fig in &figs {
            let s = &fig.series[0];
            assert!(s.points.len() > 10);
            for w in s.points.windows(2) {
                assert!(w[0].1 <= w[1].1, "{} CDF not monotone", fig.id);
            }
            assert!((s.points.last().unwrap().1 - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn ripple_median_visible_in_cdf() {
        let figs = run(Effort::Quick);
        let s = &figs[0].series[0];
        // The point nearest F = 0.5 should sit around $4.8.
        let (v, _) = s
            .points
            .iter()
            .min_by(|a, b| (a.1 - 0.5).abs().partial_cmp(&(b.1 - 0.5).abs()).unwrap())
            .unwrap();
        assert!((1.0..30.0).contains(v), "median point {v} should be ≈ 4.8");
    }
}
