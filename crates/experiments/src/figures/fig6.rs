//! Figure 6: success ratio and success volume vs. capacity scale factor
//! (1–60), Ripple and Lightning, 2,000 transactions, four schemes.

use crate::harness::{run_scheme, Effort, SimScheme, Topo, DEFAULT_MICE_FRACTION};
use crate::report::{FigureResult, Series};

/// Schemes compared in Figures 6 and 7.
pub const SCHEMES: [SimScheme; 4] = [
    SimScheme::Flash,
    SimScheme::Spider,
    SimScheme::SpeedyMurmurs,
    SimScheme::ShortestPath,
];

/// Regenerates Figures 6a–6d.
pub fn run(effort: Effort) -> Vec<FigureResult> {
    let scales: &[u64] = match effort {
        Effort::Quick => &[1, 10, 40],
        // The paper sweeps {1,10,20,30,40,50,60}; the reproduction
        // keeps the endpoints and shape with 5 points.
        Effort::Paper => &[1, 10, 60],
    };
    let mut out = Vec::new();
    for (topo, ratio_id, vol_id) in [
        (Topo::Ripple, "fig6a", "fig6b"),
        (Topo::Lightning, "fig6c", "fig6d"),
    ] {
        let mut fig_ratio = FigureResult::new(
            ratio_id,
            format!("Success ratio vs capacity, {}", topo.name()),
            "capacity scale factor",
            "success ratio (%)",
        );
        let mut fig_vol = FigureResult::new(
            vol_id,
            format!("Success volume vs capacity, {}", topo.name()),
            "capacity scale factor",
            "success volume (native units)",
        );
        for scheme in SCHEMES {
            let mut s_ratio = Series::new(scheme.label());
            let mut s_vol = Series::new(scheme.label());
            for &scale in scales {
                let (mut ratio_acc, mut vol_acc) = (0.0, 0.0);
                let runs = effort.runs();
                for r in 0..runs {
                    let seed = 100 + 1000 * r;
                    let (net, trace) = build(topo, effort, scale, seed);
                    let m = run_scheme(&net, scheme, &trace, DEFAULT_MICE_FRACTION, seed);
                    ratio_acc += m.success_ratio() * 100.0;
                    vol_acc += m.success_volume().as_units_f64();
                }
                s_ratio.push(scale as f64, ratio_acc / runs as f64);
                s_vol.push(scale as f64, vol_acc / runs as f64);
            }
            fig_ratio.series.push(s_ratio);
            fig_vol.series.push(s_vol);
        }
        out.push(fig_ratio);
        out.push(fig_vol);
    }
    out
}

fn build(
    topo: Topo,
    effort: Effort,
    scale: u64,
    seed: u64,
) -> (pcn_sim::Network, Vec<pcn_types::Payment>) {
    let mut net = topo.build_network(effort, seed);
    net.scale_balances(scale);
    let trace = topo.build_trace(&net, effort.txns(), seed + 17);
    (net, trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_paper() {
        let figs = run(Effort::Quick);
        assert_eq!(figs.len(), 4);
        let ratio = &figs[0]; // fig6a: Ripple success ratio
        let vol = &figs[1]; // fig6b: Ripple success volume

        // Success ratio increases with capacity for Flash.
        let flash_ratio = ratio.series("Flash").unwrap();
        assert!(
            flash_ratio.y_at(40.0).unwrap() >= flash_ratio.y_at(1.0).unwrap(),
            "success ratio should not fall as capacity grows"
        );
        // Flash's success volume dominates SpeedyMurmurs and SP at high
        // capacity (the paper's headline result).
        let f = vol.series("Flash").unwrap().y_at(40.0).unwrap();
        let sm = vol.series("SpeedyMurmurs").unwrap().y_at(40.0).unwrap();
        let sp = vol.series("Shortest Path").unwrap().y_at(40.0).unwrap();
        assert!(f >= sm, "Flash volume {f} < SpeedyMurmurs {sm}");
        assert!(f >= sp, "Flash volume {f} < SP {sp}");
    }
}
