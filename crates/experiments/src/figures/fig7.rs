//! Figure 7: success ratio and volume vs. number of transactions
//! (1,000–6,000) at capacity scale factor 10.

use super::fig6::SCHEMES;
use crate::harness::{run_scheme, Effort, Topo, DEFAULT_MICE_FRACTION};
use crate::report::{FigureResult, Series};

/// Regenerates Figures 7a–7d.
pub fn run(effort: Effort) -> Vec<FigureResult> {
    let txn_counts: &[usize] = match effort {
        Effort::Quick => &[200, 600],
        // Paper: {1000..6000 step 1000}; endpoints + midpoint here.
        Effort::Paper => &[1000, 2000],
    };
    let mut out = Vec::new();
    for (topo, ratio_id, vol_id) in [
        (Topo::Ripple, "fig7a", "fig7b"),
        (Topo::Lightning, "fig7c", "fig7d"),
    ] {
        let mut fig_ratio = FigureResult::new(
            ratio_id,
            format!("Success ratio vs #transactions, {}", topo.name()),
            "number of transactions",
            "success ratio (%)",
        );
        let mut fig_vol = FigureResult::new(
            vol_id,
            format!("Success volume vs #transactions, {}", topo.name()),
            "number of transactions",
            "success volume (native units)",
        );
        for scheme in SCHEMES {
            let mut s_ratio = Series::new(scheme.label());
            let mut s_vol = Series::new(scheme.label());
            for &txns in txn_counts {
                let (mut ratio_acc, mut vol_acc) = (0.0, 0.0);
                let runs = effort.runs();
                for r in 0..runs {
                    let seed = 200 + 1000 * r;
                    let mut net = topo.build_network(effort, seed);
                    net.scale_balances(10);
                    let trace = topo.build_trace(&net, txns, seed + 31);
                    let m = run_scheme(&net, scheme, &trace, DEFAULT_MICE_FRACTION, seed);
                    ratio_acc += m.success_ratio() * 100.0;
                    vol_acc += m.success_volume().as_units_f64();
                }
                s_ratio.push(txns as f64, ratio_acc / runs as f64);
                s_vol.push(txns as f64, vol_acc / runs as f64);
            }
            fig_ratio.series.push(s_ratio);
            fig_vol.series.push(s_vol);
        }
        out.push(fig_ratio);
        out.push(fig_vol);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_degrades_with_load() {
        let figs = run(Effort::Quick);
        assert_eq!(figs.len(), 4);
        let ratio = &figs[0];
        // "With the increase of number of transactions, the success
        // ratio of all schemes degrades" — allow slack at quick scale.
        let flash = ratio.series("Flash").unwrap();
        let lo = flash.y_at(200.0).unwrap();
        let hi = flash.y_at(600.0).unwrap();
        assert!(hi <= lo + 15.0, "ratio at high load {hi} ≫ low load {lo}");
        // Volume grows with more transactions.
        let vol = figs[1].series("Flash").unwrap();
        assert!(vol.y_at(600.0).unwrap() >= vol.y_at(200.0).unwrap() * 0.8);
    }
}
