//! Figure 9: impact of the transaction-fee optimization — unit fee
//! (fees/volume, %) with and without the fee-minimizing LP, at 1,000 /
//! 2,000 / 4,000 transactions, with the paper's fee distribution (90%
//! of channels at 0.1–1%, 10% at 1–10%).

use crate::harness::{run_scheme, with_paper_fees, Effort, SimScheme, Topo, DEFAULT_MICE_FRACTION};
use crate::report::{FigureResult, Series};

/// Regenerates Figures 9a (Lightning) and 9b (Ripple).
pub fn run(effort: Effort) -> Vec<FigureResult> {
    let txn_counts: &[usize] = match effort {
        Effort::Quick => &[200, 400],
        Effort::Paper => &[1000, 2000],
    };
    let mut out = Vec::new();
    // The paper's panel order: (a) Lightning, (b) Ripple.
    for (topo, id) in [(Topo::Lightning, "fig9a"), (Topo::Ripple, "fig9b")] {
        let mut fig = FigureResult::new(
            id,
            format!("Fee ratio w/ and w/o optimization, {}", topo.name()),
            "number of transactions",
            "fees / volume (%)",
        );
        let mut with_opt = Series::new("w/ optimization");
        let mut without_opt = Series::new("w/o optimization");
        for &txns in txn_counts {
            let runs = effort.runs();
            let (mut acc_with, mut acc_without) = (0.0, 0.0);
            for r in 0..runs {
                let seed = 400 + 1000 * r;
                let mut net = topo.build_network(effort, seed);
                net.scale_balances(10);
                let net = with_paper_fees(&net, seed + 5);
                let trace = topo.build_trace(&net, txns, seed + 51);
                let m_with =
                    run_scheme(&net, SimScheme::Flash, &trace, DEFAULT_MICE_FRACTION, seed);
                let m_without = run_scheme(
                    &net,
                    SimScheme::FlashNoFeeOpt,
                    &trace,
                    DEFAULT_MICE_FRACTION,
                    seed,
                );
                acc_with += m_with.fee_ratio_percent();
                acc_without += m_without.fee_ratio_percent();
            }
            with_opt.push(txns as f64, acc_with / runs as f64);
            without_opt.push(txns as f64, acc_without / runs as f64);
        }
        fig.series.push(with_opt);
        fig.series.push(without_opt);
        out.push(fig);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimization_reduces_unit_fees() {
        let figs = run(Effort::Quick);
        assert_eq!(figs.len(), 2);
        for fig in &figs {
            for &(x, with) in &fig.series("w/ optimization").unwrap().points {
                let without = fig.series("w/o optimization").unwrap().y_at(x).unwrap();
                // "Flash reduces the transaction cost by around 40% on
                // average" — require an improvement, with slack for the
                // quick scale.
                assert!(
                    with <= without * 1.02,
                    "{} @ {x}: optimized fee {with}% exceeds unoptimized {without}%",
                    fig.id
                );
            }
        }
    }
}
