//! Shared driver for the testbed experiments (Figures 12 and 13).
//!
//! Every scheme routes through the same `flash-core` [`pcn_sim::Router`]
//! implementations the simulator uses, via the
//! [`pcn_sim::PaymentNetwork`] impl for [`Cluster`] — so the testbed
//! sweep now covers all five schemes (the paper's §5.2 ran three) and
//! reports the probe/commit message breakdown alongside the delay
//! panels.

use crate::harness::Effort;
use crate::report::{FigureResult, Series};
use flash_core::classify::threshold_for_mice_fraction;
use pcn_proto::{Cluster, SchemeKind, TestbedRunner};
use pcn_types::Amount;
use pcn_workload::testbed_topology;
use pcn_workload::trace::{generate_trace, TraceConfig};

/// The three capacity intervals of §5.2, USD.
pub const CAPACITY_INTERVALS: [(u64, u64); 3] = [(1000, 1500), (1500, 2000), (2000, 2500)];

/// The schemes the testbed compares — all five, SP first so the delay
/// panels can normalize against it.
pub const SCHEMES: [SchemeKind; 5] = SchemeKind::ALL;

/// Runs the full §5 testbed experiment for a node count, producing the
/// four panels of the paper (success volume, success ratio, normalized
/// overall delay, normalized mice delay) plus a message-overhead panel
/// (probe + commit messages, the Fig. 9-style breakdown).
pub fn run_testbed(nodes: usize, fig_prefix: &str, effort: Effort) -> Vec<FigureResult> {
    let txns = match effort {
        Effort::Quick => 60,
        // The paper uses 10,000; 1,000 keeps the full sweep (3 intervals
        // × 5 schemes × real TCP) tractable while preserving shape.
        Effort::Paper => 1000,
    };
    let mut fig_vol = FigureResult::new(
        format!("{fig_prefix}a"),
        format!("Testbed success volume, {nodes} nodes"),
        "capacity interval index",
        "success volume (USD)",
    );
    let mut fig_ratio = FigureResult::new(
        format!("{fig_prefix}b"),
        format!("Testbed success ratio, {nodes} nodes"),
        "capacity interval index",
        "success ratio (%)",
    );
    let mut fig_delay = FigureResult::new(
        format!("{fig_prefix}c"),
        format!("Testbed overall processing delay, {nodes} nodes"),
        "capacity interval index",
        "delay normalized to SP",
    );
    let mut fig_mice_delay = FigureResult::new(
        format!("{fig_prefix}d"),
        format!("Testbed mice processing delay, {nodes} nodes"),
        "capacity interval index",
        "mice delay normalized to SP",
    );
    let mut fig_messages = FigureResult::new(
        format!("{fig_prefix}e"),
        format!("Testbed message overhead, {nodes} nodes"),
        "capacity interval index",
        "probe + commit messages",
    );
    for scheme in SCHEMES {
        fig_vol.series.push(Series::new(scheme.name()));
        fig_ratio.series.push(Series::new(scheme.name()));
        fig_delay.series.push(Series::new(scheme.name()));
        fig_mice_delay.series.push(Series::new(scheme.name()));
        fig_messages.series.push(Series::new(scheme.name()));
    }

    for (i, &(lo, hi)) in CAPACITY_INTERVALS.iter().enumerate() {
        let x = i as f64;
        // One trace shared by all schemes on identical clusters.
        let seed = 42 + i as u64;
        let reference = testbed_topology(nodes, lo, hi, seed);
        let trace = generate_trace(reference.graph(), &TraceConfig::ripple(txns, seed + 7));
        let amounts: Vec<Amount> = trace.iter().map(|p| p.amount).collect();
        let threshold = threshold_for_mice_fraction(&amounts, 0.9);

        // SCHEMES runs SP first, which seeds the delay normalization.
        let mut sp_delay = 1.0f64;
        let mut sp_mice_delay = 1.0f64;
        for scheme in SCHEMES {
            let topo = testbed_topology(nodes, lo, hi, seed);
            let graph = topo.graph().clone();
            let balances: Vec<Amount> = graph.edges().map(|(e, _, _)| topo.balance(e)).collect();
            let cluster = Cluster::launch(graph, &balances).expect("cluster launches");
            let mut runner = TestbedRunner::new(cluster, scheme, threshold, seed + 13);
            let report = runner.run_trace(&trace);
            let delay_us = report.avg_delay().as_secs_f64() * 1e6;
            let mice_delay_us = report.avg_mice_delay().as_secs_f64() * 1e6;
            if scheme == SchemeKind::ShortestPath {
                sp_delay = delay_us.max(1e-9);
                sp_mice_delay = mice_delay_us.max(1e-9);
            }
            let label = scheme.name();
            fig_vol
                .series
                .iter_mut()
                .find(|s| s.label == label)
                .unwrap()
                .push(x, report.success_volume.as_units_f64());
            fig_ratio
                .series
                .iter_mut()
                .find(|s| s.label == label)
                .unwrap()
                .push(x, report.success_ratio() * 100.0);
            fig_delay
                .series
                .iter_mut()
                .find(|s| s.label == label)
                .unwrap()
                .push(x, delay_us / sp_delay);
            fig_mice_delay
                .series
                .iter_mut()
                .find(|s| s.label == label)
                .unwrap()
                .push(x, mice_delay_us / sp_mice_delay);
            fig_messages
                .series
                .iter_mut()
                .find(|s| s.label == label)
                .unwrap()
                .push(x, report.total_messages() as f64);
        }
    }
    vec![fig_vol, fig_ratio, fig_delay, fig_mice_delay, fig_messages]
}
