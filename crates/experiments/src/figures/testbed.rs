//! Shared driver for the testbed experiments (Figures 12 and 13).
//!
//! Every scheme routes through the same `flash-core` [`pcn_sim::Router`]
//! implementations the simulator uses, via the
//! [`pcn_sim::PaymentNetwork`] impl for `pcn_proto::Cluster` — so the
//! testbed sweep now covers all five schemes (the paper's §5.2 ran
//! three) and reports the probe/commit message breakdown alongside the
//! delay panels. Each (scheme, interval) cell is one declarative
//! [`pcn_scenario`] run: the scenario deploys the cluster, derives the
//! elephant threshold, and checks funds/message conservation as run
//! invariants.

use crate::harness::Effort;
use crate::report::{FigureResult, Series};
use pcn_proto::SchemeKind;
use pcn_scenario::{Invariant, ScenarioBuilder, TopologySpec, WorkloadSpec};
use pcn_workload::testbed_topology;
use pcn_workload::trace::{generate_trace, TraceConfig};

/// The three capacity intervals of §5.2, USD.
pub const CAPACITY_INTERVALS: [(u64, u64); 3] = [(1000, 1500), (1500, 2000), (2000, 2500)];

/// The schemes the testbed compares — all five, SP first so the delay
/// panels can normalize against it.
pub const SCHEMES: [SchemeKind; 5] = SchemeKind::ALL;

/// Runs the full §5 testbed experiment for a node count, producing the
/// four panels of the paper (success volume, success ratio, normalized
/// overall delay, normalized mice delay) plus a message-overhead panel
/// (probe + commit messages, the Fig. 9-style breakdown).
pub fn run_testbed(nodes: usize, fig_prefix: &str, effort: Effort) -> Vec<FigureResult> {
    let txns = match effort {
        Effort::Quick => 60,
        // The paper uses 10,000; 1,000 keeps the full sweep (3 intervals
        // × 5 schemes × real TCP) tractable while preserving shape.
        Effort::Paper => 1000,
    };
    let mut fig_vol = FigureResult::new(
        format!("{fig_prefix}a"),
        format!("Testbed success volume, {nodes} nodes"),
        "capacity interval index",
        "success volume (USD)",
    );
    let mut fig_ratio = FigureResult::new(
        format!("{fig_prefix}b"),
        format!("Testbed success ratio, {nodes} nodes"),
        "capacity interval index",
        "success ratio (%)",
    );
    let mut fig_delay = FigureResult::new(
        format!("{fig_prefix}c"),
        format!("Testbed overall processing delay, {nodes} nodes"),
        "capacity interval index",
        "delay normalized to SP",
    );
    let mut fig_mice_delay = FigureResult::new(
        format!("{fig_prefix}d"),
        format!("Testbed mice processing delay, {nodes} nodes"),
        "capacity interval index",
        "mice delay normalized to SP",
    );
    let mut fig_messages = FigureResult::new(
        format!("{fig_prefix}e"),
        format!("Testbed message overhead, {nodes} nodes"),
        "capacity interval index",
        "probe + commit messages",
    );
    for scheme in SCHEMES {
        fig_vol.series.push(Series::new(scheme.name()));
        fig_ratio.series.push(Series::new(scheme.name()));
        fig_delay.series.push(Series::new(scheme.name()));
        fig_mice_delay.series.push(Series::new(scheme.name()));
        fig_messages.series.push(Series::new(scheme.name()));
    }

    for (i, &(lo, hi)) in CAPACITY_INTERVALS.iter().enumerate() {
        let x = i as f64;
        // One trace shared by all schemes on identical clusters. The
        // scenario derives the 90%-mice threshold from this same trace,
        // so every scheme classifies identically.
        let seed = 42 + i as u64;
        let reference = testbed_topology(nodes, lo, hi, seed);
        let trace = generate_trace(reference.graph(), &TraceConfig::ripple(txns, seed + 7));

        // SCHEMES runs SP first, which seeds the delay normalization.
        let mut sp_delay = 1.0f64;
        let mut sp_mice_delay = 1.0f64;
        for scheme in SCHEMES {
            let report = ScenarioBuilder::new(
                format!("{fig_prefix}-{}-interval{i}", scheme.name()),
                TopologySpec::Testbed {
                    n: nodes,
                    lo,
                    hi,
                    seed,
                },
            )
            .workload(WorkloadSpec::Explicit(trace.clone()))
            .scheme(scheme)
            .seed(seed + 13)
            .expect(Invariant::FundsConserved)
            .expect(Invariant::MessagesConserved)
            .build()
            .run()
            .expect("scenario runs");
            assert!(
                report.all_invariants_hold(),
                "{}: {:?}",
                report.name,
                report.failed_invariants()
            );
            let delay_us = report.avg_delay_ms * 1e3;
            let mice_delay_us = report.avg_mice_delay_ms * 1e3;
            if scheme == SchemeKind::ShortestPath {
                sp_delay = delay_us.max(1e-9);
                sp_mice_delay = mice_delay_us.max(1e-9);
            }
            let label = scheme.name();
            fig_vol
                .series
                .iter_mut()
                .find(|s| s.label == label)
                .unwrap()
                .push(x, report.success_volume_micros as f64 / 1e6);
            fig_ratio
                .series
                .iter_mut()
                .find(|s| s.label == label)
                .unwrap()
                .push(x, report.success_ratio * 100.0);
            fig_delay
                .series
                .iter_mut()
                .find(|s| s.label == label)
                .unwrap()
                .push(x, delay_us / sp_delay);
            fig_mice_delay
                .series
                .iter_mut()
                .find(|s| s.label == label)
                .unwrap()
                .push(x, mice_delay_us / sp_mice_delay);
            fig_messages
                .series
                .iter_mut()
                .find(|s| s.label == label)
                .unwrap()
                .push(x, (report.probe_messages + report.commit_messages) as f64);
        }
    }
    vec![fig_vol, fig_ratio, fig_delay, fig_mice_delay, fig_messages]
}
