//! Load vs. latency on the discrete-event engine (beyond the paper).
//!
//! The paper reports per-payment processing *delay* on the testbed
//! (Figures 12c/d, 13c/d) but its simulator is instantaneous, so it
//! cannot relate offered load to completion latency or show the
//! throughput knee where in-flight contention starts failing payments.
//! This sweep drives all five schemes through `pcn_sim::des` on the
//! §5.2 Watts–Strogatz testbed topology under a Poisson arrival
//! process and plots, per offered load:
//!
//! * `lat_a` — success ratio;
//! * `lat_b` — p95 completion latency (admission → final settlement,
//!   virtual ms);
//! * `lat_c` — delivered throughput (successful payments per virtual
//!   second);
//! * `lat_d` — p95 per-message queueing delay behind node backlogs
//!   (virtual ms).
//!
//! Delay has two halves: per-hop *propagation* ([`LatencyModel`],
//! load-independent) and per-node *service*
//! ([`ServiceModel`], [`NODE_SERVICE_MS`] of
//! deterministic processing behind a FIFO backlog — M/D/1 per node).
//! Service is what couples `lat_b` to load: at low offered load nodes
//! are mostly idle and completion latency is set by hop counts alone,
//! while at high load messages pile up behind busy nodes and `lat_b`
//! rises toward the congestion knee that `lat_a`/`lat_c` show from the
//! success side. (Before service queues existed, `lat_b` was nearly
//! flat across a 16× load spread — the committed `BENCH_e2e.json`
//! even recorded bit-identical percentiles at 50 and 400 pps, which is
//! exactly the physical suspicion the CI `bench_gate` now rejects.)

use crate::harness::{run_scheme_des, DesLoad, Effort, SimScheme, DEFAULT_MICE_FRACTION};
use crate::report::{FigureResult, Series};
use pcn_sim::{ChurnRate, LatencyModel, ServiceModel};
use pcn_workload::testbed_topology;
use pcn_workload::trace::{generate_trace, TraceConfig};

/// All five schemes, exactly as they run on the other two backends.
pub const SCHEMES: [SimScheme; 5] = SimScheme::ALL;

/// Per-hop message *propagation* latency of the sweep: 25ms, the order
/// the paper's LAN testbed measures per-hop processing in (§5.2).
pub const HOP_LATENCY_MS: u64 = 25;

/// Per-node message *service* time of the sweep: each delivered
/// message occupies the receiving node's single server for 10ms behind
/// a FIFO backlog (the paper's testbed measures per-hop processing in
/// the tens of milliseconds, §5.2). Small enough against the 25ms
/// propagation that lightly loaded paths keep their hop-count latency,
/// large enough that busy nodes run at 0.3–0.9 utilization inside the
/// swept load range and the latency knee appears.
pub const NODE_SERVICE_MS: u64 = 10;

/// Regenerates the load sweep (`lat_a`–`lat_d`).
pub fn run(effort: Effort) -> Vec<FigureResult> {
    let (nodes, txns, loads): (usize, usize, &[f64]) = match effort {
        Effort::Quick => (60, 150, &[50.0, 200.0]),
        Effort::Paper => (200, 600, &[25.0, 100.0, 400.0]),
    };
    let mut fig_ratio = FigureResult::new(
        "lat_a",
        format!("Success ratio vs offered load (DES, {nodes}-node testbed topology)"),
        "offered load (payments/s)",
        "success ratio (%)",
    );
    let mut fig_p95 = FigureResult::new(
        "lat_b",
        format!("p95 completion latency vs offered load (DES, {nodes}-node testbed topology)"),
        "offered load (payments/s)",
        "p95 completion latency (virtual ms)",
    );
    let mut fig_tput = FigureResult::new(
        "lat_c",
        format!("Delivered throughput vs offered load (DES, {nodes}-node testbed topology)"),
        "offered load (payments/s)",
        "successful payments per virtual second",
    );
    let mut fig_queue = FigureResult::new(
        "lat_d",
        format!("p95 queueing delay vs offered load (DES, {nodes}-node testbed topology)"),
        "offered load (payments/s)",
        "p95 per-message queueing delay (virtual ms)",
    );
    let seed = 97;
    let net = testbed_topology(nodes, 1000, 1500, seed);
    let trace = generate_trace(net.graph(), &TraceConfig::ripple(txns, seed + 7));
    for scheme in SCHEMES {
        let mut s_ratio = Series::new(scheme.label());
        let mut s_p95 = Series::new(scheme.label());
        let mut s_tput = Series::new(scheme.label());
        let mut s_queue = Series::new(scheme.label());
        for &load in loads {
            let report = run_scheme_des(
                &net,
                scheme,
                &trace,
                DEFAULT_MICE_FRACTION,
                seed + 31,
                DesLoad {
                    rate_per_sec: load,
                    latency: LatencyModel::constant_ms(HOP_LATENCY_MS),
                    service: ServiceModel::constant_ms(NODE_SERVICE_MS),
                    churn: ChurnRate::zero(),
                },
            );
            s_ratio.push(load, report.metrics.success_ratio() * 100.0);
            s_p95.push(load, report.latency_ms(0.95));
            s_tput.push(load, report.throughput_pps);
            s_queue.push(load, report.queue_delay_ms(0.95));
        }
        fig_ratio.series.push(s_ratio);
        fig_p95.series.push(s_p95);
        fig_tput.series.push(s_tput);
        fig_queue.series.push(s_queue);
    }
    vec![fig_ratio, fig_p95, fig_tput, fig_queue]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_all_schemes_and_loads() {
        let figs = run(Effort::Quick);
        assert_eq!(figs.len(), 4);
        for fig in &figs {
            assert_eq!(fig.series.len(), SCHEMES.len());
            for s in &fig.series {
                assert_eq!(s.points.len(), 2, "{}: {}", fig.id, s.label);
            }
        }
        // Latencies are nonzero whenever anything succeeded: a payment
        // cannot settle faster than one hop's delay.
        let p95 = figs.iter().find(|f| f.id == "lat_b").unwrap();
        let ratio = figs.iter().find(|f| f.id == "lat_a").unwrap();
        for s in &p95.series {
            let succeeded = ratio.series(&s.label).unwrap().points[0].1 > 0.0;
            if succeeded {
                assert!(
                    s.points[0].1 >= HOP_LATENCY_MS as f64,
                    "{} p95 {} below one hop delay",
                    s.label,
                    s.points[0].1
                );
            }
        }
    }

    #[test]
    fn latency_responds_to_load() {
        // The flat-curve regression this module used to carry: across
        // the quick sweep's 4× load spread, p95 completion latency must
        // rise for most schemes (queueing at busy nodes), and the
        // queueing-delay panel must show why.
        let figs = run(Effort::Quick);
        let p95 = figs.iter().find(|f| f.id == "lat_b").unwrap();
        let queue = figs.iter().find(|f| f.id == "lat_d").unwrap();
        let rising = p95
            .series
            .iter()
            .filter(|s| s.points[1].1 > s.points[0].1)
            .count();
        assert!(
            rising >= 4,
            "p95 latency must rise with load for most schemes ({rising}/5 rose)"
        );
        let queueing = queue
            .series
            .iter()
            .filter(|s| s.points[1].1 > s.points[0].1)
            .count();
        assert!(
            queueing >= 4,
            "queueing delay must grow with load ({queueing}/5 grew)"
        );
    }

    #[test]
    fn sweep_is_deterministic() {
        let a = run(Effort::Quick);
        let b = run(Effort::Quick);
        for (fa, fb) in a.iter().zip(&b) {
            for (sa, sb) in fa.series.iter().zip(&fb.series) {
                assert_eq!(sa.points, sb.points, "{} {}", fa.id, sa.label);
            }
        }
    }
}
