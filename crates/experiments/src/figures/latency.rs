//! Load vs. latency on the discrete-event engine (beyond the paper).
//!
//! The paper reports per-payment processing *delay* on the testbed
//! (Figures 12c/d, 13c/d) but its simulator is instantaneous, so it
//! cannot relate offered load to completion latency or show the
//! throughput knee where in-flight contention starts failing payments.
//! This sweep drives all five schemes through `pcn_sim::des` on the
//! §5.2 Watts–Strogatz testbed topology under a Poisson arrival
//! process and plots, per offered load:
//!
//! * `lat_a` — success ratio;
//! * `lat_b` — p95 completion latency (admission → final settlement,
//!   virtual ms);
//! * `lat_c` — delivered throughput (successful payments per virtual
//!   second).
//!
//! A modeling caveat for reading `lat_b`: hop delays come from
//! [`LatencyModel`] only — there is no per-node service queue — so a
//! payment's completion latency is set by the hop counts of the waves
//! it sends, not by how busy the network is. Load moves `lat_b` only
//! indirectly (contention changes which payments succeed and how many
//! paths/retries they need), so the curve is nearly flat; the
//! load-dependent signals are `lat_a` (success ratio) and `lat_c`
//! (delivered throughput, including the saturation knee). Queueing
//! delay at nodes is a candidate extension tracked in ROADMAP.md.

use crate::harness::{run_scheme_des, Effort, SimScheme, DEFAULT_MICE_FRACTION};
use crate::report::{FigureResult, Series};
use pcn_sim::LatencyModel;
use pcn_workload::testbed_topology;
use pcn_workload::trace::{generate_trace, TraceConfig};

/// All five schemes, exactly as they run on the other two backends.
pub const SCHEMES: [SimScheme; 5] = SimScheme::ALL;

/// Per-hop message latency of the sweep: 25ms, the order the paper's
/// LAN testbed measures per-hop processing in (§5.2).
pub const HOP_LATENCY_MS: u64 = 25;

/// Regenerates the load sweep (`lat_a`–`lat_c`).
pub fn run(effort: Effort) -> Vec<FigureResult> {
    let (nodes, txns, loads): (usize, usize, &[f64]) = match effort {
        Effort::Quick => (60, 150, &[50.0, 200.0]),
        Effort::Paper => (200, 600, &[25.0, 100.0, 400.0]),
    };
    let mut fig_ratio = FigureResult::new(
        "lat_a",
        format!("Success ratio vs offered load (DES, {nodes}-node testbed topology)"),
        "offered load (payments/s)",
        "success ratio (%)",
    );
    let mut fig_p95 = FigureResult::new(
        "lat_b",
        format!("p95 completion latency vs offered load (DES, {nodes}-node testbed topology)"),
        "offered load (payments/s)",
        "p95 completion latency (virtual ms)",
    );
    let mut fig_tput = FigureResult::new(
        "lat_c",
        format!("Delivered throughput vs offered load (DES, {nodes}-node testbed topology)"),
        "offered load (payments/s)",
        "successful payments per virtual second",
    );
    let seed = 97;
    let net = testbed_topology(nodes, 1000, 1500, seed);
    let trace = generate_trace(net.graph(), &TraceConfig::ripple(txns, seed + 7));
    for scheme in SCHEMES {
        let mut s_ratio = Series::new(scheme.label());
        let mut s_p95 = Series::new(scheme.label());
        let mut s_tput = Series::new(scheme.label());
        for &load in loads {
            let report = run_scheme_des(
                &net,
                scheme,
                &trace,
                DEFAULT_MICE_FRACTION,
                seed + 31,
                load,
                LatencyModel::constant_ms(HOP_LATENCY_MS),
            );
            s_ratio.push(load, report.metrics.success_ratio() * 100.0);
            s_p95.push(load, report.latency_ms(0.95));
            s_tput.push(load, report.throughput_pps);
        }
        fig_ratio.series.push(s_ratio);
        fig_p95.series.push(s_p95);
        fig_tput.series.push(s_tput);
    }
    vec![fig_ratio, fig_p95, fig_tput]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_all_schemes_and_loads() {
        let figs = run(Effort::Quick);
        assert_eq!(figs.len(), 3);
        for fig in &figs {
            assert_eq!(fig.series.len(), SCHEMES.len());
            for s in &fig.series {
                assert_eq!(s.points.len(), 2, "{}: {}", fig.id, s.label);
            }
        }
        // Latencies are nonzero whenever anything succeeded: a payment
        // cannot settle faster than one hop's delay.
        let p95 = figs.iter().find(|f| f.id == "lat_b").unwrap();
        let ratio = figs.iter().find(|f| f.id == "lat_a").unwrap();
        for s in &p95.series {
            let succeeded = ratio.series(&s.label).unwrap().points[0].1 > 0.0;
            if succeeded {
                assert!(
                    s.points[0].1 >= HOP_LATENCY_MS as f64,
                    "{} p95 {} below one hop delay",
                    s.label,
                    s.points[0].1
                );
            }
        }
    }

    #[test]
    fn sweep_is_deterministic() {
        let a = run(Effort::Quick);
        let b = run(Effort::Quick);
        for (fa, fb) in a.iter().zip(&b) {
            for (sa, sb) in fa.series.iter().zip(&fb.series) {
                assert_eq!(sa.points, sb.points, "{} {}", fa.id, sa.label);
            }
        }
    }
}
