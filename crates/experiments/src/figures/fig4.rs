//! Figure 4: recurrence analysis — CDF over days of (a) the fraction of
//! recurring transactions and (b) the top-5 recurring share.

use crate::harness::Effort;
use crate::report::{FigureResult, Series};
use pcn_graph::generators;
use pcn_workload::stats::{daily_recurrence, empirical_cdf};
use pcn_workload::trace::{generate_trace, TraceConfig};

/// Regenerates Figures 4a and 4b.
pub fn run(effort: Effort) -> Vec<FigureResult> {
    let (days, per_day, nodes) = match effort {
        Effort::Quick => (40, 400, 150),
        Effort::Paper => (200, 2000, 1870),
    };
    // Pair structure only; topology just has to be large enough.
    let g = generators::scale_free_with_channels(nodes, nodes * 4, 11);
    let mut config = TraceConfig::ripple(days * per_day, 13);
    config.require_connectivity = false; // pure pair-structure statistics
    let trace = generate_trace(&g, &config);
    let daily = daily_recurrence(&trace, per_day);

    let recurring: Vec<f64> = daily.iter().map(|d| d.recurring_fraction).collect();
    let top5: Vec<f64> = daily.iter().map(|d| d.top5_share).collect();

    let mut fig_a = FigureResult::new(
        "fig4a",
        "CDF of daily recurring-transaction fraction",
        "fraction recurring",
        "CDF",
    );
    let mut s = Series::new("CDF");
    for (v, f) in empirical_cdf(&recurring, 30) {
        s.push(v, f);
    }
    fig_a.series.push(s);

    let mut fig_b = FigureResult::new(
        "fig4b",
        "CDF of per-day top-5 recurring share",
        "top-5 share of recurring",
        "CDF",
    );
    let mut s = Series::new("CDF");
    for (v, f) in empirical_cdf(&top5, 30) {
        s.push(v, f);
    }
    fig_b.series.push(s);

    vec![fig_a, fig_b]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_recurrence_near_paper_value() {
        let figs = run(Effort::Quick);
        let s = &figs[0].series[0];
        // Median of the daily recurring fraction ≈ 0.86 (paper, Fig 4a).
        let (median, _) = s
            .points
            .iter()
            .min_by(|a, b| (a.1 - 0.5).abs().partial_cmp(&(b.1 - 0.5).abs()).unwrap())
            .unwrap();
        assert!(
            (0.7..=0.95).contains(median),
            "median recurring fraction {median} should be ≈ 0.86"
        );
    }

    #[test]
    fn top5_share_is_high() {
        let figs = run(Effort::Quick);
        let s = &figs[1].series[0];
        let (median, _) = s
            .points
            .iter()
            .min_by(|a, b| (a.1 - 0.5).abs().partial_cmp(&(b.1 - 0.5).abs()).unwrap())
            .unwrap();
        assert!(
            *median >= 0.6,
            "median top-5 share {median} should be ≳ 0.7"
        );
    }
}
