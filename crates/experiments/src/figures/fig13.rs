//! Figure 13: testbed results on the 100-node Watts–Strogatz network.

use super::testbed::run_testbed;
use crate::harness::Effort;
use crate::report::FigureResult;

/// Regenerates Figures 13a–13d, plus the message-overhead panel 13e.
pub fn run(effort: Effort) -> Vec<FigureResult> {
    let nodes = match effort {
        Effort::Quick => 30,
        Effort::Paper => 100,
    };
    run_testbed(nodes, "fig13", effort)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hundred_node_variant_runs() {
        let figs = run(Effort::Quick);
        assert_eq!(figs.len(), 5);
        assert_eq!(figs[0].id, "fig13a");
        // All five schemes produced data for every interval.
        for fig in &figs {
            assert_eq!(fig.series.len(), 5);
            for s in &fig.series {
                assert_eq!(s.points.len(), 3);
            }
        }
    }
}
