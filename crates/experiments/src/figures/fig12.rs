//! Figure 12: testbed results on the 50-node Watts–Strogatz network.

use super::testbed::run_testbed;
use crate::harness::Effort;
use crate::report::FigureResult;

/// Regenerates Figures 12a–12d, plus the message-overhead panel 12e.
pub fn run(effort: Effort) -> Vec<FigureResult> {
    let nodes = match effort {
        Effort::Quick => 20,
        Effort::Paper => 50,
    };
    run_testbed(nodes, "fig12", effort)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn testbed_panels_have_all_schemes() {
        let figs = run(Effort::Quick);
        assert_eq!(figs.len(), 5);
        for fig in &figs {
            assert_eq!(fig.series.len(), 5, "{}: all five schemes", fig.id);
            for s in &fig.series {
                assert_eq!(s.points.len(), 3, "{}/{}", fig.id, s.label);
            }
        }
        // Flash success volume ≥ SP's in every interval (paper: much
        // larger than Spider, far above SP).
        let vol = &figs[0];
        for i in 0..3 {
            let f = vol.series("Flash").unwrap().y_at(i as f64).unwrap();
            let sp = vol.series("SP").unwrap().y_at(i as f64).unwrap();
            assert!(f >= sp * 0.8, "interval {i}: Flash {f} ≪ SP {sp}");
        }
        // SP's normalized delay is 1 by construction.
        let delay = &figs[2];
        for i in 0..3 {
            let sp = delay.series("SP").unwrap().y_at(i as f64).unwrap();
            assert!((sp - 1.0).abs() < 1e-6);
        }
        // Message breakdown: the static schemes send commit traffic but
        // never probe, so probing schemes must out-message SP.
        let msgs = &figs[4];
        for i in 0..3 {
            let f = msgs.series("Flash").unwrap().y_at(i as f64).unwrap();
            let sp = msgs.series("SP").unwrap().y_at(i as f64).unwrap();
            assert!(sp > 0.0, "SP sends commit messages");
            assert!(f >= sp, "interval {i}: Flash messages {f} < SP {sp}");
        }
    }
}
