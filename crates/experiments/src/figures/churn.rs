//! Success and latency under topology churn (beyond the paper).
//!
//! The paper's simulator assumes a static channel graph, but §5.1's
//! staleness discussion — probed state going bad between probe and
//! commit — is exactly what topology churn produces at scale: channels
//! close mid-payment, nodes crash while serving commits, balances
//! deplete. This sweep drives all five schemes through `pcn_sim::des`
//! with a seeded [`ChurnRate`] and plots, per churn intensity:
//!
//! * `churn_a` — success ratio;
//! * `churn_b` — p95 completion latency (virtual ms).
//!
//! The sweep variable is the channel-close intensity (closes per
//! virtual second across the network); node crashes and balance drains
//! ride along at a tenth of it, and [`CHURN_DOWNTIME_SECS`] keeps
//! everything that fails down for the rest of the run, so success must
//! fall monotonically with the rate — the shape `bench_gate churn`
//! enforces on the committed `BENCH_churn.json`.

use crate::harness::{run_scheme_des, DesLoad, Effort, SimScheme, DEFAULT_MICE_FRACTION};
use crate::report::{FigureResult, Series};
use pcn_sim::{ChurnRate, LatencyModel, ServiceModel, SimTime};
use pcn_workload::testbed_topology;
use pcn_workload::trace::{generate_trace, TraceConfig};

/// All five schemes, exactly as they run on the other two backends.
pub const SCHEMES: [SimScheme; 5] = SimScheme::ALL;

/// Per-hop propagation latency, matching the load sweep.
pub const HOP_LATENCY_MS: u64 = 25;

/// Per-node service time, matching the load sweep.
pub const NODE_SERVICE_MS: u64 = 10;

/// Offered load of the sweep (payments per virtual second) — fixed, so
/// churn intensity is the only thing varying between points.
pub const OFFERED_LOAD_PPS: f64 = 100.0;

/// How long closed channels stay closed and crashed nodes stay down:
/// longer than any run's horizon, so churn damage accumulates and the
/// success-vs-churn curve is cleanly monotone.
pub const CHURN_DOWNTIME_SECS: u64 = 3_600;

/// The full churn mix at a given channel-close intensity: node crashes
/// and balance drains ride along at a tenth of the close rate.
pub fn churn_mix(closes_per_sec: f64) -> ChurnRate {
    ChurnRate {
        closes_per_sec,
        node_downs_per_sec: closes_per_sec / 10.0,
        drains_per_sec: closes_per_sec / 10.0,
        downtime: SimTime::from_secs(CHURN_DOWNTIME_SECS),
    }
}

/// Regenerates the churn sweep (`churn_a`, `churn_b`).
pub fn run(effort: Effort) -> Vec<FigureResult> {
    let (nodes, txns, rates): (usize, usize, &[f64]) = match effort {
        Effort::Quick => (60, 150, &[0.0, 20.0, 80.0]),
        Effort::Paper => (200, 600, &[0.0, 10.0, 40.0, 160.0]),
    };
    let mut fig_ratio = FigureResult::new(
        "churn_a",
        format!("Success ratio vs churn rate (DES, {nodes}-node testbed topology)"),
        "channel closes per virtual second",
        "success ratio (%)",
    );
    let mut fig_p95 = FigureResult::new(
        "churn_b",
        format!("p95 completion latency vs churn rate (DES, {nodes}-node testbed topology)"),
        "channel closes per virtual second",
        "p95 completion latency (virtual ms)",
    );
    let seed = 97;
    let net = testbed_topology(nodes, 1000, 1500, seed);
    let trace = generate_trace(net.graph(), &TraceConfig::ripple(txns, seed + 7));
    for scheme in SCHEMES {
        let mut s_ratio = Series::new(scheme.label());
        let mut s_p95 = Series::new(scheme.label());
        for &rate in rates {
            let report = run_scheme_des(
                &net,
                scheme,
                &trace,
                DEFAULT_MICE_FRACTION,
                seed + 31,
                DesLoad {
                    rate_per_sec: OFFERED_LOAD_PPS,
                    latency: LatencyModel::constant_ms(HOP_LATENCY_MS),
                    service: ServiceModel::constant_ms(NODE_SERVICE_MS),
                    churn: churn_mix(rate),
                },
            );
            s_ratio.push(rate, report.metrics.success_ratio() * 100.0);
            s_p95.push(rate, report.latency_ms(0.95));
        }
        fig_ratio.series.push(s_ratio);
        fig_p95.series.push(s_p95);
    }
    vec![fig_ratio, fig_p95]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_all_schemes_and_rates() {
        let figs = run(Effort::Quick);
        assert_eq!(figs.len(), 2);
        for fig in &figs {
            assert_eq!(fig.series.len(), SCHEMES.len());
            for s in &fig.series {
                assert_eq!(s.points.len(), 3, "{}: {}", fig.id, s.label);
            }
        }
    }

    #[test]
    fn churn_degrades_success() {
        // The tentpole's end-to-end claim: topology churn must cost
        // every scheme success. The committed BENCH_churn.json pins
        // strict monotonicity; here the cheaper quick sweep checks the
        // endpoints.
        let figs = run(Effort::Quick);
        let ratio = figs.iter().find(|f| f.id == "churn_a").unwrap();
        for s in &ratio.series {
            let zero = s.points.first().unwrap().1;
            let max = s.points.last().unwrap().1;
            assert!(
                max < zero,
                "{}: success at max churn ({max}%) must fall below zero-churn ({zero}%)",
                s.label
            );
        }
    }

    #[test]
    fn sweep_is_deterministic() {
        let a = run(Effort::Quick);
        let b = run(Effort::Quick);
        for (fa, fb) in a.iter().zip(&b) {
            for (sa, sb) in fa.series.iter().zip(&fb.series) {
                assert_eq!(sa.points, sb.points, "{} {}", fa.id, sa.label);
            }
        }
    }
}
