//! Figure 11: number of paths per receiver (m) for mice routing —
//! success volume and probing overhead of mice payments, Ripple trace.
//!
//! `m = 0` routes mice with the elephant algorithm, "the performance
//! upperbound". To isolate mice statistics the experiment replays only
//! the mice payments of the trace (classified at the default 90%
//! threshold), exactly the population whose behaviour m controls.
//!
//! What makes `m = 0` the upper bound is max-flow: each send can deliver
//! at most the true max-flow between sender and receiver at that moment
//! ([`crate::harness::static_max_flow`], computed by the push-relabel
//! kernel; [`crate::harness::WarmFlowBound`] tracks the same bound
//! incrementally across sends). The tests below pin that bound against
//! the pristine network and check the kernels agree on it.

use crate::harness::{run_scheme, Effort, SimScheme, Topo, DEFAULT_MICE_FRACTION};
use crate::report::{FigureResult, Series};
use flash_core::classify::threshold_for_mice_fraction;
use pcn_types::Amount;

/// Regenerates Figures 11a and 11b.
pub fn run(effort: Effort) -> Vec<FigureResult> {
    let ms: &[usize] = match effort {
        Effort::Quick => &[0, 2, 4],
        Effort::Paper => &[0, 2, 4, 8],
    };
    let mut fig_vol = FigureResult::new(
        "fig11a",
        "Mice success volume vs paths per receiver (Ripple)",
        "number of paths per receiver (m)",
        "success volume (USD)",
    );
    let mut fig_probe = FigureResult::new(
        "fig11b",
        "Mice probing overhead vs paths per receiver (Ripple)",
        "number of paths per receiver (m)",
        "number of probing messages",
    );
    let mut vol = Series::new("Flash");
    let mut probes = Series::new("Flash");
    for &m in ms {
        let runs = effort.runs();
        let (mut vol_acc, mut probe_acc) = (0.0, 0.0);
        for r in 0..runs {
            let seed = 600 + 1000 * r;
            let mut net = Topo::Ripple.build_network(effort, seed);
            net.scale_balances(10);
            let full_trace = Topo::Ripple.build_trace(&net, effort.txns(), seed + 71);
            // Mice-only replay.
            let amounts: Vec<Amount> = full_trace.iter().map(|p| p.amount).collect();
            let threshold = threshold_for_mice_fraction(&amounts, DEFAULT_MICE_FRACTION);
            let mice_trace: Vec<_> = full_trace
                .iter()
                .filter(|p| p.classify(threshold).is_mice())
                .copied()
                .collect();
            let metrics = run_scheme(&net, SimScheme::FlashWithM(m), &mice_trace, 1.0, seed);
            vol_acc += metrics.success_volume().as_units_f64();
            probe_acc += metrics.probe_messages as f64;
        }
        vol.push(m as f64, vol_acc / runs as f64);
        probes.push(m as f64, probe_acc / runs as f64);
    }
    fig_vol.series.push(vol);
    fig_probe.series.push(probes);
    vec![fig_vol, fig_probe]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_routing_cuts_probing_versus_m0() {
        let figs = run(Effort::Quick);
        let probes = figs[1].series("Flash").unwrap();
        let m0 = probes.y_at(0.0).unwrap();
        let m4 = probes.y_at(4.0).unwrap();
        // "using a few routes achieves at least ∼12x less probing
        // overhead" — direction with slack at quick scale.
        assert!(m4 < m0, "m=4 probes ({m4}) should be far below m=0 ({m0})");
    }

    /// The `m = 0` upper bound rests on the max-flow kernel: every
    /// kernel (including the warm-start bound tracker) must report the
    /// same bound on the experiment topology, and the first routed
    /// payment (pristine balances) can never deliver more than it.
    #[test]
    fn m0_upper_bound_and_kernels_agree() {
        use crate::harness::{static_max_flow, WarmFlowBound};
        use pcn_graph::maxflow::{Dinic, EdmondsKarp, MaxFlowSolver, PushRelabel};

        let net = Topo::Ripple.build_network(Effort::Quick, 600);
        let trace = Topo::Ripple.build_trace(&net, 10, 671);
        let g = net.graph();
        let caps: Vec<u64> = g.edges().map(|(e, _, _)| net.balance(e).micros()).collect();
        let mut warm = WarmFlowBound::new();
        for p in trace.iter().take(4) {
            let oracle = EdmondsKarp.max_flow(g, p.sender, p.receiver, &caps).value;
            let solvers: [Box<dyn MaxFlowSolver>; 3] = [
                Box::new(Dinic::new()),
                Box::new(Dinic::with_capacity_scaling()),
                Box::new(PushRelabel),
            ];
            for solver in solvers {
                assert_eq!(
                    solver.max_flow(g, p.sender, p.receiver, &caps).value,
                    oracle,
                    "{} disagrees with the oracle",
                    solver.name()
                );
            }
            assert_eq!(
                static_max_flow(&net, p.sender, p.receiver),
                Amount::from_micros(oracle)
            );
            assert_eq!(
                warm.bound(&net, p.sender, p.receiver),
                Amount::from_micros(oracle),
                "warm-start bound disagrees with the oracle"
            );
        }
        // First payment against pristine balances: delivered ≤ max-flow.
        let first = trace[0];
        let bound = static_max_flow(&net, first.sender, first.receiver);
        let metrics = run_scheme(&net, SimScheme::FlashWithM(0), &trace[..1], 1.0, 600);
        assert!(
            metrics.success_volume() <= bound.min(first.amount),
            "m = 0 delivered {} above the max-flow bound {bound}",
            metrics.success_volume()
        );
    }

    #[test]
    fn volume_with_few_paths_is_competitive() {
        let figs = run(Effort::Quick);
        let vol = figs[0].series("Flash").unwrap();
        let m0 = vol.y_at(0.0).unwrap();
        let m4 = vol.y_at(4.0).unwrap();
        // "the gap is within 15% with m = 6" — allow slack at quick
        // scale, but the cached-paths variant must stay in the same
        // ballpark as the elephant-routing upper bound.
        assert!(
            m4 >= m0 * 0.6,
            "m=4 volume ({m4}) collapsed versus m=0 upper bound ({m0})"
        );
    }
}
