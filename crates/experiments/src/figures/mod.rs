//! One module per paper figure, plus the DES load sweep ([`latency`])
//! and the DES churn sweep ([`churn`]).

pub mod churn;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig3;
pub mod fig4;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod latency;
pub mod testbed;
