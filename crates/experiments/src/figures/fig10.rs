//! Figure 10: impact of the elephant/mice threshold — success volume
//! and probing messages as the percentage of payments classified as
//! mice sweeps 0% → 100%.

use crate::harness::{run_scheme, Effort, SimScheme, Topo};
use crate::report::{FigureResult, Series};

/// Regenerates Figures 10a (Ripple) and 10b (Lightning).
pub fn run(effort: Effort) -> Vec<FigureResult> {
    let fractions: &[f64] = match effort {
        Effort::Quick => &[0.0, 0.5, 0.9, 1.0],
        // Paper: 0%..100% in 10% steps; 6 representative points here.
        Effort::Paper => &[0.0, 0.9, 1.0],
    };
    let mut out = Vec::new();
    for (topo, id) in [(Topo::Ripple, "fig10a"), (Topo::Lightning, "fig10b")] {
        let mut fig = FigureResult::new(
            id,
            format!("Threshold sweep, {}", topo.name()),
            "percentage of mice payments (%)",
            "success volume / probe messages",
        );
        let mut vol = Series::new("Succ. Volume");
        let mut probes = Series::new("Probing Messages");
        for &frac in fractions {
            let runs = effort.runs();
            let (mut vol_acc, mut probe_acc) = (0.0, 0.0);
            for r in 0..runs {
                let seed = 500 + 1000 * r;
                let mut net = topo.build_network(effort, seed);
                net.scale_balances(10);
                let trace = topo.build_trace(&net, effort.txns(), seed + 61);
                let m = run_scheme(&net, SimScheme::Flash, &trace, frac, seed);
                vol_acc += m.success_volume().as_units_f64();
                probe_acc += m.probe_messages as f64;
            }
            vol.push(frac * 100.0, vol_acc / runs as f64);
            probes.push(frac * 100.0, probe_acc / runs as f64);
        }
        fig.series.push(vol);
        fig.series.push(probes);
        out.push(fig);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probing_decreases_as_mice_fraction_grows() {
        let figs = run(Effort::Quick);
        assert_eq!(figs.len(), 2);
        let probes = figs[0].series("Probing Messages").unwrap();
        // "the probing overhead increases as the percentage of mice
        // payments decreases".
        let all_elephant = probes.y_at(0.0).unwrap();
        let all_mice = probes.y_at(100.0).unwrap();
        assert!(
            all_elephant > all_mice,
            "probes at 0% mice ({all_elephant}) should exceed 100% mice ({all_mice})"
        );
    }

    #[test]
    fn volume_stable_until_high_mice_fraction() {
        let figs = run(Effort::Quick);
        let vol = figs[0].series("Succ. Volume").unwrap();
        let at_0 = vol.y_at(0.0).unwrap();
        let at_90 = vol.y_at(90.0).unwrap();
        // "success volume of mice payments remains stable until the
        // percentage of mice reaches 80–90%" — at 90% mice, volume is
        // still within a reasonable factor of the all-elephant bound.
        assert!(
            at_90 >= at_0 * 0.5,
            "volume at 90% mice ({at_90}) collapsed vs all-elephant ({at_0})"
        );
    }
}
