//! Shared simulation machinery for the figure modules.

use flash_core::classify::threshold_for_mice_fraction;
use flash_core::{
    FlashConfig, FlashRouter, ShortestPathRouter, SilentWhispersRouter, SpeedyMurmursRouter,
    SpiderRouter,
};
use pcn_graph::generators;
use pcn_graph::maxflow::{IncrementalMaxFlow, MaxFlowSolver, PushRelabel};
use pcn_sim::{
    ChurnRate, DesConfig, DesEngine, DesNetwork, DesReport, LatencyModel, Metrics, Network,
    PaymentNetwork, Router, ServiceModel, SimTime,
};
use pcn_types::{Amount, FeePolicy, NodeId, Payment};
use pcn_workload::trace::{generate_trace, TraceConfig};
use pcn_workload::{lightning_topology, ripple_topology};

/// Experiment effort level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Effort {
    /// Scaled-down configuration for CI/tests: ~150-node topology, short
    /// traces, a single seed.
    Quick,
    /// The paper-scale configuration (full topologies, 5 seeds where the
    /// paper averages over 5 runs).
    Paper,
}

impl Effort {
    /// Number of independent runs to average. The paper averages 5
    /// runs; this reproduction uses one seeded run at paper scale (the
    /// harness is deterministic, and the single-core budget of the
    /// reproduction environment cannot afford 5× the full sweeps —
    /// run-to-run variance is covered by the quick-scale test suite).
    pub fn runs(self) -> u64 {
        match self {
            Effort::Quick => 1,
            Effort::Paper => 1,
        }
    }

    /// Default transaction count. The paper fixes 2,000 for most
    /// simulation figures; the paper-scale reproduction uses 1,000 on
    /// the full topologies to fit the single-core time budget (the
    /// load-dependence itself is swept explicitly by Figure 7).
    pub fn txns(self) -> usize {
        match self {
            Effort::Quick => 300,
            Effort::Paper => 1000,
        }
    }
}

/// Which evaluation topology to build.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Topo {
    /// Ripple-scale (1,870 nodes) with $-denominated sizes.
    Ripple,
    /// Lightning-scale (2,511 nodes) with satoshi-denominated sizes.
    Lightning,
}

impl Topo {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Topo::Ripple => "Ripple",
            Topo::Lightning => "Lightning",
        }
    }

    /// Builds the network at the given effort (quick mode shrinks the
    /// topology but keeps the funds distribution).
    pub fn build_network(self, effort: Effort, seed: u64) -> Network {
        match (self, effort) {
            (Topo::Ripple, Effort::Paper) => ripple_topology(seed),
            (Topo::Lightning, Effort::Paper) => lightning_topology(seed),
            (Topo::Ripple, Effort::Quick) => {
                let g = generators::scale_free_with_channels(150, 700, seed);
                let mut net = Network::uniform(g, Amount::ZERO);
                seed_quick_funds(&mut net, 250.0, seed);
                net
            }
            (Topo::Lightning, Effort::Quick) => {
                let g = generators::scale_free_with_channels(150, 700, seed);
                let mut net = Network::uniform(g, Amount::ZERO);
                seed_quick_funds(&mut net, 500_000.0, seed);
                net
            }
        }
    }

    /// Builds a trace matched to the topology's currency.
    pub fn build_trace(self, net: &Network, txns: usize, seed: u64) -> Vec<Payment> {
        let config = match self {
            Topo::Ripple => TraceConfig::ripple(txns, seed),
            Topo::Lightning => TraceConfig::lightning(txns, seed),
        };
        generate_trace(net.graph(), &config)
    }
}

fn seed_quick_funds(net: &mut Network, median: f64, seed: u64) {
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let graph = net.graph().clone();
    for (e, _, _) in graph.edges() {
        if net.balance(e) != Amount::ZERO {
            continue;
        }
        // Log-uniform spread of one decade around the median.
        let factor = 10f64.powf(rng.random_range(-0.5..0.5));
        let b = Amount::from_units_f64(median * factor);
        net.set_balance(e, b);
        if let Some(r) = graph.reverse_edge(e) {
            net.set_balance(r, b);
        }
    }
}

/// The routing schemes the simulation compares (§4.1 benchmarks), plus
/// the Flash variants the microbenchmarks sweep.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimScheme {
    /// Flash with the paper defaults (k = 20, m = 4, fee LP on).
    Flash,
    /// Flash with the fee-minimizing LP disabled (Figure 9 baseline).
    FlashNoFeeOpt,
    /// Flash with a custom number of mice paths per receiver
    /// (Figure 11; `0` routes mice with the elephant algorithm).
    FlashWithM(usize),
    /// Spider (4 edge-disjoint paths + waterfilling).
    Spider,
    /// SpeedyMurmurs (3 landmarks).
    SpeedyMurmurs,
    /// SilentWhispers (3 landmarks, landmark-centered; related-work
    /// extension, not in the paper's head-to-head figures).
    SilentWhispers,
    /// Fewest-hops single path.
    ShortestPath,
}

impl SimScheme {
    /// The five head-to-head schemes (excludes the Flash ablation
    /// variants) — the set every backend comparison sweeps, mirroring
    /// `pcn_proto::SchemeKind::ALL`.
    pub const ALL: [SimScheme; 5] = [
        SimScheme::Flash,
        SimScheme::Spider,
        SimScheme::SpeedyMurmurs,
        SimScheme::SilentWhispers,
        SimScheme::ShortestPath,
    ];

    /// Legend label.
    pub fn label(self) -> String {
        match self {
            SimScheme::Flash => "Flash".into(),
            SimScheme::FlashNoFeeOpt => "Flash (no fee opt)".into(),
            SimScheme::FlashWithM(m) => format!("Flash (m={m})"),
            SimScheme::Spider => "Spider".into(),
            SimScheme::SpeedyMurmurs => "SpeedyMurmurs".into(),
            SimScheme::SilentWhispers => "SilentWhispers".into(),
            SimScheme::ShortestPath => "Shortest Path".into(),
        }
    }

    /// Instantiates the router against the default simulator backend.
    pub fn router(self, elephant_threshold: Amount, seed: u64) -> Box<dyn Router> {
        self.router_on::<Network>(elephant_threshold, seed)
    }

    /// Instantiates the router against any [`PaymentNetwork`] backend —
    /// the same schemes drive the instantaneous simulator, the TCP
    /// testbed, and the discrete-event engine unmodified.
    pub fn router_on<N: PaymentNetwork>(
        self,
        elephant_threshold: Amount,
        seed: u64,
    ) -> Box<dyn Router<N>> {
        match self {
            SimScheme::Flash => Box::new(FlashRouter::new(FlashConfig {
                elephant_threshold,
                seed,
                ..Default::default()
            })),
            SimScheme::FlashNoFeeOpt => Box::new(FlashRouter::new(FlashConfig {
                elephant_threshold,
                optimize_fees: false,
                seed,
                ..Default::default()
            })),
            SimScheme::FlashWithM(m) => Box::new(FlashRouter::new(FlashConfig {
                elephant_threshold,
                mice_paths_per_receiver: m,
                seed,
                ..Default::default()
            })),
            SimScheme::Spider => Box::new(SpiderRouter::new()),
            SimScheme::SpeedyMurmurs => Box::new(SpeedyMurmursRouter::new()),
            SimScheme::SilentWhispers => Box::new(SilentWhispersRouter::new()),
            SimScheme::ShortestPath => Box::new(ShortestPathRouter::new()),
        }
    }
}

/// The fraction of payments classified as mice in the default setup
/// ("The elephant-mice threshold is set such that 90% of payments are
/// mice").
pub const DEFAULT_MICE_FRACTION: f64 = 0.9;

/// Runs one scheme over a trace on a **copy** of the network; returns
/// the collected metrics. `mice_fraction` sets the classification
/// threshold from the trace's own size distribution.
pub fn run_scheme(
    net: &Network,
    scheme: SimScheme,
    trace: &[Payment],
    mice_fraction: f64,
    seed: u64,
) -> Metrics {
    let amounts: Vec<Amount> = trace.iter().map(|p| p.amount).collect();
    let threshold = threshold_for_mice_fraction(&amounts, mice_fraction);
    let mut net = net.clone();
    let mut router = scheme.router(threshold, seed);
    for p in trace {
        let class = p.classify(threshold);
        router.route(&mut net, p, class);
    }
    std::mem::take(net.metrics_mut())
}

/// The load-and-delay configuration of one discrete-event run: the
/// offered load plus both halves of the delay model (per-hop
/// propagation, per-node service).
#[derive(Clone, Debug)]
pub struct DesLoad {
    /// Poisson arrival rate, payments per virtual second.
    pub rate_per_sec: f64,
    /// Per-hop message propagation latency.
    pub latency: LatencyModel,
    /// Per-node message service time (FIFO queueing behind the
    /// backlog; [`ServiceModel::Instant`] disables queueing).
    pub service: ServiceModel,
    /// Topology-churn intensities. [`ChurnRate::zero`] (the common
    /// case) generates the empty schedule, keeping the run
    /// bit-identical to a churn-free engine.
    pub churn: ChurnRate,
}

/// Seed salt for the churn process, so churn draws never share a
/// stream with the Poisson arrival process seeded from the same run
/// seed.
const CHURN_SEED_SALT: u64 = 0x6368_7572_6e5f_7631; // "churn_v1"

/// Runs one scheme over a trace on the discrete-event engine: payments
/// arrive from a seeded Poisson process at `load.rate_per_sec`
/// (offered load), hop messages take `load.latency` on the wire plus
/// the per-node `load.service` time behind each receiving node's FIFO
/// backlog, and many payments are in flight concurrently. Returns the
/// full [`DesReport`] (success metrics plus completion-latency and
/// queueing-delay percentiles, peak in-flight/backlog, utilization,
/// and throughput). The network is copied, exactly like
/// [`run_scheme`].
pub fn run_scheme_des(
    net: &Network,
    scheme: SimScheme,
    trace: &[Payment],
    mice_fraction: f64,
    seed: u64,
    load: DesLoad,
) -> DesReport {
    let amounts: Vec<Amount> = trace.iter().map(|p| p.amount).collect();
    let threshold = threshold_for_mice_fraction(&amounts, mice_fraction);
    let workload = pcn_workload::arrivals::poisson_workload(trace, load.rate_per_sec, seed);
    // Churn runs over the arrival window; reopens past the horizon
    // fire during the final drain without extending the makespan.
    let horizon = workload.last().map(|&(t, _)| t).unwrap_or(SimTime::ZERO);
    let churn =
        pcn_workload::churn_schedule(net.graph(), horizon, &load.churn, seed ^ CHURN_SEED_SALT);
    let mut router = scheme.router_on::<DesNetwork>(threshold, seed);
    let mut engine = DesEngine::new(
        net.clone(),
        DesConfig {
            latency: load.latency,
            service: load.service,
            churn,
            ..DesConfig::default()
        },
    );
    engine.run(router.as_mut(), &workload, threshold)
}

/// The true `s → t` max-flow over the network's *current* balances, via
/// the push-relabel kernel (the hot path — see `docs/maxflow.md`). This
/// is the quantity the Figure 11 `m = 0` configuration (mice routed by
/// the elephant algorithm) is upper-bounded by at each send, and the
/// anchor the kernel-agreement tests compare against.
pub fn static_max_flow(net: &Network, s: NodeId, t: NodeId) -> Amount {
    let g = net.graph();
    let caps: Vec<u64> = g.edges().map(|(e, _, _)| net.balance(e).micros()).collect();
    Amount::from_micros(PushRelabel.max_flow(g, s, t, &caps).value)
}

/// Warm-start companion to [`static_max_flow`] for the Figure 11 bound
/// loop: tracks one `(s, t)` pair across balance changes, applying only
/// the per-payment deltas to a live residual graph instead of
/// re-solving from scratch each send. Rebuilds when the pair changes.
pub struct WarmFlowBound {
    state: Option<(NodeId, NodeId, IncrementalMaxFlow, Vec<u64>)>,
}

impl WarmFlowBound {
    /// A bound tracker with no warm state yet.
    pub fn new() -> Self {
        WarmFlowBound { state: None }
    }

    /// The current `s → t` max-flow bound over `net`'s balances. Always
    /// equal to [`static_max_flow`] on the same network (the fig11
    /// tests assert it); consecutive calls for the same pair cost a
    /// delta-solve.
    pub fn bound(&mut self, net: &Network, s: NodeId, t: NodeId) -> Amount {
        let g = net.graph();
        let caps: Vec<u64> = g.edges().map(|(e, _, _)| net.balance(e).micros()).collect();
        match &mut self.state {
            Some((ws, wt, inc, last)) if *ws == s && *wt == t && last.len() == caps.len() => {
                for (i, (&old, &new)) in last.iter().zip(&caps).enumerate() {
                    if old != new {
                        inc.set_capacity(pcn_graph::EdgeId(i as u32), new);
                    }
                }
                *last = caps;
                Amount::from_micros(inc.solve().value)
            }
            _ => {
                let mut inc = IncrementalMaxFlow::new(g, s, t, &caps);
                let value = inc.solve().value;
                self.state = Some((s, t, inc, caps));
                Amount::from_micros(value)
            }
        }
    }
}

impl Default for WarmFlowBound {
    fn default() -> Self {
        Self::new()
    }
}

/// Averages `f(run_seed)` over the effort's run count.
pub fn average_runs(effort: Effort, base_seed: u64, mut f: impl FnMut(u64) -> f64) -> f64 {
    let runs = effort.runs();
    let total: f64 = (0..runs).map(|r| f(base_seed + 1000 * r)).sum();
    total / runs as f64
}

/// Installs the Figure 9 fee distribution on a copy of the network.
pub fn with_paper_fees(net: &Network, seed: u64) -> Network {
    let mut net = net.clone();
    pcn_workload::topology::assign_paper_fees(&mut net, seed);
    net
}

/// Uniform-fee helper for ablations.
pub fn with_uniform_fees(net: &Network, ppm: u64) -> Network {
    let mut net = net.clone();
    let edges: Vec<_> = net.graph().edges().map(|(e, _, _)| e).collect();
    for e in edges {
        net.set_fee_policy(e, FeePolicy::proportional(ppm));
    }
    net
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_networks_build_and_are_funded() {
        for topo in [Topo::Ripple, Topo::Lightning] {
            let net = topo.build_network(Effort::Quick, 1);
            assert_eq!(net.graph().node_count(), 150);
            assert!(net.total_funds() > Amount::ZERO);
        }
    }

    #[test]
    fn traces_match_topology() {
        let net = Topo::Ripple.build_network(Effort::Quick, 1);
        let trace = Topo::Ripple.build_trace(&net, 100, 2);
        assert_eq!(trace.len(), 100);
    }

    #[test]
    fn all_schemes_run_and_record_attempts() {
        let net = Topo::Ripple.build_network(Effort::Quick, 1);
        let trace = Topo::Ripple.build_trace(&net, 60, 2);
        for scheme in [
            SimScheme::Flash,
            SimScheme::FlashNoFeeOpt,
            SimScheme::FlashWithM(2),
            SimScheme::FlashWithM(0),
            SimScheme::Spider,
            SimScheme::SpeedyMurmurs,
            SimScheme::SilentWhispers,
            SimScheme::ShortestPath,
        ] {
            let m = run_scheme(&net, scheme, &trace, DEFAULT_MICE_FRACTION, 3);
            assert_eq!(m.total().attempted, 60, "{}", scheme.label());
        }
    }

    #[test]
    fn flash_beats_shortest_path_on_volume() {
        let net = Topo::Ripple.build_network(Effort::Quick, 5);
        let trace = Topo::Ripple.build_trace(&net, 200, 6);
        let flash = run_scheme(&net, SimScheme::Flash, &trace, DEFAULT_MICE_FRACTION, 7);
        let sp = run_scheme(
            &net,
            SimScheme::ShortestPath,
            &trace,
            DEFAULT_MICE_FRACTION,
            7,
        );
        assert!(
            flash.success_volume() >= sp.success_volume(),
            "Flash {} < SP {}",
            flash.success_volume(),
            sp.success_volume()
        );
    }

    #[test]
    fn average_runs_averages() {
        // Both efforts currently use a single run (see Effort::runs);
        // the helper must still average correctly if that changes.
        let runs = Effort::Paper.runs();
        let avg = average_runs(Effort::Paper, 0, |seed| (seed / 1000) as f64);
        let expected = (0..runs).map(|r| r as f64).sum::<f64>() / runs as f64;
        assert!((avg - expected).abs() < 1e-9);
    }
}
