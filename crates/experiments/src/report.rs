//! Result containers and rendering.

use serde::{Deserialize, Serialize};

/// One plotted line: a label and `(x, y)` points.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Series {
    /// Legend label ("Flash", "Spider", ...).
    pub label: String,
    /// Data points in x order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a series.
    pub fn new(label: impl Into<String>) -> Self {
        Series {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Appends a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// The y value at a given x, if present.
    pub fn y_at(&self, x: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|(px, _)| (px - x).abs() < 1e-9)
            .map(|(_, y)| *y)
    }
}

/// One regenerated sub-figure (e.g. "fig6a").
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FigureResult {
    /// Identifier matching the paper ("fig6a", "fig12c", ...).
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// Plotted series.
    pub series: Vec<Series>,
}

impl FigureResult {
    /// Creates an empty figure.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        FigureResult {
            id: id.into(),
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
        }
    }

    /// Finds a series by label.
    pub fn series(&self, label: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.label == label)
    }

    /// Renders a markdown table: first column = x, one column per series.
    pub fn to_markdown(&self) -> String {
        let mut out = format!("### {} — {}\n\n", self.id, self.title);
        out.push_str(&format!("| {} |", self.x_label));
        for s in &self.series {
            out.push_str(&format!(" {} |", s.label));
        }
        out.push('\n');
        out.push_str(&"|---".repeat(self.series.len() + 1));
        out.push_str("|\n");
        let xs = self.all_x();
        for x in xs {
            out.push_str(&format!("| {} |", trim_float(x)));
            for s in &self.series {
                match s.y_at(x) {
                    Some(y) => out.push_str(&format!(" {} |", trim_float(y))),
                    None => out.push_str(" — |"),
                }
            }
            out.push('\n');
        }
        out.push_str(&format!("\n(y-axis: {})\n", self.y_label));
        out
    }

    /// Renders CSV with an `x` column and one column per series.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("x");
        for s in &self.series {
            out.push(',');
            out.push_str(&s.label.replace(',', ";"));
        }
        out.push('\n');
        for x in self.all_x() {
            out.push_str(&format!("{x}"));
            for s in &self.series {
                out.push(',');
                if let Some(y) = s.y_at(x) {
                    out.push_str(&format!("{y}"));
                }
            }
            out.push('\n');
        }
        out
    }

    fn all_x(&self) -> Vec<f64> {
        let mut xs: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|(x, _)| *x))
            .collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        xs.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
        xs
    }
}

fn trim_float(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e12 {
        format!("{}", v as i64)
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FigureResult {
        let mut f = FigureResult::new("figX", "Test", "scale", "ratio");
        let mut a = Series::new("Flash");
        a.push(1.0, 0.5);
        a.push(2.0, 0.75);
        let mut b = Series::new("Spider");
        b.push(1.0, 0.4);
        f.series.push(a);
        f.series.push(b);
        f
    }

    #[test]
    fn markdown_has_all_columns() {
        let md = sample().to_markdown();
        assert!(md.contains("| scale | Flash | Spider |"));
        assert!(md.contains("| 1 | 0.5000 | 0.4000 |"));
        assert!(md.contains("| 2 | 0.7500 | — |"));
    }

    #[test]
    fn csv_round_numbers() {
        let csv = sample().to_csv();
        assert!(csv.starts_with("x,Flash,Spider\n"));
        assert!(csv.contains("1,0.5,0.4\n"));
        assert!(csv.contains("2,0.75,\n"));
    }

    #[test]
    fn series_lookup() {
        let f = sample();
        assert!(f.series("Flash").is_some());
        assert!(f.series("Nope").is_none());
        assert_eq!(f.series("Flash").unwrap().y_at(2.0), Some(0.75));
    }
}
