//! # pcn-experiments
//!
//! The experiment harness: one module per table/figure of the paper's
//! evaluation (§2.2 measurement study, §4 simulation, §5 testbed), each
//! regenerating the corresponding series. The `flash-repro` binary runs
//! them and writes markdown/CSV artifacts; EXPERIMENTS.md records
//! paper-vs-measured for every figure.
//!
//! Every experiment takes an [`Effort`] knob: [`Effort::Quick`] runs a
//! scaled-down configuration (small topology, short trace, one seed) for
//! CI and tests; [`Effort::Paper`] runs the paper-scale configuration.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Library code reports through returned values and serialized artifacts,
// never ad-hoc stdout; the experiment/bench binaries print, libraries do not.
#![deny(clippy::dbg_macro, clippy::print_stdout)]

pub mod figures;
pub mod harness;
pub mod report;

pub use harness::{Effort, SimScheme, Topo};
pub use report::{FigureResult, Series};

/// Runs every figure at the given effort, returning all results.
pub fn run_all(effort: Effort) -> Vec<FigureResult> {
    let mut out = Vec::new();
    out.extend(figures::fig3::run(effort));
    out.extend(figures::fig4::run(effort));
    out.extend(figures::fig6::run(effort));
    out.extend(figures::fig7::run(effort));
    out.extend(figures::fig8::run(effort));
    out.extend(figures::fig9::run(effort));
    out.extend(figures::fig10::run(effort));
    out.extend(figures::fig11::run(effort));
    out.extend(figures::fig12::run(effort));
    out.extend(figures::fig13::run(effort));
    out.extend(figures::latency::run(effort));
    out.extend(figures::churn::run(effort));
    out
}
