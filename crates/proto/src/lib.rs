//! # pcn-proto
//!
//! The testbed prototype of §5: a message-level offchain routing system
//! over **real TCP sockets** on localhost, reimplementing the paper's
//! Golang prototype in Rust. One [`node::NodeState`] per participant
//! (the paper used one process per participant), each bound to its own
//! `127.0.0.1:port` and hosted on a single-threaded poll-based
//! [`event_loop::EventLoop`] — so one process scales to hundreds of
//! node actors — realizes the three functions "required by any routing
//! algorithm: source routing, probing, and atomic payment processing":
//!
//! * [`wire`] — the byte-exact message format of Table 1 (`TransID`,
//!   `Type`, `Path`, `Capacity`, `Commit`) with nine message types:
//!   `PROBE`/`PROBE_ACK`, `COMMIT`/`COMMIT_ACK`/`COMMIT_NACK`,
//!   `CONFIRM`/`CONFIRM_ACK`, `REVERSE`/`REVERSE_ACK`.
//! * [`transport`] — length-prefixed framing: blocking helpers plus the
//!   incremental [`transport::FrameDecoder`] the reactor reads through.
//! * [`node`] — the passive per-node state machine: probe capacity
//!   appending, hop-by-hop balance escrow on `COMMIT`, rollback on
//!   `COMMIT_NACK`, reverse-direction crediting on `CONFIRM_ACK`, and
//!   forward-direction restoration on `REVERSE` (the two-phase commit
//!   of §5.1) — plus per-node telemetry ([`node::NodeCounters`]) and
//!   live churn state (closed channels, crashed nodes).
//! * [`event_loop`] — the reactor: non-blocking listeners and
//!   connections, readiness polling, request/reply correlation, and a
//!   deterministic, loud shutdown. No threads, no async runtime.
//! * [`cluster`] — the orchestrator: launches a cluster and measures
//!   per-transaction processing delay — the metric of Figures 12/13 —
//!   plus the probe/commit message breakdown and fees. Batched probe,
//!   commit, and settlement waves go through the loop in flight
//!   together, and `ChurnAction`s apply mid-run.
//! * [`backend`] — implements [`pcn_sim::PaymentNetwork`] for
//!   [`Cluster`], mapping probes and payment sessions onto the wire
//!   protocol. This is what lets **all five** routing schemes from
//!   `flash-core` (Flash, Spider, SP, SpeedyMurmurs, SilentWhispers)
//!   run on the testbed through the *same* [`pcn_sim::Router`]
//!   implementations the simulator evaluates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Library code reports through returned values and serialized artifacts,
// never ad-hoc stdout; the experiment/bench binaries print, libraries do not.
#![deny(clippy::dbg_macro, clippy::print_stdout)]

pub mod backend;
pub mod cluster;
pub mod event_loop;
pub mod fault;
pub mod node;
pub mod transport;
pub mod wall;
pub mod wire;

pub use backend::ClusterSession;
pub use cluster::{Cluster, SchemeKind, TestbedReport, TestbedRunner};
pub use event_loop::{EventLoop, ShutdownReport};
pub use fault::FaultPlan;
pub use node::NodeCounters;
pub use wall::{wall_now, WallInstant};
pub use wire::{Message, MsgType};
