//! [`PaymentNetwork`] over the TCP prototype: the [`Cluster`] backend.
//!
//! This is the bridge that lets every `flash-core` router run on the §5
//! testbed unchanged. Each trait operation maps onto the wire protocol:
//!
//! | trait call                         | wire exchange                        |
//! |------------------------------------|--------------------------------------|
//! | [`PaymentNetwork::probe_path`]     | `PROBE` → `PROBE_ACK`                |
//! | [`PaymentSession::try_send_part`]  | `COMMIT` → `COMMIT_ACK`/`_NACK`      |
//! | [`PaymentSession::commit`]         | `CONFIRM` → `CONFIRM_ACK` (all parts)|
//! | [`PaymentSession::abort`] / drop   | `REVERSE` → `REVERSE_ACK` (all parts)|
//!
//! The prototype's concurrency is preserved without spawning a single
//! thread: batched phase-1 commits ([`PaymentSession::try_send_parts`])
//! and every phase-2 wave are injected into the cluster's event loop
//! *together* ([`Cluster::commit_many`], [`Cluster::settle_many`]),
//! exactly as the paper's sender "prepares a COMMIT message for each of
//! the sub-payment and sends them out" before collecting replies.
//! Multi-path probing ([`PaymentNetwork::probe_paths`]) batches the
//! same way ([`Cluster::probe_many`]).
//!
//! Two wire-format limitations make the testbed's probe reports a strict
//! subset of the simulator's: `PROBE_ACK` carries no reverse-direction
//! balances (routers see [`ChannelInfo::reverse`]` = None` and treat the
//! reverse direction as unprobed) and no fee field — fees come from the
//! cluster's sender-side fee table instead
//! ([`Cluster::set_fee_policies`]).

use crate::cluster::Cluster;
use pcn_graph::{DiGraph, Path};
use pcn_sim::{
    ChannelInfo, FailureCause, PartFailure, PaymentNetwork, PaymentSession, ProbeReport,
    RouteOutcome,
};
use pcn_types::{Amount, Payment, PaymentClass};

impl Cluster {
    /// Assembles the backend-agnostic [`ProbeReport`] from raw probed
    /// capacities (shared by the single and batched probe entry points).
    fn assemble_report(&self, path: &Path, caps: Vec<u64>) -> Option<ProbeReport> {
        let mut channels = Vec::with_capacity(caps.len());
        for ((u, v), cap) in path.channels().zip(caps) {
            let edge = self.graph().edge(u, v)?;
            channels.push(ChannelInfo {
                edge,
                capacity: Amount::from_micros(cap),
                fee: self.fee_policy(edge),
                // The wire PROBE_ACK does not carry reverse balances.
                reverse: None,
            });
        }
        Some(ProbeReport { channels })
    }

    /// Probes `path` under a fresh transaction id and assembles the
    /// [`ProbeReport`].
    fn probe_report(&self, path: &Path) -> Option<ProbeReport> {
        let id = self.fresh_trans_id();
        let caps = self.probe(id, path)?;
        self.assemble_report(path, caps)
    }
}

impl PaymentNetwork for Cluster {
    type Session<'a> = ClusterSession<'a>;

    fn graph(&self) -> &DiGraph {
        Cluster::graph(self)
    }

    fn probe_path(&mut self, path: &Path) -> Option<ProbeReport> {
        self.probe_report(path)
    }

    fn probe_paths(&mut self, paths: &[Path]) -> Vec<Option<ProbeReport>> {
        // Batched probing: every PROBE is in flight on the event loop
        // together, as the prototype's Spider sender issues all its
        // path probes at once.
        let items: Vec<(u64, &Path)> = paths.iter().map(|p| (self.fresh_trans_id(), p)).collect();
        self.probe_many(&items)
            .into_iter()
            .zip(paths)
            .map(|(caps, path)| self.assemble_report(path, caps?))
            .collect()
    }

    fn begin_payment(&mut self, payment: &Payment, _class: PaymentClass) -> ClusterSession<'_> {
        // Attempt accounting lives in `TestbedRunner::run_trace` (the
        // cluster meters wire messages, not payments), so opening a
        // session sends nothing yet.
        ClusterSession {
            cluster: self,
            demand: payment.amount,
            parts: Vec::new(),
            fees_accrued: Amount::ZERO,
            closed: false,
        }
    }
}

/// An escrowed sub-payment: its wire transaction id, path, and amount.
struct ClusterPart {
    trans_id: u64,
    path: Path,
    amount: Amount,
}

/// An in-flight atomic multi-path payment on the testbed — the
/// [`Cluster`] backend's [`PaymentSession`], realized as the two-phase
/// commit of §5.1 over real TCP frames.
///
/// Phase 1 ([`PaymentSession::try_send_part`]) escrows hop balances via
/// `COMMIT`; a `COMMIT_NACK` has already rolled back every hop the part
/// escrowed, so a failed part needs no client-side cleanup. Phase 2
/// settles all parts at once: [`PaymentSession::commit`] confirms them
/// concurrently, [`PaymentSession::abort`] (or dropping the session)
/// reverses them concurrently.
pub struct ClusterSession<'a> {
    cluster: &'a Cluster,
    demand: Amount,
    parts: Vec<ClusterPart>,
    fees_accrued: Amount,
    closed: bool,
}

impl ClusterSession<'_> {
    /// Books a part whose phase-1 commit ACKed: accrues sender-side fees
    /// (the wire carries no fee field; see [`Cluster::set_fee_policies`])
    /// and escrows it for phase 2. The single bookkeeping site for both
    /// single-part and batched sends.
    fn record_reserved(&mut self, trans_id: u64, path: &Path, amount: Amount) {
        for (u, v) in path.channels() {
            if let Some(e) = self.cluster.graph().edge(u, v) {
                self.fees_accrued = self
                    .fees_accrued
                    .saturating_add(self.cluster.fee_policy(e).fee(amount));
            }
        }
        self.parts.push(ClusterPart {
            trans_id,
            path: path.clone(),
            amount,
        });
    }

    /// Phase 2 for every reserved part: one settlement wave, all parts
    /// in flight on the event loop together.
    fn settle_all(&mut self, confirm: bool) {
        let parts = std::mem::take(&mut self.parts);
        let batch: Vec<(u64, &Path, Amount)> = parts
            .iter()
            .map(|p| (p.trans_id, &p.path, p.amount))
            .collect();
        self.cluster.settle_many(&batch, confirm);
        self.closed = true;
    }
}

impl PaymentSession for ClusterSession<'_> {
    fn try_send_part(&mut self, path: &Path, amount: Amount) -> Result<(), PartFailure> {
        assert!(!self.closed, "session already closed");
        if amount.is_zero() {
            return Ok(());
        }
        let trans_id = self.cluster.fresh_trans_id();
        match self.cluster.commit_part_located(trans_id, path, amount) {
            Ok(()) => {
                self.record_reserved(trans_id, path, amount);
                Ok(())
            }
            Err(failed_hop) => Err(PartFailure {
                failed_hop,
                // The COMMIT_NACK carries no balance field and no
                // failure-cause code.
                available: Amount::ZERO,
                cause: FailureCause::Unreported,
            }),
        }
    }

    fn try_send_parts(&mut self, parts: &[(Path, Amount)]) -> Result<(), PartFailure> {
        assert!(!self.closed, "session already closed");
        // Batched phase 1: all COMMITs go out before any reply is
        // awaited, as in the paper's prototype. Individually NACKed
        // parts have already been rolled back on the wire; parts that
        // ACKed stay escrowed for phase 2 (commit or abort).
        let live: Vec<(u64, &Path, Amount)> = parts
            .iter()
            .filter(|(_, a)| !a.is_zero())
            .map(|(p, a)| (self.cluster.fresh_trans_id(), p, *a))
            .collect();
        let results = self.cluster.commit_many(&live);
        let mut first_failure = None;
        for ((trans_id, path, amount), result) in live.into_iter().zip(results) {
            match result {
                Ok(()) => self.record_reserved(trans_id, path, amount),
                Err(failed_hop) => {
                    if first_failure.is_none() {
                        first_failure = Some(PartFailure {
                            failed_hop,
                            available: Amount::ZERO,
                            cause: FailureCause::Unreported,
                        });
                    }
                }
            }
        }
        match first_failure {
            None => Ok(()),
            Some(f) => Err(f),
        }
    }

    fn probe_path(&mut self, path: &Path) -> Option<ProbeReport> {
        // Probes mid-session see post-COMMIT balances, the same view a
        // concurrent sender would get — matching simulator semantics.
        self.cluster.probe_report(path)
    }

    fn reserved(&self) -> Amount {
        self.parts.iter().map(|p| p.amount).sum()
    }

    fn remaining(&self) -> Amount {
        self.demand.saturating_sub(self.reserved())
    }

    fn commit(mut self) -> RouteOutcome {
        assert!(
            self.is_satisfied(),
            "commit called with unsatisfied demand (reserved {} of {})",
            self.reserved(),
            self.demand
        );
        let paths_used = self.parts.len() as u32;
        let fees = self.fees_accrued;
        self.settle_all(true);
        RouteOutcome::Success {
            volume: self.demand,
            fees,
            paths_used,
        }
    }

    fn abort(mut self) {
        self.settle_all(false);
    }
}

impl Drop for ClusterSession<'_> {
    fn drop(&mut self) {
        if !self.closed {
            self.settle_all(false);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcn_types::{FeePolicy, NodeId, TxId};

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    /// Diamond: two 2-hop bidirectional routes 0 → 3 of 10 units each.
    fn diamond_cluster() -> Cluster {
        let mut g = pcn_graph::DiGraph::new(4);
        g.add_channel(n(0), n(1)).unwrap();
        g.add_channel(n(1), n(3)).unwrap();
        g.add_channel(n(0), n(2)).unwrap();
        g.add_channel(n(2), n(3)).unwrap();
        let balances = vec![Amount::from_units(10); g.edge_count()];
        Cluster::launch(g, &balances).unwrap()
    }

    fn pay(amount: u64) -> Payment {
        Payment::new(TxId(1), n(0), n(3), Amount::from_units(amount))
    }

    fn path_013(c: &Cluster) -> Path {
        Path::new(vec![n(0), n(1), n(3)], Some(Cluster::graph(c))).unwrap()
    }

    #[test]
    fn probe_path_builds_channel_infos() {
        let mut cluster = diamond_cluster();
        let path = path_013(&cluster);
        let report = PaymentNetwork::probe_path(&mut cluster, &path).unwrap();
        assert_eq!(report.channels.len(), 2);
        assert_eq!(report.bottleneck(), Amount::from_units(10));
        assert!(report.channels.iter().all(|c| c.reverse.is_none()));
        assert!(report.channels.iter().all(|c| c.fee == FeePolicy::FREE));
    }

    #[test]
    fn session_commit_settles_and_reports_outcome() {
        let mut cluster = diamond_cluster();
        let before = cluster.total_funds();
        let path = path_013(&cluster);
        let p = pay(4);
        let mut s = cluster.begin_payment(&p, PaymentClass::Mice);
        s.try_send_part(&path, Amount::from_units(4)).unwrap();
        assert!(s.is_satisfied());
        let out = s.commit();
        assert_eq!(
            out,
            RouteOutcome::Success {
                volume: Amount::from_units(4),
                fees: Amount::ZERO,
                paths_used: 1
            }
        );
        assert_eq!(cluster.total_funds(), before);
        // Forward direction decreased, reverse credited.
        let report = PaymentNetwork::probe_path(&mut cluster, &path).unwrap();
        assert_eq!(report.bottleneck(), Amount::from_units(6));
    }

    #[test]
    fn dropping_session_reverses_escrow() {
        let mut cluster = diamond_cluster();
        let path = path_013(&cluster);
        {
            let p = pay(5);
            let mut s = cluster.begin_payment(&p, PaymentClass::Mice);
            s.try_send_part(&path, Amount::from_units(5)).unwrap();
            // dropped without commit
        }
        let report = PaymentNetwork::probe_path(&mut cluster, &path).unwrap();
        assert_eq!(report.bottleneck(), Amount::from_units(10));
    }

    #[test]
    fn failed_part_reports_hop_and_leaves_no_escrow() {
        let mut cluster = diamond_cluster();
        let path = path_013(&cluster);
        let p = pay(11);
        let mut s = cluster.begin_payment(&p, PaymentClass::Mice);
        let err = s.try_send_part(&path, Amount::from_units(11)).unwrap_err();
        assert_eq!(err.failed_hop, 0);
        assert_eq!(s.reserved(), Amount::ZERO);
        s.abort();
        let report = PaymentNetwork::probe_path(&mut cluster, &path).unwrap();
        assert_eq!(report.bottleneck(), Amount::from_units(10));
    }

    #[test]
    fn concurrent_batch_reserves_all_parts() {
        let mut cluster = diamond_cluster();
        let before = cluster.total_funds();
        let p1 = path_013(&cluster);
        let p2 = Path::new(vec![n(0), n(2), n(3)], Some(Cluster::graph(&cluster))).unwrap();
        let zero = path_013(&cluster);
        let p = Payment::new(TxId(9), n(0), n(3), Amount::from_units(15));
        let mut s = cluster.begin_payment(&p, PaymentClass::Elephant);
        s.try_send_parts(&[
            (p1, Amount::from_units(10)),
            (p2, Amount::from_units(5)),
            // Zero parts are skipped, as in the simulator.
            (zero, Amount::ZERO),
        ])
        .unwrap();
        assert!(s.is_satisfied());
        let out = s.commit();
        assert!(matches!(out, RouteOutcome::Success { paths_used: 2, .. }));
        assert_eq!(cluster.total_funds(), before);
    }

    #[test]
    fn concurrent_probing_matches_sequential() {
        let mut cluster = diamond_cluster();
        let paths = vec![
            path_013(&cluster),
            Path::new(vec![n(0), n(2), n(3)], Some(Cluster::graph(&cluster))).unwrap(),
        ];
        let reports = PaymentNetwork::probe_paths(&mut cluster, &paths);
        assert_eq!(reports.len(), 2);
        for r in reports {
            assert_eq!(r.unwrap().bottleneck(), Amount::from_units(10));
        }
    }

    #[test]
    #[should_panic(expected = "unsatisfied demand")]
    fn commit_with_shortfall_panics() {
        let mut cluster = diamond_cluster();
        let path = path_013(&cluster);
        let p = pay(8);
        let mut s = cluster.begin_payment(&p, PaymentClass::Mice);
        s.try_send_part(&path, Amount::from_units(3)).unwrap();
        let _ = s.commit();
    }
}
