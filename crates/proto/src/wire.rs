//! The wire format of Table 1.
//!
//! | Field    | Description                                     |
//! |----------|-------------------------------------------------|
//! | TransID  | A unique ID of a (partial) payment              |
//! | Type     | Message type                                    |
//! | Path     | Path of this message                            |
//! | Capacity | Probed channel capacity                         |
//! | Commit   | Committed amount of funds for this payment      |
//!
//! Encoding (all integers big-endian):
//!
//! ```text
//! u64  trans_id
//! u8   msg_type
//! u8   reserved (must be 0)
//! u16  pos            — index of the current node within path
//! u16  path_len       — number of node ids
//! u32 × path_len      — node ids, sender → receiver order
//! u16  cap_len        — number of probed capacities
//! u64 × cap_len       — capacities in micro-units
//! u64  commit         — committed amount in micro-units
//! ```
//!
//! Frames on the wire are `u32 length || payload`.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use pcn_types::{PcnError, Result};

/// Maximum accepted path length (far above any PCN diameter).
pub const MAX_PATH_LEN: usize = 1024;
/// Maximum accepted capacity-list length.
pub const MAX_CAP_LEN: usize = 2048;
/// Maximum accepted frame size in bytes.
pub const MAX_FRAME: usize = 64 * 1024;

/// Message types of the prototype protocol (§5.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum MsgType {
    /// Balance probe, travels sender → receiver collecting capacities.
    Probe = 0,
    /// Probe response, travels the reversed path back to the sender.
    ProbeAck = 1,
    /// Phase-1 commit: escrow `commit` at every hop.
    Commit = 2,
    /// All hops escrowed; receiver acknowledges.
    CommitAck = 3,
    /// Some hop had insufficient balance; rolls back as it travels.
    CommitNack = 4,
    /// Phase-2: finalize a fully-committed sub-payment.
    Confirm = 5,
    /// Finalization acknowledgement; credits reverse directions.
    ConfirmAck = 6,
    /// Phase-2 failure path: restore escrowed funds.
    Reverse = 7,
    /// Restoration acknowledgement.
    ReverseAck = 8,
}

impl MsgType {
    /// Parses a wire byte.
    pub fn from_u8(b: u8) -> Result<MsgType> {
        Ok(match b {
            0 => MsgType::Probe,
            1 => MsgType::ProbeAck,
            2 => MsgType::Commit,
            3 => MsgType::CommitAck,
            4 => MsgType::CommitNack,
            5 => MsgType::Confirm,
            6 => MsgType::ConfirmAck,
            7 => MsgType::Reverse,
            8 => MsgType::ReverseAck,
            other => return Err(PcnError::Codec(format!("unknown message type {other}"))),
        })
    }
}

/// A protocol message (one frame).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Message {
    /// Unique id of the (partial) payment this message belongs to.
    pub trans_id: u64,
    /// Message type.
    pub msg_type: MsgType,
    /// Index of the node currently holding the message within `path`.
    pub pos: u16,
    /// Source route: node ids in travel order. ACK-class messages carry
    /// the reversed forward path, exactly as §5.1 describes.
    pub path: Vec<u32>,
    /// Probed capacities (micro-units), appended hop by hop by `PROBE`.
    pub capacities: Vec<u64>,
    /// Committed amount (micro-units) for commit-phase messages.
    pub commit: u64,
}

impl Message {
    /// Creates a message with empty capacity list and zero commit.
    pub fn new(trans_id: u64, msg_type: MsgType, path: Vec<u32>) -> Self {
        Message {
            trans_id,
            msg_type,
            pos: 0,
            path,
            capacities: Vec::new(),
            commit: 0,
        }
    }

    /// The node id at the current position.
    pub fn current(&self) -> Option<u32> {
        self.path.get(self.pos as usize).copied()
    }

    /// The next hop, if any.
    pub fn next_hop(&self) -> Option<u32> {
        self.path.get(self.pos as usize + 1).copied()
    }

    /// Whether the message has reached the end of its path.
    pub fn at_end(&self) -> bool {
        self.pos as usize + 1 >= self.path.len()
    }

    /// Serializes into a length-prefixed frame.
    pub fn encode(&self) -> Bytes {
        let payload = 8 + 1 + 1 + 2 + 2 + 4 * self.path.len() + 2 + 8 * self.capacities.len() + 8;
        let mut buf = BytesMut::with_capacity(4 + payload);
        buf.put_u32(payload as u32);
        buf.put_u64(self.trans_id);
        buf.put_u8(self.msg_type as u8);
        buf.put_u8(0);
        buf.put_u16(self.pos);
        buf.put_u16(self.path.len() as u16);
        for &n in &self.path {
            buf.put_u32(n);
        }
        buf.put_u16(self.capacities.len() as u16);
        for &c in &self.capacities {
            buf.put_u64(c);
        }
        buf.put_u64(self.commit);
        buf.freeze()
    }

    /// Deserializes a frame payload (without the length prefix).
    pub fn decode(mut buf: Bytes) -> Result<Message> {
        let need = |buf: &Bytes, n: usize, what: &str| -> Result<()> {
            if buf.remaining() < n {
                Err(PcnError::Codec(format!("truncated frame reading {what}")))
            } else {
                Ok(())
            }
        };
        need(&buf, 8 + 1 + 1 + 2 + 2, "header")?;
        let trans_id = buf.get_u64();
        let msg_type = MsgType::from_u8(buf.get_u8())?;
        let reserved = buf.get_u8();
        if reserved != 0 {
            return Err(PcnError::Codec(format!(
                "reserved byte must be 0, got {reserved}"
            )));
        }
        let pos = buf.get_u16();
        let path_len = buf.get_u16() as usize;
        if path_len > MAX_PATH_LEN {
            return Err(PcnError::Codec(format!("path too long: {path_len}")));
        }
        need(&buf, 4 * path_len + 2, "path")?;
        let path: Vec<u32> = (0..path_len).map(|_| buf.get_u32()).collect();
        let cap_len = buf.get_u16() as usize;
        if cap_len > MAX_CAP_LEN {
            return Err(PcnError::Codec(format!(
                "capacity list too long: {cap_len}"
            )));
        }
        need(&buf, 8 * cap_len + 8, "capacities")?;
        let capacities: Vec<u64> = (0..cap_len).map(|_| buf.get_u64()).collect();
        let commit = buf.get_u64();
        if buf.has_remaining() {
            return Err(PcnError::Codec(format!(
                "{} trailing bytes after message",
                buf.remaining()
            )));
        }
        if pos as usize >= path_len.max(1) {
            return Err(PcnError::Codec(format!(
                "pos {pos} outside path of length {path_len}"
            )));
        }
        Ok(Message {
            trans_id,
            msg_type,
            pos,
            path,
            capacities,
            commit,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample() -> Message {
        Message {
            trans_id: 0xDEAD_BEEF_0001,
            msg_type: MsgType::Probe,
            pos: 1,
            path: vec![3, 1, 4, 1 + 4, 9],
            capacities: vec![1_000_000, 2_500_000],
            commit: 42,
        }
    }

    #[test]
    fn round_trip() {
        let m = sample();
        let frame = m.encode();
        // Strip the 4-byte length prefix.
        let payload = frame.slice(4..);
        let back = Message::decode(payload).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn length_prefix_matches_payload() {
        let m = sample();
        let frame = m.encode();
        let len = u32::from_be_bytes(frame[..4].try_into().unwrap()) as usize;
        assert_eq!(len, frame.len() - 4);
    }

    #[test]
    fn rejects_unknown_type() {
        let mut raw = sample().encode().slice(4..).to_vec();
        raw[8] = 99; // msg_type byte
        assert!(matches!(
            Message::decode(Bytes::from(raw)),
            Err(PcnError::Codec(_))
        ));
    }

    #[test]
    fn rejects_truncation_at_every_length() {
        let raw = sample().encode().slice(4..).to_vec();
        for cut in 0..raw.len() {
            let r = Message::decode(Bytes::from(raw[..cut].to_vec()));
            assert!(r.is_err(), "truncation at {cut} must fail");
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut raw = sample().encode().slice(4..).to_vec();
        raw.push(0);
        assert!(Message::decode(Bytes::from(raw)).is_err());
    }

    #[test]
    fn rejects_nonzero_reserved() {
        let mut raw = sample().encode().slice(4..).to_vec();
        raw[9] = 1;
        assert!(Message::decode(Bytes::from(raw)).is_err());
    }

    #[test]
    fn rejects_pos_out_of_path() {
        let mut m = sample();
        m.pos = 5;
        let raw = m.encode().slice(4..);
        assert!(Message::decode(raw).is_err());
    }

    #[test]
    fn navigation_helpers() {
        let mut m = sample();
        assert_eq!(m.current(), Some(1));
        assert_eq!(m.next_hop(), Some(4));
        assert!(!m.at_end());
        m.pos = 4;
        assert!(m.at_end());
        assert_eq!(m.next_hop(), None);
    }

    proptest! {
        #[test]
        fn arbitrary_round_trip(
            trans_id: u64,
            ty in 0u8..9,
            path in proptest::collection::vec(any::<u32>(), 1..20),
            caps in proptest::collection::vec(any::<u64>(), 0..20),
            commit: u64,
            pos_seed: u16,
        ) {
            let m = Message {
                trans_id,
                msg_type: MsgType::from_u8(ty).unwrap(),
                pos: pos_seed % path.len() as u16,
                path,
                capacities: caps,
                commit,
            };
            let back = Message::decode(m.encode().slice(4..)).unwrap();
            prop_assert_eq!(m, back);
        }
    }
}
