//! The poll-based reactor hosting every node actor in one thread.
//!
//! The previous runtime spent two OS threads per TCP connection plus
//! one scoped thread per in-flight sub-payment, capping clusters at
//! tens of nodes. This module replaces all of it with a single-threaded
//! event loop over non-blocking sockets — no external async runtime,
//! just readiness polling:
//!
//! * one non-blocking [`TcpListener`] per node (bound before any
//!   traffic flows, so the address book is complete),
//! * inbound connections feeding a [`FrameDecoder`] each,
//! * outbound connections with explicit write buffers flushed as the
//!   kernel accepts bytes,
//! * a [`NodeState`] per node executing the protocol state machine,
//! * a request table correlating client-injected messages with their
//!   terminal replies by `trans_id`.
//!
//! [`EventLoop::poll_once`] makes one pass — accept, read+dispatch,
//! flush — and reports how much progress it made. Because everything is
//! single-threaded, a zero-progress pass over loopback sockets is a
//! definitive quiescence check: no thread can be mid-send, so no bytes
//! are in flight that a subsequent pass could reveal (a small grace
//! window in [`EventLoop::drain`] covers kernel delivery latency).
//!
//! # Threading contract
//!
//! The loop is `!Sync` by construction — one thread drives it at a
//! time. [`Cluster`](crate::Cluster) wraps it in a `Mutex` so its
//! public API stays `&self` and callers may still race payments from
//! multiple threads; they serialize at the lock, which preserves the
//! exactly-one-wins behaviour of conflicting commits.
//!
//! # Determinism
//!
//! Scan order is fixed: listeners, then inbound connections, then
//! outbound buffers, each in creation order; dispatch is FIFO per
//! pass. Wall time enters only through [`crate::wall_now`] (lint rule
//! D1) and is used exclusively for timeouts — never for ordering
//! decisions.

use crate::fault::FaultPlan;
use crate::node::{NodeState, Outbox, MSG_TYPES};
use crate::transport::FrameDecoder;
use crate::wall::WallInstant;
use crate::wire::Message;
use pcn_types::{PcnError, Result};
use std::collections::{HashMap, VecDeque};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::Duration;

/// An accepted inbound connection, owned by the listening node.
struct InConn {
    /// The node whose listener accepted this connection.
    owner: u32,
    stream: TcpStream,
    decoder: FrameDecoder,
    open: bool,
}

/// A persistent outbound connection with an explicit write buffer.
struct OutConn {
    /// Sending node (its counters track the queue depth).
    from: u32,
    stream: TcpStream,
    /// Encoded frames awaiting the kernel.
    buf: Vec<u8>,
    /// How much of `buf` has been written.
    cursor: usize,
    /// End offset of each queued frame, for queue-depth accounting.
    frame_ends: VecDeque<usize>,
    open: bool,
}

/// What [`EventLoop::shutdown`] found while winding down.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ShutdownReport {
    /// Frames still queued on outbound buffers after the final drain.
    pub unflushed_frames: u64,
    /// Bytes of partial frames stuck in inbound decoders.
    pub undecoded_bytes: u64,
    /// Requests begun but never answered (timed out or abandoned).
    pub unanswered_requests: u64,
    /// Sockets that failed mid-run (connect/read/write errors).
    pub transport_errors: u64,
}

impl ShutdownReport {
    /// Whether the loop wound down with nothing left behind.
    pub fn is_clean(&self) -> bool {
        self.unflushed_frames == 0 && self.undecoded_bytes == 0 && self.transport_errors == 0
    }
}

/// The single-threaded reactor. See the module docs for the contract.
pub struct EventLoop {
    nodes: Vec<NodeState>,
    listeners: Vec<TcpListener>,
    addrs: HashMap<u32, SocketAddr>,
    in_conns: Vec<InConn>,
    out_conns: Vec<OutConn>,
    /// `(from, to)` → index into `out_conns`.
    out_index: HashMap<(u32, u32), usize>,
    /// Open request slots: `None` until the terminal reply arrives.
    pending: HashMap<u64, Option<Message>>,
    /// Messages decoded this pass, awaiting dispatch (FIFO).
    scratch: VecDeque<(u32, Message)>,
    faults: FaultPlan,
    transport_errors: u64,
    shut: bool,
}

impl EventLoop {
    /// Binds one non-blocking listener per node and installs the
    /// initial outgoing balances. `balances[i]` maps neighbor id →
    /// micro-units for node `i`. No traffic flows until the first
    /// [`EventLoop::poll_once`].
    pub fn new(balances: Vec<HashMap<u32, u64>>, faults: FaultPlan) -> Result<Self> {
        let mut nodes = Vec::with_capacity(balances.len());
        let mut listeners = Vec::with_capacity(balances.len());
        let mut addrs = HashMap::new();
        for (id, bal) in balances.into_iter().enumerate() {
            let id = id as u32;
            let listener = TcpListener::bind("127.0.0.1:0")?;
            listener.set_nonblocking(true)?;
            addrs.insert(id, listener.local_addr()?);
            listeners.push(listener);
            nodes.push(NodeState::new(id, bal));
        }
        Ok(EventLoop {
            nodes,
            listeners,
            addrs,
            in_conns: Vec::new(),
            out_conns: Vec::new(),
            out_index: HashMap::new(),
            pending: HashMap::new(),
            scratch: VecDeque::new(),
            faults,
            transport_errors: 0,
            shut: false,
        })
    }

    /// Number of hosted nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Immutable access to a node (balances, counters).
    pub fn node(&self, id: u32) -> &NodeState {
        &self.nodes[id as usize]
    }

    /// Telemetry snapshot for every node.
    pub fn counters(&self) -> Vec<crate::node::NodeCounters> {
        self.nodes.iter().map(|n| n.counters().clone()).collect()
    }

    /// Sum of all outgoing balances across the cluster (conservation
    /// checks; meaningful at quiescence, when nothing is escrowed).
    pub fn total_funds(&self) -> u64 {
        self.nodes.iter().map(|n| n.total_outgoing()).sum()
    }

    /// Messages the fault plan dropped so far.
    pub fn dropped(&self) -> u64 {
        self.faults.dropped()
    }

    // ----- churn ---------------------------------------------------

    /// Crashes or revives a node (see [`NodeState::set_down`]).
    pub fn set_node_down(&mut self, node: u32, down: bool) {
        self.nodes[node as usize].set_down(down);
    }

    /// Freezes or reopens one channel direction `u → v`.
    pub fn set_channel_closed(&mut self, u: u32, v: u32, closed: bool) {
        self.nodes[u as usize].set_closed_to(v, closed);
    }

    /// Drains up to `amount` from `u → v`; when `credit_reverse`, the
    /// moved funds land on `v → u` (conserving totals), otherwise they
    /// leave the channel system. Returns the amount moved.
    pub fn drain_channel(&mut self, u: u32, v: u32, amount: u64, credit_reverse: bool) -> u64 {
        let moved = self.nodes[u as usize].drain_to(v, amount);
        if credit_reverse {
            self.nodes[v as usize].credit_to(u, moved);
        }
        moved
    }

    // ----- requests ------------------------------------------------

    /// Opens a reply slot for `msg.trans_id` and dispatches `msg` at
    /// its originating node (`path[pos]`). The terminal reply — or a
    /// timeout — is later retrieved with [`EventLoop::take_reply`].
    pub fn begin_request(&mut self, msg: Message) -> Result<u64> {
        let origin = msg
            .current()
            .ok_or_else(|| PcnError::Transport("message with empty path".into()))?;
        if origin as usize >= self.nodes.len() {
            return Err(PcnError::Transport(format!("no node {origin}")));
        }
        let id = msg.trans_id;
        self.pending.insert(id, None);
        self.dispatch(origin, msg);
        Ok(id)
    }

    /// Pumps the loop until every listed request has a reply or the
    /// timeout elapses. Requests not in `ids` are serviced too — the
    /// loop is global — but only the listed ones gate completion.
    pub fn run_requests(&mut self, ids: &[u64], timeout: Duration) {
        let wall_deadline = crate::wall_now() + timeout;
        loop {
            let done = ids
                .iter()
                .all(|id| !matches!(self.pending.get(id), Some(None)));
            if done {
                return;
            }
            if self.poll_once() == 0 {
                if crate::wall_now() >= wall_deadline {
                    return;
                }
                std::thread::sleep(Duration::from_micros(50));
            }
        }
    }

    /// Removes and returns the reply for a finished request. `None`
    /// means the request timed out (a late reply arriving after this
    /// call is dropped on the floor, like the old channel-based
    /// correlation).
    pub fn take_reply(&mut self, trans_id: u64) -> Option<Message> {
        self.pending.remove(&trans_id).flatten()
    }

    // ----- the reactor ---------------------------------------------

    /// One pass: accept new connections, read + dispatch every readable
    /// frame, flush outbound buffers. Returns a progress count (0 ⇒
    /// the pass observed nothing to do).
    pub fn poll_once(&mut self) -> usize {
        let mut progress = 0;
        progress += self.accept_new();
        progress += self.poll_reads();
        progress += self.flush_writes();
        progress
    }

    /// Pumps until quiescent: `grace` consecutive zero-progress passes
    /// (covering loopback delivery latency) or the wall deadline.
    /// Returns true when quiescence was reached.
    pub fn drain(&mut self, wall_deadline: WallInstant) -> bool {
        let mut calm = 0;
        while calm < 3 {
            if self.poll_once() == 0 {
                calm += 1;
                if crate::wall_now() >= wall_deadline {
                    return false;
                }
                std::thread::sleep(Duration::from_micros(50));
            } else {
                calm = 0;
            }
        }
        true
    }

    fn accept_new(&mut self) -> usize {
        let mut accepted = 0;
        for (owner, listener) in self.listeners.iter().enumerate() {
            loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        if stream.set_nonblocking(true).is_err()
                            || stream.set_nodelay(true).is_err()
                        {
                            self.transport_errors += 1;
                            continue;
                        }
                        self.in_conns.push(InConn {
                            owner: owner as u32,
                            stream,
                            decoder: FrameDecoder::new(),
                            open: true,
                        });
                        accepted += 1;
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(_) => {
                        self.transport_errors += 1;
                        break;
                    }
                }
            }
        }
        accepted
    }

    fn poll_reads(&mut self) -> usize {
        let mut read_buf = [0u8; 4096];
        // Phase 1: drain every readable socket into its decoder and
        // collect complete frames. Counting msgs_in happens here, at
        // the wire boundary.
        for conn in self.in_conns.iter_mut().filter(|c| c.open) {
            loop {
                match conn.stream.read(&mut read_buf) {
                    Ok(0) => {
                        conn.open = false; // clean EOF
                        break;
                    }
                    Ok(n) => conn.decoder.feed(&read_buf[..n]),
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => {
                        conn.open = false;
                        self.transport_errors += 1;
                        break;
                    }
                }
            }
            loop {
                match conn.decoder.next_message() {
                    Ok(Some(msg)) => {
                        let c = &mut self.nodes[conn.owner as usize].counters;
                        c.msgs_in[msg.msg_type as usize] += 1;
                        self.scratch.push_back((conn.owner, msg));
                    }
                    Ok(None) => break,
                    Err(_) => {
                        // A malformed frame poisons the connection; the
                        // peer's next send will reconnect.
                        conn.open = false;
                        self.transport_errors += 1;
                        break;
                    }
                }
            }
        }
        // Phase 2: run the state machines. Handlers may emit new sends,
        // which queue_send buffers for the flush phase.
        let mut dispatched = 0;
        while let Some((node, msg)) = self.scratch.pop_front() {
            self.dispatch(node, msg);
            dispatched += 1;
        }
        dispatched
    }

    /// Runs one message through its node's state machine and executes
    /// the outbox: terminal replies fill their request slot, sends are
    /// queued on outbound connections.
    fn dispatch(&mut self, node: u32, msg: Message) {
        let mut out = Outbox::default();
        self.nodes[node as usize].handle(msg, &mut out);
        for reply in out.deliveries {
            if let Some(slot) = self.pending.get_mut(&reply.trans_id) {
                *slot = Some(reply);
            }
            // No slot: a late reply after timeout — dropped, as before.
        }
        for (to, m) in out.sends {
            self.queue_send(node, to, m);
        }
    }

    /// Buffers one frame on the `from → to` connection, connecting on
    /// first use. Under an active fault plan the frame may be dropped
    /// before it is counted or queued — a lossy wire, invisible to the
    /// sender.
    fn queue_send(&mut self, from: u32, to: u32, msg: Message) {
        if self.faults.should_drop() {
            return;
        }
        let idx = match self.out_index.get(&(from, to)) {
            Some(&i) if self.out_conns[i].open => i,
            _ => {
                let Some(&addr) = self.addrs.get(&to) else {
                    self.transport_errors += 1;
                    return;
                };
                // Loopback connect completes immediately (the listener's
                // backlog accepts it); switch to non-blocking after.
                let stream = match TcpStream::connect(addr) {
                    Ok(s) => s,
                    Err(_) => {
                        self.transport_errors += 1;
                        return;
                    }
                };
                if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
                    self.transport_errors += 1;
                    return;
                }
                let i = self.out_conns.len();
                self.out_conns.push(OutConn {
                    from,
                    stream,
                    buf: Vec::new(),
                    cursor: 0,
                    frame_ends: VecDeque::new(),
                    open: true,
                });
                self.out_index.insert((from, to), i);
                i
            }
        };
        let counters = &mut self.nodes[from as usize].counters;
        counters.msgs_out[msg.msg_type as usize] += 1;
        counters.queue_depth += 1;
        counters.queue_high_water = counters.queue_high_water.max(counters.queue_depth);
        let conn = &mut self.out_conns[idx];
        conn.buf.extend_from_slice(&msg.encode());
        conn.frame_ends.push_back(conn.buf.len());
    }

    fn flush_writes(&mut self) -> usize {
        let mut progressed = 0;
        for conn in self.out_conns.iter_mut().filter(|c| c.open) {
            while conn.cursor < conn.buf.len() {
                match conn.stream.write(&conn.buf[conn.cursor..]) {
                    Ok(0) => {
                        conn.open = false;
                        self.transport_errors += 1;
                        break;
                    }
                    Ok(n) => {
                        conn.cursor += n;
                        progressed += 1;
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => {
                        conn.open = false;
                        self.transport_errors += 1;
                        break;
                    }
                }
            }
            // Retire fully written frames from the owner's queue depth.
            let counters = &mut self.nodes[conn.from as usize].counters;
            while conn
                .frame_ends
                .front()
                .is_some_and(|&end| end <= conn.cursor)
            {
                conn.frame_ends.pop_front();
                counters.queue_depth = counters.queue_depth.saturating_sub(1);
            }
            if conn.cursor == conn.buf.len() && conn.cursor > 0 {
                conn.buf.clear();
                conn.cursor = 0;
            }
            if !conn.open {
                // Frames stuck on a dead socket will never flush.
                counters.queue_depth = counters
                    .queue_depth
                    .saturating_sub(conn.frame_ends.len() as u64);
                conn.frame_ends.clear();
            }
        }
        progressed
    }

    // ----- teardown ------------------------------------------------

    /// Winds the loop down deterministically: drains until quiescent
    /// (bounded by a 2-second wall deadline), then closes every socket
    /// by dropping it and reports anything left behind. Safe to call
    /// twice; the second call is a no-op returning a clean report.
    pub fn shutdown(&mut self) -> ShutdownReport {
        if self.shut {
            return ShutdownReport::default();
        }
        let wall_deadline = crate::wall_now() + Duration::from_secs(2);
        self.drain(wall_deadline);
        let report = ShutdownReport {
            unflushed_frames: self
                .out_conns
                .iter()
                .map(|c| c.frame_ends.len() as u64)
                .sum(),
            undecoded_bytes: self
                .in_conns
                .iter()
                .map(|c| c.decoder.pending_bytes() as u64)
                .sum(),
            unanswered_requests: self.pending.values().filter(|v| v.is_none()).count() as u64,
            transport_errors: self.transport_errors,
        };
        // Deterministic FD close: every socket dies here, in order.
        self.out_conns.clear();
        self.in_conns.clear();
        self.out_index.clear();
        self.listeners.clear();
        self.pending.clear();
        self.shut = true;
        report
    }
}

impl Drop for EventLoop {
    fn drop(&mut self) {
        if self.shut {
            return;
        }
        let report = self.shutdown();
        // Faulty runs legitimately strand requests and half-frames; a
        // fault-free loop must wind down clean — be loud otherwise.
        if !self.faults.enabled() && !report.is_clean() {
            eprintln!("EventLoop dropped unclean: {report:?}");
            debug_assert!(false, "EventLoop dropped unclean: {report:?}");
        }
    }
}

/// Re-exported so reports can size per-type arrays without reaching
/// into [`crate::node`].
pub const WIRE_MSG_TYPES: usize = MSG_TYPES;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::MsgType;

    /// 0 ↔ 1 ↔ 2 line with 10 units per direction.
    fn line3() -> EventLoop {
        let u = 10_000_000u64;
        EventLoop::new(
            vec![
                HashMap::from([(1, u)]),
                HashMap::from([(0, u), (2, u)]),
                HashMap::from([(1, u)]),
            ],
            FaultPlan::none(),
        )
        .unwrap()
    }

    fn request(ev: &mut EventLoop, msg: Message) -> Option<Message> {
        let id = ev.begin_request(msg).unwrap();
        ev.run_requests(&[id], Duration::from_secs(5));
        ev.take_reply(id)
    }

    #[test]
    fn probe_round_trip_over_the_loop() {
        let mut ev = line3();
        let got = request(&mut ev, Message::new(1, MsgType::Probe, vec![0, 1, 2])).unwrap();
        assert_eq!(got.msg_type, MsgType::ProbeAck);
        assert_eq!(got.capacities, vec![10_000_000, 10_000_000]);
        assert!(ev.shutdown().is_clean());
    }

    #[test]
    fn full_payment_settles_and_conserves() {
        let mut ev = line3();
        let before = ev.total_funds();
        let mut commit = Message::new(2, MsgType::Commit, vec![0, 1, 2]);
        commit.commit = 4_000_000;
        assert_eq!(
            request(&mut ev, commit).unwrap().msg_type,
            MsgType::CommitAck
        );
        let mut confirm = Message::new(3, MsgType::Confirm, vec![0, 1, 2]);
        confirm.commit = 4_000_000;
        assert_eq!(
            request(&mut ev, confirm).unwrap().msg_type,
            MsgType::ConfirmAck
        );
        assert_eq!(ev.total_funds(), before, "settlement conserves funds");
        assert_eq!(ev.node(0).balance_to(1), 6_000_000);
        assert_eq!(ev.node(2).balance_to(1), 14_000_000);
        // Quiescent and fault-free: every wire frame sent was received.
        let counters = ev.counters();
        let sent: u64 = counters.iter().map(|c| c.wire_out()).sum();
        let received: u64 = counters.iter().map(|c| c.wire_in()).sum();
        assert_eq!(sent, received);
        assert!(sent > 0);
        assert!(ev.shutdown().is_clean());
    }

    #[test]
    fn dropped_probe_times_out() {
        let u = 10_000_000u64;
        let mut ev = EventLoop::new(
            vec![
                HashMap::from([(1, u)]),
                HashMap::from([(0, u), (2, u)]),
                HashMap::from([(1, u)]),
            ],
            FaultPlan::with_drop_prob(1.0, 7),
        )
        .unwrap();
        let id = ev
            .begin_request(Message::new(9, MsgType::Probe, vec![0, 1, 2]))
            .unwrap();
        ev.run_requests(&[id], Duration::from_millis(100));
        assert!(ev.take_reply(id).is_none(), "dropped probe must time out");
        assert!(ev.dropped() > 0);
    }

    #[test]
    fn shutdown_is_idempotent_and_closes_everything() {
        let mut ev = line3();
        request(&mut ev, Message::new(4, MsgType::Probe, vec![0, 1, 2])).unwrap();
        let first = ev.shutdown();
        assert!(first.is_clean(), "{first:?}");
        let second = ev.shutdown();
        assert_eq!(second, ShutdownReport::default());
        assert!(ev.in_conns.is_empty() && ev.out_conns.is_empty() && ev.listeners.is_empty());
    }

    #[test]
    fn queue_depth_returns_to_zero_at_quiescence() {
        let mut ev = line3();
        for id in 10..20 {
            request(&mut ev, Message::new(id, MsgType::Probe, vec![0, 1, 2])).unwrap();
        }
        for c in ev.counters() {
            assert_eq!(c.queue_depth, 0);
        }
        assert!(ev.counters().iter().any(|c| c.queue_high_water > 0));
        assert!(ev.shutdown().is_clean());
    }
}
