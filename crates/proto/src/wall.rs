//! The single wall-clock entry point of the workspace.
//!
//! Everything deterministic (pcn-types, pcn-graph, pcn-lp, pcn-sim,
//! flash-core, pcn-workload) runs on virtual time
//! (`pcn_sim::des::SimTime`) and must never read the host clock:
//! same-seed runs are bit-identical, and `det_lint` rule D1 rejects
//! `Instant::now` / `SystemTime` there outright.
//!
//! The testbed and the bench/experiment binaries *do* need wall time —
//! Figures 12/13 report real per-transaction processing delay over TCP
//! — so they get it from exactly one place: this module. Rule D1 lets
//! this file touch `std::time::Instant` and requires every caller to
//! (a) use [`wall_now`] rather than `Instant::now()` and (b) bind the
//! result to a `wall_*`-prefixed name, so wall-clock metrics stay
//! visibly segregated from virtual-time ones in every diff.

use std::time::Instant;

/// Reads the host monotonic clock. Bind the result to a
/// `wall_*`-prefixed variable (enforced by `det_lint`):
///
/// ```
/// let wall_start = pcn_proto::wall_now();
/// let wall_elapsed = wall_start.elapsed();
/// ```
#[must_use]
pub fn wall_now() -> Instant {
    Instant::now()
}

/// The wall-clock instant type, for signatures and struct fields in
/// wall-allowed crates. Rule D1 flags the `std::time::Instant` *path*
/// outside this file; naming the alias instead keeps every deadline
/// visibly tied to the single [`wall_now`] entry point.
pub type WallInstant = Instant;
