//! Framed TCP transport: blocking helpers and an incremental decoder.
//!
//! Every message travels as a `u32 length || payload` frame (see
//! [`crate::wire`]). The blocking [`write_message`]/[`read_message`]
//! pair serves synchronous call sites (tests, simple clients); the
//! poll-based [`EventLoop`](crate::event_loop::EventLoop) instead feeds
//! whatever bytes a non-blocking read returned into a [`FrameDecoder`],
//! which buffers partial frames across reads and yields complete
//! messages as they materialize. Both paths enforce the same
//! [`MAX_FRAME`] bound before allocating.

use crate::wire::{Message, MAX_FRAME};
use pcn_types::{PcnError, Result};
use std::io::{Read, Write};
use std::net::TcpStream;

/// Writes one framed message to a stream.
pub fn write_message(stream: &mut TcpStream, msg: &Message) -> Result<()> {
    let frame = msg.encode();
    stream.write_all(&frame)?;
    Ok(())
}

/// Reads one framed message. Returns `Ok(None)` on clean EOF at a frame
/// boundary.
pub fn read_message(stream: &mut TcpStream) -> Result<Option<Message>> {
    let mut len_buf = [0u8; 4];
    match stream.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e)
            if e.kind() == std::io::ErrorKind::UnexpectedEof
                || e.kind() == std::io::ErrorKind::ConnectionReset =>
        {
            return Ok(None)
        }
        Err(e) => return Err(e.into()),
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len == 0 || len > MAX_FRAME {
        return Err(PcnError::Codec(format!("invalid frame length {len}")));
    }
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload)?;
    Ok(Some(Message::decode(payload.into())?))
}

/// Incremental frame decoder for non-blocking reads.
///
/// Feed it byte chunks in arrival order with [`FrameDecoder::feed`];
/// pop complete messages with [`FrameDecoder::next_message`]. Partial
/// frames — a length prefix split across TCP segments, a payload
/// arriving in pieces — are buffered until complete. The frame-length
/// bound is checked as soon as the prefix is readable, before any
/// payload accumulates.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Read cursor into `buf`; consumed bytes are compacted away once
    /// the cursor passes half the buffer.
    start: usize,
}

impl FrameDecoder {
    /// Creates an empty decoder.
    pub fn new() -> Self {
        FrameDecoder::default()
    }

    /// Appends newly read bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed (partial-frame check).
    pub fn pending_bytes(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Decodes the next complete message, if one is buffered. Returns
    /// `Ok(None)` when more bytes are needed.
    pub fn next_message(&mut self) -> Result<Option<Message>> {
        let avail = &self.buf[self.start..];
        if avail.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_be_bytes([avail[0], avail[1], avail[2], avail[3]]) as usize;
        if len == 0 || len > MAX_FRAME {
            return Err(PcnError::Codec(format!("invalid frame length {len}")));
        }
        if avail.len() < 4 + len {
            return Ok(None);
        }
        let payload = avail[4..4 + len].to_vec();
        self.start += 4 + len;
        if self.start > self.buf.len() / 2 {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        Ok(Some(Message::decode(payload.into())?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::MsgType;
    use std::net::TcpListener;

    fn msg(id: u64) -> Message {
        Message::new(id, MsgType::Probe, vec![0, 1])
    }

    #[test]
    fn framed_round_trip_over_tcp() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let mut got = Vec::new();
            while let Some(m) = read_message(&mut s).unwrap() {
                got.push(m);
            }
            got
        });
        let mut client = TcpStream::connect(addr).unwrap();
        write_message(&mut client, &msg(1)).unwrap();
        write_message(&mut client, &msg(2)).unwrap();
        drop(client);
        let got = handle.join().unwrap();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].trans_id, 1);
        assert_eq!(got[1].trans_id, 2);
    }

    #[test]
    fn oversized_frame_rejected() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            read_message(&mut s)
        });
        let mut client = TcpStream::connect(addr).unwrap();
        client
            .write_all(&(MAX_FRAME as u32 + 1).to_be_bytes())
            .unwrap();
        client.write_all(&[0u8; 16]).unwrap();
        let res = handle.join().unwrap();
        assert!(res.is_err());
    }

    #[test]
    fn decoder_handles_split_frames() {
        let frames: Vec<u8> = [msg(1).encode(), msg(2).encode(), msg(3).encode()]
            .iter()
            .flat_map(|b| b.iter().copied())
            .collect();
        // Feed one byte at a time: every split point is exercised.
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        for b in &frames {
            dec.feed(&[*b]);
            while let Some(m) = dec.next_message().unwrap() {
                got.push(m.trans_id);
            }
        }
        assert_eq!(got, vec![1, 2, 3]);
        assert_eq!(dec.pending_bytes(), 0);
    }

    #[test]
    fn decoder_rejects_bad_length_immediately() {
        let mut dec = FrameDecoder::new();
        dec.feed(&(MAX_FRAME as u32 + 1).to_be_bytes());
        assert!(dec.next_message().is_err());
        let mut dec = FrameDecoder::new();
        dec.feed(&0u32.to_be_bytes());
        assert!(dec.next_message().is_err());
    }

    #[test]
    fn decoder_compacts_consumed_bytes() {
        let mut dec = FrameDecoder::new();
        for id in 0..100 {
            dec.feed(&msg(id).encode());
            let m = dec.next_message().unwrap().unwrap();
            assert_eq!(m.trans_id, id);
        }
        assert_eq!(dec.pending_bytes(), 0);
        assert!(dec.buf.len() < 64, "buffer must not grow unboundedly");
    }
}
