//! Framed TCP transport and lazy connection pooling.
//!
//! Every message travels as a `u32 length || payload` frame (see
//! [`crate::wire`]). Each node keeps at most one persistent outbound
//! connection per peer, opened on first use — mirroring how the
//! prototype binds each node to "a unique ip address and port number
//! tuple" and exchanges messages over TCP.

use crate::fault::FaultPlan;
use crate::wire::{Message, MAX_FRAME};
use parking_lot::Mutex;
use pcn_types::{PcnError, Result};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// Writes one framed message to a stream.
pub fn write_message(stream: &mut TcpStream, msg: &Message) -> Result<()> {
    let frame = msg.encode();
    stream.write_all(&frame)?;
    Ok(())
}

/// Reads one framed message. Returns `Ok(None)` on clean EOF at a frame
/// boundary.
pub fn read_message(stream: &mut TcpStream) -> Result<Option<Message>> {
    let mut len_buf = [0u8; 4];
    match stream.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e)
            if e.kind() == std::io::ErrorKind::UnexpectedEof
                || e.kind() == std::io::ErrorKind::ConnectionReset =>
        {
            return Ok(None)
        }
        Err(e) => return Err(e.into()),
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len == 0 || len > MAX_FRAME {
        return Err(PcnError::Codec(format!("invalid frame length {len}")));
    }
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload)?;
    Ok(Some(Message::decode(payload.into())?))
}

/// Lazy outbound connection pool keyed by node id.
pub struct ConnPool {
    addrs: HashMap<u32, SocketAddr>,
    conns: Mutex<HashMap<u32, TcpStream>>,
    faults: FaultPlan,
}

impl ConnPool {
    /// Creates a pool over the cluster address book.
    pub fn new(addrs: HashMap<u32, SocketAddr>) -> Arc<Self> {
        Self::with_faults(addrs, FaultPlan::none())
    }

    /// Creates a pool whose outbound messages pass through a fault plan
    /// (see [`crate::fault`]).
    pub fn with_faults(addrs: HashMap<u32, SocketAddr>, faults: FaultPlan) -> Arc<Self> {
        Arc::new(ConnPool {
            addrs,
            conns: Mutex::new(HashMap::new()),
            faults,
        })
    }

    /// Sends `msg` to node `to`, connecting on first use. A stale
    /// connection (peer restarted) is retried once with a fresh one.
    /// Under an active fault plan the message may be silently dropped —
    /// the caller sees success, exactly like a lossy network.
    pub fn send(&self, to: u32, msg: &Message) -> Result<()> {
        if self.faults.should_drop() {
            return Ok(());
        }
        let addr = *self
            .addrs
            .get(&to)
            .ok_or_else(|| PcnError::Transport(format!("no address for node {to}")))?;
        let mut conns = self.conns.lock();
        if let Some(stream) = conns.get_mut(&to) {
            if write_message(stream, msg).is_ok() {
                return Ok(());
            }
            conns.remove(&to);
        }
        let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5))?;
        stream.set_nodelay(true)?;
        write_message(&mut stream, msg)?;
        conns.insert(to, stream);
        Ok(())
    }

    /// Drops all pooled connections (peers observe EOF).
    pub fn close_all(&self) {
        self.conns.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::MsgType;
    use std::net::TcpListener;

    fn msg(id: u64) -> Message {
        Message::new(id, MsgType::Probe, vec![0, 1])
    }

    #[test]
    fn framed_round_trip_over_tcp() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let mut got = Vec::new();
            while let Some(m) = read_message(&mut s).unwrap() {
                got.push(m);
            }
            got
        });
        let mut client = TcpStream::connect(addr).unwrap();
        write_message(&mut client, &msg(1)).unwrap();
        write_message(&mut client, &msg(2)).unwrap();
        drop(client);
        let got = handle.join().unwrap();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].trans_id, 1);
        assert_eq!(got[1].trans_id, 2);
    }

    #[test]
    fn pool_reuses_connection() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let mut count = 0;
            while read_message(&mut s).unwrap().is_some() {
                count += 1;
            }
            count
        });
        let pool = ConnPool::new(HashMap::from([(7, addr)]));
        pool.send(7, &msg(1)).unwrap();
        pool.send(7, &msg(2)).unwrap();
        pool.send(7, &msg(3)).unwrap();
        pool.close_all();
        assert_eq!(handle.join().unwrap(), 3);
    }

    #[test]
    fn unknown_peer_errors() {
        let pool = ConnPool::new(HashMap::new());
        assert!(matches!(pool.send(1, &msg(1)), Err(PcnError::Transport(_))));
    }

    #[test]
    fn oversized_frame_rejected() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            read_message(&mut s)
        });
        let mut client = TcpStream::connect(addr).unwrap();
        client
            .write_all(&(MAX_FRAME as u32 + 1).to_be_bytes())
            .unwrap();
        client.write_all(&[0u8; 16]).unwrap();
        let res = handle.join().unwrap();
        assert!(res.is_err());
    }
}
