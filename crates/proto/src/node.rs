//! The per-participant protocol state machine.
//!
//! Each node owns the balances of its **outgoing** channel directions
//! (node `u` owns `balance[u → v]`) and executes the protocol state
//! machine of §5.1:
//!
//! * `PROBE` — append own next-hop balance to `Capacity`, forward;
//!   the receiver reverses the path into a `PROBE_ACK`.
//! * `COMMIT` — escrow (decrement) the next-hop balance and forward;
//!   on shortfall, emit `COMMIT_NACK` back along the reversed prefix,
//!   **rolling back** the escrow at every hop it passes.
//! * `CONFIRM` / `CONFIRM_ACK` — the ACK credits each node's
//!   reverse-direction balance ("adding the committed funds of this
//!   sub-payment to the channel in the reverse direction").
//! * `REVERSE` / `REVERSE_ACK` — restores each node's forward-direction
//!   escrow for sub-payments abandoned in phase 2.
//!
//! A [`NodeState`] is **passive**: it never touches a socket, a thread,
//! or a clock. [`NodeState::handle`] consumes one message and emits its
//! effects into an [`Outbox`] — wire sends and client deliveries — which
//! the [`EventLoop`](crate::event_loop::EventLoop) executes. This is the
//! state-machine half of the poll-based transport: what used to run on
//! one detached reader thread per connection is now a pure transition
//! function driven by the reactor.
//!
//! The one deviation from the paper's prose: the paper sends `REVERSE`
//! for *failed* sub-payments too, but hops beyond the NACKing node never
//! escrowed anything, so a full-path `REVERSE` would over-credit. Here
//! the `COMMIT_NACK` itself rolls back exactly the hops that escrowed,
//! and phase-2 `REVERSE` is only used for sub-payments that fully
//! `COMMIT_ACK`ed. Funds conservation is asserted in the tests.
//!
//! # Churn semantics
//!
//! Mirroring `pcn_sim::des::churn`, a node carries live fault state:
//!
//! * A **closed** outgoing direction freezes its balance: probes report
//!   capacity 0 and a `COMMIT` arriving at the closed hop NACKs back
//!   (releasing upstream escrow). Phase-2 settlement waves still land on
//!   frozen balances, so in-flight payments `CONFIRM`/`REVERSE` cleanly.
//! * A **down** node drops probes (the sender times out) and NACKs
//!   commits. Phase-2 messages are still relayed — without HTLC-style
//!   timelocks (out of scope for the paper and this reproduction), a
//!   crashed relay that also swallowed settlement would strand escrow
//!   forever, so the testbed models crash-recovery replay instead.

use crate::wire::{Message, MsgType};
use std::collections::{HashMap, HashSet};

/// Number of wire message types (the per-type counter arrays' length).
pub const MSG_TYPES: usize = 9;

/// Per-node telemetry, maintained by the state machine and the event
/// loop and snapshotted into scenario reports.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NodeCounters {
    /// Wire frames received, by [`MsgType`] discriminant.
    pub msgs_in: [u64; MSG_TYPES],
    /// Wire frames sent (queued post-fault-roll), by [`MsgType`]
    /// discriminant.
    pub msgs_out: [u64; MSG_TYPES],
    /// `PROBE` messages serviced here (one per hop traversed, matching
    /// the paper's probing-message metric) — including locally injected
    /// and terminal ones, so the cluster-wide sum reproduces the old
    /// thread-per-connection runtime's metric exactly.
    pub probe_messages: u64,
    /// `COMMIT` messages serviced here (same accounting as probes).
    pub commit_messages: u64,
    /// `COMMIT`s this node refused (insufficient balance, closed
    /// channel, or node down) — each one originated a `COMMIT_NACK`.
    pub commits_nacked: u64,
    /// Funds currently escrowed by this node (committed but neither
    /// confirmed nor reversed), micro-units.
    pub escrow_held: u64,
    /// High-water mark of [`NodeCounters::escrow_held`].
    pub escrow_high_water: u64,
    /// Wire frames queued on this node's outbound connections but not
    /// yet flushed (maintained by the event loop).
    pub queue_depth: u64,
    /// High-water mark of [`NodeCounters::queue_depth`].
    pub queue_high_water: u64,
    /// All messages serviced by the state machine (wire + local).
    pub total_messages: u64,
}

impl NodeCounters {
    /// Total wire frames received, all types.
    pub fn wire_in(&self) -> u64 {
        self.msgs_in.iter().sum()
    }

    /// Total wire frames sent, all types.
    pub fn wire_out(&self) -> u64 {
        self.msgs_out.iter().sum()
    }

    fn escrow_add(&mut self, amount: u64) {
        self.escrow_held = self.escrow_held.saturating_add(amount);
        self.escrow_high_water = self.escrow_high_water.max(self.escrow_held);
    }

    fn escrow_release(&mut self, amount: u64) {
        self.escrow_held = self.escrow_held.saturating_sub(amount);
    }
}

/// The effects of one state-machine transition: wire sends (`(next hop,
/// message)`, with `pos` already advanced) and terminal messages to
/// deliver to the waiting client.
#[derive(Debug, Default)]
pub struct Outbox {
    /// Messages to put on the wire, in emission order.
    pub sends: Vec<(u32, Message)>,
    /// Terminal messages for the cluster-side request table.
    pub deliveries: Vec<Message>,
}

/// A participant node: balances + fault state + the protocol state
/// machine. Passive — driven entirely by the event loop.
pub struct NodeState {
    id: u32,
    /// Outgoing balance per neighbor (micro-units).
    balances: HashMap<u32, u64>,
    /// Outgoing directions frozen by churn (`ChannelClose`).
    closed: HashSet<u32>,
    /// Whether the node is crashed (`NodeDown`).
    down: bool,
    /// Telemetry (also updated by the event loop for wire/queue counts).
    pub(crate) counters: NodeCounters,
}

impl NodeState {
    /// Creates the node with its initial outgoing balances.
    pub fn new(id: u32, balances: HashMap<u32, u64>) -> Self {
        NodeState {
            id,
            balances,
            closed: HashSet::new(),
            down: false,
            counters: NodeCounters::default(),
        }
    }

    /// This node's id.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Current outgoing balance toward `neighbor` (micro-units).
    pub fn balance_to(&self, neighbor: u32) -> u64 {
        self.balances.get(&neighbor).copied().unwrap_or(0)
    }

    /// Sum of all outgoing balances (conservation checks).
    pub fn total_outgoing(&self) -> u64 {
        self.balances.values().sum()
    }

    /// Telemetry snapshot.
    pub fn counters(&self) -> &NodeCounters {
        &self.counters
    }

    /// Crashes or revives the node.
    pub fn set_down(&mut self, down: bool) {
        self.down = down;
    }

    /// Whether the node is currently crashed.
    pub fn is_down(&self) -> bool {
        self.down
    }

    /// Freezes or reopens the outgoing direction toward `neighbor`.
    pub fn set_closed_to(&mut self, neighbor: u32, closed: bool) {
        if closed {
            self.closed.insert(neighbor);
        } else {
            self.closed.remove(&neighbor);
        }
    }

    /// Moves up to `amount` out of the direction toward `neighbor`,
    /// returning what was actually moved (the churn `BalanceDrain`).
    pub fn drain_to(&mut self, neighbor: u32, amount: u64) -> u64 {
        let bal = self.balances.entry(neighbor).or_insert(0);
        let moved = amount.min(*bal);
        *bal -= moved;
        moved
    }

    /// Credits the direction toward `neighbor` (the receiving half of a
    /// `BalanceDrain`, and test setup).
    pub fn credit_to(&mut self, neighbor: u32, amount: u64) {
        *self.balances.entry(neighbor).or_insert(0) += amount;
    }

    /// Forwards `msg` to `path[pos + 1]`, incrementing `pos`.
    fn advance(&self, mut msg: Message, out: &mut Outbox) {
        let Some(next) = msg.next_hop() else {
            debug_assert!(false, "advance called at end of path");
            return;
        };
        msg.pos += 1;
        out.sends.push((next, msg));
    }

    /// Reverses `msg` into an ACK of type `ack_type` and routes it —
    /// back over the wire, or straight to the client on a degenerate
    /// 1-node path.
    fn ack_back(&self, msg: &Message, ack_type: MsgType, out: &mut Outbox) {
        let mut ack = msg.clone();
        ack.msg_type = ack_type;
        ack.path.reverse();
        ack.pos = 0;
        if ack.at_end() {
            out.deliveries.push(ack);
        } else {
            self.advance(ack, out);
        }
    }

    /// The protocol state machine. Called for every wire-received
    /// message and for client-injected ones.
    pub fn handle(&mut self, msg: Message, out: &mut Outbox) {
        self.counters.total_messages += 1;
        match msg.msg_type {
            MsgType::Probe => self.on_probe(msg, out),
            MsgType::Commit => self.on_commit(msg, out),
            MsgType::CommitNack => self.on_commit_nack(msg, out),
            MsgType::Confirm => self.on_confirm(msg, out),
            MsgType::ConfirmAck => self.on_confirm_ack(msg, out),
            MsgType::Reverse => self.on_reverse(msg, out),
            // Pure relays: ProbeAck, CommitAck, ReverseAck.
            MsgType::ProbeAck | MsgType::CommitAck | MsgType::ReverseAck => {
                if msg.at_end() {
                    out.deliveries.push(msg);
                } else {
                    self.advance(msg, out);
                }
            }
        }
    }

    fn on_probe(&mut self, mut msg: Message, out: &mut Outbox) {
        self.counters.probe_messages += 1;
        if self.down {
            // A crashed node services nothing; the probe times out at
            // the sender, exactly like the DES's NACKed probe.
            return;
        }
        if msg.at_end() {
            // Receiver: reverse the path into a PROBE_ACK (§5.1: "the
            // receiver modifies the message type to PROBE_ACK, replaces
            // the Path field with the reversed version of the forward
            // path, and sends it back").
            self.ack_back(&msg, MsgType::ProbeAck, out);
            return;
        }
        // Intermediate (or sender): append own balance toward next hop.
        // A closed direction reports capacity 0 — frozen funds are not
        // probeable, so routers steer around the channel.
        let next = msg.next_hop().expect("checked not at end");
        let bal = if self.closed.contains(&next) {
            0
        } else {
            self.balance_to(next)
        };
        msg.capacities.push(bal);
        self.advance(msg, out);
    }

    /// Originates a `COMMIT_NACK` back along the reversed prefix of a
    /// refused `COMMIT`. Nodes before us escrowed and roll back as the
    /// NACK passes.
    fn nack_commit(&mut self, msg: &Message, out: &mut Outbox) {
        self.counters.commits_nacked += 1;
        let mut prefix: Vec<u32> = msg.path[..=msg.pos as usize].to_vec();
        prefix.reverse();
        let mut nack = Message::new(msg.trans_id, MsgType::CommitNack, prefix);
        nack.commit = msg.commit;
        if nack.at_end() {
            out.deliveries.push(nack); // the sender itself refused
        } else {
            self.advance(nack, out);
        }
    }

    fn on_commit(&mut self, msg: Message, out: &mut Outbox) {
        self.counters.commit_messages += 1;
        if self.down {
            // Crashed nodes NACK everything they would service.
            self.nack_commit(&msg, out);
            return;
        }
        if msg.at_end() {
            // Receiver: all hops escrowed; acknowledge.
            self.ack_back(&msg, MsgType::CommitAck, out);
            return;
        }
        let next = msg.next_hop().expect("checked not at end");
        if self.closed.contains(&next) {
            // Frozen channel: refuse, releasing upstream escrow.
            self.nack_commit(&msg, out);
            return;
        }
        let bal = self.balances.entry(next).or_insert(0);
        if *bal >= msg.commit {
            *bal -= msg.commit;
            self.counters.escrow_add(msg.commit);
            self.advance(msg, out);
        } else {
            self.nack_commit(&msg, out);
        }
    }

    fn on_commit_nack(&mut self, msg: Message, out: &mut Outbox) {
        // Every node the NACK *arrives at* (pos ≥ 1 on the reversed
        // prefix) escrowed toward the node the NACK came from — restore.
        if msg.pos > 0 {
            let from = msg.path[msg.pos as usize - 1];
            *self.balances.entry(from).or_insert(0) += msg.commit;
            self.counters.escrow_release(msg.commit);
        }
        if msg.at_end() {
            out.deliveries.push(msg);
        } else {
            self.advance(msg, out);
        }
    }

    fn on_confirm(&mut self, msg: Message, out: &mut Outbox) {
        if msg.at_end() {
            // Receiver: start the CONFIRM_ACK wave that credits reverse
            // directions on its way back to the sender.
            let mut ack = msg.clone();
            ack.msg_type = MsgType::ConfirmAck;
            ack.path.reverse();
            ack.pos = 0;
            self.on_confirm_ack(ack, out);
            return;
        }
        self.advance(msg, out);
    }

    fn on_confirm_ack(&mut self, msg: Message, out: &mut Outbox) {
        // A CONFIRM_ACK *arriving* here (pos ≥ 1) finalizes the forward
        // escrow this node placed in phase 1. At pos 0 the ack was just
        // constructed by the receiver, which never escrowed.
        if msg.pos > 0 {
            self.counters.escrow_release(msg.commit);
        }
        if msg.at_end() {
            out.deliveries.push(msg);
            return;
        }
        // Credit the reverse direction: on the reversed path, my next
        // hop is my predecessor on the forward path.
        let next = msg.next_hop().expect("checked not at end");
        *self.balances.entry(next).or_insert(0) += msg.commit;
        self.advance(msg, out);
    }

    fn on_reverse(&mut self, msg: Message, out: &mut Outbox) {
        if msg.at_end() {
            self.ack_back(&msg, MsgType::ReverseAck, out);
            return;
        }
        // Restore the escrowed forward balance (even on a frozen
        // channel — settlement waves land harmlessly on frozen funds).
        let next = msg.next_hop().expect("checked not at end");
        *self.balances.entry(next).or_insert(0) += msg.commit;
        self.counters.escrow_release(msg.commit);
        self.advance(msg, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives a message through a chain of nodes synchronously, with no
    /// sockets: the minimal in-memory harness for the state machine.
    fn run_chain(nodes: &mut [NodeState], first: u32, msg: Message) -> Vec<Message> {
        let mut delivered = Vec::new();
        let mut queue = vec![(first, msg)];
        while let Some((id, m)) = queue.pop() {
            let mut out = Outbox::default();
            nodes[id as usize].handle(m, &mut out);
            delivered.extend(out.deliveries);
            for (to, m) in out.sends {
                queue.push((to, m));
            }
        }
        delivered
    }

    fn line3() -> Vec<NodeState> {
        // 0 → 1 → 2 with 10 units each way.
        let u = 10_000_000u64;
        vec![
            NodeState::new(0, HashMap::from([(1, u)])),
            NodeState::new(1, HashMap::from([(0, u), (2, u)])),
            NodeState::new(2, HashMap::from([(1, u)])),
        ]
    }

    #[test]
    fn probe_appends_balances_and_acks_back() {
        let mut nodes = line3();
        let got = run_chain(
            &mut nodes,
            0,
            Message::new(1, MsgType::Probe, vec![0, 1, 2]),
        );
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].msg_type, MsgType::ProbeAck);
        assert_eq!(got[0].capacities, vec![10_000_000, 10_000_000]);
        assert_eq!(nodes[1].counters().probe_messages, 1);
    }

    #[test]
    fn commit_escrows_and_nack_rolls_back() {
        let mut nodes = line3();
        let mut commit = Message::new(2, MsgType::Commit, vec![0, 1, 2]);
        commit.commit = 4_000_000;
        let got = run_chain(&mut nodes, 0, commit);
        assert_eq!(got[0].msg_type, MsgType::CommitAck);
        assert_eq!(nodes[0].balance_to(1), 6_000_000);
        assert_eq!(nodes[0].counters().escrow_held, 4_000_000);
        assert_eq!(nodes[1].counters().escrow_held, 4_000_000);

        // A second commit that does not fit NACKs and restores.
        let mut over = Message::new(3, MsgType::Commit, vec![0, 1, 2]);
        over.commit = 8_000_000;
        let got = run_chain(&mut nodes, 0, over);
        assert_eq!(got[0].msg_type, MsgType::CommitNack);
        assert_eq!(nodes[0].balance_to(1), 6_000_000, "hop 0 never escrowed");
        assert_eq!(
            nodes[0].counters().commits_nacked,
            1,
            "sender's own hop refused"
        );
        assert_eq!(nodes[0].counters().escrow_held, 4_000_000);

        // A commit that fits hop 0 (6M ≥ 5M) but not hop 1 (6M ≥ 5M too —
        // use 6M exactly, draining hop 0, so hop 1's 6M also fits; instead
        // refuse at hop 1 by exceeding its balance alone is impossible on
        // this symmetric line, so verify the mid-path NACK with a drained
        // middle hop).
        nodes[1].drain_to(2, 6_000_000);
        let mut mid = Message::new(4, MsgType::Commit, vec![0, 1, 2]);
        mid.commit = 5_000_000;
        let got = run_chain(&mut nodes, 0, mid);
        assert_eq!(got[0].msg_type, MsgType::CommitNack);
        assert_eq!(nodes[1].counters().commits_nacked, 1, "hop 1 refused");
        assert_eq!(nodes[0].balance_to(1), 6_000_000, "NACK rolled hop 0 back");
        assert_eq!(nodes[0].counters().escrow_held, 4_000_000);
    }

    #[test]
    fn confirm_ack_credits_reverse_and_releases_escrow() {
        let mut nodes = line3();
        let mut commit = Message::new(4, MsgType::Commit, vec![0, 1, 2]);
        commit.commit = 3_000_000;
        run_chain(&mut nodes, 0, commit);
        let mut confirm = Message::new(4, MsgType::Confirm, vec![0, 1, 2]);
        confirm.commit = 3_000_000;
        let got = run_chain(&mut nodes, 0, confirm);
        assert_eq!(got[0].msg_type, MsgType::ConfirmAck);
        assert_eq!(nodes[2].balance_to(1), 13_000_000);
        assert_eq!(nodes[1].balance_to(0), 13_000_000);
        assert_eq!(nodes[0].counters().escrow_held, 0);
        assert_eq!(nodes[1].counters().escrow_held, 0);
        assert_eq!(nodes[0].counters().escrow_high_water, 3_000_000);
    }

    #[test]
    fn closed_channel_probes_zero_and_nacks_commits() {
        let mut nodes = line3();
        nodes[1].set_closed_to(2, true);
        let got = run_chain(
            &mut nodes,
            0,
            Message::new(5, MsgType::Probe, vec![0, 1, 2]),
        );
        assert_eq!(got[0].capacities, vec![10_000_000, 0]);
        let mut commit = Message::new(6, MsgType::Commit, vec![0, 1, 2]);
        commit.commit = 1_000_000;
        let got = run_chain(&mut nodes, 0, commit);
        assert_eq!(got[0].msg_type, MsgType::CommitNack);
        assert_eq!(
            nodes[0].balance_to(1),
            10_000_000,
            "upstream escrow restored"
        );
        // Reopening restores service.
        nodes[1].set_closed_to(2, false);
        let mut commit = Message::new(7, MsgType::Commit, vec![0, 1, 2]);
        commit.commit = 1_000_000;
        let got = run_chain(&mut nodes, 0, commit);
        assert_eq!(got[0].msg_type, MsgType::CommitAck);
    }

    #[test]
    fn down_node_drops_probes_and_nacks_commits() {
        let mut nodes = line3();
        nodes[1].set_down(true);
        let got = run_chain(
            &mut nodes,
            0,
            Message::new(8, MsgType::Probe, vec![0, 1, 2]),
        );
        assert!(got.is_empty(), "a crashed relay swallows the probe");
        let mut commit = Message::new(9, MsgType::Commit, vec![0, 1, 2]);
        commit.commit = 1_000_000;
        let got = run_chain(&mut nodes, 0, commit);
        assert_eq!(got[0].msg_type, MsgType::CommitNack);
        assert_eq!(nodes[0].balance_to(1), 10_000_000);
    }

    #[test]
    fn reverse_restores_escrow_through_frozen_channels() {
        let mut nodes = line3();
        let mut commit = Message::new(10, MsgType::Commit, vec![0, 1, 2]);
        commit.commit = 5_000_000;
        run_chain(&mut nodes, 0, commit);
        // Channel freezes while the payment is in flight.
        nodes[1].set_closed_to(2, true);
        nodes[2].set_closed_to(1, true);
        let mut reverse = Message::new(10, MsgType::Reverse, vec![0, 1, 2]);
        reverse.commit = 5_000_000;
        let got = run_chain(&mut nodes, 0, reverse);
        assert_eq!(got[0].msg_type, MsgType::ReverseAck);
        assert_eq!(nodes[0].balance_to(1), 10_000_000);
        assert_eq!(nodes[1].balance_to(2), 10_000_000);
        assert_eq!(nodes[0].counters().escrow_held, 0);
        assert_eq!(nodes[1].counters().escrow_held, 0);
    }

    #[test]
    fn drain_moves_at_most_the_balance() {
        let mut nodes = line3();
        assert_eq!(nodes[0].drain_to(1, u64::MAX), 10_000_000);
        assert_eq!(nodes[0].balance_to(1), 0);
        nodes[1].credit_to(0, 10_000_000);
        assert_eq!(nodes[1].balance_to(0), 20_000_000);
    }
}
