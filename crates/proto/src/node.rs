//! The per-participant node runtime.
//!
//! Each node owns the balances of its **outgoing** channel directions
//! (node `u` owns `balance[u → v]`), listens on its own TCP socket, and
//! executes the protocol state machine of §5.1:
//!
//! * `PROBE` — append own next-hop balance to `Capacity`, forward;
//!   the receiver reverses the path into a `PROBE_ACK`.
//! * `COMMIT` — escrow (decrement) the next-hop balance and forward;
//!   on shortfall, emit `COMMIT_NACK` back along the reversed prefix,
//!   **rolling back** the escrow at every hop it passes.
//! * `CONFIRM` / `CONFIRM_ACK` — the ACK credits each node's
//!   reverse-direction balance ("adding the committed funds of this
//!   sub-payment to the channel in the reverse direction").
//! * `REVERSE` / `REVERSE_ACK` — restores each node's forward-direction
//!   escrow for sub-payments abandoned in phase 2.
//!
//! The one deviation from the paper's prose: the paper sends `REVERSE`
//! for *failed* sub-payments too, but hops beyond the NACKing node never
//! escrowed anything, so a full-path `REVERSE` would over-credit. Here
//! the `COMMIT_NACK` itself rolls back exactly the hops that escrowed,
//! and phase-2 `REVERSE` is only used for sub-payments that fully
//! `COMMIT_ACK`ed. Funds conservation is asserted in the tests.

use crate::transport::{read_message, ConnPool};
use crate::wire::{Message, MsgType};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;

/// Message counters, updated lock-free from reader threads.
#[derive(Debug, Default)]
pub struct NodeStats {
    /// `PROBE` messages forwarded or terminated here (one per hop
    /// traversed, matching the paper's probing-message metric).
    pub probe_messages: AtomicU64,
    /// `COMMIT` messages processed here.
    pub commit_messages: AtomicU64,
    /// All messages handled.
    pub total_messages: AtomicU64,
}

/// A participant node: balances + TCP endpoint + protocol state machine.
pub struct Node {
    id: u32,
    addr: SocketAddr,
    /// Outgoing balance per neighbor (micro-units).
    balances: Mutex<HashMap<u32, u64>>,
    pool: Arc<ConnPool>,
    /// Client-side request correlation: `trans_id → reply channel`.
    pending: Mutex<HashMap<u64, mpsc::Sender<Message>>>,
    stats: Arc<NodeStats>,
    shutdown: Arc<AtomicBool>,
}

impl Node {
    /// Creates the node with its address book and initial balances, and
    /// spawns the accept loop.
    pub fn serve(
        id: u32,
        listener: TcpListener,
        addr: SocketAddr,
        pool: Arc<ConnPool>,
        balances: HashMap<u32, u64>,
    ) -> (Arc<Node>, JoinHandle<()>) {
        let node = Arc::new(Node {
            id,
            addr,
            balances: Mutex::new(balances),
            pool,
            pending: Mutex::new(HashMap::new()),
            stats: Arc::new(NodeStats::default()),
            shutdown: Arc::new(AtomicBool::new(false)),
        });
        let accept_node = Arc::clone(&node);
        let handle = std::thread::spawn(move || accept_loop(accept_node, listener));
        (node, handle)
    }

    /// This node's id.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// This node's socket address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Message counters.
    pub fn stats(&self) -> &NodeStats {
        &self.stats
    }

    /// Current outgoing balance toward `neighbor` (micro-units).
    pub fn balance_to(&self, neighbor: u32) -> u64 {
        self.balances.lock().get(&neighbor).copied().unwrap_or(0)
    }

    /// Sum of all outgoing balances (conservation checks).
    pub fn total_outgoing(&self) -> u64 {
        self.balances.lock().values().sum()
    }

    /// Registers a reply channel for a client-initiated transaction and
    /// injects the first message into this node's state machine (the
    /// sender processes its own hop 0 before anything hits the wire).
    pub fn start_request(&self, msg: Message) -> mpsc::Receiver<Message> {
        let (tx, rx) = mpsc::channel();
        self.pending.lock().insert(msg.trans_id, tx);
        self.handle_message(msg);
        rx
    }

    /// Drops the reply registration of a finished transaction.
    pub fn finish_request(&self, trans_id: u64) {
        self.pending.lock().remove(&trans_id);
    }

    /// Requests shutdown of the accept loop (unblocked by a self-connect).
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        self.pool.close_all();
    }

    /// Forwards `msg` to `path[pos + 1]`, incrementing `pos`.
    fn advance(&self, mut msg: Message) {
        let Some(next) = msg.next_hop() else {
            debug_assert!(false, "advance called at end of path");
            return;
        };
        msg.pos += 1;
        if let Err(e) = self.pool.send(next, &msg) {
            // Transport failure: the prototype treats the transaction as
            // timed out at the sender; nothing to do at a relay.
            eprintln!("node {}: forward to {next} failed: {e}", self.id);
        }
    }

    /// Delivers a terminal message to the waiting client, if any.
    fn deliver(&self, msg: Message) {
        let sender = self.pending.lock().get(&msg.trans_id).cloned();
        if let Some(tx) = sender {
            let _ = tx.send(msg);
        }
    }

    /// The protocol state machine. Called for every received message and
    /// for client-injected ones.
    pub fn handle_message(&self, msg: Message) {
        self.stats.total_messages.fetch_add(1, Ordering::Relaxed);
        match msg.msg_type {
            MsgType::Probe => self.on_probe(msg),
            MsgType::Commit => self.on_commit(msg),
            MsgType::CommitNack => self.on_commit_nack(msg),
            MsgType::Confirm => self.on_confirm(msg),
            MsgType::ConfirmAck => self.on_confirm_ack(msg),
            MsgType::Reverse => self.on_reverse(msg),
            // Pure relays: ProbeAck, CommitAck, ReverseAck.
            MsgType::ProbeAck | MsgType::CommitAck | MsgType::ReverseAck => {
                if msg.at_end() {
                    self.deliver(msg);
                } else {
                    self.advance(msg);
                }
            }
        }
    }

    fn on_probe(&self, mut msg: Message) {
        self.stats.probe_messages.fetch_add(1, Ordering::Relaxed);
        if msg.at_end() {
            // Receiver: reverse the path into a PROBE_ACK (§5.1: "the
            // receiver modifies the message type to PROBE_ACK, replaces
            // the Path field with the reversed version of the forward
            // path, and sends it back").
            let mut ack = msg.clone();
            ack.msg_type = MsgType::ProbeAck;
            ack.path.reverse();
            ack.pos = 0;
            if ack.at_end() {
                self.deliver(ack); // degenerate 1-node path
            } else {
                self.advance(ack);
            }
            return;
        }
        // Intermediate (or sender): append own balance toward next hop.
        let next = msg.next_hop().expect("checked not at end");
        let bal = self.balance_to(next);
        msg.capacities.push(bal);
        self.advance(msg);
    }

    fn on_commit(&self, msg: Message) {
        self.stats.commit_messages.fetch_add(1, Ordering::Relaxed);
        if msg.at_end() {
            // Receiver: all hops escrowed; acknowledge.
            let mut ack = msg.clone();
            ack.msg_type = MsgType::CommitAck;
            ack.path.reverse();
            ack.pos = 0;
            if ack.at_end() {
                self.deliver(ack);
            } else {
                self.advance(ack);
            }
            return;
        }
        let next = msg.next_hop().expect("checked not at end");
        let mut balances = self.balances.lock();
        let bal = balances.entry(next).or_insert(0);
        if *bal >= msg.commit {
            *bal -= msg.commit;
            drop(balances);
            self.advance(msg);
        } else {
            drop(balances);
            // Insufficient balance: NACK back along the reversed prefix.
            // Nodes before us escrowed and roll back as the NACK passes.
            let mut prefix: Vec<u32> = msg.path[..=msg.pos as usize].to_vec();
            prefix.reverse();
            let mut nack = Message::new(msg.trans_id, MsgType::CommitNack, prefix);
            nack.commit = msg.commit;
            if nack.at_end() {
                self.deliver(nack); // the sender itself lacked balance
            } else {
                self.advance(nack);
            }
        }
    }

    fn on_commit_nack(&self, msg: Message) {
        // Every node the NACK *arrives at* (pos ≥ 1 on the reversed
        // prefix) escrowed toward the node the NACK came from — restore.
        if msg.pos > 0 {
            let from = msg.path[msg.pos as usize - 1];
            let mut balances = self.balances.lock();
            *balances.entry(from).or_insert(0) += msg.commit;
        }
        if msg.at_end() {
            self.deliver(msg);
        } else {
            self.advance(msg);
        }
    }

    fn on_confirm(&self, msg: Message) {
        if msg.at_end() {
            // Receiver: start the CONFIRM_ACK wave that credits reverse
            // directions on its way back to the sender.
            let mut ack = msg.clone();
            ack.msg_type = MsgType::ConfirmAck;
            ack.path.reverse();
            ack.pos = 0;
            self.on_confirm_ack(ack);
            return;
        }
        self.advance(msg);
    }

    fn on_confirm_ack(&self, msg: Message) {
        if msg.at_end() {
            self.deliver(msg);
            return;
        }
        // Credit the reverse direction: on the reversed path, my next
        // hop is my predecessor on the forward path.
        let next = msg.next_hop().expect("checked not at end");
        {
            let mut balances = self.balances.lock();
            *balances.entry(next).or_insert(0) += msg.commit;
        }
        self.advance(msg);
    }

    fn on_reverse(&self, msg: Message) {
        if msg.at_end() {
            let mut ack = msg.clone();
            ack.msg_type = MsgType::ReverseAck;
            ack.path.reverse();
            ack.pos = 0;
            if ack.at_end() {
                self.deliver(ack);
            } else {
                self.advance(ack);
            }
            return;
        }
        // Restore the escrowed forward balance.
        let next = msg.next_hop().expect("checked not at end");
        {
            let mut balances = self.balances.lock();
            *balances.entry(next).or_insert(0) += msg.commit;
        }
        self.advance(msg);
    }
}

fn accept_loop(node: Arc<Node>, listener: TcpListener) {
    while let Ok((stream, _)) = listener.accept() {
        if node.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let reader_node = Arc::clone(&node);
        std::thread::spawn(move || reader_loop(reader_node, stream));
    }
}

fn reader_loop(node: Arc<Node>, mut stream: TcpStream) {
    loop {
        match read_message(&mut stream) {
            Ok(Some(msg)) => node.handle_message(msg),
            Ok(None) => break,
            Err(e) => {
                if !node.shutdown.load(Ordering::SeqCst) {
                    eprintln!("node {}: read error: {e}", node.id);
                }
                break;
            }
        }
    }
}
