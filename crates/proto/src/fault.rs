//! Transport fault injection for the testbed.
//!
//! The smoltcp guide's examples ship `--drop-chance`-style fault
//! injection to demonstrate behaviour under adverse conditions; the
//! prototype gets the same: a [`FaultPlan`] installed on a cluster
//! drops outbound protocol messages with a configured probability.
//!
//! Faults exercise the paths the paper's §5.1 design argues for: a lost
//! `COMMIT_ACK` makes the sender time out and issue `REVERSE`; a lost
//! `PROBE` simply times out the probe. Note that a lost `COMMIT` *can*
//! strand escrowed funds at upstream hops until the sender's `REVERSE`
//! pass restores them — the exact reason real deployments need
//! HTLC-style timelocks, which the paper (and this reproduction)
//! explicitly leave out of scope.

use parking_lot::Mutex;
use pcn_sim::FaultConfig;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A shared message-drop plan.
#[derive(Clone)]
pub struct FaultPlan {
    inner: Arc<FaultPlanInner>,
}

struct FaultPlanInner {
    /// Probability of dropping any outbound message, in parts per
    /// million (0 = off, 1_000_000 = drop everything).
    drop_ppm: u64,
    rng: Mutex<StdRng>,
    dropped: AtomicU64,
}

impl FaultPlan {
    /// No faults.
    pub fn none() -> Self {
        Self::with_drop_prob(0.0, 0)
    }

    /// Drops each outbound message with probability `p` (clamped to
    /// [0, 1]), deterministically per seed.
    pub fn with_drop_prob(p: f64, seed: u64) -> Self {
        let ppm = (p.clamp(0.0, 1.0) * 1_000_000.0) as u64;
        FaultPlan {
            inner: Arc::new(FaultPlanInner {
                drop_ppm: ppm,
                rng: Mutex::new(StdRng::seed_from_u64(seed)),
                dropped: AtomicU64::new(0),
            }),
        }
    }

    /// Builds a wire-level plan from the simulators' shared fault
    /// surface ([`pcn_sim::FaultConfig`], also the DES backend's
    /// `DesConfig::faults`): `probe_drop_prob` becomes the outbound
    /// message-drop probability under the same seed. Probe *noise* has
    /// no transport equivalent — the wire carries real balances — so
    /// `probe_noise_ppm` is ignored here.
    pub fn from_fault_config(config: &FaultConfig) -> Self {
        Self::with_drop_prob(config.probe_drop_prob, config.seed)
    }

    /// Whether faults are active at all.
    pub fn enabled(&self) -> bool {
        self.inner.drop_ppm > 0
    }

    /// Rolls the dice for one outbound message.
    pub fn should_drop(&self) -> bool {
        if self.inner.drop_ppm == 0 {
            return false;
        }
        let roll: u64 = self.inner.rng.lock().random_range(0..1_000_000);
        if roll < self.inner.drop_ppm {
            self.inner.dropped.fetch_add(1, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// Messages dropped so far.
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_drops() {
        let f = FaultPlan::none();
        assert!(!f.enabled());
        for _ in 0..100 {
            assert!(!f.should_drop());
        }
        assert_eq!(f.dropped(), 0);
    }

    #[test]
    fn always_drop() {
        let f = FaultPlan::with_drop_prob(1.0, 3);
        for _ in 0..10 {
            assert!(f.should_drop());
        }
        assert_eq!(f.dropped(), 10);
    }

    #[test]
    fn rate_is_roughly_respected() {
        let f = FaultPlan::with_drop_prob(0.3, 7);
        let drops = (0..10_000).filter(|_| f.should_drop()).count();
        assert!((2_500..3_500).contains(&drops), "drops = {drops}");
    }

    #[test]
    fn shares_the_sim_fault_surface() {
        assert!(!FaultPlan::from_fault_config(&FaultConfig::none()).enabled());
        let shared = FaultConfig {
            probe_drop_prob: 1.0,
            seed: 11,
            ..FaultConfig::none()
        };
        let f = FaultPlan::from_fault_config(&shared);
        assert!(f.enabled());
        assert!(f.should_drop());
    }

    #[test]
    fn clamps_out_of_range() {
        assert!(!FaultPlan::with_drop_prob(-1.0, 0).enabled());
        let f = FaultPlan::with_drop_prob(2.0, 0);
        assert!(f.should_drop());
    }
}
