//! Cluster orchestration and the testbed experiment driver.
//!
//! [`Cluster::launch`] deploys one protocol node per participant on the
//! single-threaded [`EventLoop`] (see [`crate::event_loop`]) — hundreds
//! of nodes fit in one process because a node costs a listener and a
//! state machine, not threads. The cluster implements
//! [`pcn_sim::PaymentNetwork`] (see [`crate::backend`]), so the *same*
//! [`Router`] implementations the simulator uses — all five schemes —
//! route on it unmodified; [`TestbedRunner`] merely drives a transaction
//! trace through one router and measures per-transaction processing
//! delay (Figures 12c/d and 13c/d), success volume and ratio (a/b
//! panels), and the probe/commit message breakdown.
//!
//! The loop lives behind a `Mutex`, keeping every cluster method
//! `&self`: concurrent callers serialize at the lock, which preserves
//! the exactly-one-wins outcome of conflicting commits. Batched
//! operations ([`Cluster::probe_many`], [`Cluster::commit_many`],
//! [`Cluster::settle_many`]) inject *all* their requests before pumping
//! the loop, so sub-payments still interleave on the wire exactly as
//! the paper's sender "prepares a COMMIT message for each of the
//! sub-payment and sends them out" before collecting replies.

use crate::event_loop::{EventLoop, ShutdownReport};
use crate::fault::FaultPlan;
use crate::node::NodeCounters;
use crate::wire::{Message, MsgType};
use flash_core::{
    FlashConfig, FlashRouter, ShortestPathRouter, SilentWhispersRouter, SpeedyMurmursRouter,
    SpiderRouter,
};
use parking_lot::Mutex;
use pcn_graph::{DiGraph, EdgeId, Path};
use pcn_sim::{ChurnAction, RouteOutcome, Router};
use pcn_types::{Amount, FeePolicy, NodeId, Payment, PaymentClass, PcnError, Result};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Which routing scheme the testbed runner drives. All five schemes run
/// through the same [`Router`] implementations as the §4 simulator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchemeKind {
    /// Flash (elephant/mice differentiation; k = 20, m = 4 defaults).
    Flash,
    /// Spider (waterfilling over 4 edge-disjoint shortest paths).
    Spider,
    /// Single fewest-hops path.
    ShortestPath,
    /// SpeedyMurmurs (3 landmark prefix embeddings, greedy shortcuts).
    SpeedyMurmurs,
    /// SilentWhispers (3 landmarks, landmark-centered tree routing).
    SilentWhispers,
}

impl SchemeKind {
    /// Every scheme, in the order the testbed figures list them.
    pub const ALL: [SchemeKind; 5] = [
        SchemeKind::ShortestPath,
        SchemeKind::Flash,
        SchemeKind::Spider,
        SchemeKind::SpeedyMurmurs,
        SchemeKind::SilentWhispers,
    ];

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            SchemeKind::Flash => "Flash",
            SchemeKind::Spider => "Spider",
            SchemeKind::ShortestPath => "SP",
            SchemeKind::SpeedyMurmurs => "SpeedyMurmurs",
            SchemeKind::SilentWhispers => "SilentWhispers",
        }
    }

    /// Instantiates the scheme's router for the testbed backend — the
    /// identical `flash-core` implementation the simulator runs.
    pub fn router(self, elephant_threshold: Amount, seed: u64) -> Box<dyn Router<Cluster>> {
        match self {
            SchemeKind::Flash => Box::new(FlashRouter::new(FlashConfig {
                elephant_threshold,
                seed,
                ..Default::default()
            })),
            SchemeKind::Spider => Box::new(SpiderRouter::new()),
            SchemeKind::ShortestPath => Box::new(ShortestPathRouter::new()),
            SchemeKind::SpeedyMurmurs => Box::new(SpeedyMurmursRouter::new()),
            SchemeKind::SilentWhispers => Box::new(SilentWhispersRouter::new()),
        }
    }
}

/// A running cluster of event-loop-hosted TCP nodes.
///
/// Beyond the raw wire operations ([`Cluster::probe`],
/// [`Cluster::commit_part`], ...), the cluster implements
/// [`pcn_sim::PaymentNetwork`] (in [`crate::backend`]) so any
/// [`Router`] drives it exactly like the in-memory simulator.
pub struct Cluster {
    graph: DiGraph,
    /// The reactor hosting every node. `&self` methods lock it; see the
    /// module docs for the serialization contract.
    evloop: Mutex<EventLoop>,
    timeout: Duration,
    /// Sender-side fee policies per directed edge. The wire protocol
    /// carries no fee field, so — like the topology file every prototype
    /// node reads at launch — fee policies are local knowledge, reported
    /// through probes for the fee-minimizing LP.
    fees: Vec<FeePolicy>,
    /// Allocator for wire transaction ids (probes and sub-payments).
    next_trans_id: AtomicU64,
}

impl Cluster {
    /// Launches one node per graph vertex on ephemeral localhost ports.
    /// `balances[e]` (indexed by edge id) seeds each node's outgoing
    /// balances.
    pub fn launch(graph: DiGraph, balances: &[Amount]) -> Result<Cluster> {
        Self::launch_with_faults(graph, balances, FaultPlan::none())
    }

    /// Launches a cluster whose outbound messages pass through `faults`
    /// (dropped messages surface as sender-side timeouts).
    pub fn launch_with_faults(
        graph: DiGraph,
        balances: &[Amount],
        faults: FaultPlan,
    ) -> Result<Cluster> {
        if balances.len() != graph.edge_count() {
            return Err(PcnError::InvalidConfig(format!(
                "balance table has {} entries for {} edges",
                balances.len(),
                graph.edge_count()
            )));
        }
        let n = graph.node_count();
        let mut node_balances: Vec<HashMap<u32, u64>> = vec![HashMap::new(); n];
        for (id, bal) in node_balances.iter_mut().enumerate() {
            for &(neigh, e) in graph.out_neighbors(NodeId::from_index(id)) {
                bal.insert(neigh.0, balances[e.index()].micros());
            }
        }
        let evloop = EventLoop::new(node_balances, faults)?;
        let fees = vec![FeePolicy::FREE; graph.edge_count()];
        Ok(Cluster {
            graph,
            evloop: Mutex::new(evloop),
            timeout: Duration::from_secs(10),
            fees,
            next_trans_id: AtomicU64::new(1),
        })
    }

    /// Overrides the client-side reply timeout (default 10 s). Fault
    /// tests lower this so dropped messages fail fast.
    pub fn set_timeout(&mut self, timeout: Duration) {
        self.timeout = timeout;
    }

    /// Installs sender-side fee policies, indexed by [`EdgeId`]
    /// (defaults to free). Probes report these, so the Flash fee LP
    /// optimizes real fees on the testbed.
    pub fn set_fee_policies(&mut self, fees: Vec<FeePolicy>) -> Result<()> {
        if fees.len() != self.graph.edge_count() {
            return Err(PcnError::InvalidConfig(format!(
                "fee table has {} entries for {} edges",
                fees.len(),
                self.graph.edge_count()
            )));
        }
        self.fees = fees;
        Ok(())
    }

    /// Fee policy of a directed edge (sender-side knowledge).
    pub fn fee_policy(&self, e: EdgeId) -> FeePolicy {
        self.fees[e.index()]
    }

    /// The shared topology (the file every prototype node "reads ... at
    /// launch time").
    pub fn graph(&self) -> &DiGraph {
        &self.graph
    }

    /// Total funds across all nodes (conservation checks).
    pub fn total_funds(&self) -> u64 {
        self.evloop.lock().total_funds()
    }

    /// Sum of probe messages processed across all nodes.
    pub fn probe_messages(&self) -> u64 {
        self.evloop
            .lock()
            .counters()
            .iter()
            .map(|c| c.probe_messages)
            .sum()
    }

    /// Sum of commit messages processed across all nodes.
    pub fn commit_messages(&self) -> u64 {
        self.evloop
            .lock()
            .counters()
            .iter()
            .map(|c| c.commit_messages)
            .sum()
    }

    /// Per-node telemetry snapshot, indexed by node id.
    pub fn node_counters(&self) -> Vec<NodeCounters> {
        self.evloop.lock().counters()
    }

    /// Messages the installed fault plan has dropped so far.
    pub fn dropped_messages(&self) -> u64 {
        self.evloop.lock().dropped()
    }

    /// Allocates a fresh wire transaction id.
    pub fn fresh_trans_id(&self) -> u64 {
        self.next_trans_id.fetch_add(1, Ordering::Relaxed)
    }

    fn path_ids(path: &Path) -> Vec<u32> {
        path.nodes().iter().map(|n| n.0).collect()
    }

    /// Runs one request to completion (or timeout) on the loop.
    fn request(&self, msg: Message) -> Option<Message> {
        self.request_many(vec![msg]).pop().flatten()
    }

    /// Injects every message, then pumps the loop until all replies
    /// arrived or the timeout elapsed. Results are in input order;
    /// `None` marks a timed-out (or invalid) request.
    fn request_many(&self, msgs: Vec<Message>) -> Vec<Option<Message>> {
        let mut ev = self.evloop.lock();
        let mut ids = Vec::with_capacity(msgs.len());
        for msg in msgs {
            let id = msg.trans_id;
            match ev.begin_request(msg) {
                Ok(_) => ids.push(Some(id)),
                Err(_) => ids.push(None),
            }
        }
        let live: Vec<u64> = ids.iter().copied().flatten().collect();
        ev.run_requests(&live, self.timeout);
        ids.into_iter()
            .map(|id| id.and_then(|id| ev.take_reply(id)))
            .collect()
    }

    /// Sends a `PROBE` along `path`; returns per-hop forward balances.
    pub fn probe(&self, trans_id: u64, path: &Path) -> Option<Vec<u64>> {
        let msg = Message::new(trans_id, MsgType::Probe, Self::path_ids(path));
        let reply = self.request(msg)?;
        (reply.msg_type == MsgType::ProbeAck && reply.capacities.len() == path.hops())
            .then_some(reply.capacities)
    }

    /// Probes many paths in one batch: all `PROBE`s are in flight
    /// together, as the prototype's Spider sender issues its path
    /// probes at once.
    pub fn probe_many(&self, items: &[(u64, &Path)]) -> Vec<Option<Vec<u64>>> {
        let msgs = items
            .iter()
            .map(|(id, path)| Message::new(*id, MsgType::Probe, Self::path_ids(path)))
            .collect();
        self.request_many(msgs)
            .into_iter()
            .zip(items)
            .map(|(reply, (_, path))| {
                let reply = reply?;
                (reply.msg_type == MsgType::ProbeAck && reply.capacities.len() == path.hops())
                    .then_some(reply.capacities)
            })
            .collect()
    }

    /// Phase-1 commit of a sub-payment. `true` on `COMMIT_ACK`; on
    /// `COMMIT_NACK` every escrowed hop has already been rolled back.
    pub fn commit_part(&self, trans_id: u64, path: &Path, amount: Amount) -> bool {
        self.commit_part_located(trans_id, path, amount).is_ok()
    }

    /// Phase-1 commit reporting *where* a failed part NACKed: `Err(h)`
    /// means hop `h` (0 = first channel) lacked balance. A timed-out
    /// reply (lossy transport) reports hop 0 — the wire carries no
    /// better information in that case.
    pub fn commit_part_located(
        &self,
        trans_id: u64,
        path: &Path,
        amount: Amount,
    ) -> std::result::Result<(), usize> {
        self.commit_many(&[(trans_id, path, amount)])
            .pop()
            .expect("one part in, one result out")
    }

    /// Phase-1 commit of a whole batch: every `COMMIT` goes out before
    /// any reply is awaited. Each result is as in
    /// [`Cluster::commit_part_located`]; NACKed parts have already been
    /// rolled back on the wire.
    pub fn commit_many(
        &self,
        parts: &[(u64, &Path, Amount)],
    ) -> Vec<std::result::Result<(), usize>> {
        let msgs = parts
            .iter()
            .map(|(id, path, amount)| {
                let mut m = Message::new(*id, MsgType::Commit, Self::path_ids(path));
                m.commit = amount.micros();
                m
            })
            .collect();
        self.request_many(msgs)
            .into_iter()
            .map(|reply| match reply {
                Some(m) if m.msg_type == MsgType::CommitAck => Ok(()),
                // The NACK's path is the reversed prefix up to (and
                // including) the node that refused: its length names
                // the hop.
                Some(m) if m.msg_type == MsgType::CommitNack => Err(m.path.len().saturating_sub(1)),
                _ => Err(0),
            })
            .collect()
    }

    /// Phase-2 confirmation of a committed sub-payment (credits the
    /// reverse directions along the path).
    pub fn confirm_part(&self, trans_id: u64, path: &Path, amount: Amount) -> bool {
        self.settle_many(&[(trans_id, path, amount)], true)
            .pop()
            .unwrap_or(false)
    }

    /// Phase-2 reversal of a committed sub-payment (restores escrow).
    pub fn reverse_part(&self, trans_id: u64, path: &Path, amount: Amount) -> bool {
        self.settle_many(&[(trans_id, path, amount)], false)
            .pop()
            .unwrap_or(false)
    }

    /// Phase-2 settlement wave for a batch of committed parts: confirms
    /// (`confirm = true`) or reverses all of them, in flight together.
    pub fn settle_many(&self, parts: &[(u64, &Path, Amount)], confirm: bool) -> Vec<bool> {
        let (send, expect) = if confirm {
            (MsgType::Confirm, MsgType::ConfirmAck)
        } else {
            (MsgType::Reverse, MsgType::ReverseAck)
        };
        let msgs = parts
            .iter()
            .map(|(id, path, amount)| {
                let mut m = Message::new(*id, send, Self::path_ids(path));
                m.commit = amount.micros();
                m
            })
            .collect();
        self.request_many(msgs)
            .into_iter()
            .map(|reply| reply.is_some_and(|m| m.msg_type == expect))
            .collect()
    }

    /// Applies one topology mutation mid-run, mirroring the DES churn
    /// semantics (`pcn_sim::des::churn`): closes freeze both directions
    /// of the channel, crashed nodes NACK what they would service, and
    /// drains move funds to the reverse direction when one exists.
    pub fn apply_churn(&self, action: &ChurnAction) {
        let mut ev = self.evloop.lock();
        match *action {
            ChurnAction::ChannelClose(e) | ChurnAction::ChannelReopen(e) => {
                let closed = matches!(action, ChurnAction::ChannelClose(_));
                let (u, v) = self.graph.endpoints(e);
                ev.set_channel_closed(u.0, v.0, closed);
                if self.graph.edge(v, u).is_some() {
                    ev.set_channel_closed(v.0, u.0, closed);
                }
            }
            ChurnAction::NodeDown(n) => ev.set_node_down(n.0, true),
            ChurnAction::NodeUp(n) => ev.set_node_down(n.0, false),
            ChurnAction::BalanceDrain { edge, amount } => {
                let (u, v) = self.graph.endpoints(edge);
                let credit_reverse = self.graph.edge(v, u).is_some();
                ev.drain_channel(u.0, v.0, amount.micros(), credit_reverse);
            }
        }
    }

    /// Winds the event loop down deterministically and reports anything
    /// left behind (see [`EventLoop::shutdown`]). Idempotent.
    pub fn shutdown(&self) -> ShutdownReport {
        self.evloop.lock().shutdown()
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        // The loop's own Drop would catch this too; shutting down here
        // keeps the wind-down inside the cluster's lifetime.
        self.shutdown();
    }
}

/// Per-scheme testbed statistics (one (scheme, capacity-interval) cell
/// of Figures 12/13).
#[derive(Clone, Debug, Default)]
pub struct TestbedReport {
    /// Payments attempted.
    pub attempted: u64,
    /// Payments fully delivered.
    pub succeeded: u64,
    /// Volume of fully delivered payments.
    pub success_volume: Amount,
    /// Total processing delay across all payments.
    pub total_delay: Duration,
    /// Processing delay restricted to mice payments.
    pub mice_delay: Duration,
    /// Number of mice payments.
    pub mice_count: u64,
    /// Probe messages processed cluster-wide.
    pub probe_messages: u64,
    /// Commit messages processed cluster-wide — with probes, the Fig.
    /// 9-style message breakdown the sim `Metrics` also reports.
    pub commit_messages: u64,
    /// Total fees charged on successful payments (sender-side fee
    /// policies; zero unless [`Cluster::set_fee_policies`] was called).
    pub fees_paid: Amount,
}

impl TestbedReport {
    /// Success ratio in [0, 1].
    pub fn success_ratio(&self) -> f64 {
        if self.attempted == 0 {
            0.0
        } else {
            self.succeeded as f64 / self.attempted as f64
        }
    }

    /// Mean processing delay per payment.
    pub fn avg_delay(&self) -> Duration {
        if self.attempted == 0 {
            Duration::ZERO
        } else {
            self.total_delay / self.attempted as u32
        }
    }

    /// Mean processing delay per mice payment.
    pub fn avg_mice_delay(&self) -> Duration {
        if self.mice_count == 0 {
            Duration::ZERO
        } else {
            self.mice_delay / self.mice_count as u32
        }
    }

    /// Total messages (probe + commit phases) processed cluster-wide.
    pub fn total_messages(&self) -> u64 {
        self.probe_messages + self.commit_messages
    }
}

/// Drives a trace through one router on a [`Cluster`].
///
/// The runner contains **no routing logic of its own**: the router is a
/// stock `flash-core` implementation working through the
/// [`pcn_sim::PaymentNetwork`] trait, so the testbed measures the very
/// same code path the simulator evaluates — including Flash's elephant
/// fee LP and mice table, which the previous hand-rolled runner
/// re-implemented.
pub struct TestbedRunner {
    cluster: Cluster,
    router: Box<dyn Router<Cluster>>,
    /// Elephant/mice threshold used by [`TestbedRunner::run_trace`] to
    /// classify payments (set so 90% are mice, as in §5.2).
    pub elephant_threshold: Amount,
}

impl TestbedRunner {
    /// Creates a runner for one of the stock schemes.
    pub fn new(
        cluster: Cluster,
        scheme: SchemeKind,
        elephant_threshold: Amount,
        seed: u64,
    ) -> Self {
        Self::with_router(
            cluster,
            scheme.router(elephant_threshold, seed),
            elephant_threshold,
        )
    }

    /// Creates a runner driving a custom [`Router`] — any implementation
    /// generic over [`pcn_sim::PaymentNetwork`] plugs in here.
    pub fn with_router(
        cluster: Cluster,
        router: Box<dyn Router<Cluster>>,
        elephant_threshold: Amount,
    ) -> Self {
        TestbedRunner {
            cluster,
            router,
            elephant_threshold,
        }
    }

    /// Access to the underlying cluster.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Routes an entire trace, accumulating the report.
    pub fn run_trace(&mut self, trace: &[Payment]) -> TestbedReport {
        let mut report = TestbedReport::default();
        for p in trace {
            let class = p.classify(self.elephant_threshold);
            let wall_start = crate::wall_now();
            let outcome = self.route_outcome(p, class);
            let wall_elapsed = wall_start.elapsed();
            report.attempted += 1;
            report.total_delay += wall_elapsed;
            if class.is_mice() {
                report.mice_count += 1;
                report.mice_delay += wall_elapsed;
            }
            if let RouteOutcome::Success { volume, fees, .. } = outcome {
                report.succeeded += 1;
                report.success_volume = report.success_volume.saturating_add(volume);
                report.fees_paid = report.fees_paid.saturating_add(fees);
            }
        }
        report.probe_messages = self.cluster.probe_messages();
        report.commit_messages = self.cluster.commit_messages();
        report
    }

    /// Routes one payment; returns success.
    pub fn route_one(&mut self, payment: &Payment, class: PaymentClass) -> bool {
        self.route_outcome(payment, class).is_success()
    }

    /// Routes one payment, returning the full outcome.
    pub fn route_outcome(&mut self, payment: &Payment, class: PaymentClass) -> RouteOutcome {
        self.router.route(&mut self.cluster, payment, class)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcn_types::TxId;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    /// Diamond: two 2-hop bidirectional routes 0 → 3 of 10 units each.
    fn diamond() -> (DiGraph, Vec<Amount>) {
        let mut g = DiGraph::new(4);
        g.add_channel(n(0), n(1)).unwrap();
        g.add_channel(n(1), n(3)).unwrap();
        g.add_channel(n(0), n(2)).unwrap();
        g.add_channel(n(2), n(3)).unwrap();
        let balances = vec![Amount::from_units(10); g.edge_count()];
        (g, balances)
    }

    fn pay(amount: u64) -> Payment {
        Payment::new(TxId(1), n(0), n(3), Amount::from_units(amount))
    }

    #[test]
    fn probe_collects_hop_balances() {
        let (g, b) = diamond();
        let cluster = Cluster::launch(g, &b).unwrap();
        let path = Path::new(vec![n(0), n(1), n(3)], Some(cluster.graph())).unwrap();
        let caps = cluster.probe(99, &path).unwrap();
        assert_eq!(caps, vec![10_000_000, 10_000_000]);
        assert!(cluster.probe_messages() >= 2);
    }

    #[test]
    fn commit_confirm_moves_funds_both_directions() {
        let (g, b) = diamond();
        let cluster = Cluster::launch(g, &b).unwrap();
        let before = cluster.total_funds();
        let path = Path::new(vec![n(0), n(1), n(3)], Some(cluster.graph())).unwrap();
        assert!(cluster.commit_part(1, &path, Amount::from_units(4)));
        assert!(cluster.confirm_part(1, &path, Amount::from_units(4)));
        // Forward balances decreased, reverse increased.
        let caps = cluster.probe(2, &path).unwrap();
        assert_eq!(caps, vec![6_000_000, 6_000_000]);
        let rev = Path::new(vec![n(3), n(1), n(0)], Some(cluster.graph())).unwrap();
        let rcaps = cluster.probe(3, &rev).unwrap();
        assert_eq!(rcaps, vec![14_000_000, 14_000_000]);
        assert_eq!(cluster.total_funds(), before);
    }

    #[test]
    fn commit_nack_rolls_back_escrow() {
        let (g, b) = diamond();
        let cluster = Cluster::launch(g, &b).unwrap();
        let before = cluster.total_funds();
        let path = Path::new(vec![n(0), n(1), n(3)], Some(cluster.graph())).unwrap();
        // 11 > 10 fails at the very first hop; try 10 then drain and 5.
        assert!(!cluster.commit_part(1, &path, Amount::from_units(11)));
        assert_eq!(cluster.total_funds(), before);
        // Drain hop 1→3, then a mid-path NACK must restore hop 0→1.
        assert!(cluster.commit_part(2, &path, Amount::from_units(8)));
        assert!(cluster.confirm_part(2, &path, Amount::from_units(8)));
        assert!(!cluster.commit_part(3, &path, Amount::from_units(5)));
        let caps = cluster.probe(4, &path).unwrap();
        assert_eq!(caps, vec![2_000_000, 2_000_000]);
        assert_eq!(cluster.total_funds(), before);
    }

    #[test]
    fn commit_part_located_names_the_nacking_hop() {
        let (g, b) = diamond();
        let cluster = Cluster::launch(g, &b).unwrap();
        let path = Path::new(vec![n(0), n(1), n(3)], Some(cluster.graph())).unwrap();
        // First hop lacks balance → hop 0.
        assert_eq!(
            cluster.commit_part_located(1, &path, Amount::from_units(11)),
            Err(0)
        );
        // Drain the second hop only; the NACK then comes from hop 1.
        assert!(cluster.commit_part(2, &path, Amount::from_units(8)));
        assert!(cluster.confirm_part(2, &path, Amount::from_units(8)));
        // 1→3 has 2 left, 0→1 has 2 left... drain 0→1's remainder via
        // the reverse route to isolate hop 1: instead, commit 3 (> 2).
        assert_eq!(
            cluster.commit_part_located(3, &path, Amount::from_units(3)),
            Err(0),
            "hop 0 has 2 < 3 after the drain"
        );
        let (g, b) = diamond();
        let cluster = Cluster::launch(g, &b).unwrap();
        let path = Path::new(vec![n(0), n(1), n(3)], Some(cluster.graph())).unwrap();
        let drain = Path::new(vec![n(1), n(3)], Some(cluster.graph())).unwrap();
        assert!(cluster.commit_part(4, &drain, Amount::from_units(8)));
        assert!(cluster.confirm_part(4, &drain, Amount::from_units(8)));
        assert_eq!(
            cluster.commit_part_located(5, &path, Amount::from_units(5)),
            Err(1),
            "hop 1 (1→3) has 2 < 5 while hop 0 still has 10"
        );
        // The failed attempt rolled hop 0 back.
        let caps = cluster.probe(6, &path).unwrap();
        assert_eq!(caps[0], 10_000_000);
    }

    #[test]
    fn reverse_restores_committed_part() {
        let (g, b) = diamond();
        let cluster = Cluster::launch(g, &b).unwrap();
        let before = cluster.total_funds();
        let path = Path::new(vec![n(0), n(1), n(3)], Some(cluster.graph())).unwrap();
        assert!(cluster.commit_part(1, &path, Amount::from_units(7)));
        assert!(cluster.reverse_part(1, &path, Amount::from_units(7)));
        let caps = cluster.probe(2, &path).unwrap();
        assert_eq!(caps, vec![10_000_000, 10_000_000]);
        assert_eq!(cluster.total_funds(), before);
    }

    #[test]
    fn batched_commits_interleave_on_the_wire() {
        let (g, b) = diamond();
        let cluster = Cluster::launch(g, &b).unwrap();
        let before = cluster.total_funds();
        let p1 = Path::new(vec![n(0), n(1), n(3)], Some(cluster.graph())).unwrap();
        let p2 = Path::new(vec![n(0), n(2), n(3)], Some(cluster.graph())).unwrap();
        let results = cluster.commit_many(&[
            (10, &p1, Amount::from_units(6)),
            (11, &p2, Amount::from_units(7)),
            // Third part overdraws p1's remaining 4 and must NACK.
            (12, &p1, Amount::from_units(5)),
        ]);
        assert_eq!(results, vec![Ok(()), Ok(()), Err(0)]);
        let settled = cluster.settle_many(
            &[
                (10, &p1, Amount::from_units(6)),
                (11, &p2, Amount::from_units(7)),
            ],
            true,
        );
        assert_eq!(settled, vec![true, true]);
        assert_eq!(cluster.total_funds(), before);
        let caps = cluster.probe(13, &p1).unwrap();
        assert_eq!(caps, vec![4_000_000, 4_000_000]);
    }

    #[test]
    fn churn_actions_apply_and_conserve() {
        let (g, b) = diamond();
        let cluster = Cluster::launch(g, &b).unwrap();
        let before = cluster.total_funds();
        let path = Path::new(vec![n(0), n(1), n(3)], Some(cluster.graph())).unwrap();
        let e01 = cluster.graph().edge(n(0), n(1)).unwrap();
        cluster.apply_churn(&ChurnAction::ChannelClose(e01));
        assert!(
            !cluster.commit_part(1, &path, Amount::from_units(1)),
            "commit through a closed channel must NACK"
        );
        assert_eq!(cluster.total_funds(), before, "frozen funds stay in place");
        cluster.apply_churn(&ChurnAction::ChannelReopen(e01));
        assert!(cluster.commit_part(2, &path, Amount::from_units(1)));
        assert!(cluster.reverse_part(2, &path, Amount::from_units(1)));
        cluster.apply_churn(&ChurnAction::NodeDown(n(1)));
        assert!(
            cluster.probe(3, &path).is_none(),
            "crashed relay drops probes"
        );
        cluster.apply_churn(&ChurnAction::NodeUp(n(1)));
        assert!(cluster.probe(4, &path).is_some());
        cluster.apply_churn(&ChurnAction::BalanceDrain {
            edge: e01,
            amount: Amount::MAX,
        });
        let caps = cluster.probe(5, &path).unwrap();
        assert_eq!(caps[0], 0, "drained direction is empty");
        assert_eq!(cluster.total_funds(), before, "drain conserves funds");
    }

    #[test]
    fn shutdown_reports_clean_on_quiet_cluster() {
        let (g, b) = diamond();
        let cluster = Cluster::launch(g, &b).unwrap();
        let path = Path::new(vec![n(0), n(1), n(3)], Some(cluster.graph())).unwrap();
        cluster.probe(1, &path).unwrap();
        let report = cluster.shutdown();
        assert!(report.is_clean(), "{report:?}");
    }

    #[test]
    fn sp_scheme_end_to_end() {
        let (g, b) = diamond();
        let cluster = Cluster::launch(g, &b).unwrap();
        let mut runner = TestbedRunner::new(cluster, SchemeKind::ShortestPath, Amount::MAX, 1);
        assert!(runner.route_one(&pay(10), PaymentClass::Mice));
        assert!(!runner.route_one(&pay(11), PaymentClass::Mice));
    }

    #[test]
    fn spider_scheme_splits() {
        let (g, b) = diamond();
        let cluster = Cluster::launch(g, &b).unwrap();
        let mut runner = TestbedRunner::new(cluster, SchemeKind::Spider, Amount::MAX, 1);
        assert!(runner.route_one(&pay(15), PaymentClass::Elephant));
        assert!(!runner.route_one(&pay(30), PaymentClass::Elephant));
    }

    #[test]
    fn flash_scheme_mice_and_elephant() {
        let (g, b) = diamond();
        let cluster = Cluster::launch(g, &b).unwrap();
        let mut runner = TestbedRunner::new(cluster, SchemeKind::Flash, Amount::from_units(5), 1);
        assert!(runner.route_one(&pay(3), PaymentClass::Mice));
        assert!(runner.route_one(&pay(14), PaymentClass::Elephant));
        let report_funds = runner.cluster().total_funds();
        assert_eq!(report_funds, 80_000_000);
    }

    #[test]
    fn tree_schemes_route_on_the_cluster() {
        // SpeedyMurmurs and SilentWhispers — previously sim-only — now
        // run on the testbed through the same routers.
        for scheme in [SchemeKind::SpeedyMurmurs, SchemeKind::SilentWhispers] {
            let (g, b) = diamond();
            let cluster = Cluster::launch(g, &b).unwrap();
            let before = cluster.total_funds();
            let mut runner = TestbedRunner::new(cluster, scheme, Amount::MAX, 1);
            assert!(
                runner.route_one(&pay(2), PaymentClass::Mice),
                "{} failed a feasible payment",
                scheme.name()
            );
            assert!(
                !runner.route_one(&pay(1000), PaymentClass::Mice),
                "{} claimed an infeasible payment",
                scheme.name()
            );
            assert_eq!(
                runner.cluster().total_funds(),
                before,
                "{} leaked funds",
                scheme.name()
            );
        }
    }

    #[test]
    fn run_trace_reports() {
        let (g, b) = diamond();
        let cluster = Cluster::launch(g, &b).unwrap();
        let mut runner = TestbedRunner::new(cluster, SchemeKind::Flash, Amount::from_units(5), 2);
        let trace = vec![pay(2), pay(3), pay(100)];
        let report = runner.run_trace(&trace);
        assert_eq!(report.attempted, 3);
        assert_eq!(report.succeeded, 2);
        assert_eq!(report.success_volume, Amount::from_units(5));
        assert!(report.success_ratio() > 0.6);
        assert!(report.avg_delay() > Duration::ZERO);
        assert!(
            report.commit_messages > 0,
            "commit traffic must be surfaced in the report"
        );
        assert_eq!(
            report.total_messages(),
            report.probe_messages + report.commit_messages
        );
    }

    #[test]
    fn fees_surface_in_the_report() {
        let (g, b) = diamond();
        let edge_count = g.edge_count();
        let mut cluster = Cluster::launch(g, &b).unwrap();
        // 1% proportional fee on every channel.
        cluster
            .set_fee_policies(vec![FeePolicy::proportional(10_000); edge_count])
            .unwrap();
        let mut runner = TestbedRunner::new(cluster, SchemeKind::ShortestPath, Amount::MAX, 1);
        let report = runner.run_trace(&[pay(5)]);
        assert_eq!(report.succeeded, 1);
        // 2 hops × 1% of $5 = $0.10.
        assert_eq!(report.fees_paid, Amount::from_units_f64(0.10));
    }

    #[test]
    fn launch_rejects_mismatched_tables() {
        let (g, _) = diamond();
        assert!(Cluster::launch(g, &[Amount::ZERO]).is_err());
    }

    #[test]
    fn fee_table_size_is_validated() {
        let (g, b) = diamond();
        let mut cluster = Cluster::launch(g, &b).unwrap();
        assert!(cluster.set_fee_policies(vec![FeePolicy::FREE]).is_err());
    }
}
