//! Cluster orchestration and the testbed experiment driver.
//!
//! [`Cluster::launch`] spins up one TCP-backed [`Node`] per
//! participant. The cluster implements
//! [`pcn_sim::PaymentNetwork`] (see [`crate::backend`]), so the *same*
//! [`Router`] implementations the simulator uses — all five schemes —
//! route on it unmodified; [`TestbedRunner`] merely drives a transaction
//! trace through one router and measures per-transaction processing
//! delay (Figures 12c/d and 13c/d), success volume and ratio (a/b
//! panels), and the probe/commit message breakdown.

use crate::fault::FaultPlan;
use crate::node::Node;
use crate::transport::ConnPool;
use crate::wire::{Message, MsgType};
use flash_core::{
    FlashConfig, FlashRouter, ShortestPathRouter, SilentWhispersRouter, SpeedyMurmursRouter,
    SpiderRouter,
};
use pcn_graph::{DiGraph, EdgeId, Path};
use pcn_sim::{RouteOutcome, Router};
use pcn_types::{Amount, FeePolicy, NodeId, Payment, PaymentClass, PcnError, Result};
use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Which routing scheme the testbed runner drives. All five schemes run
/// through the same [`Router`] implementations as the §4 simulator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchemeKind {
    /// Flash (elephant/mice differentiation; k = 20, m = 4 defaults).
    Flash,
    /// Spider (waterfilling over 4 edge-disjoint shortest paths).
    Spider,
    /// Single fewest-hops path.
    ShortestPath,
    /// SpeedyMurmurs (3 landmark prefix embeddings, greedy shortcuts).
    SpeedyMurmurs,
    /// SilentWhispers (3 landmarks, landmark-centered tree routing).
    SilentWhispers,
}

impl SchemeKind {
    /// Every scheme, in the order the testbed figures list them.
    pub const ALL: [SchemeKind; 5] = [
        SchemeKind::ShortestPath,
        SchemeKind::Flash,
        SchemeKind::Spider,
        SchemeKind::SpeedyMurmurs,
        SchemeKind::SilentWhispers,
    ];

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            SchemeKind::Flash => "Flash",
            SchemeKind::Spider => "Spider",
            SchemeKind::ShortestPath => "SP",
            SchemeKind::SpeedyMurmurs => "SpeedyMurmurs",
            SchemeKind::SilentWhispers => "SilentWhispers",
        }
    }

    /// Instantiates the scheme's router for the testbed backend — the
    /// identical `flash-core` implementation the simulator runs.
    pub fn router(self, elephant_threshold: Amount, seed: u64) -> Box<dyn Router<Cluster>> {
        match self {
            SchemeKind::Flash => Box::new(FlashRouter::new(FlashConfig {
                elephant_threshold,
                seed,
                ..Default::default()
            })),
            SchemeKind::Spider => Box::new(SpiderRouter::new()),
            SchemeKind::ShortestPath => Box::new(ShortestPathRouter::new()),
            SchemeKind::SpeedyMurmurs => Box::new(SpeedyMurmursRouter::new()),
            SchemeKind::SilentWhispers => Box::new(SilentWhispersRouter::new()),
        }
    }
}

/// A running cluster of TCP nodes.
///
/// Beyond the raw wire operations ([`Cluster::probe`],
/// [`Cluster::commit_part`], ...), the cluster implements
/// [`pcn_sim::PaymentNetwork`] (in [`crate::backend`]) so any
/// [`Router`] drives it exactly like the in-memory simulator.
pub struct Cluster {
    graph: DiGraph,
    nodes: Vec<Arc<Node>>,
    timeout: Duration,
    /// Sender-side fee policies per directed edge. The wire protocol
    /// carries no fee field, so — like the topology file every prototype
    /// node reads at launch — fee policies are local knowledge, reported
    /// through probes for the fee-minimizing LP.
    fees: Vec<FeePolicy>,
    /// Allocator for wire transaction ids (probes and sub-payments).
    next_trans_id: AtomicU64,
}

impl Cluster {
    /// Launches one node per graph vertex on ephemeral localhost ports.
    /// `balances[e]` (indexed by edge id) seeds each node's outgoing
    /// balances.
    pub fn launch(graph: DiGraph, balances: &[Amount]) -> Result<Cluster> {
        Self::launch_with_faults(graph, balances, FaultPlan::none())
    }

    /// Launches a cluster whose outbound messages pass through `faults`
    /// (dropped messages surface as sender-side timeouts).
    pub fn launch_with_faults(
        graph: DiGraph,
        balances: &[Amount],
        faults: FaultPlan,
    ) -> Result<Cluster> {
        if balances.len() != graph.edge_count() {
            return Err(PcnError::InvalidConfig(format!(
                "balance table has {} entries for {} edges",
                balances.len(),
                graph.edge_count()
            )));
        }
        let n = graph.node_count();
        // Bind all listeners first so the address book is complete
        // before any node starts serving.
        let mut listeners = Vec::with_capacity(n);
        let mut addrs: HashMap<u32, SocketAddr> = HashMap::new();
        for id in 0..n {
            let listener = TcpListener::bind("127.0.0.1:0")?;
            addrs.insert(id as u32, listener.local_addr()?);
            listeners.push(listener);
        }
        let mut nodes = Vec::with_capacity(n);
        for (id, listener) in listeners.into_iter().enumerate() {
            let mut node_balances: HashMap<u32, u64> = HashMap::new();
            for &(neigh, e) in graph.out_neighbors(NodeId::from_index(id)) {
                node_balances.insert(neigh.0, balances[e.index()].micros());
            }
            let pool = ConnPool::with_faults(addrs.clone(), faults.clone());
            let addr = addrs[&(id as u32)];
            let (node, _handle) = Node::serve(id as u32, listener, addr, pool, node_balances);
            nodes.push(node);
        }
        let fees = vec![FeePolicy::FREE; graph.edge_count()];
        Ok(Cluster {
            graph,
            nodes,
            timeout: Duration::from_secs(10),
            fees,
            next_trans_id: AtomicU64::new(1),
        })
    }

    /// Overrides the client-side reply timeout (default 10 s). Fault
    /// tests lower this so dropped messages fail fast.
    pub fn set_timeout(&mut self, timeout: Duration) {
        self.timeout = timeout;
    }

    /// Installs sender-side fee policies, indexed by [`EdgeId`]
    /// (defaults to free). Probes report these, so the Flash fee LP
    /// optimizes real fees on the testbed.
    pub fn set_fee_policies(&mut self, fees: Vec<FeePolicy>) -> Result<()> {
        if fees.len() != self.graph.edge_count() {
            return Err(PcnError::InvalidConfig(format!(
                "fee table has {} entries for {} edges",
                fees.len(),
                self.graph.edge_count()
            )));
        }
        self.fees = fees;
        Ok(())
    }

    /// Fee policy of a directed edge (sender-side knowledge).
    pub fn fee_policy(&self, e: EdgeId) -> FeePolicy {
        self.fees[e.index()]
    }

    /// The shared topology (the file every prototype node "reads ... at
    /// launch time").
    pub fn graph(&self) -> &DiGraph {
        &self.graph
    }

    /// Total funds across all nodes (conservation checks).
    pub fn total_funds(&self) -> u64 {
        self.nodes.iter().map(|n| n.total_outgoing()).sum()
    }

    /// Sum of probe messages processed across all nodes.
    pub fn probe_messages(&self) -> u64 {
        self.nodes
            .iter()
            .map(|n| n.stats().probe_messages.load(Ordering::Relaxed))
            .sum()
    }

    /// Sum of commit messages processed across all nodes.
    pub fn commit_messages(&self) -> u64 {
        self.nodes
            .iter()
            .map(|n| n.stats().commit_messages.load(Ordering::Relaxed))
            .sum()
    }

    /// Allocates a fresh wire transaction id.
    pub fn fresh_trans_id(&self) -> u64 {
        self.next_trans_id.fetch_add(1, Ordering::Relaxed)
    }

    fn sender_node(&self, path: &Path) -> &Arc<Node> {
        &self.nodes[path.source().index()]
    }

    fn path_ids(path: &Path) -> Vec<u32> {
        path.nodes().iter().map(|n| n.0).collect()
    }

    /// Sends a `PROBE` along `path`; returns per-hop forward balances.
    pub fn probe(&self, trans_id: u64, path: &Path) -> Option<Vec<u64>> {
        let node = self.sender_node(path);
        let msg = Message::new(trans_id, MsgType::Probe, Self::path_ids(path));
        let rx = node.start_request(msg);
        let reply = rx.recv_timeout(self.timeout).ok();
        node.finish_request(trans_id);
        let reply = reply?;
        (reply.msg_type == MsgType::ProbeAck && reply.capacities.len() == path.hops())
            .then_some(reply.capacities)
    }

    /// Phase-1 commit of a sub-payment. `true` on `COMMIT_ACK`; on
    /// `COMMIT_NACK` every escrowed hop has already been rolled back.
    pub fn commit_part(&self, trans_id: u64, path: &Path, amount: Amount) -> bool {
        self.commit_part_located(trans_id, path, amount).is_ok()
    }

    /// Phase-1 commit reporting *where* a failed part NACKed: `Err(h)`
    /// means hop `h` (0 = first channel) lacked balance. A timed-out
    /// reply (lossy transport) reports hop 0 — the wire carries no
    /// better information in that case.
    pub fn commit_part_located(
        &self,
        trans_id: u64,
        path: &Path,
        amount: Amount,
    ) -> std::result::Result<(), usize> {
        let node = self.sender_node(path);
        let mut msg = Message::new(trans_id, MsgType::Commit, Self::path_ids(path));
        msg.commit = amount.micros();
        let rx = node.start_request(msg);
        let reply = rx.recv_timeout(self.timeout).ok();
        node.finish_request(trans_id);
        match reply {
            Some(m) if m.msg_type == MsgType::CommitAck => Ok(()),
            // The NACK's path is the reversed prefix up to (and
            // including) the node that refused: its length names the hop.
            Some(m) if m.msg_type == MsgType::CommitNack => Err(m.path.len().saturating_sub(1)),
            _ => Err(0),
        }
    }

    /// Phase-2 confirmation of a committed sub-payment (credits the
    /// reverse directions along the path).
    pub fn confirm_part(&self, trans_id: u64, path: &Path, amount: Amount) -> bool {
        self.phase2(
            trans_id,
            path,
            amount,
            MsgType::Confirm,
            MsgType::ConfirmAck,
        )
    }

    /// Phase-2 reversal of a committed sub-payment (restores escrow).
    pub fn reverse_part(&self, trans_id: u64, path: &Path, amount: Amount) -> bool {
        self.phase2(
            trans_id,
            path,
            amount,
            MsgType::Reverse,
            MsgType::ReverseAck,
        )
    }

    fn phase2(
        &self,
        trans_id: u64,
        path: &Path,
        amount: Amount,
        send: MsgType,
        expect: MsgType,
    ) -> bool {
        let node = self.sender_node(path);
        let mut msg = Message::new(trans_id, send, Self::path_ids(path));
        msg.commit = amount.micros();
        let rx = node.start_request(msg);
        let reply = rx.recv_timeout(self.timeout).ok();
        node.finish_request(trans_id);
        reply.is_some_and(|m| m.msg_type == expect)
    }

    /// Shuts the cluster down (best effort; reader threads exit on EOF).
    pub fn shutdown(&self) {
        for node in &self.nodes {
            node.request_shutdown();
        }
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Per-scheme testbed statistics (one (scheme, capacity-interval) cell
/// of Figures 12/13).
#[derive(Clone, Debug, Default)]
pub struct TestbedReport {
    /// Payments attempted.
    pub attempted: u64,
    /// Payments fully delivered.
    pub succeeded: u64,
    /// Volume of fully delivered payments.
    pub success_volume: Amount,
    /// Total processing delay across all payments.
    pub total_delay: Duration,
    /// Processing delay restricted to mice payments.
    pub mice_delay: Duration,
    /// Number of mice payments.
    pub mice_count: u64,
    /// Probe messages processed cluster-wide.
    pub probe_messages: u64,
    /// Commit messages processed cluster-wide — with probes, the Fig.
    /// 9-style message breakdown the sim `Metrics` also reports.
    pub commit_messages: u64,
    /// Total fees charged on successful payments (sender-side fee
    /// policies; zero unless [`Cluster::set_fee_policies`] was called).
    pub fees_paid: Amount,
}

impl TestbedReport {
    /// Success ratio in [0, 1].
    pub fn success_ratio(&self) -> f64 {
        if self.attempted == 0 {
            0.0
        } else {
            self.succeeded as f64 / self.attempted as f64
        }
    }

    /// Mean processing delay per payment.
    pub fn avg_delay(&self) -> Duration {
        if self.attempted == 0 {
            Duration::ZERO
        } else {
            self.total_delay / self.attempted as u32
        }
    }

    /// Mean processing delay per mice payment.
    pub fn avg_mice_delay(&self) -> Duration {
        if self.mice_count == 0 {
            Duration::ZERO
        } else {
            self.mice_delay / self.mice_count as u32
        }
    }

    /// Total messages (probe + commit phases) processed cluster-wide.
    pub fn total_messages(&self) -> u64 {
        self.probe_messages + self.commit_messages
    }
}

/// Drives a trace through one router on a [`Cluster`].
///
/// The runner contains **no routing logic of its own**: the router is a
/// stock `flash-core` implementation working through the
/// [`pcn_sim::PaymentNetwork`] trait, so the testbed measures the very
/// same code path the simulator evaluates — including Flash's elephant
/// fee LP and mice table, which the previous hand-rolled runner
/// re-implemented.
pub struct TestbedRunner {
    cluster: Cluster,
    router: Box<dyn Router<Cluster>>,
    /// Elephant/mice threshold used by [`TestbedRunner::run_trace`] to
    /// classify payments (set so 90% are mice, as in §5.2).
    pub elephant_threshold: Amount,
}

impl TestbedRunner {
    /// Creates a runner for one of the stock schemes.
    pub fn new(
        cluster: Cluster,
        scheme: SchemeKind,
        elephant_threshold: Amount,
        seed: u64,
    ) -> Self {
        Self::with_router(
            cluster,
            scheme.router(elephant_threshold, seed),
            elephant_threshold,
        )
    }

    /// Creates a runner driving a custom [`Router`] — any implementation
    /// generic over [`pcn_sim::PaymentNetwork`] plugs in here.
    pub fn with_router(
        cluster: Cluster,
        router: Box<dyn Router<Cluster>>,
        elephant_threshold: Amount,
    ) -> Self {
        TestbedRunner {
            cluster,
            router,
            elephant_threshold,
        }
    }

    /// Access to the underlying cluster.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// The router's scheme name.
    pub fn scheme_name(&self) -> &'static str {
        self.router.name()
    }

    /// Routes an entire trace, accumulating the report.
    pub fn run_trace(&mut self, trace: &[Payment]) -> TestbedReport {
        let mut report = TestbedReport::default();
        for p in trace {
            let class = p.classify(self.elephant_threshold);
            let wall_start = crate::wall_now();
            let outcome = self.route_outcome(p, class);
            let wall_elapsed = wall_start.elapsed();
            report.attempted += 1;
            report.total_delay += wall_elapsed;
            if class.is_mice() {
                report.mice_count += 1;
                report.mice_delay += wall_elapsed;
            }
            if let RouteOutcome::Success { volume, fees, .. } = outcome {
                report.succeeded += 1;
                report.success_volume = report.success_volume.saturating_add(volume);
                report.fees_paid = report.fees_paid.saturating_add(fees);
            }
        }
        report.probe_messages = self.cluster.probe_messages();
        report.commit_messages = self.cluster.commit_messages();
        report
    }

    /// Routes one payment; returns success.
    pub fn route_one(&mut self, payment: &Payment, class: PaymentClass) -> bool {
        self.route_outcome(payment, class).is_success()
    }

    /// Routes one payment, returning the full outcome.
    pub fn route_outcome(&mut self, payment: &Payment, class: PaymentClass) -> RouteOutcome {
        self.router.route(&mut self.cluster, payment, class)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcn_types::TxId;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    /// Diamond: two 2-hop bidirectional routes 0 → 3 of 10 units each.
    fn diamond() -> (DiGraph, Vec<Amount>) {
        let mut g = DiGraph::new(4);
        g.add_channel(n(0), n(1)).unwrap();
        g.add_channel(n(1), n(3)).unwrap();
        g.add_channel(n(0), n(2)).unwrap();
        g.add_channel(n(2), n(3)).unwrap();
        let balances = vec![Amount::from_units(10); g.edge_count()];
        (g, balances)
    }

    fn pay(amount: u64) -> Payment {
        Payment::new(TxId(1), n(0), n(3), Amount::from_units(amount))
    }

    #[test]
    fn probe_collects_hop_balances() {
        let (g, b) = diamond();
        let cluster = Cluster::launch(g, &b).unwrap();
        let path = Path::new(vec![n(0), n(1), n(3)], Some(cluster.graph())).unwrap();
        let caps = cluster.probe(99, &path).unwrap();
        assert_eq!(caps, vec![10_000_000, 10_000_000]);
        assert!(cluster.probe_messages() >= 2);
    }

    #[test]
    fn commit_confirm_moves_funds_both_directions() {
        let (g, b) = diamond();
        let cluster = Cluster::launch(g, &b).unwrap();
        let before = cluster.total_funds();
        let path = Path::new(vec![n(0), n(1), n(3)], Some(cluster.graph())).unwrap();
        assert!(cluster.commit_part(1, &path, Amount::from_units(4)));
        assert!(cluster.confirm_part(1, &path, Amount::from_units(4)));
        // Forward balances decreased, reverse increased.
        let caps = cluster.probe(2, &path).unwrap();
        assert_eq!(caps, vec![6_000_000, 6_000_000]);
        let rev = Path::new(vec![n(3), n(1), n(0)], Some(cluster.graph())).unwrap();
        let rcaps = cluster.probe(3, &rev).unwrap();
        assert_eq!(rcaps, vec![14_000_000, 14_000_000]);
        assert_eq!(cluster.total_funds(), before);
    }

    #[test]
    fn commit_nack_rolls_back_escrow() {
        let (g, b) = diamond();
        let cluster = Cluster::launch(g, &b).unwrap();
        let before = cluster.total_funds();
        let path = Path::new(vec![n(0), n(1), n(3)], Some(cluster.graph())).unwrap();
        // 11 > 10 fails at the very first hop; try 10 then drain and 5.
        assert!(!cluster.commit_part(1, &path, Amount::from_units(11)));
        assert_eq!(cluster.total_funds(), before);
        // Drain hop 1→3, then a mid-path NACK must restore hop 0→1.
        assert!(cluster.commit_part(2, &path, Amount::from_units(8)));
        assert!(cluster.confirm_part(2, &path, Amount::from_units(8)));
        assert!(!cluster.commit_part(3, &path, Amount::from_units(5)));
        let caps = cluster.probe(4, &path).unwrap();
        assert_eq!(caps, vec![2_000_000, 2_000_000]);
        assert_eq!(cluster.total_funds(), before);
    }

    #[test]
    fn commit_part_located_names_the_nacking_hop() {
        let (g, b) = diamond();
        let cluster = Cluster::launch(g, &b).unwrap();
        let path = Path::new(vec![n(0), n(1), n(3)], Some(cluster.graph())).unwrap();
        // First hop lacks balance → hop 0.
        assert_eq!(
            cluster.commit_part_located(1, &path, Amount::from_units(11)),
            Err(0)
        );
        // Drain the second hop only; the NACK then comes from hop 1.
        assert!(cluster.commit_part(2, &path, Amount::from_units(8)));
        assert!(cluster.confirm_part(2, &path, Amount::from_units(8)));
        // 1→3 has 2 left, 0→1 has 2 left... drain 0→1's remainder via
        // the reverse route to isolate hop 1: instead, commit 3 (> 2).
        assert_eq!(
            cluster.commit_part_located(3, &path, Amount::from_units(3)),
            Err(0),
            "hop 0 has 2 < 3 after the drain"
        );
        let (g, b) = diamond();
        let cluster = Cluster::launch(g, &b).unwrap();
        let path = Path::new(vec![n(0), n(1), n(3)], Some(cluster.graph())).unwrap();
        let drain = Path::new(vec![n(1), n(3)], Some(cluster.graph())).unwrap();
        assert!(cluster.commit_part(4, &drain, Amount::from_units(8)));
        assert!(cluster.confirm_part(4, &drain, Amount::from_units(8)));
        assert_eq!(
            cluster.commit_part_located(5, &path, Amount::from_units(5)),
            Err(1),
            "hop 1 (1→3) has 2 < 5 while hop 0 still has 10"
        );
        // The failed attempt rolled hop 0 back.
        let caps = cluster.probe(6, &path).unwrap();
        assert_eq!(caps[0], 10_000_000);
    }

    #[test]
    fn reverse_restores_committed_part() {
        let (g, b) = diamond();
        let cluster = Cluster::launch(g, &b).unwrap();
        let before = cluster.total_funds();
        let path = Path::new(vec![n(0), n(1), n(3)], Some(cluster.graph())).unwrap();
        assert!(cluster.commit_part(1, &path, Amount::from_units(7)));
        assert!(cluster.reverse_part(1, &path, Amount::from_units(7)));
        let caps = cluster.probe(2, &path).unwrap();
        assert_eq!(caps, vec![10_000_000, 10_000_000]);
        assert_eq!(cluster.total_funds(), before);
    }

    #[test]
    fn sp_scheme_end_to_end() {
        let (g, b) = diamond();
        let cluster = Cluster::launch(g, &b).unwrap();
        let mut runner = TestbedRunner::new(cluster, SchemeKind::ShortestPath, Amount::MAX, 1);
        assert!(runner.route_one(&pay(10), PaymentClass::Mice));
        assert!(!runner.route_one(&pay(11), PaymentClass::Mice));
    }

    #[test]
    fn spider_scheme_splits() {
        let (g, b) = diamond();
        let cluster = Cluster::launch(g, &b).unwrap();
        let mut runner = TestbedRunner::new(cluster, SchemeKind::Spider, Amount::MAX, 1);
        assert!(runner.route_one(&pay(15), PaymentClass::Elephant));
        assert!(!runner.route_one(&pay(30), PaymentClass::Elephant));
    }

    #[test]
    fn flash_scheme_mice_and_elephant() {
        let (g, b) = diamond();
        let cluster = Cluster::launch(g, &b).unwrap();
        let mut runner = TestbedRunner::new(cluster, SchemeKind::Flash, Amount::from_units(5), 1);
        assert!(runner.route_one(&pay(3), PaymentClass::Mice));
        assert!(runner.route_one(&pay(14), PaymentClass::Elephant));
        let report_funds = runner.cluster().total_funds();
        assert_eq!(report_funds, 80_000_000);
    }

    #[test]
    fn tree_schemes_route_on_the_cluster() {
        // SpeedyMurmurs and SilentWhispers — previously sim-only — now
        // run on the testbed through the same routers.
        for scheme in [SchemeKind::SpeedyMurmurs, SchemeKind::SilentWhispers] {
            let (g, b) = diamond();
            let cluster = Cluster::launch(g, &b).unwrap();
            let before = cluster.total_funds();
            let mut runner = TestbedRunner::new(cluster, scheme, Amount::MAX, 1);
            assert!(
                runner.route_one(&pay(2), PaymentClass::Mice),
                "{} failed a feasible payment",
                scheme.name()
            );
            assert!(
                !runner.route_one(&pay(1000), PaymentClass::Mice),
                "{} claimed an infeasible payment",
                scheme.name()
            );
            assert_eq!(
                runner.cluster().total_funds(),
                before,
                "{} leaked funds",
                scheme.name()
            );
        }
    }

    #[test]
    fn run_trace_reports() {
        let (g, b) = diamond();
        let cluster = Cluster::launch(g, &b).unwrap();
        let mut runner = TestbedRunner::new(cluster, SchemeKind::Flash, Amount::from_units(5), 2);
        let trace = vec![pay(2), pay(3), pay(100)];
        let report = runner.run_trace(&trace);
        assert_eq!(report.attempted, 3);
        assert_eq!(report.succeeded, 2);
        assert_eq!(report.success_volume, Amount::from_units(5));
        assert!(report.success_ratio() > 0.6);
        assert!(report.avg_delay() > Duration::ZERO);
        assert!(
            report.commit_messages > 0,
            "commit traffic must be surfaced in the report"
        );
        assert_eq!(
            report.total_messages(),
            report.probe_messages + report.commit_messages
        );
    }

    #[test]
    fn fees_surface_in_the_report() {
        let (g, b) = diamond();
        let edge_count = g.edge_count();
        let mut cluster = Cluster::launch(g, &b).unwrap();
        // 1% proportional fee on every channel.
        cluster
            .set_fee_policies(vec![FeePolicy::proportional(10_000); edge_count])
            .unwrap();
        let mut runner = TestbedRunner::new(cluster, SchemeKind::ShortestPath, Amount::MAX, 1);
        let report = runner.run_trace(&[pay(5)]);
        assert_eq!(report.succeeded, 1);
        // 2 hops × 1% of $5 = $0.10.
        assert_eq!(report.fees_paid, Amount::from_units_f64(0.10));
    }

    #[test]
    fn launch_rejects_mismatched_tables() {
        let (g, _) = diamond();
        assert!(Cluster::launch(g, &[Amount::ZERO]).is_err());
    }

    #[test]
    fn fee_table_size_is_validated() {
        let (g, b) = diamond();
        let mut cluster = Cluster::launch(g, &b).unwrap();
        assert!(cluster.set_fee_policies(vec![FeePolicy::FREE]).is_err());
    }
}
